"""Assemble every bundled RV32I listing into its checked-in image.

Run from the repo root:

    PYTHONPATH=src python scripts/asm_corpus.py [--check]

Without flags, (re)writes ``examples/rv32i/<name>.hex`` for every
listing in the bundled table. With ``--check``, re-assembles each
listing and fails if the checked-in image differs (the CI
assemble-check; also reachable as ``repro rv32i check``).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.isa.rv32i.asm import assemble, to_hex
from repro.isa.rv32i.core import Machine
from repro.isa.rv32i.corpus import BUNDLED


def main(argv) -> int:
    check = "--check" in argv
    root = Path(__file__).resolve().parents[1] / "examples/rv32i"
    failures = 0
    for name in BUNDLED:
        listing = root / f"{name}.s"
        image = root / f"{name}.hex"
        if not listing.is_file():
            print(f"{name}: MISSING listing {listing}")
            failures += 1
            continue
        words = assemble(listing.read_text())
        text = to_hex(words)
        machine = Machine(words)
        machine.run(max_steps=2_000_000)
        status = (f"{len(words)} words, {machine.retired} retired, "
                  f"halt={machine.halt_reason}")
        if check:
            if not image.is_file():
                print(f"{name}: MISSING image {image}")
                failures += 1
            elif image.read_text() != text:
                print(f"{name}: image DIFFERS from listing ({status})")
                failures += 1
            else:
                print(f"{name}: ok ({status})")
        else:
            image.write_text(text)
            print(f"{name}: wrote {image.name} ({status})")
        if machine.halt_reason != "ebreak":
            print(f"{name}: did not halt at ebreak!")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
