"""Legacy shim so `pip install -e .` works without network/build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cost-effective speculative scheduling in high performance "
        "processors (ISCA 2015) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
