#!/usr/bin/env python3
"""The experiment engine end to end: sweep file, process pool, warm cache.

Loads the Figure-5-style sweep from ``examples/sweeps/shifting.toml`` and
runs it three times against a throwaway cache directory:

1. serially with a cold cache (every cell simulated inline);
2. across worker processes with a cold in-memory cache — identical
   counters, wall time bounded by the slowest cell;
3. serially again with the now-warm persistent cache — zero simulations.

Usage::

    PYTHONPATH=src python examples/sweep_engine.py

The same sweep runs from the command line via
``python -m repro sweep examples/sweeps/shifting.toml --jobs 4``.
"""

import tempfile
import time
from pathlib import Path

from repro.experiments import EngineOptions, ResultCache, Sweep, run_sweep
from repro.experiments.report import performance_table

SWEEP_FILE = Path(__file__).parent / "sweeps" / "shifting.toml"


def timed_run(sweep, jobs, cache):
    start = time.perf_counter()
    result = run_sweep(sweep, options=EngineOptions(jobs=jobs), cache=cache)
    return result, time.perf_counter() - start


def main() -> None:
    sweep = Sweep.from_file(SWEEP_FILE)
    cells = len(sweep.series) * len(sweep.workloads)
    print(f"sweep {sweep.name!r}: {len(sweep.series)} series x "
          f"{len(sweep.workloads)} workloads = {cells} cells\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        serial, t_serial = timed_run(sweep, 1, ResultCache(Path(cache_dir)))
        parallel, t_parallel = timed_run(sweep, 4, ResultCache(None))
        warm_cache = ResultCache(Path(cache_dir))   # fresh memory, warm disk
        cached, t_cached = timed_run(sweep, 1, warm_cache)

        print(performance_table(serial))
        print()
        match = all(
            serial.get(s.label, wl).to_dict()
            == parallel.get(s.label, wl).to_dict()
            == cached.get(s.label, wl).to_dict()
            for s in sweep.series for wl in sweep.workloads)
        print(f"serial == parallel == warm-cache counters: {match}")
        print(f"serial (jobs=1, cold):   {t_serial:7.3f} s")
        print(f"parallel (jobs=4, cold): {t_parallel:7.3f} s")
        print(f"warm persistent cache:   {t_cached:7.3f} s "
              f"({warm_cache.disk_hits} disk hits, "
              f"{warm_cache.misses} simulations)")


if __name__ == "__main__":
    main()
