# state-machine: xorshift-driven branchy dispatch ladder.
#
# A xorshift32 PRNG (shifts and xors only — RV32I-friendly) drives 320
# steps of an 8-state machine. Each step hashes the PRNG output into a
# state index through a dense compare ladder, runs a short state-specific
# action, and bumps a per-state histogram in memory. The ladder's
# data-dependent branches are exactly the hard-to-predict control no
# synthetic taken-rate knob reproduces.
#
# Histogram at 0x6000 (8 words), trail of visited states at 0x6100.

    li   s0, 0x6000          # histogram base
    li   s1, 0x6100          # state trail
    li   s2, 0x2545F491      # xorshift seed
    li   s3, 0               # step counter
    li   s4, 320             # steps
    li   s5, 0               # current state
    li   s6, 0               # running mix

step:
    # -- xorshift32: x ^= x<<13; x ^= x>>17; x ^= x<<5
    slli t0, s2, 13
    xor  s2, s2, t0
    srli t0, s2, 17
    xor  s2, s2, t0
    slli t0, s2, 5
    xor  s2, s2, t0

    # -- next state = (rand ^ current) & 7, via a compare ladder
    xor  t1, s2, s5
    andi t1, t1, 7
    beqz t1, st0
    addi t2, t1, -1
    beqz t2, st1
    addi t2, t1, -2
    beqz t2, st2
    addi t2, t1, -3
    beqz t2, st3
    addi t2, t1, -4
    beqz t2, st4
    addi t2, t1, -5
    beqz t2, st5
    addi t2, t1, -6
    beqz t2, st6
st7:
    xori s6, s6, 0x7F        # state 7: flip low bits
    j    dispatched
st0:
    addi s6, s6, 1           # state 0: count
    j    dispatched
st1:
    slli s6, s6, 1           # state 1: double
    j    dispatched
st2:
    srli s6, s6, 1           # state 2: halve
    j    dispatched
st3:
    add  s6, s6, s2          # state 3: absorb entropy
    j    dispatched
st4:
    sub  s6, s6, s5          # state 4: shed the old state
    j    dispatched
st5:
    or   s6, s6, t1          # state 5: sticky bits
    j    dispatched
st6:
    and  s6, s6, s2          # state 6: mask by entropy
dispatched:
    mv   s5, t1              # commit the transition

    # -- histogram[state] += 1
    slli t3, s5, 2
    add  t3, t3, s0
    lw   t4, 0(t3)
    addi t4, t4, 1
    sw   t4, 0(t3)

    # -- append to the trail (one byte per step)
    add  t5, s1, s3
    sb   s5, 0(t5)

    addi s3, s3, 1
    blt  s3, s4, step

    li   t6, 0x6300
    sw   s6, 0(t6)           # publish the running mix
    ebreak
