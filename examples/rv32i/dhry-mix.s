# dhry-mix: dhrystone-style mixed loop.
#
# Each of the 48 outer iterations does integer arithmetic, copies a
# six-word record between two buffers, runs a branchy classifier over
# the copied payload, and calls a leaf routine through a real call/ret
# pair (so the RAS sees genuine call depth). Halts with ebreak.
#
# Buffers: record source at 0x1000, destination at 0x1100, result log
# at 0x1200 (one word per iteration).

    li   sp, 0x8000          # stack for the nested call
    li   s0, 0x1000          # record source
    li   s1, 0x1100          # record destination
    li   s2, 0x1200          # result log
    li   s3, 0               # iteration counter
    li   s4, 48              # iterations

init_record:                 # fill the source record: r[i] = 7*i + 3
    li   t0, 0               # word index
    li   t1, 3               # value
fill:
    slli t2, t0, 2
    add  t2, t2, s0
    sw   t1, 0(t2)
    addi t1, t1, 7
    addi t0, t0, 1
    slti t3, t0, 6
    bnez t3, fill

outer:
    # -- arithmetic block: mix of add/sub/logic over the counter
    slli t0, s3, 3
    xori t0, t0, 0x55
    sub  t1, t0, s3
    andi t1, t1, 0xFF
    or   t2, t0, t1
    sltu t3, t1, t2

    # -- record copy: six words, source -> destination
    li   t4, 0
copy:
    slli t5, t4, 2
    add  t6, t5, s0
    lw   a0, 0(t6)
    add  t6, t5, s1
    sw   a0, 0(t6)
    addi t4, t4, 1
    slti t5, t4, 6
    bnez t5, copy

    # -- classifier: branch on the copied payload's middle word
    lw   a1, 8(s1)
    andi a2, a1, 3
    beqz a2, class_zero
    addi a3, a2, -1
    beqz a3, class_one
    addi a3, a2, -2
    beqz a3, class_two
    addi a4, a1, 100         # class three
    j    classified
class_zero:
    slli a4, a1, 1
    j    classified
class_one:
    srli a4, a1, 1
    j    classified
class_two:
    xori a4, a1, -1
classified:

    # -- leaf call: a4 -> weighted checksum in a0
    mv   a0, a4
    addi sp, sp, -4
    sw   ra, 0(sp)
    call weigh
    lw   ra, 0(sp)
    addi sp, sp, 4

    # -- log the result, mutate the source record for next time
    slli t0, s3, 2
    add  t0, t0, s2
    sw   a0, 0(t0)
    lw   t1, 0(s0)
    add  t1, t1, a0
    andi t1, t1, 0x7FF
    sw   t1, 0(s0)

    addi s3, s3, 1
    blt  s3, s4, outer
    ebreak

weigh:                       # a0 = (a0>>3) + (a0<<1) + iteration, clamped
    srai t0, a0, 3
    slli t1, a0, 1
    add  a0, t0, t1
    add  a0, a0, s3
    li   t2, 0xFFFF
    and  a0, a0, t2
    ret
