# ptr-chase: linked-list build + pointer-chasing walk.
#
# Builds a 64-node singly linked list whose nodes live at
# 0x2000 + perm(i)*16, with the visit order scrambled by a
# multiplicative stride (perm(i) = 17*i mod 64 — 17 is coprime to 64,
# so the walk touches every node in a cache-hostile order). Each node
# is {next_ptr, payload}. Then walks the full list 10 times, summing
# payloads through the loads' address dependence chain — the classic
# load-to-load critical path no synthetic Table-2 mix reproduces.

    li   s0, 0x2000          # node arena
    li   s1, 64              # node count
    li   s2, 17              # stride (coprime to 64)

# -- build: node[perm(i)] -> node[perm(i+1)], payload = perm(i) ^ 0x2A
    li   t0, 0               # i
    li   t1, 0               # idx = perm(i), starts at 0
build:
    # t2 = &node[idx] = arena + idx*16
    slli t2, t1, 4
    add  t2, t2, s0
    # next idx = (idx + stride) mod 64
    add  t3, t1, s2
    andi t3, t3, 63
    # last node's next pointer is null (0)
    addi t4, t0, 1
    blt  t4, s1, not_last
    sw   x0, 0(t2)
    j    linked
not_last:
    slli t5, t3, 4
    add  t5, t5, s0
    sw   t5, 0(t2)           # node.next = &node[next_idx]
linked:
    xori t6, t1, 0x2A
    sw   t6, 4(t2)           # node.payload
    mv   t1, t3
    addi t0, t0, 1
    blt  t0, s1, build

# -- walk: 10 full traversals, address-dependent loads
    li   s3, 0               # pass counter
    li   s4, 10              # passes
    li   a0, 0               # checksum
walk_pass:
    mv   t0, s0              # cursor = &node[0]
chase:
    lw   t1, 4(t0)           # payload
    add  a0, a0, t1
    lw   t0, 0(t0)           # cursor = cursor->next
    bnez t0, chase
    # fold the pass number into the checksum, rotate it a little
    add  a0, a0, s3
    slli t2, a0, 1
    srli t3, a0, 31
    or   a0, t2, t3
    addi s3, s3, 1
    blt  s3, s4, walk_pass

    li   t4, 0x3000
    sw   a0, 0(t4)           # publish the checksum
    ebreak
