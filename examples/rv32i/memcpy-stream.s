# memcpy-stream: streaming copies and a rolling checksum.
#
# Initializes a 96-word source buffer, copies it word-by-word, copies
# the same 384 bytes again byte-by-byte (lb/sb — the unrolled tail of
# every real memcpy), then streams back over the word copy accumulating
# a rotate-and-xor checksum. Long strided load/store runs with almost
# no branching — the opposite corner of the mix space from
# state-machine.
#
# src at 0x5000, word copy at 0x5800, byte copy at 0x5C00.

    li   s0, 0x5000          # src
    li   s1, 0x5800          # word-copy dst
    li   s2, 0x5C00          # byte-copy dst
    li   s3, 96              # words
    li   s4, 384             # bytes

# -- init: src[i] = (i*9 + 0x101) via strength-reduced add chain
    li   t0, 0               # i
    li   t1, 0x101           # value
init:
    slli t2, t0, 2
    add  t2, t2, s0
    sw   t1, 0(t2)
    addi t1, t1, 9
    addi t0, t0, 1
    blt  t0, s3, init

# -- pass 1: word memcpy src -> dst1
    li   t0, 0
wcopy:
    slli t2, t0, 2
    add  t3, t2, s0
    lw   t4, 0(t3)
    add  t3, t2, s1
    sw   t4, 0(t3)
    addi t0, t0, 1
    blt  t0, s3, wcopy

# -- pass 2: byte memcpy src -> dst2
    li   t0, 0
bcopy:
    add  t3, t0, s0
    lb   t4, 0(t3)
    add  t3, t0, s2
    sb   t4, 0(t3)
    addi t0, t0, 1
    blt  t0, s4, bcopy

# -- pass 3: rolling checksum over the word copy
    li   t0, 0
    li   a0, 0
check:
    slli t2, t0, 2
    add  t3, t2, s1
    lw   t4, 0(t3)
    xor  a0, a0, t4
    slli t5, a0, 7           # rotate left by 7
    srli t6, a0, 25
    or   a0, t5, t6
    addi t0, t0, 1
    blt  t0, s3, check

    li   t1, 0x5F00
    sw   a0, 0(t1)           # publish the checksum
    ebreak
