# matmul-inner: 8x8 matrix inner products, software multiply.
#
# C[i][j] = sum_k A[i][k] * B[k][j] over 8x8 operand matrices. RV32I
# has no multiply instruction, so the inner loop calls a shift-add
# `mul` routine (early exit when the multiplier runs out of set bits).
# The dependence shape — two strided loads feeding a short call, the
# product accumulating into a loop-carried sum — is the textbook
# inner-product recurrence.
#
# A at 0x4000, B at 0x4100, C at 0x4200; all row-major words.

    li   sp, 0x8000
    li   s0, 0x4000          # A
    li   s1, 0x4100          # B
    li   s2, 0x4200          # C

# -- init: A[i][k] = (i+k)&7, B[k][j] = (k^j)&7 (small operands keep
#    the shift-add multiply short)
    li   t0, 0               # i
init_i:
    li   t1, 0               # k
init_k:
    add  t2, t0, t1
    andi t2, t2, 7
    slli t3, t0, 5           # i*32 (row stride: 8 words)
    slli t4, t1, 2
    add  t3, t3, t4
    add  t5, t3, s0
    sw   t2, 0(t5)           # A[i][k]
    xor  t2, t0, t1
    andi t2, t2, 7
    slli t3, t1, 5           # row k of B
    slli t4, t0, 2           # column i
    add  t3, t3, t4
    add  t5, t3, s1
    sw   t2, 0(t5)           # B[k][i]
    addi t1, t1, 1
    slti t6, t1, 8
    bnez t6, init_k
    addi t0, t0, 1
    slti t6, t0, 8
    bnez t6, init_i

# -- product: three nested loops, call mul per k step
    li   s3, 0               # i
loop_i:
    li   s4, 0               # j
loop_j:
    li   s5, 0               # k
    li   s6, 0               # acc
loop_k:
    slli t0, s3, 5
    slli t1, s5, 2
    add  t0, t0, t1
    add  t0, t0, s0
    lw   a0, 0(t0)           # A[i][k]
    slli t0, s5, 5
    slli t1, s4, 2
    add  t0, t0, t1
    add  t0, t0, s1
    lw   a1, 0(t0)           # B[k][j]
    addi sp, sp, -4
    sw   ra, 0(sp)
    call mul
    lw   ra, 0(sp)
    addi sp, sp, 4
    add  s6, s6, a0
    addi s5, s5, 1
    slti t2, s5, 8
    bnez t2, loop_k
    # C[i][j] = acc
    slli t0, s3, 5
    slli t1, s4, 2
    add  t0, t0, t1
    add  t0, t0, s2
    sw   s6, 0(t0)
    addi s4, s4, 1
    slti t2, s4, 8
    bnez t2, loop_j
    addi s3, s3, 1
    slti t2, s3, 8
    bnez t2, loop_i

# -- fold C into one checksum word at 0x4400
    li   t0, 0               # flat index
    li   a2, 0               # checksum
fold:
    slli t1, t0, 2
    add  t1, t1, s2
    lw   t2, 0(t1)
    add  a2, a2, t2
    xor  a2, a2, t0
    addi t0, t0, 1
    slti t3, t0, 64
    bnez t3, fold
    li   t4, 0x4400
    sw   a2, 0(t4)
    ebreak

mul:                         # a0 = a0 * a1 (unsigned shift-add)
    li   t0, 0               # product
mul_loop:
    beqz a1, mul_done        # early exit: multiplier exhausted
    andi t1, a1, 1
    beqz t1, mul_skip
    add  t0, t0, a0
mul_skip:
    slli a0, a0, 1
    srli a1, a1, 1
    j    mul_loop
mul_done:
    mv   a0, t0
    ret
