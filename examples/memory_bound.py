#!/usr/bin/env python3
"""Hit/miss filtering on memory-bound workloads (Section 5.2).

Under Always-Hit speculation, workloads that miss constantly (libquantum:
~every load; mcf: pointer chasing to DRAM) replay enormous numbers of
µops for no benefit. The 4-bit global counter plus the 768-byte per-PC
filter identifies them and stalls their dependents instead, slashing the
wasted issue bandwidth at roughly unchanged performance.

Usage::

    python examples/memory_bound.py
"""

from repro import run_workload

MISSY = ["libquantum", "mcf", "milc", "soplex", "omnetpp", "xalancbmk"]


def main() -> None:
    header = (f"{'workload':11s} {'IPC':>6s} {'IPC+filt':>9s} "
              f"{'missRpld':>9s} {'missRpld+filt':>14s} {'sureMiss%':>10s}")
    print(header)
    print("-" * len(header))
    for workload in MISSY:
        base = run_workload(workload, "SpecSched_4", banked=True)
        filt = run_workload(workload, "SpecSched_4_Filter", banked=True)
        s = filt.stats
        decided = (s.filter_sure_hit + s.filter_sure_miss
                   + s.filter_deferred) or 1
        print(f"{workload:11s} {base.ipc:6.2f} {filt.ipc:9.2f} "
              f"{base.stats.replayed_miss:9d} {s.replayed_miss:14d} "
              f"{s.filter_sure_miss / decided:10.1%}")
    print("\n'sureMiss%' is the fraction of load decisions the per-PC "
          "filter settled as guaranteed misses; the rest fall back to the "
          "global counter (Section 5.2).")


if __name__ == "__main__":
    main()
