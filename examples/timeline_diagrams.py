#!/usr/bin/env python3
"""Reproduce the paper's pipeline timing diagrams (Figures 1, 2 and 6)
from live simulation.

Legend: ``I`` issue, ``.`` in flight between Issue and Execute, ``E``
execute, ``x`` a squashed (replayed) issue attempt.

Usage::

    python examples/timeline_diagrams.py
"""

from repro.common.config import SimConfig
from repro.experiments.timeline import TracingSimulator, render_timeline
from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp


def cfg(delay=4, banked=False, speculative=True, shifting=False):
    c = SimConfig(name="demo").with_core(issue_to_execute_delay=delay)
    c = c.with_l1d(banked=banked)
    return c.with_sched(speculative=speculative,
                        schedule_shifting=shifting).validate()


def load(addr, dst, pc):
    return MicroOp(0, pc, OpClass.LOAD, srcs=[2], dst=dst, mem_addr=addr)


def alu(srcs, dst, pc):
    return MicroOp(0, pc, OpClass.INT_ALU, srcs=srcs, dst=dst)


def run(config, uops, prefill):
    sim = TracingSimulator(config, ListTrace(uops))
    for addr in prefill:
        sim.hierarchy.l1d.fill(addr)
        sim.hierarchy.l2.fill(addr)
    sim.run(max_cycles=10_000)
    return sim


def figure1():
    print("Figure 1 — two dependent µops issued back-to-back (D=4):\n")
    sim = run(cfg(), [alu([2], 4, 0x10), alu([4], 5, 0x11)], [])
    print(render_timeline(sim, labels={0: "I0: add r4", 1: "I1: add r5"}))
    print()


def figure2():
    uops = [load(0x1000, 4, 0x20), alu([4], 5, 0x21)]
    print("Figure 2 (top) — conservative: dependent waits for the hit "
          "signal:\n")
    sim = run(cfg(speculative=False), [u.clone_arch(0) for u in uops],
              [0x1000])
    print(render_timeline(sim, labels={0: "load r4", 1: "inc r5"}))
    print("\nFigure 2 (bottom) — speculative: dependent issued assuming "
          "an L1 hit:\n")
    sim = run(cfg(), [u.clone_arch(0) for u in uops], [0x1000])
    print(render_timeline(sim, labels={0: "load r4", 1: "inc r5"}))
    print()


def figure6():
    # Two loads to the same bank, different sets, plus their dependents.
    uops = [load(0x000, 4, 0x30), load(0x040, 5, 0x31),
            alu([4], 6, 0x32), alu([5], 7, 0x33)]
    labels = {0: "ld r4 (bank0)", 1: "ld r5 (bank0)",
              2: "inc r6 <- r4", 3: "inc r7 <- r5"}
    print("Figure 6 (top) — bank conflict without Schedule Shifting: the "
          "second load returns late, dependents replay:\n")
    sim = run(cfg(banked=True), [u.clone_arch(0) for u in uops],
              [0x000, 0x040])
    print(render_timeline(sim, labels=labels))
    print("\nFigure 6 (bottom) — with Schedule Shifting: the second "
          "load's dependent is issued one cycle late, no replay:\n")
    sim = run(cfg(banked=True, shifting=True), [u.clone_arch(0) for u in uops],
              [0x000, 0x040])
    print(render_timeline(sim, labels=labels))


def main() -> None:
    figure1()
    figure2()
    figure6()


if __name__ == "__main__":
    main()
