#!/usr/bin/env python3
"""Bank conflicts and Schedule Shifting (Sections 4.2 and 5.1).

Runs the bank-conflict-sensitive workloads under three machines:

* SpecSched_4 with an *ideal dual-ported* L1D (no conflicts possible);
* SpecSched_4 with the realistic *banked* L1D (8 quadword-interleaved
  banks — same-cycle load pairs to one bank serialize and replay);
* SpecSched_4_Shift: always wake the second load's dependents one cycle
  late, so the common pair conflict no longer mispredicts the schedule.

Usage::

    python examples/bank_conflicts.py
"""

from repro import run_workload

BANKY = ["swim", "crafty", "gamess", "hmmer", "GemsFDTD", "leslie3d"]


def main() -> None:
    header = (f"{'workload':10s} {'dual IPC':>9s} {'banked IPC':>11s} "
              f"{'shift IPC':>10s} {'bank replays':>13s} {'after shift':>12s}")
    print(header)
    print("-" * len(header))
    for workload in BANKY:
        dual = run_workload(workload, "SpecSched_4", banked=False)
        banked = run_workload(workload, "SpecSched_4", banked=True)
        shift = run_workload(workload, "SpecSched_4_Shift", banked=True)
        print(f"{workload:10s} {dual.ipc:9.2f} {banked.ipc:11.2f} "
              f"{shift.ipc:10.2f} {banked.stats.replayed_bank:13d} "
              f"{shift.stats.replayed_bank:12d}")
    print("\nSchedule Shifting recovers most of the banking loss by "
          "promising the second load of each issue group one extra cycle "
          "(Section 5.1). Residual replays are cross-issue-group "
          "conflicts, which shifting cannot see.")


if __name__ == "__main__":
    main()
