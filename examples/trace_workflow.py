#!/usr/bin/env python3
"""The trace subsystem end to end: record once, replay many.

Walks the full capture/replay workflow against a throwaway directory:

1. resolve a workload through the registry (a Table-2 suite entry and a
   declarative scenario from ``examples/scenarios/``);
2. record each µop stream to the binary trace format and inspect it;
3. simulate generate-live vs replay-from-file through the experiment
   engine and check the ``SimStats`` are bit-identical;
4. time raw trace-source throughput both ways (why replay exists).

Usage::

    PYTHONPATH=src python examples/trace_workflow.py

The same workflow runs from the command line::

    python -m repro trace record mcf -o mcf.trc
    python -m repro trace info mcf.trc --verify
    python -m repro trace replay mcf.trc SpecSched_4_Crit
"""

import tempfile
import time
from pathlib import Path

from repro.common.serialize import stable_hash
from repro.experiments.engine import cell_payload, simulate_payload
from repro.isa.trace import iterate
from repro.traces import TraceWorkload, capture, default_registry
from repro.traces.registry import WorkloadRegistry

SCENARIO_DIR = Path(__file__).parent / "scenarios"

VOLUMES = dict(warmup_uops=500, measure_uops=3000,
               functional_warmup_uops=8000, seed=3)
CAPTURE_UOPS = max(VOLUMES["functional_warmup_uops"],
                   VOLUMES["warmup_uops"] + VOLUMES["measure_uops"] + 8192)


def throughput(source, uops: int) -> float:
    start = time.perf_counter()
    count = sum(1 for _ in iterate(source, uops))
    return count / (time.perf_counter() - start)


def main() -> None:
    registry = WorkloadRegistry(search_paths=[SCENARIO_DIR])
    workloads = [registry.resolve("mcf"),
                 registry.resolve("pointer-chase-storm")]

    with tempfile.TemporaryDirectory() as tmp:
        for workload in workloads:
            path = Path(tmp) / f"{workload.name}.trc"
            info = capture(workload.build_trace(VOLUMES["seed"]), path,
                           CAPTURE_UOPS, wp_seed=VOLUMES["seed"],
                           provenance={"workload": workload.name})
            print(f"{workload.name}: recorded {info.uop_count} µops, "
                  f"{info.file_bytes / 1024:.0f} KB on disk "
                  f"({info.raw_bytes / info.file_bytes:.1f}x compressed), "
                  f"digest {info.digest[:12]}…")

            recorded = TraceWorkload(path)
            live = simulate_payload(
                cell_payload("SpecSched_4", workload, **VOLUMES))
            replay = simulate_payload(
                cell_payload("SpecSched_4", recorded, **VOLUMES))
            identical = stable_hash(live) == stable_hash(replay)
            print(f"  SimStats live vs replay: "
                  f"{'bit-identical' if identical else 'DIVERGED!'} "
                  f"(ipc={live['committed_uops'] / live['cycles']:.3f})")

            live_rate = throughput(workload.build_trace(VOLUMES["seed"]),
                                   CAPTURE_UOPS)
            replay_rate = throughput(recorded.build_trace(), CAPTURE_UOPS)
            print(f"  throughput: generate {live_rate / 1e3:.0f} kµops/s, "
                  f"replay {replay_rate / 1e3:.0f} kµops/s "
                  f"(x{replay_rate / live_rate:.2f})\n")

    print("registry view (suite + example scenarios):")
    names = default_registry().names()
    scenarios = ", ".join(sorted(n for n, k in names.items()
                                 if k == "scenario"))
    suite_count = sum(1 for k in names.values() if k == "suite")
    print(f"  {suite_count} suite workloads; scenarios: "
          f"{scenarios or '(none found; run from the repository root)'}")


if __name__ == "__main__":
    main()
