"""Checkpointing + SMARTS-style sampling, end to end.

Walks the three pieces PR 4 added:

1. freeze a warm simulator to a ``.ckpt`` file and resume it
   bit-identically;
2. run a sampled estimate (chained single pass) and compare it against
   the full detailed simulation of the same stream span;
3. run the same spec as per-interval engine cells — the shape that
   parallelizes over ``REPRO_JOBS`` and lands in the persistent cache.

Run with::

    PYTHONPATH=src python examples/sampling.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.checkpoint.format import restore_simulator, save_checkpoint
from repro.checkpoint.sampling import (
    SamplingSpec,
    run_sampled,
    run_sampled_chained,
)
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.experiments.engine import (
    EngineOptions,
    cell_payload,
    simulate_payload,
)
from repro.pipeline.cpu import Simulator
from repro.traces.registry import resolve_workload

WORKLOAD = "xalancbmk"
PRESET = "SpecSched_4_Combined"
SPEC = SamplingSpec(intervals=12, interval_uops=1_000, warmup_uops=300,
                    period_uops=10_000, offset_uops=20_000)


def checkpoint_roundtrip(tmp: Path) -> None:
    print("== 1. checkpoint: save -> restore -> continue, bit-identical ==")
    workload = resolve_workload(WORKLOAD)
    config = make_config(PRESET)

    reference = Simulator(config, workload.build_trace(1))
    reference.run(max_uops=8_000)

    sim = Simulator(config, workload.build_trace(1))
    sim.run(max_uops=3_000)
    path = tmp / "warm.ckpt"
    info = save_checkpoint(sim, path, workload=workload, seed=1)
    print(f"  saved {path.name}: {info.file_bytes} bytes, "
          f"digest {info.digest[:16]}…")

    resumed = restore_simulator(path)
    resumed.run(max_uops=8_000)
    identical = resumed.stats.to_dict() == reference.stats.to_dict()
    print(f"  resumed run == uninterrupted run: {identical}")
    assert identical


def sampled_vs_detailed() -> None:
    print("\n== 2. sampled estimate vs full detailed simulation ==")
    workload = resolve_workload(WORKLOAD)
    span = SPEC.span_uops

    start = time.perf_counter()
    payload = cell_payload(PRESET, workload, warmup_uops=SPEC.offset_uops,
                           measure_uops=span - SPEC.offset_uops,
                           functional_warmup_uops=0, seed=1)
    detailed = SimStats.from_dict(simulate_payload(payload))
    detailed_wall = time.perf_counter() - start

    start = time.perf_counter()
    sampled = run_sampled_chained(workload, PRESET, SPEC, seed=1)
    sampled_wall = time.perf_counter() - start

    err = abs(sampled.mean_ipc - detailed.ipc) / detailed.ipc
    print(f"  span {span} µops; detailed IPC {detailed.ipc:.3f} "
          f"({detailed_wall:.1f}s)")
    print(f"  sampled IPC {sampled.mean_ipc:.3f} ±{sampled.ipc_ci95:.3f} "
          f"({sampled_wall:.1f}s) — {detailed_wall / sampled_wall:.1f}x "
          f"faster, {err:.1%} error")


def sampled_cells() -> None:
    print("\n== 3. per-interval engine cells (pooled + cached) ==")
    result = run_sampled(WORKLOAD, PRESET, SPEC, seed=1,
                         options=EngineOptions.from_env())
    ipcs = " ".join(f"{ipc:.3f}" for ipc in result.ipc_values)
    print(f"  interval IPCs: {ipcs}")
    print(f"  mean {result.mean_ipc:.3f} ±{result.ipc_ci95:.3f} (95% CI)")
    breakdown = result.breakdown()
    print(f"  issued breakdown: unique {breakdown['unique']:.3f}, "
          f"rpld_miss {breakdown['rpld_miss']:.3f}, "
          f"rpld_bank {breakdown['rpld_bank']:.3f}")
    print("  (re-run this script: every interval now comes from the "
          "persistent cache)")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_roundtrip(Path(tmp))
    sampled_vs_detailed()
    sampled_cells()


if __name__ == "__main__":
    main()
