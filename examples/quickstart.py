#!/usr/bin/env python3
"""Quickstart: one workload, four scheduling configurations.

Runs the xalancbmk-like workload (the paper's showcase: high IPC *and* a
~46% L1 miss rate) under conservative scheduling, plain speculative
scheduling, and the paper's two headline mechanisms, then prints IPC and
the replay accounting for each.

Usage::

    python examples/quickstart.py
"""

from repro import run_workload

CONFIGS = [
    ("Baseline_4", "conservative scheduling (no replays, slow wakeups)"),
    ("SpecSched_4", "speculative Always-Hit scheduling"),
    ("SpecSched_4_Combined", "+ Schedule Shifting + hit/miss filter"),
    ("SpecSched_4_Crit", "+ criticality gating (the paper's best)"),
]


def main() -> None:
    workload = "xalancbmk"
    print(f"workload: {workload} (high IPC, high L1 miss rate)\n")
    header = (f"{'config':22s} {'IPC':>6s} {'issued':>8s} {'unique':>8s} "
              f"{'rpldMiss':>9s} {'rpldBank':>9s}")
    print(header)
    print("-" * len(header))
    baseline_ipc = None
    for name, blurb in CONFIGS:
        result = run_workload(workload, name, banked=True)
        s = result.stats
        print(f"{name:22s} {result.ipc:6.2f} {s.issued_total:8d} "
              f"{s.unique_issued:8d} {s.replayed_miss:9d} "
              f"{s.replayed_bank:9d}   # {blurb}")
        if baseline_ipc is None:
            baseline_ipc = result.ipc
    print("\nReading the table: speculative scheduling issues many more "
          "µops than it commits (replays); the paper's mechanisms remove "
          "most of the replays while keeping the speed.")


if __name__ == "__main__":
    main()
