#!/usr/bin/env python3
"""Design-space sweep: issue-to-execute delay 0..6 (Figures 3 and 4).

For each delay D, compares conservative scheduling (Baseline_D) against
speculative scheduling with the paper's full mechanism stack
(SpecSched_D_Crit) on a mixed trio of workloads, all normalized to the
ideal Baseline_0. This is the paper's core argument in one plot:
conservative scheduling decays with pipeline depth; cost-effective
speculation holds the line without replay storms.

Usage::

    python examples/design_space.py
"""

from repro import run_workload
from repro.common.mathutil import geomean

WORKLOADS = ["gzip", "xalancbmk", "swim"]
DELAYS = [0, 2, 4, 6]


def gmean_ipc(config: str, banked: bool) -> float:
    return geomean(run_workload(w, config, banked=banked).ipc
                   for w in WORKLOADS)


def main() -> None:
    reference = gmean_ipc("Baseline_0", banked=False)
    print(f"workloads: {', '.join(WORKLOADS)} (gmean IPC, "
          f"normalized to Baseline_0 = {reference:.2f})\n")
    print(f"{'delay':>5s} {'Baseline_D':>11s} {'SpecSched_D_Crit':>17s}")
    print("-" * 36)
    for delay in DELAYS:
        conservative = gmean_ipc(f"Baseline_{delay}", banked=False)
        crit = gmean_ipc(f"SpecSched_{delay}_Crit" if delay else
                         f"SpecSched_{delay}", banked=True)
        print(f"{delay:5d} {conservative / reference:11.3f} "
              f"{crit / reference:17.3f}")
    print("\nAs the Issue->Execute distance grows, stalling load "
          "dependents costs more and more (left column); speculative "
          "scheduling with replay-avoidance holds performance even with "
          "a banked L1 (right column).")


if __name__ == "__main__":
    main()
