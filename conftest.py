"""Repository-root pytest configuration.

Registers the options that must exist for *any* invocation directory
(options can only be added from an initial conftest, and the root is the
only directory common to ``pytest``, ``pytest tests/...`` and
``pytest benchmarks/``):

* ``--benchmarks`` — opt into collecting the ``benchmarks/bench_*.py``
  regeneration suite from the repository root. Without it (and without
  naming the benchmarks directory explicitly) ``pytest -x -q`` collects
  tests only — the tier-1 suite can never pick up a multi-minute
  benchmark by accident. See ``benchmarks/conftest.py`` for the
  collection rules and the ``slow`` marker handling.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--benchmarks", action="store_true", default=False,
        help="collect benchmarks/bench_*.py (table/figure regeneration "
             "benches) even when the benchmarks directory is not named "
             "on the command line")
