"""Property-based tests on the paper's predictors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criticality import CriticalityPredictor
from repro.core.global_ctr import GlobalHitMissCounter
from repro.core.hm_filter import FilterPrediction, HitMissFilter
from repro.core.shifting import ScheduleShifter
from repro.frontend.ras import ReturnAddressStack

pcs = st.integers(min_value=0, max_value=1 << 20)


class TestGlobalCtrProperties:
    @given(st.lists(st.booleans(), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_value_stays_in_range(self, cycles):
        c = GlobalHitMissCounter()
        for miss in cycles:
            c.observe_cycle(miss)
            assert 0 <= c.value <= 15

    @given(st.lists(st.booleans(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_quiet_period_always_restores_speculation(self, cycles):
        c = GlobalHitMissCounter()
        for miss in cycles:
            c.observe_cycle(miss)
        for _ in range(16):
            c.observe_cycle(False)
        assert c.predict_hit()


class TestFilterProperties:
    @given(st.lists(st.tuples(pcs, st.booleans()), max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_counters_bounded_and_prediction_total(self, trains):
        f = HitMissFilter(entries=64, reset_interval=50)
        for pc, hit in trains:
            f.train(pc, hit)
            assert all(0 <= ctr <= f.ctr_max for ctr in f._counters)
            assert f.predict(pc) in (FilterPrediction.SURE_HIT,
                                     FilterPrediction.SURE_MISS,
                                     FilterPrediction.DEFER)

    @given(pcs, st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_consistent_behaviour_never_sure_wrong(self, pc, n):
        """A load that always hits must never be predicted sure-miss."""
        f = HitMissFilter(entries=64)
        for _ in range(n):
            f.train(pc, hit=True)
        assert f.predict(pc) is not FilterPrediction.SURE_MISS


class TestCriticalityProperties:
    @given(st.lists(st.tuples(pcs, st.booleans()), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_counters_bounded(self, trains):
        p = CriticalityPredictor(entries=32)
        for pc, crit in trains:
            p.train(pc, crit)
        assert all(p.ctr_min <= c <= p.ctr_max for c in p._counters)


class TestShifterProperties:
    @given(st.integers(1, 10), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_promise_never_below_base(self, base, position):
        s = ScheduleShifter(enabled=True)
        assert s.promised_latency(base, position) >= base


class TestRasProperties:
    @given(st.lists(st.one_of(
        st.tuples(st.just("push"), st.integers(1, 1 << 20)),
        st.tuples(st.just("pop"), st.just(0)),
    ), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_stack_within_depth(self, ops):
        """While nesting stays within capacity, the RAS behaves exactly
        like an unbounded stack."""
        ras = ReturnAddressStack(16)
        ref = []
        for op, val in ops:
            if op == "push":
                ras.push(val)
                ref.append(val)
                if len(ref) > 16:
                    ref.pop(0)
            else:
                expected = ref.pop() if ref else 0
                assert ras.pop() == expected
