"""Property-based tests on the memory substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, DramConfig
from repro.memory.banks import BankScheduler, bank_of
from repro.memory.cache import SetAssocCache
from repro.memory.dram import DdrModel
from repro.memory.mshr import MshrFile

addresses = st.integers(min_value=0, max_value=1 << 30)


class TestCacheProperties:
    @given(st.lists(addresses, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = SetAssocCache(CacheConfig(
            name="p", size_bytes=4 * 4 * 64, assoc=4, banks=0, banked=False))
        for a in addrs:
            c.fill(a)
        assert c.resident_lines() <= 16

    @given(st.lists(addresses, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_fill_then_probe_hits(self, addrs):
        c = SetAssocCache(CacheConfig())
        for a in addrs:
            c.fill(a)
            assert c.probe(a)

    @given(st.lists(addresses, min_size=1, max_size=100), addresses)
    @settings(max_examples=50, deadline=None)
    def test_eviction_only_within_same_set(self, addrs, probe_addr):
        """Filling can only evict lines that map to the same set."""
        c = SetAssocCache(CacheConfig(
            name="p", size_bytes=2 * 8 * 64, assoc=2, banks=0, banked=False))
        c.fill(probe_addr)
        for a in addrs:
            if c.set_index(a) != c.set_index(probe_addr):
                c.fill(a)
        assert c.probe(probe_addr)

    @given(st.lists(addresses, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_miss_count_bounded_by_accesses(self, addrs):
        c = SetAssocCache(CacheConfig())
        for a in addrs:
            c.lookup(a)
        assert 0 <= c.misses <= c.accesses == len(addrs)


class TestBankProperties:
    @given(st.lists(st.tuples(addresses, st.integers(0, 3)), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_at_most_two_services_per_cycle(self, reqs):
        """The schedule never exceeds 2 accesses/cycle nor 1 access per
        bank per cycle (same-set pairs aside)."""
        b = BankScheduler()
        now = 0
        per_cycle = {}
        per_bank_cycle = {}
        for addr, gap in reqs:
            now += gap
            delay = b.access(addr, now)
            assert delay >= 0
            cyc = now + delay
            per_cycle[cyc] = per_cycle.get(cyc, 0) + 1
            key = (bank_of(addr, 8), cyc)
            per_bank_cycle[key] = per_bank_cycle.get(key, 0) + 1
        assert all(v <= 2 for v in per_cycle.values())
        assert all(v <= 2 for v in per_bank_cycle.values())

    @given(st.lists(addresses, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_unbanked_never_delays(self, addrs):
        b = BankScheduler(banked=False)
        assert all(b.access(a, 5) == 0 for a in addrs)


class TestMshrProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 500)),
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant(self, reqs):
        m = MshrFile(8)
        now = 0
        for line, ready_in in reqs:
            now += 1
            m.allocate(line, now + ready_in, now)
            assert len(m) <= 8


class TestDramProperties:
    @given(st.lists(st.tuples(st.integers(0, 4096), st.integers(0, 50)),
                    min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_latency_band(self, reqs):
        d = DdrModel(DramConfig())
        now = 0
        for line, gap in reqs:
            now += gap
            lat = d.read(line, now)
            assert 75 <= lat <= 185
