"""Property-based tests on whole-pipeline invariants: random but valid
hand traces must always drain, commit exactly once per µop, and never
violate the operand-validity assertion baked into the core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp
from repro.pipeline.cpu import Simulator

from tests.conftest import spec_config

# Valid architectural registers for generated traces (2..9 int window).
REGS = st.integers(min_value=2, max_value=9)
ADDRS = st.integers(min_value=0, max_value=1 << 16).map(lambda x: x * 8)


@st.composite
def micro_op(draw, pc):
    kind = draw(st.sampled_from(
        ["alu", "alu", "alu", "load", "load", "store", "mul", "branch"]))
    if kind == "alu":
        return MicroOp(0, pc, OpClass.INT_ALU,
                       srcs=[draw(REGS)], dst=draw(REGS))
    if kind == "mul":
        return MicroOp(0, pc, OpClass.INT_MUL,
                       srcs=[draw(REGS), draw(REGS)], dst=draw(REGS))
    if kind == "load":
        return MicroOp(0, pc, OpClass.LOAD, srcs=[draw(REGS)],
                       dst=draw(REGS), mem_addr=draw(ADDRS))
    if kind == "store":
        return MicroOp(0, pc, OpClass.STORE, srcs=[draw(REGS), draw(REGS)],
                       mem_addr=draw(ADDRS))
    taken = draw(st.booleans())
    return MicroOp(0, pc, OpClass.BRANCH, srcs=[draw(REGS)],
                   taken=taken, target=pc + 0x40 if taken else pc + 1)


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    return [draw(micro_op(0x100 + i)) for i in range(n)]


CONFIGS = [
    spec_config(delay=0),
    spec_config(delay=4, banked=True),
    spec_config(delay=4, banked=True, shifting=True),
    spec_config(delay=6, speculative=False),
    spec_config(delay=4, banked=True, shifting=True, criticality=True,
                hit_miss="filter_ctr"),
]


class TestPipelineTotality:
    @given(traces(), st.sampled_from(range(len(CONFIGS))))
    @settings(max_examples=40, deadline=None)
    def test_every_trace_drains_and_commits_exactly_once(self, uops, cfg_i):
        """No deadlock, no lost or duplicated µops, operand validity holds
        (the core raises SimulationError otherwise)."""
        sim = Simulator(CONFIGS[cfg_i], ListTrace(uops))
        sim.run(max_cycles=30_000)
        assert sim.done
        assert sim.stats.committed_uops == len(uops)

    @given(traces())
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, uops):
        def run():
            sim = Simulator(CONFIGS[2],
                            ListTrace([u.clone_arch(0) for u in uops]))
            sim.run(max_cycles=30_000)
            return (sim.stats.cycles, sim.stats.issued_total,
                    sim.stats.replayed_total)
        assert run() == run()

    @given(traces())
    @settings(max_examples=20, deadline=None)
    def test_structural_occupancy_bounds(self, uops):
        cfg = spec_config(delay=4, banked=True, rob_entries=32, iq_entries=8)
        sim = Simulator(cfg, ListTrace(uops))
        while not sim.done and sim.stats.cycles < 30_000:
            sim.step()
            occ = sim.occupancy()
            assert occ["rob"] <= 32
            assert occ["iq"] <= 8
        assert sim.done
