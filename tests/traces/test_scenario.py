"""Scenario specs: loading, validation, determinism, behavioural knobs."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.isa.opclass import OpClass
from repro.isa.trace import iterate
from repro.traces.scenario import ScenarioSpec

ARCH_FIELDS = ("pc", "opclass", "srcs", "dst", "mem_addr", "mem_size",
               "taken", "target")


def arch(uop):
    return tuple(getattr(uop, name) for name in ARCH_FIELDS)


def _spec(**overrides):
    data = {
        "name": "unit",
        "seed": 3,
        "mix": [
            {"name": "ld", "op": "load", "next": {"alu": 2.0, "ld": 1.0}},
            {"name": "alu", "op": "alu", "next": {"ld": 2.0, "br": 0.5}},
            {"name": "br", "op": "branch", "next": {"ld": 1.0}},
        ],
        "memory": {"ws_lines": 1024, "stream_frac": 0.5, "chase_frac": 0.2},
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


# ---------------------------------------------------------------------------
# Loading / serialization


def test_dict_roundtrip():
    spec = _spec()
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.content_hash() == spec.content_hash()


def test_from_toml_and_json_agree(tmp_path):
    spec = _spec()
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(spec.to_dict()))
    toml_lines = [
        'name = "unit"', "seed = 3",
        "[memory]", "ws_lines = 1024", "stream_frac = 0.5",
        "chase_frac = 0.2",
        "[[mix]]", 'name = "ld"', 'op = "load"',
        "next = { alu = 2.0, ld = 1.0 }",
        "[[mix]]", 'name = "alu"', 'op = "alu"',
        "next = { ld = 2.0, br = 0.5 }",
        "[[mix]]", 'name = "br"', 'op = "branch"', "next = { ld = 1.0 }",
    ]
    toml_path = tmp_path / "s.toml"
    toml_path.write_text("\n".join(toml_lines))
    assert ScenarioSpec.from_file(json_path) == spec
    assert ScenarioSpec.from_file(toml_path) == spec


def test_toml_fp_alias():
    spec = _spec(fp=True)
    assert spec.is_fp
    assert ScenarioSpec.from_dict(spec.to_dict()).is_fp


SCENARIO_DIR = Path(__file__).parents[2] / "examples" / "scenarios"


def test_example_scenarios_load_and_validate():
    for name in ("pointer-chase-storm", "branchy-low-ilp", "streaming-mlp"):
        spec = ScenarioSpec.from_file(SCENARIO_DIR / f"{name}.toml")
        assert spec.name == name
        assert spec.description
        list(iterate(spec.build_trace(), 200))      # generates cleanly


# ---------------------------------------------------------------------------
# Validation


@pytest.mark.parametrize("mutation, match", [
    ({"mix": []}, "empty mix"),
    ({"mix": [{"name": "a", "op": "teleport", "next": {}}]}, "unknown op"),
    ({"mix": [{"name": "a", "op": "alu", "next": {"ghost": 1.0}}]},
     "unknown successor"),
    ({"mix": [{"name": "a", "op": "alu", "next": {"a": -1.0}}]},
     "non-positive"),
    ({"mix": [{"name": "a", "op": "alu", "next": {}},
              {"name": "a", "op": "alu", "next": {}}]}, "duplicate"),
    ({"deps": {"mean_distance": 0.5}}, "mean_distance"),
    ({"deps": {"window": 99}}, "window"),
    ({"memory": {"stream_frac": 1.5}}, "stream_frac"),
    ({"memory": {"ws_lines": 0}}, "ws_lines"),
    ({"branch": {"noise": -0.1}}, "noise"),
    ({"surprise": 1}, "unknown scenario fields"),
])
def test_validation_failures(mutation, match):
    with pytest.raises(ValueError, match=match):
        _spec(**mutation)


# ---------------------------------------------------------------------------
# Determinism


def test_same_seed_same_stream():
    spec = _spec()
    a = [arch(u) for u in iterate(spec.build_trace(), 1000)]
    b = [arch(u) for u in iterate(spec.build_trace(), 1000)]
    assert a == b


def test_seed_changes_stream():
    spec = _spec()
    a = [arch(u) for u in iterate(spec.build_trace(1), 500)]
    b = [arch(u) for u in iterate(spec.build_trace(2), 500)]
    assert a != b


def test_wrong_path_seeded_per_build_seed():
    spec = _spec()
    t1, t2 = spec.build_trace(9), spec.build_trace(9)
    pairs = [(t1.wrong_path_uop(0, i), t2.wrong_path_uop(0, i))
             for i in range(30)]
    assert all((a.srcs, a.dst) == (b.srcs, b.dst) for a, b in pairs)


# ---------------------------------------------------------------------------
# Behavioural knobs actually steer behaviour


def test_chase_frac_builds_load_chains():
    spec = _spec(memory={"ws_lines": 1024, "stream_frac": 0.0,
                         "chase_frac": 1.0})
    uops = list(iterate(spec.build_trace(), 800))
    loads = [u for u in uops if u.opclass == OpClass.LOAD]
    chained = sum(1 for prev, cur in zip(loads, loads[1:])
                  if cur.srcs == [prev.dst])
    assert chained / (len(loads) - 1) > 0.9


def test_stream_frac_strides_sequentially():
    spec = _spec(memory={"ws_lines": 4096, "stream_frac": 1.0,
                         "chase_frac": 0.0, "stride": 64, "streams": 1})
    addrs = [u.mem_addr for u in iterate(spec.build_trace(), 600)
             if u.opclass == OpClass.LOAD]
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    assert deltas == {64}


def test_streams_interleave_cursors():
    spec = _spec(memory={"ws_lines": 4096, "stream_frac": 1.0,
                         "chase_frac": 0.0, "stride": 64, "streams": 4})
    addrs = [u.mem_addr for u in iterate(spec.build_trace(), 400)
             if u.opclass == OpClass.LOAD][:8]
    # Four cursors start a quarter of the working set apart.
    spread = {addr % (4096 * 64) // (1024 * 64) for addr in addrs[:4]}
    assert spread == {0, 1, 2, 3}


def test_branch_noise_controls_pattern_breaks():
    clean = _spec(branch={"period": 4, "noise": 0.0})
    outcomes = [u.taken for u in iterate(clean.build_trace(), 2000)
                if u.opclass == OpClass.BRANCH]
    assert len(outcomes) > 50
    # Perfectly periodic: not-taken exactly every `period` branches.
    assert all(outcomes[i] == (i % 4 != 0) for i in range(len(outcomes)))
    noisy = _spec(branch={"period": 4, "noise": 0.3})
    noisy_outcomes = [u.taken for u in iterate(noisy.build_trace(), 2000)
                      if u.opclass == OpClass.BRANCH]
    breaks = sum(1 for i, t in enumerate(noisy_outcomes) if t != (i % 4 != 0))
    assert 0.15 < breaks / len(noisy_outcomes) < 0.45


def test_mean_distance_one_serializes_chains():
    spec = _spec(deps={"mean_distance": 1.0, "window": 8},
                 mix=[{"name": "alu", "op": "alu", "next": {"alu": 1.0}}])
    uops = list(iterate(spec.build_trace(), 200))
    assert all(cur.srcs == [prev.dst]
               for prev, cur in zip(uops[1:], uops[2:]))


def test_fp_spec_uses_fp_opclasses_and_registers():
    spec = _spec(fp=True)
    uops = list(iterate(spec.build_trace(), 400))
    alus = [u for u in uops if u.opclass == OpClass.FP_ADD]
    assert alus, "fp=true must map alu -> FP_ADD"
    assert all(u.dst >= 32 for u in alus)


def test_absorbing_state_loops_in_place():
    spec = _spec(mix=[{"name": "only", "op": "nop", "next": {}}])
    uops = list(iterate(spec.build_trace(), 50))
    assert len(uops) == 50
    assert {u.opclass for u in uops} == {OpClass.NOP}


def test_nested_knob_typo_is_a_value_error():
    # A typoed [deps]/[memory]/[branch] key must be bad *input*
    # (ValueError, caught by the CLI), not a TypeError crash.
    with pytest.raises(ValueError, match=r"unknown \[deps\] fields"):
        _spec(deps={"mean_distence": 2.0})
    with pytest.raises(ValueError, match=r"unknown \[memory\] fields"):
        _spec(memory={"ws_lines": 64, "chase_fraction": 0.5})
    with pytest.raises(ValueError, match=r"unknown \[branch\] fields"):
        _spec(branch={"periodicity": 8})
