"""Binary trace format: encoding, header, digests, corruption handling."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace, iterate
from repro.isa.uop import MicroOp
from repro.traces.format import (
    FLAG_ZLIB,
    FileTrace,
    HEADER,
    RECORD,
    TraceFormatError,
    TraceWriter,
    capture,
    decode_record,
    encode_record,
    read_info,
    read_uops,
    verify,
)

ARCH_FIELDS = ("pc", "opclass", "srcs", "dst", "mem_addr", "mem_size",
               "taken", "target")


def arch(uop):
    return tuple(getattr(uop, name) for name in ARCH_FIELDS)


def _mixed_uops(n=100):
    out = []
    for i in range(n):
        kind = i % 4
        if kind == 0:
            out.append(MicroOp(0, 0x100 + i, OpClass.LOAD, srcs=[2],
                               dst=3 + i % 4, mem_addr=0x4000 + 64 * i))
        elif kind == 1:
            out.append(MicroOp(0, 0x200 + i, OpClass.STORE, srcs=[2, 3],
                               mem_addr=0x8000 + 8 * i, mem_size=4))
        elif kind == 2:
            out.append(MicroOp(0, 0x300 + i, OpClass.FP_MUL,
                               srcs=[35, 36], dst=37))
        else:
            out.append(MicroOp(0, 0x400 + i, OpClass.BRANCH, srcs=[3],
                               taken=i % 3 == 0, target=0x400))
    return out


# ---------------------------------------------------------------------------
# Record encoding


uop_strategy = st.builds(
    MicroOp,
    seq=st.just(0),
    pc=st.integers(min_value=0, max_value=2**63),
    opclass=st.sampled_from(list(OpClass)),
    srcs=st.lists(st.integers(min_value=0, max_value=63), max_size=3),
    dst=st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
    mem_addr=st.integers(min_value=0, max_value=2**63),
    mem_size=st.integers(min_value=0, max_value=64),
    taken=st.booleans(),
    target=st.integers(min_value=0, max_value=2**63),
)


@settings(max_examples=200, deadline=None)
@given(uop=uop_strategy)
def test_record_roundtrip_property(uop):
    assert arch(decode_record(RECORD.unpack(encode_record(uop)))) == arch(uop)


def test_record_is_fixed_width():
    assert len(encode_record(_mixed_uops(1)[0])) == RECORD.size


def test_too_many_sources_rejected():
    uop = MicroOp(0, 0x1, OpClass.INT_ALU, srcs=[1, 2, 3, 4], dst=5)
    with pytest.raises(TraceFormatError, match="at most 3"):
        encode_record(uop)


def test_wrong_path_uop_rejected():
    uop = MicroOp(0, 0x1, OpClass.INT_ALU, srcs=[0], dst=1, wrong_path=True)
    with pytest.raises(TraceFormatError, match="wrong-path"):
        encode_record(uop)


# ---------------------------------------------------------------------------
# File round-trips


@pytest.mark.parametrize("compress", [True, False])
def test_file_roundtrip(tmp_path, compress):
    uops = _mixed_uops(500)
    path = tmp_path / "t.trc"
    info = capture(ListTrace(uops), path, 500, wp_seed=3,
                   provenance={"workload": "hand"}, compress=compress,
                   frame_records=64)       # force multiple frames
    assert info.uop_count == 500
    assert info.compressed is compress
    assert [arch(u) for u in read_uops(path)] == [arch(u) for u in uops]
    assert verify(path)


def test_capture_stops_at_exhaustion(tmp_path):
    path = tmp_path / "t.trc"
    info = capture(ListTrace(_mixed_uops(20)), path, 1000, wp_seed=0)
    assert info.uop_count == 20
    assert len(list(read_uops(path))) == 20


def test_read_uops_limit(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(50)), path, 50, wp_seed=0)
    assert len(list(read_uops(path, limit=7))) == 7


def test_info_provenance_and_wp_seed(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(10)), path, 10, wp_seed=77,
            provenance={"workload": "x", "is_fp": True})
    info = read_info(path)
    assert info.wp_seed == 77
    assert info.provenance == {"workload": "x", "is_fp": True}
    assert info.raw_bytes == 10 * RECORD.size


def test_digest_independent_of_compression(tmp_path):
    uops = _mixed_uops(200)
    a = capture(ListTrace(uops), tmp_path / "a.trc", 200, wp_seed=0,
                compress=True)
    b = capture(ListTrace(uops), tmp_path / "b.trc", 200, wp_seed=0,
                compress=False)
    assert a.digest == b.digest
    assert a.file_bytes < b.file_bytes        # zlib must actually help


def test_writer_context_manager_removes_partial_file(tmp_path):
    path = tmp_path / "t.trc"
    with pytest.raises(RuntimeError):
        with TraceWriter(path, wp_seed=0) as out:
            out.append(_mixed_uops(1)[0])
            raise RuntimeError("boom")
    assert not path.exists()


# ---------------------------------------------------------------------------
# Corruption and version handling


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "t.trc"
    path.write_bytes(b"NOPE" + b"\0" * 100)
    with pytest.raises(TraceFormatError, match="bad magic"):
        read_info(path)


def test_truncated_header_rejected(tmp_path):
    path = tmp_path / "t.trc"
    path.write_bytes(b"RPTR\x01")
    with pytest.raises(TraceFormatError, match="too short"):
        read_info(path)


def test_future_version_rejected(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(5)), path, 5, wp_seed=0)
    raw = bytearray(path.read_bytes())
    struct.pack_into("<H", raw, 4, 99)        # bump the version field
    path.write_bytes(bytes(raw))
    with pytest.raises(TraceFormatError, match="version 99"):
        read_info(path)


def test_tampered_payload_fails_verify(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(100)), path, 100, wp_seed=0,
            compress=False)
    assert verify(path)
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF                           # flip payload bits
    path.write_bytes(bytes(raw))
    assert not verify(path)


def test_truncated_frame_detected(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(100)), path, 100, wp_seed=0)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(TraceFormatError):
        list(read_uops(path))
    assert not verify(path)


# ---------------------------------------------------------------------------
# FileTrace replay semantics


def test_file_trace_assigns_no_state(tmp_path):
    path = tmp_path / "t.trc"
    uops = _mixed_uops(30)
    capture(ListTrace(uops), path, 30, wp_seed=0)
    trace = FileTrace(path)
    replayed = list(iterate(trace, 100))
    assert len(replayed) == 30
    assert trace.next_uop() is None           # exhausted, stays exhausted
    assert [arch(u) for u in replayed] == [arch(u) for u in uops]


def test_file_trace_loop_and_reset(tmp_path):
    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(10)), path, 10, wp_seed=0)
    looped = FileTrace(path, loop=True)
    pcs = [looped.next_uop().pc for _ in range(25)]
    assert pcs[:10] == pcs[10:20]
    trace = FileTrace(path)
    first = trace.next_uop().pc
    trace.reset()
    assert trace.next_uop().pc == first


def test_file_trace_wrong_path_matches_header_seed(tmp_path):
    from repro.isa.trace import WrongPathSynth

    path = tmp_path / "t.trc"
    capture(ListTrace(_mixed_uops(5)), path, 5, wp_seed=123)
    trace = FileTrace(path)
    synth = WrongPathSynth(123)
    for i in range(40):
        a, b = trace.wrong_path_uop(0, i), synth.synth(0, i)
        assert (a.srcs, a.dst, a.opclass) == (b.srcs, b.dst, b.opclass)
        assert a.wrong_path


def test_header_is_64_bytes():
    # The writer patches count+digest at fixed offsets; layout is frozen.
    assert HEADER.size == 64
    assert FLAG_ZLIB == 1
