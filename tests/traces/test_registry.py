"""Workload registry: uniform resolution of suites, scenarios, traces."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.isa.trace import ListTrace, iterate
from repro.traces.format import capture
from repro.traces.registry import (
    TraceWorkload,
    WorkloadRegistry,
    resolve_workload,
    workload_from_payload,
    workload_payload,
)
from repro.traces.scenario import ScenarioSpec
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import SUITE


def _mixed_uops(n):
    return [MicroOp(0, 0x100 + i, OpClass.LOAD, srcs=[2], dst=3,
                    mem_addr=0x4000 + 64 * i) for i in range(n)]


SCENARIO_DICT = {
    "name": "reg-scenario",
    "seed": 5,
    "mix": [{"name": "alu", "op": "alu", "next": {"alu": 1.0}}],
}


@pytest.fixture
def scenario_file(tmp_path) -> Path:
    path = tmp_path / "reg-scenario.json"
    path.write_text(json.dumps(SCENARIO_DICT))
    return path


@pytest.fixture
def trace_file(tmp_path) -> Path:
    path = tmp_path / "reg-trace.trc"
    capture(ListTrace(_mixed_uops(40)), path, 40, wp_seed=4,
            provenance={"workload": "hand", "is_fp": False})
    return path


# ---------------------------------------------------------------------------
# Resolution


def test_suite_names_resolve():
    registry = WorkloadRegistry(search_paths=[])
    workload = registry.resolve("xalancbmk")
    assert isinstance(workload, WorkloadSpec)
    assert workload is SUITE["xalancbmk"]


def test_explicit_scenario_path(scenario_file):
    workload = WorkloadRegistry(search_paths=[]).resolve(str(scenario_file))
    assert isinstance(workload, ScenarioSpec)
    assert workload.name == "reg-scenario"


def test_explicit_trace_path(trace_file):
    workload = WorkloadRegistry(search_paths=[]).resolve(str(trace_file))
    assert isinstance(workload, TraceWorkload)
    assert workload.name == "hand"            # provenance wins over stem
    assert len(list(iterate(workload.build_trace(), 100))) == 40


def test_search_path_resolution(scenario_file, trace_file):
    registry = WorkloadRegistry(search_paths=[scenario_file.parent])
    assert isinstance(registry.resolve("reg-scenario"), ScenarioSpec)
    assert isinstance(registry.resolve("reg-trace"), TraceWorkload)


def test_env_search_path(scenario_file, monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOAD_PATH", str(scenario_file.parent))
    assert isinstance(resolve_workload("reg-scenario"), ScenarioSpec)


def test_suite_shadows_files(tmp_path):
    # A stray file must not hijack a canonical Table-2 name.
    (tmp_path / "mcf.json").write_text(json.dumps(
        dict(SCENARIO_DICT, name="mcf")))
    workload = WorkloadRegistry(search_paths=[tmp_path]).resolve("mcf")
    assert workload is SUITE["mcf"]


def test_programmatic_registration():
    registry = WorkloadRegistry(search_paths=[])
    spec = ScenarioSpec.from_dict(SCENARIO_DICT)
    registry.register(spec)
    assert registry.resolve("reg-scenario") is spec


def test_workload_objects_pass_through():
    registry = WorkloadRegistry(search_paths=[])
    spec = SUITE["gzip"]
    assert registry.resolve(spec) is spec


def test_unknown_name_lists_available():
    registry = WorkloadRegistry(search_paths=[])
    with pytest.raises(KeyError, match="unknown workload.*available"):
        registry.resolve("quake3")


def test_missing_file_rejected():
    with pytest.raises(KeyError, match="does not exist"):
        WorkloadRegistry(search_paths=[]).resolve("nope/missing.toml")


def test_names_enumerates_kinds(scenario_file, trace_file):
    names = WorkloadRegistry(search_paths=[scenario_file.parent]).names()
    assert names["gzip"] == "suite"
    assert names["reg-scenario"] == "scenario"
    assert names["reg-trace"] == "trace"


def test_entries_resolve_all(scenario_file):
    registry = WorkloadRegistry(search_paths=[scenario_file.parent])
    entries = dict(registry.entries())
    assert "reg-scenario" in entries and "gzip" in entries


# ---------------------------------------------------------------------------
# Payload encoding (the engine's picklable cell form)


def test_spec_payload_roundtrip():
    payload = workload_payload(SUITE["gzip"])
    assert payload["kind"] == "spec"
    assert workload_from_payload(payload) == SUITE["gzip"]


def test_legacy_payload_without_kind_still_decodes():
    # Pre-registry payloads stored the bare WorkloadSpec dict.
    assert workload_from_payload(SUITE["gzip"].to_dict()) == SUITE["gzip"]


def test_scenario_payload_roundtrip():
    spec = ScenarioSpec.from_dict(SCENARIO_DICT)
    payload = workload_payload(spec)
    assert payload["kind"] == "scenario"
    assert workload_from_payload(payload) == spec


def test_trace_payload_roundtrip(trace_file):
    workload = TraceWorkload(trace_file)
    payload = workload_payload(workload)
    assert payload["kind"] == "trace"
    assert payload["digest"] == workload.digest
    again = workload_from_payload(payload)
    assert isinstance(again, TraceWorkload)
    assert again.digest == workload.digest


def test_trace_payload_detects_rerecorded_file(trace_file):
    payload = workload_payload(TraceWorkload(trace_file))
    capture(ListTrace(_mixed_uops(11)), trace_file, 11, wp_seed=4)
    with pytest.raises(ValueError, match="digest mismatch"):
        workload_from_payload(payload)


def test_trace_build_detects_rerecorded_file(trace_file):
    workload = TraceWorkload(trace_file)
    capture(ListTrace(_mixed_uops(11)), trace_file, 11, wp_seed=4)
    with pytest.raises(ValueError, match="re-recorded"):
        workload.build_trace()


def test_trace_content_hash_is_location_independent(trace_file, tmp_path):
    copy = tmp_path / "elsewhere.trc"
    copy.write_bytes(Path(trace_file).read_bytes())
    a, b = TraceWorkload(trace_file), TraceWorkload(copy)
    assert a.content_hash() == b.content_hash()


def test_unknown_payload_kind_rejected():
    with pytest.raises(ValueError, match="unknown workload payload"):
        workload_from_payload({"kind": "hologram"})
    with pytest.raises(TypeError):
        workload_payload(object())


def test_workload_identity_drops_trace_location(trace_file, tmp_path):
    from repro.traces.registry import workload_identity

    copy = tmp_path / "copy.trc"
    copy.write_bytes(Path(trace_file).read_bytes())
    a = workload_identity(workload_payload(TraceWorkload(trace_file)))
    b = workload_identity(workload_payload(TraceWorkload(copy)))
    assert a == b
    # Spec identities are JSON-canonical: equal to the payload modulo
    # container type (tuples become lists), so a payload that crossed a
    # JSON boundary (the spool work queue) compares equal to one that
    # stayed in-process.
    import json

    spec_payload = workload_payload(SUITE["gzip"])
    identity = workload_identity(spec_payload)
    assert identity == json.loads(json.dumps(spec_payload))
    assert identity == workload_identity(json.loads(json.dumps(spec_payload)))
