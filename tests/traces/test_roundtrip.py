"""Capture -> replay fidelity: the trace subsystem's core guarantee.

Two properties, asserted across Table-2 workloads, scenario specs and
seeds:

1. **Stream fidelity** — replaying a recorded trace yields the
   bit-identical architectural µop sequence the live generator produces
   (and the bit-identical wrong-path stream).
2. **Result fidelity** — simulating through the engine from a trace file
   produces ``SimStats`` with the same content hash as simulating from
   the live generator, warmups and all.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.common.serialize import stable_hash
from repro.experiments.engine import cell_key, cell_payload, simulate_payload
from repro.experiments.runner import Settings, run_experiment, SweepSeries
from repro.isa.trace import iterate
from repro.traces.format import capture
from repro.traces.registry import TraceWorkload, resolve_workload
from repro.traces.scenario import ScenarioSpec

SCENARIO_DIR = Path(__file__).parents[2] / "examples" / "scenarios"

TABLE2_WORKLOADS = ("gzip", "swim", "mcf")
SCENARIOS = ("pointer-chase-storm", "branchy-low-ilp", "streaming-mlp")

#: Tiny but real volumes: functional warmup, timed warmup and measure all
#: exercised. The capture must cover the longer of the two streams plus
#: the bounded fetch-ahead still in flight at the measure cutoff.
VOLUMES = dict(warmup_uops=200, measure_uops=1200,
               functional_warmup_uops=3000, seed=5)
CAPTURE_UOPS = max(VOLUMES["functional_warmup_uops"],
                   VOLUMES["warmup_uops"] + VOLUMES["measure_uops"] + 8192)

ARCH_FIELDS = ("pc", "opclass", "srcs", "dst", "mem_addr", "mem_size",
               "taken", "target")


def _resolve(name: str):
    if name in SCENARIOS:
        return ScenarioSpec.from_file(SCENARIO_DIR / f"{name}.toml")
    return resolve_workload(name)


def _record(workload, tmp_path, seed: int) -> TraceWorkload:
    path = tmp_path / f"{workload.name}-{seed}.trc"
    capture(workload.build_trace(seed), path, CAPTURE_UOPS, wp_seed=seed,
            provenance={"workload": workload.name})
    return TraceWorkload(path)


# ---------------------------------------------------------------------------
# Stream fidelity


@pytest.mark.parametrize("name", TABLE2_WORKLOADS + SCENARIOS)
@pytest.mark.parametrize("seed", [1, 42])
def test_replay_stream_bit_identical(tmp_path, name, seed):
    workload = _resolve(name)
    recorded = _record(workload, tmp_path, seed)
    live = iterate(workload.build_trace(seed), 4000)
    replay = iterate(recorded.build_trace(), 4000)
    for expected, got in zip(live, replay):
        for field in ARCH_FIELDS:
            assert getattr(expected, field) == getattr(got, field), (
                f"{name} seed={seed}: {field} diverged at "
                f"pc={expected.pc:#x}")


@pytest.mark.parametrize("name", ("gzip", "streaming-mlp"))
def test_replay_wrong_path_bit_identical(tmp_path, name):
    workload = _resolve(name)
    recorded = _record(workload, tmp_path, 7)
    live, replay = workload.build_trace(7), recorded.build_trace()
    for i in range(200):
        a, b = live.wrong_path_uop(0, i), replay.wrong_path_uop(0, i)
        assert (a.opclass, a.srcs, a.dst) == (b.opclass, b.srcs, b.dst)


# ---------------------------------------------------------------------------
# Result fidelity (the acceptance criterion)


@pytest.mark.parametrize("name, preset", [
    ("gzip", "Baseline_0"),
    ("swim", "SpecSched_4"),
    ("mcf", "SpecSched_4_Crit"),
    ("pointer-chase-storm", "SpecSched_4"),
    ("branchy-low-ilp", "SpecSched_4_Shift"),
    ("streaming-mlp", "SpecSched_4_Ctr"),
])
def test_engine_stats_identical_live_vs_replay(tmp_path, name, preset):
    workload = _resolve(name)
    recorded = _record(workload, tmp_path, VOLUMES["seed"])
    live = simulate_payload(cell_payload(preset, workload, **VOLUMES))
    replay = simulate_payload(cell_payload(preset, recorded, **VOLUMES))
    assert stable_hash(live) == stable_hash(replay), (
        f"{name}/{preset}: replayed SimStats diverged from live")


def test_cache_key_differs_between_live_and_trace(tmp_path):
    """Same stream, different provenance: a trace cell must not collide
    with (or go stale against) the live generator's cache entries."""
    workload = _resolve("gzip")
    recorded = _record(workload, tmp_path, VOLUMES["seed"])
    live_payload = cell_payload("Baseline_0", workload, **VOLUMES)
    trace_payload = cell_payload("Baseline_0", recorded, **VOLUMES)
    assert stable_hash(live_payload) != stable_hash(trace_payload)
    # Re-record with a different length: the digest, hence the key, moves.
    path = tmp_path / "re.trc"
    capture(workload.build_trace(VOLUMES["seed"]), path, CAPTURE_UOPS + 1,
            wp_seed=VOLUMES["seed"])
    rerecorded_payload = cell_payload("Baseline_0", TraceWorkload(path),
                                      **VOLUMES)
    assert stable_hash(trace_payload) != stable_hash(rerecorded_payload)


def test_cache_key_independent_of_trace_location(tmp_path):
    """The same recording at two paths keys the same cache entries."""
    workload = _resolve("gzip")
    recorded = _record(workload, tmp_path, VOLUMES["seed"])
    copy = tmp_path / "renamed-elsewhere.trc"
    copy.write_bytes(Path(recorded.path).read_bytes())
    key_a = cell_key(cell_payload("Baseline_0", recorded, **VOLUMES))
    key_b = cell_key(cell_payload("Baseline_0", TraceWorkload(copy),
                                  **VOLUMES))
    assert key_a == key_b


def test_undersized_trace_rejected_not_measured(tmp_path):
    """A trace shorter than warmup+measure must fail loudly, not cache
    an all-zero measured region."""
    workload = _resolve("gzip")
    path = tmp_path / "short.trc"
    capture(workload.build_trace(VOLUMES["seed"]), path, 500,
            wp_seed=VOLUMES["seed"])
    payload = cell_payload("Baseline_0", TraceWorkload(path), **VOLUMES)
    with pytest.raises(ValueError, match="holds only 500"):
        simulate_payload(payload)


def test_run_experiment_accepts_trace_names(tmp_path, monkeypatch):
    """A recorded trace is addressable by registry name end-to-end."""
    workload = _resolve("gzip")
    path = tmp_path / "gzip-rec.trc"
    capture(workload.build_trace(VOLUMES["seed"]), path, CAPTURE_UOPS,
            wp_seed=VOLUMES["seed"], provenance={"workload": "gzip"})
    monkeypatch.setenv("REPRO_WORKLOAD_PATH", str(tmp_path))
    settings = Settings(workloads=("gzip", "gzip-rec"),
                        warmup_uops=VOLUMES["warmup_uops"],
                        measure_uops=VOLUMES["measure_uops"],
                        functional_warmup_uops=VOLUMES[
                            "functional_warmup_uops"],
                        seed=VOLUMES["seed"])
    series = SweepSeries("Baseline_0", "Baseline_0", banked=False)
    result = run_experiment("trace-name", [series], "Baseline_0", settings)
    live = result.get("Baseline_0", "gzip")
    replay = result.get("Baseline_0", "gzip-rec")
    assert stable_hash(live.to_dict()) == stable_hash(replay.to_dict())


def test_run_workload_rejects_undersized_trace(tmp_path):
    """The guard holds on the run_workload/run_config path too, not just
    the engine and the replay subcommand."""
    from repro.pipeline.sim import run_workload

    workload = _resolve("gzip")
    path = tmp_path / "short.trc"
    capture(workload.build_trace(1), path, 300, wp_seed=1)
    with pytest.raises(ValueError, match="holds only 300"):
        run_workload(TraceWorkload(path), "SpecSched_4",
                     warmup_uops=200, measure_uops=1000,
                     functional_warmup_uops=0)
