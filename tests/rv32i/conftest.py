"""Make the sibling reference-interpreter module importable.

The test tree is package-less (no ``__init__.py``), so the independent
oracle in ``rv32i_reference.py`` is exposed by putting this directory on
``sys.path`` — keeping the oracle a plain module that never ships inside
``src/`` (the point of differential testing is that it stays separate
from the code under test).
"""

import sys
from pathlib import Path

_HERE = str(Path(__file__).parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
