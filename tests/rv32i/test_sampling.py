"""Sampling on real-ISA streams: mode equivalence and estimate quality.

Two satellites of the sampling suite, re-proven on RV32I µop streams:

* ``--sample-mode cells-chained`` must match legacy ``cells``
  bit-identically (interval-for-interval counter equality) on both a
  long captured rv32i trace and the live executor-backed source — the
  chained path checkpoints the *executor's* architectural state through
  the restricted-unpickler protocol, which no synthetic source
  exercises.
* A sampled IPC estimate over a long captured trace must stay inside
  the existing ``mean_ipc_rel_err`` perf-gate ceiling (the quick-mode
  analogue of the sampling benchmark's accuracy metric, same
  detailed-span definition as ``repro.perf.bench``).
"""

from __future__ import annotations

import pytest

from repro.checkpoint.sampling import (
    SamplingSpec,
    run_sampled,
    run_sampled_cells_chained,
    run_sampled_chained,
)
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.experiments.engine import (
    EngineOptions,
    base_cell_payload,
    simulate_payload,
)
from repro.perf.gate import GATE_SPECS
from repro.traces.format import capture
from repro.traces.registry import TraceWorkload, resolve_workload

OFF = EngineOptions(jobs=1, cache_dir="off")

#: Small spec for the bit-identity checks (mirrors the chained-cells
#: suite's volumes).
SPEC = SamplingSpec(intervals=3, interval_uops=600, warmup_uops=200,
                    period_uops=2_500, offset_uops=3_000)

#: Larger spec for the accuracy gate: more intervals over a longer span
#: so the estimate converges well inside the ceiling.
GATE_SPEC = SamplingSpec(intervals=8, interval_uops=600, warmup_uops=300,
                         period_uops=3_000, offset_uops=2_000)

CAPTURE_UOPS = 40_000
SEED = 2


def _gate_ceiling() -> float:
    for gate in GATE_SPECS["sampling"]:
        if gate.metric == "mean_ipc_rel_err":
            return gate.ceiling
    raise AssertionError("mean_ipc_rel_err gate disappeared")


@pytest.fixture(scope="module")
def long_trace(tmp_path_factory):
    """A captured dhry-mix stream long enough for every spec here."""
    path = tmp_path_factory.mktemp("rv32i-sampling") / "dhry-mix.trc"
    capture(resolve_workload("dhry-mix").build_trace(SEED), path,
            CAPTURE_UOPS, wp_seed=SEED)
    return path


class TestModeEquivalence:
    @pytest.mark.parametrize("preset", ["Baseline_0",
                                        "SpecSched_4_Combined"])
    def test_captured_trace_chained_matches_cells(self, long_trace,
                                                  tmp_path, preset):
        workload = TraceWorkload(long_trace)
        legacy = run_sampled(workload, preset, SPEC, seed=SEED,
                             options=OFF)
        chained = run_sampled_cells_chained(workload, preset, SPEC,
                                            seed=SEED, options=OFF,
                                            store=tmp_path)
        assert [s.to_dict() for s in chained.interval_stats] == \
            [s.to_dict() for s in legacy.interval_stats]

    def test_live_executor_chained_matches_cells(self, tmp_path):
        """The chained path checkpoints Rv32iTrace/Machine state."""
        legacy = run_sampled("state-machine", "SpecSched_4", SPEC,
                             seed=SEED, options=OFF)
        chained = run_sampled_cells_chained("state-machine", "SpecSched_4",
                                            SPEC, seed=SEED, options=OFF,
                                            store=tmp_path)
        assert [s.to_dict() for s in chained.interval_stats] == \
            [s.to_dict() for s in legacy.interval_stats]


class TestEstimateQuality:
    @pytest.mark.parametrize("preset", ["Baseline_0",
                                        "SpecSched_4_Combined"])
    def test_sampled_ipc_within_gate_ceiling(self, long_trace, preset):
        workload = TraceWorkload(long_trace)
        spec = GATE_SPEC.validate()
        span = spec.span_uops
        assert span <= CAPTURE_UOPS, "capture too short for the spec"
        payload = base_cell_payload(
            make_config(preset), workload,
            warmup_uops=spec.offset_uops,
            measure_uops=span - spec.offset_uops,
            functional_warmup_uops=0, seed=SEED)
        detailed = SimStats.from_dict(simulate_payload(payload))
        sampled = run_sampled_chained(workload, preset, spec, seed=SEED)
        assert detailed.ipc > 0
        rel_err = abs(sampled.mean_ipc - detailed.ipc) / detailed.ipc
        assert rel_err <= _gate_ceiling(), (
            f"{preset}: sampled {sampled.mean_ipc:.3f} vs detailed "
            f"{detailed.ipc:.3f} (rel err {rel_err:.4f})")
