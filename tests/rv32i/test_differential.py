"""Differential testing: the RV32I executor vs the independent oracle.

Each case assembles a randomized instruction sequence with the local
encoders below (a third independent encoding path — shared with neither
``repro.isa.rv32i.asm`` nor the oracle), runs it through both
:class:`repro.isa.rv32i.core.Machine` and the reference interpreter in
``tests/rv32i/rv32i_reference.py``, and requires identical end states:
register file, final pc, halt reason, retire count and the full set of
non-zero memory bytes.

Programs are constructed to provably terminate: every control transfer
(branch, jal, jalr) targets a strictly later instruction, so the pc is
monotonic and must reach the trailing ``ebreak``. Data accesses go
through four pinned base registers (x28..x31, never overwritten) so
they stay inside the oracle's bounded memory window.

Sequences that ever exposed a divergence are frozen in
``regressions.json`` and replayed verbatim forever.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.isa.rv32i.core import Machine
from rv32i_reference import run_reference

CASES = 240                      # randomized differential cases
_REGRESSIONS = Path(__file__).with_name("regressions.json")


# ---------------------------------------------------------------------------
# Local encoders (RISC-V spec encodings, written here from the tables)


def _r(funct7, rs2, rs1, funct3, rd, opcode):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _i(imm, rs1, funct3, rd, opcode):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _s(imm, rs2, rs1, funct3):
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
        | (funct3 << 12) | ((imm & 0x1F) << 7) | 0b0100011


def _b(imm, rs2, rs1, funct3):
    imm &= 0x1FFF
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0b1100011


def _u(imm20, rd, opcode):
    return ((imm20 & 0xFFFFF) << 12) | (rd << 7) | opcode


def _j(imm, rd):
    imm &= 0x1FFFFF
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | 0b1101111


EBREAK = 0x00100073
ECALL = 0x00000073
FENCE = 0x0000000F

_BASES = (28, 29, 30, 31)        # pinned data-base registers
_BASE_ADDRS = (0x2000, 0x2800, 0x3000, 0x3800)


# ---------------------------------------------------------------------------
# Random-program generator


def _random_body_word(rng: random.Random, index: int, body_len: int,
                      prologue_len: int) -> int:
    """One instruction at body position ``index``; control flow only ever
    targets ``(index, body_len]`` (the trailing ebreak included)."""
    rd = rng.randrange(0, 28)          # never clobber the pinned bases
    rs1 = rng.randrange(0, 32)
    rs2 = rng.randrange(0, 32)
    kind = rng.randrange(100)
    if kind < 30:                      # OP-IMM
        funct3 = rng.choice((0b000, 0b010, 0b011, 0b100, 0b110, 0b111))
        return _i(rng.randrange(-2048, 2048), rs1, funct3, rd, 0b0010011)
    if kind < 40:                      # immediate shifts
        funct3 = rng.choice((0b001, 0b101))
        funct7 = 0b0100000 if (funct3 == 0b101 and rng.random() < 0.5) \
            else 0
        return _r(funct7, rng.randrange(32), rs1, funct3, rd, 0b0010011)
    if kind < 62:                      # OP
        funct3 = rng.randrange(8)
        funct7 = 0b0100000 if (funct3 in (0b000, 0b101)
                               and rng.random() < 0.5) else 0
        return _r(funct7, rs2, rs1, funct3, rd, 0b0110011)
    if kind < 68:                      # lui / auipc
        opcode = 0b0110111 if rng.random() < 0.5 else 0b0010111
        return _u(rng.randrange(1 << 20), rd, opcode)
    if kind < 78:                      # load
        funct3 = rng.choice((0b000, 0b001, 0b010, 0b100, 0b101))
        return _i(rng.randrange(0, 1024), rng.choice(_BASES), funct3,
                  rd, 0b0000011)
    if kind < 88:                      # store
        funct3 = rng.choice((0b000, 0b001, 0b010))
        return _s(rng.randrange(0, 1024), rs2, rng.choice(_BASES), funct3)
    if kind < 96:                      # forward branch
        funct3 = rng.choice((0b000, 0b001, 0b100, 0b101, 0b110, 0b111))
        target = rng.randrange(index + 1, body_len + 1)
        return _b(4 * (target - index), rs2, rs1, funct3)
    if kind < 98:                      # forward jal
        target = rng.randrange(index + 1, body_len + 1)
        return _j(4 * (target - index), rd)
    if kind < 99:                      # forward absolute jalr via x0
        target = rng.randrange(index + 1, body_len + 1)
        return _i(4 * (prologue_len + target), 0, 0, rd, 0b1100111)
    return FENCE


def random_program(seed: int) -> list:
    rng = random.Random(seed)
    # Prologue pins the data bases; lui imm is the address >> 12... the
    # bases are below 4 KiB multiples of 0x800, so build them with
    # lui+addi to also exercise that idiom.
    words = []
    for reg, addr in zip(_BASES, _BASE_ADDRS):
        words.append(_u(addr >> 12, reg, 0b0110111))
        words.append(_i(addr & 0xFFF, reg, 0b000, reg, 0b0010011))
    prologue_len = len(words)
    body_len = rng.randrange(40, 120)
    for index in range(body_len):
        words.append(_random_body_word(rng, index, body_len, prologue_len))
    words.append(ECALL if rng.random() < 0.1 else EBREAK)
    return words


# ---------------------------------------------------------------------------
# The differential check itself


def assert_equivalent(words, max_steps: int = 500_000) -> None:
    ref = run_reference(words, max_steps=max_steps)
    machine = Machine(words)
    machine.run(max_steps=max_steps)
    assert machine.halted, "executor did not halt inside the step budget"
    assert machine.halt_reason == ref.halt
    assert machine.pc == ref.pc
    assert machine.retired == ref.retired
    assert machine.regs == ref.regs
    executor_mem = {addr: byte for addr, byte in machine.mem.items()
                    if byte}
    assert executor_mem == ref.nonzero_mem()


@pytest.mark.parametrize("seed", range(CASES))
def test_random_differential(seed):
    assert_equivalent(random_program(seed))


def test_case_volume():
    """The issue's floor: at least 200 randomized differential cases."""
    assert CASES >= 200


# ---------------------------------------------------------------------------
# Frozen regressions: any sequence that ever diverged gets pinned here,
# plus hand-picked edge cases seeded up front.


def _edge_cases() -> dict:
    x = {
        "sra-negative": [
            _i(-1, 0, 0b000, 5, 0b0010011),          # x5 = -1
            _r(0b0100000, 31, 5, 0b101, 6, 0b0010011),  # srai x6, x5, 31
            _r(0, 31, 5, 0b101, 7, 0b0010011),       # srli x7, x5, 31
            _r(0b0100000, 0, 5, 0b000, 8, 0b0110011),   # sub x8, x5, x0
            EBREAK,
        ],
        "sltu-boundaries": [
            _i(-1, 0, 0b000, 5, 0b0010011),          # x5 = 0xFFFFFFFF
            _i(1, 0, 0b000, 6, 0b0010011),           # x6 = 1
            _r(0, 5, 6, 0b011, 7, 0b0110011),        # sltu x7, x6, x5
            _r(0, 6, 5, 0b011, 8, 0b0110011),        # sltu x8, x5, x6
            _r(0, 5, 6, 0b010, 9, 0b0110011),        # slt  x9, x6, x5
            _i(-1, 6, 0b011, 10, 0b0010011),         # sltiu x10, x6, -1
            EBREAK,
        ],
        "unaligned-word": [
            _u(0x2, 28, 0b0110111),                  # x28 = 0x2000
            _u(0x12345, 5, 0b0110111),               # x5 = 0x12345000
            _i(0x678, 5, 0b000, 5, 0b0010011),       # x5 += 0x678
            _s(3, 5, 28, 0b010),                     # sw x5, 3(x28)
            _i(3, 28, 0b010, 6, 0b0000011),          # lw x6, 3(x28)
            _i(5, 28, 0b000, 7, 0b0000011),          # lb x7, 5(x28)
            _i(5, 28, 0b100, 8, 0b0000011),          # lbu x8, 5(x28)
            _i(4, 28, 0b001, 9, 0b0000011),          # lh x9, 4(x28)
            EBREAK,
        ],
        "jalr-clears-bit0": [
            _i(13, 0, 0, 5, 0b1100111),              # jalr x5, 13(x0) -> 12
            EBREAK,                                  # skipped
            _i(7, 0, 0b000, 6, 0b0010011),           # landing: x6 = 7
            EBREAK,
        ],
        "x0-stays-zero": [
            _i(99, 0, 0b000, 0, 0b0010011),          # addi x0, x0, 99
            _u(0xFFFFF, 0, 0b0110111),               # lui x0, 0xFFFFF
            _r(0, 0, 0, 0b000, 5, 0b0110011),        # add x5, x0, x0
            EBREAK,
        ],
        "wraparound-add": [
            _u(0x80000, 5, 0b0110111),               # x5 = 0x80000000
            _r(0, 5, 5, 0b000, 6, 0b0110011),        # add x6 = x5+x5 (=0)
            _i(-1, 6, 0b000, 7, 0b0010011),          # x7 = x6-1
            EBREAK,
        ],
        "ecall-halts": [
            _i(1, 0, 0b000, 5, 0b0010011),
            ECALL,
            _i(2, 0, 0b000, 5, 0b0010011),           # unreachable
            EBREAK,
        ],
        "runs-off-image": [
            _i(1, 0, 0b000, 5, 0b0010011),
            _i(2, 0, 0b000, 6, 0b0010011),
        ],
    }
    return x


def _load_regressions() -> dict:
    cases = {name: words for name, words in _edge_cases().items()}
    if _REGRESSIONS.is_file():
        frozen = json.loads(_REGRESSIONS.read_text())
        for name, entry in frozen.items():
            cases[name] = entry["words"]
    return cases


@pytest.mark.parametrize("name", sorted(_load_regressions()))
def test_frozen_regression(name):
    assert_equivalent(_load_regressions()[name])
