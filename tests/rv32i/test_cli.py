"""CLI surface for the rv32i workload kind.

Exercises ``repro rv32i run|capture|check``, bundled-name resolution
through ``repro run`` / ``repro trace record`` / ``repro list``, and the
clean-error paths — all in-process through ``repro.cli.main``.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.isa.rv32i.corpus import BUNDLED
from repro.traces.format import read_info


class TestRv32iRun:
    def test_bundled_kernel_runs_to_halt(self, capsys):
        assert main(["rv32i", "run", "memcpy-stream"]) == 0
        out = capsys.readouterr().out
        assert "halt=ebreak" in out
        assert "mem digest" in out

    def test_image_path_accepted(self, capsys):
        from repro.isa.rv32i.corpus import bundled_programs

        image = bundled_programs()["ptr-chase"]
        assert main(["rv32i", "run", str(image)]) == 0
        assert "ptr-chase" in capsys.readouterr().out

    def test_step_cap_reported_as_failure(self, capsys):
        assert main(["rv32i", "run", "matmul-inner",
                     "--max-steps", "50"]) == 1
        assert "step cap" in capsys.readouterr().out

    def test_non_rv32i_workload_rejected(self, capsys):
        assert main(["rv32i", "run", "gzip"]) == 2
        assert "not an RV32I program" in capsys.readouterr().err

    def test_unknown_name_rejected(self, capsys):
        assert main(["rv32i", "run", "no-such-kernel"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestRv32iCapture:
    def test_capture_writes_replayable_trace(self, tmp_path, capsys):
        out = tmp_path / "dhry.trc"
        assert main(["rv32i", "capture", "dhry-mix", "-o", str(out),
                     "--uops", "5000"]) == 0
        info = read_info(out)
        assert info.uop_count == 5000
        assert info.provenance["workload"] == "dhry-mix"
        assert info.provenance["image_sha"]
        assert main(["trace", "replay", str(out), "SpecSched_4",
                     "--measure", "2000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_capture_seed_only_changes_wrong_path(self, tmp_path):
        a = tmp_path / "a.trc"
        b = tmp_path / "b.trc"
        assert main(["rv32i", "capture", "ptr-chase", "-o", str(a),
                     "--uops", "2000", "--seed", "5"]) == 0
        assert main(["rv32i", "capture", "ptr-chase", "-o", str(b),
                     "--uops", "2000", "--seed", "9"]) == 0
        # Same committed stream -> same record digest; only wp_seed moves.
        assert read_info(a).digest == read_info(b).digest
        assert read_info(a).wp_seed != read_info(b).wp_seed


class TestRv32iCheck:
    def test_bundled_corpus_checks_clean(self, capsys):
        assert main(["rv32i", "check"]) == 0
        out = capsys.readouterr().out
        for name in BUNDLED:
            assert name in out

    def test_stale_image_detected(self, tmp_path, capsys, monkeypatch):
        import shutil

        from repro.isa.rv32i.corpus import bundled_programs

        for image in bundled_programs().values():
            shutil.copy(image, tmp_path / image.name)
            shutil.copy(image.with_suffix(".s"),
                        tmp_path / image.with_suffix(".s").name)
        victim = tmp_path / "dhry-mix.hex"
        lines = victim.read_text().splitlines()
        lines[0] = "00000013"            # swap first word for a nop
        victim.write_text("\n".join(lines) + "\n")
        monkeypatch.setenv("REPRO_RV32I_DIR", str(tmp_path))
        assert main(["rv32i", "check"]) == 1
        assert "STALE" in capsys.readouterr().out


class TestRegistrySurface:
    def test_repro_run_accepts_bundled_name(self, capsys):
        assert main(["run", "state-machine", "SpecSched_4",
                     "--measure", "2000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_trace_record_accepts_bundled_name(self, tmp_path, capsys):
        out = tmp_path / "mat.trc"
        assert main(["trace", "record", "matmul-inner", "-o", str(out),
                     "--uops", "3000"]) == 0
        assert read_info(out).uop_count == 3000

    def test_list_shows_rv32i_kind(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in BUNDLED:
            assert f"{name}" in out
        assert "(rv32i)" in out

    def test_sampled_run_on_bundled_kernel(self, capsys):
        assert main(["run", "ptr-chase", "SpecSched_4", "--sample",
                     "--intervals", "3", "--interval-uops", "400",
                     "--sample-warmup", "200", "--period", "1500",
                     "--offset", "1000"]) == 0
        assert "95% CI" in capsys.readouterr().out


@pytest.mark.parametrize("args", [
    ["rv32i", "capture", "gzip"],
    ["rv32i", "capture", "no-such-kernel"],
])
def test_capture_clean_errors(args, capsys):
    assert main(args) == 2
    assert "error:" in capsys.readouterr().err
