"""Bit-identity guarantees for real-ISA (RV32I) µop streams.

Four contracts, each inherited from the synthetic-workload stack and
re-proven here on streams lowered from real program execution:

* **Capture determinism** — recording the same program twice produces
  byte-identical ``.trc`` files, and the file replays the exact µop
  sequence the live executor lowers.
* **Engine determinism** — the same rv32i cell computed serially, in a
  process pool and through a cold-reloaded persistent cache yields
  identical ``SimStats`` counter dicts.
* **Warming-tier equivalence** — scalar and vectorized functional
  warming leave byte-identical machine state (and identical ``.ckpt``
  digests) after consuming an rv32i stream, live or recorded.
* **Checkpoint round-trip** — save → restore → continue on an rv32i
  workload matches an uninterrupted run counter-for-counter, in memory
  and through the on-disk format (the executor's sparse-memory state
  must survive the restricted unpickler).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.presets import make_config
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    base_cell_payload,
    run_cells,
)
from repro.pipeline.cpu import Simulator
from repro.traces.format import FileTrace, capture
from repro.traces.registry import TraceWorkload, resolve_workload

# seq is assigned by fetch at runtime, not part of the recorded contract
# (see repro/traces/format.py).
_UOP_FIELDS = ("pc", "opclass", "srcs", "dst", "mem_addr",
               "mem_size", "taken", "target")
CAPTURE_UOPS = 12_000


def _uop_tuple(uop):
    return tuple(getattr(uop, field) for field in _UOP_FIELDS)


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """ptr-chase captured once to disk; (path, workload name, seed)."""
    path = tmp_path_factory.mktemp("rv32i-traces") / "ptr-chase.trc"
    workload = resolve_workload("ptr-chase")
    capture(workload.build_trace(3), path, CAPTURE_UOPS, wp_seed=3)
    return path


class TestCaptureIdentity:
    def test_capture_twice_is_byte_identical(self, captured, tmp_path):
        workload = resolve_workload("ptr-chase")
        again = tmp_path / "again.trc"
        capture(workload.build_trace(3), again, CAPTURE_UOPS, wp_seed=3)
        assert again.read_bytes() == captured.read_bytes()

    def test_file_replay_equals_live_lowering(self, captured):
        live = resolve_workload("ptr-chase").build_trace(3)
        replayed = FileTrace(captured)
        for index in range(CAPTURE_UOPS):
            recorded = replayed.next_uop()
            executed = live.next_uop()
            assert recorded is not None and executed is not None
            assert _uop_tuple(recorded) == _uop_tuple(executed), index

    def test_wrong_path_stream_matches(self, captured):
        live = resolve_workload("ptr-chase").build_trace(3)
        replayed = FileTrace(captured)
        for seq, pc in ((17, 0x44), (900, 0x10), (31_004, 0x88)):
            assert _uop_tuple(replayed.wrong_path_uop(seq, pc)) == \
                _uop_tuple(live.wrong_path_uop(seq, pc))

    def test_block_fetch_matches_single_steps(self, captured):
        one = FileTrace(captured)
        block = FileTrace(captured)
        singles = [one.next_uop() for _ in range(600)]
        batched = []
        while len(batched) < 600:
            batched.extend(block.next_block(97))
        assert [_uop_tuple(u) for u in singles] == \
            [_uop_tuple(u) for u in batched[:600]]


class TestEngineDeterminism:
    def _payloads(self, captured):
        config = make_config("SpecSched_4_Combined", banked=True)
        live = resolve_workload("dhry-mix")
        recorded = TraceWorkload(captured)
        return [
            base_cell_payload(config, live, warmup_uops=500,
                              measure_uops=2_000,
                              functional_warmup_uops=4_000, seed=1),
            base_cell_payload(config, recorded, warmup_uops=500,
                              measure_uops=2_000,
                              functional_warmup_uops=4_000, seed=3),
        ]

    def test_serial_pool_and_cache_identical(self, captured, tmp_path):
        payloads = self._payloads(captured)
        serial = run_cells(payloads, EngineOptions(jobs=1),
                           ResultCache(None))
        pooled = run_cells(payloads, EngineOptions(jobs=2),
                           ResultCache(None))
        primed = ResultCache(tmp_path)
        run_cells(payloads, EngineOptions(jobs=1), primed)
        reload_cache = ResultCache(tmp_path)   # fresh memory, warm disk
        reloaded = run_cells(payloads, EngineOptions(jobs=1), reload_cache)
        for a, b, c in zip(serial, pooled, reloaded):
            assert a.to_dict() == b.to_dict() == c.to_dict()
        assert reload_cache.disk_hits == len(payloads)
        assert reload_cache.misses == 0

    def test_cell_key_tracks_image_not_location(self, captured, tmp_path):
        """Copying an image elsewhere must hit the same cache key."""
        import shutil

        from repro.experiments.engine import cell_key
        from repro.isa.rv32i.corpus import bundled_programs

        config = make_config("SpecSched_4", banked=True)
        original = bundled_programs()["memcpy-stream"]
        copy = tmp_path / "renamed-kernel.hex"
        shutil.copy(original, copy)

        def key_for(path):
            workload = resolve_workload(str(path))
            return cell_key(base_cell_payload(
                config, workload, warmup_uops=500, measure_uops=1_000,
                functional_warmup_uops=2_000, seed=1))

        assert key_for(original) == key_for(copy)


class TestWarmingEquivalence:
    """Scalar vs vectorized warming on real-ISA streams (satellite of
    ``tests/warming/test_equivalence.py``)."""

    @pytest.fixture(autouse=True)
    def _numpy(self):
        pytest.importorskip("numpy")

    @pytest.mark.parametrize("preset", ("Baseline_0",
                                        "SpecSched_4_Combined"))
    @pytest.mark.parametrize("name", ("ptr-chase", "state-machine"))
    def test_live_stream_identity(self, preset, name):
        states = {}
        for mode in ("scalar", "vectorized"):
            workload = resolve_workload(name)
            sim = Simulator(make_config(preset), workload.build_trace(7))
            assert sim.fast_forward(9_000, mode=mode) == 9_000
            states[mode] = pickle.dumps(sim.state_dict())
        assert states["scalar"] == states["vectorized"]

    def test_recorded_stream_state_and_digest_identity(self, captured,
                                                       tmp_path):
        from repro.checkpoint.format import (checkpoint_digest,
                                             save_checkpoint)

        states, digests = {}, {}
        for mode in ("scalar", "vectorized"):
            sim = Simulator(make_config("SpecSched_4_Combined"),
                            FileTrace(captured))
            assert sim.fast_forward(9_000, mode=mode) == 9_000
            states[mode] = pickle.dumps(sim.state_dict())
            ckpt = tmp_path / f"{mode}.ckpt"
            save_checkpoint(sim, ckpt)
            digests[mode] = checkpoint_digest(ckpt)
        assert states["scalar"] == states["vectorized"]
        assert digests["scalar"] == digests["vectorized"]


class TestCheckpointRoundtrip:
    SPLIT, TOTAL, FUNCTIONAL = 3_000, 7_000, 8_000

    def _reference(self, workload, config, seed):
        sim = Simulator(config, workload.build_trace(seed))
        sim.functional_warmup(workload.build_trace(seed), self.FUNCTIONAL)
        sim.run(max_uops=self.TOTAL)
        return sim.stats.to_dict()

    @pytest.mark.parametrize("name,preset",
                             [("dhry-mix", "SpecSched_4_Combined"),
                              ("matmul-inner", "Baseline_0")])
    def test_state_dict_roundtrip(self, name, preset):
        workload = resolve_workload(name)
        config = make_config(preset)
        seed = workload.seed
        reference = self._reference(workload, config, seed)

        sim = Simulator(config, workload.build_trace(seed))
        sim.functional_warmup(workload.build_trace(seed), self.FUNCTIONAL)
        sim.run(max_uops=self.SPLIT)
        state = pickle.loads(pickle.dumps(sim.state_dict(), protocol=4))

        restored = Simulator(config, workload.build_trace(seed))
        restored.load_state_dict(state)
        restored.run(max_uops=self.TOTAL)
        assert restored.stats.to_dict() == reference

    def test_file_checkpoint_roundtrip(self, tmp_path):
        from repro.checkpoint.format import (restore_simulator,
                                             save_checkpoint)

        workload = resolve_workload("state-machine")
        config = make_config("SpecSched_4_Crit")
        seed = workload.seed
        reference = self._reference(workload, config, seed)

        sim = Simulator(config, workload.build_trace(seed))
        sim.functional_warmup(workload.build_trace(seed), self.FUNCTIONAL)
        sim.run(max_uops=self.SPLIT)
        path = tmp_path / "mid.ckpt"
        info = save_checkpoint(sim, path, workload=workload, seed=seed)
        assert info.uops_committed == sim.stats.committed_uops

        restored = restore_simulator(path)
        restored.run(max_uops=self.TOTAL)
        assert restored.stats.to_dict() == reference
