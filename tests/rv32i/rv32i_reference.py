"""An independent straight-line RV32I reference interpreter.

This is the differential-testing oracle for
:mod:`repro.isa.rv32i.core` and it deliberately shares **no code** with
it: immediates are rebuilt from scratch with a generic sign-extend
helper, semantics are table-driven lambdas instead of an if/elif chain,
and memory is a flat bounded ``bytearray`` instead of a sparse dict.
Two implementations this different agreeing on 32-bit end states for
hundreds of randomized programs is the evidence the executor is right;
sharing a decoder would silently share its bugs.

Same architectural contract as the executor: x0 hardwired to zero,
wraparound arithmetic, unaligned loads/stores allowed (little-endian,
byte-composed), halt on ``ecall``/``ebreak``/out-of-image/misaligned-pc.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Flat memory window. Differential programs must keep their data
#: accesses inside it (the generator pins base registers accordingly).
REF_MEM_BYTES = 1 << 16

_M32 = (1 << 32) - 1


def _sx(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value`` to a python int."""
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


def _s32(value: int) -> int:
    return _sx(value, 32)


class RefState:
    """End state of a reference run."""

    def __init__(self, regs: List[int], mem: bytearray, pc: int,
                 halt: Optional[str], retired: int) -> None:
        self.regs = regs
        self.mem = mem
        self.pc = pc
        self.halt = halt
        self.retired = retired

    def nonzero_mem(self) -> dict:
        return {addr: byte for addr, byte in enumerate(self.mem) if byte}


def _fields(word: int) -> Tuple[int, int, int, int, int, int]:
    """(opcode, rd, funct3, rs1, rs2, funct7) straight off the word."""
    return (word & 0x7F, (word >> 7) & 0x1F, (word >> 12) & 0x7,
            (word >> 15) & 0x1F, (word >> 20) & 0x1F, (word >> 25) & 0x7F)


# funct3 -> semantics for the two ALU opcode spaces. Each lambda takes
# (a, b, alt) where alt is bit 30 of the word (sub/sra selector).
_ALU = {
    0b000: lambda a, b, alt: a - b if alt else a + b,
    0b001: lambda a, b, alt: a << (b & 31),
    0b010: lambda a, b, alt: int(_s32(a) < _s32(b)),
    0b011: lambda a, b, alt: int((a & _M32) < (b & _M32)),
    0b100: lambda a, b, alt: a ^ b,
    0b101: lambda a, b, alt: (_s32(a) if alt else (a & _M32)) >> (b & 31),
    0b110: lambda a, b, alt: a | b,
    0b111: lambda a, b, alt: a & b,
}

_COND = {
    0b000: lambda a, b: a == b,
    0b001: lambda a, b: a != b,
    0b100: lambda a, b: _s32(a) < _s32(b),
    0b101: lambda a, b: _s32(a) >= _s32(b),
    0b110: lambda a, b: (a & _M32) < (b & _M32),
    0b111: lambda a, b: (a & _M32) >= (b & _M32),
}

#: funct3 -> (byte count, signed) for loads.
_LOAD = {0b000: (1, True), 0b001: (2, True), 0b010: (4, True),
         0b100: (1, False), 0b101: (2, False)}


def run_reference(words: List[int], max_steps: int = 500_000) -> RefState:
    """Execute an image (loaded at 0) to halt; raises on a bad word or an
    out-of-window memory access — differential programs are constructed
    never to trigger either."""
    regs = [0] * 32
    mem = bytearray(REF_MEM_BYTES)
    pc = 0
    halt: Optional[str] = None
    retired = 0
    limit = len(words) * 4

    def read(addr: int, count: int, signed: bool) -> int:
        if not 0 <= addr <= REF_MEM_BYTES - count:
            raise IndexError(f"reference load outside window: 0x{addr:x}")
        raw = int.from_bytes(mem[addr:addr + count], "little")
        return _sx(raw, count * 8) if signed else raw

    def write(addr: int, count: int, value: int) -> None:
        if not 0 <= addr <= REF_MEM_BYTES - count:
            raise IndexError(f"reference store outside window: 0x{addr:x}")
        mem[addr:addr + count] = (value & ((1 << (count * 8)) - 1)
                                  ).to_bytes(count, "little")

    for _ in range(max_steps):
        if pc & 3:
            halt = "misaligned-pc"
            break
        if not 0 <= pc < limit:
            halt = "out-of-image"
            break
        word = words[pc >> 2]
        opcode, rd, funct3, rs1, rs2, funct7 = _fields(word)
        a, b = regs[rs1], regs[rs2]
        next_pc = pc + 4
        value: Optional[int] = None

        if opcode == 0b0110111:                       # lui
            value = _sx(word & 0xFFFFF000, 32)
        elif opcode == 0b0010111:                     # auipc
            value = pc + _sx(word & 0xFFFFF000, 32)
        elif opcode == 0b1101111:                     # jal
            imm = _sx((((word >> 31) & 1) << 20)
                      | (((word >> 12) & 0xFF) << 12)
                      | (((word >> 20) & 1) << 11)
                      | (((word >> 21) & 0x3FF) << 1), 21)
            value = pc + 4
            next_pc = (pc + imm) & _M32
        elif opcode == 0b1100111 and funct3 == 0:     # jalr
            value = pc + 4
            next_pc = (a + _sx(word >> 20, 12)) & _M32 & ~1
        elif opcode == 0b1100011:                     # branches
            cond = _COND.get(funct3)
            if cond is None:
                raise ValueError(f"bad branch funct3 in 0x{word:08x}")
            imm = _sx((((word >> 31) & 1) << 12)
                      | (((word >> 7) & 1) << 11)
                      | (((word >> 25) & 0x3F) << 5)
                      | (((word >> 8) & 0xF) << 1), 13)
            if cond(a, b):
                next_pc = (pc + imm) & _M32
        elif opcode == 0b0000011:                     # loads
            spec = _LOAD.get(funct3)
            if spec is None:
                raise ValueError(f"bad load funct3 in 0x{word:08x}")
            value = read((a + _sx(word >> 20, 12)) & _M32, *spec)
        elif opcode == 0b0100011:                     # stores
            count = {0b000: 1, 0b001: 2, 0b010: 4}.get(funct3)
            if count is None:
                raise ValueError(f"bad store funct3 in 0x{word:08x}")
            imm = _sx(((word >> 25) << 5) | rd, 12)
            write((a + imm) & _M32, count, b)
        elif opcode == 0b0010011:                     # OP-IMM
            if funct3 in (0b001, 0b101):
                operand = rs2                         # shamt field
                alt = (word >> 30) & 1
            else:
                operand = _sx(word >> 20, 12)
                alt = 0
            value = _ALU[funct3](a, operand, alt)
        elif opcode == 0b0110011:                     # OP
            value = _ALU[funct3](a, b, (word >> 30) & 1)
        elif opcode == 0b0001111:                     # fence: nop
            pass
        elif opcode == 0b1110011 and funct3 == 0:     # ecall / ebreak
            halt = "ebreak" if (word >> 20) & 1 else "ecall"
            retired += 1
            break
        else:
            raise ValueError(f"reference cannot decode 0x{word:08x}")

        if value is not None and rd:
            regs[rd] = value & _M32
        pc = next_pc
        retired += 1
    else:
        raise RuntimeError(f"reference did not halt in {max_steps} steps")

    return RefState(regs, mem, pc, halt, retired)
