"""Golden architectural end states for every bundled RV32I kernel.

Each bundled program runs functionally to halt; its complete register
file, final pc, halt reason, retire count and data-memory digest are
compared against ``tests/rv32i/goldens.json``. Any semantic change to
the executor, the assembler, or a kernel listing shows up here as a
concrete end-state diff.

If a change is *intentional*, regenerate and commit the goldens::

    PYTHONPATH=src python -m pytest tests/rv32i -q --regen-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.isa.rv32i.corpus import BUNDLED, bundled_programs
from repro.isa.rv32i.workload import Rv32iProgram

GOLDENS = Path(__file__).with_name("goldens.json")


def _end_state(image: Path) -> dict:
    program = Rv32iProgram.from_file(image)
    machine = program.machine()
    machine.run(max_steps=2_000_000)
    assert machine.halted, f"{image.stem} did not halt"
    return {
        "image_sha": program.image_sha(),
        "words": len(program.words),
        "retired": machine.retired,
        "halt_reason": machine.halt_reason,
        "pc": machine.pc,
        "regs": list(machine.regs),
        "mem_digest": machine.memory_digest(),
        "mem_nonzero_bytes": sum(1 for b in machine.mem.values() if b),
    }


@pytest.fixture(scope="module")
def goldens(request):
    programs = bundled_programs()
    assert programs, "bundled corpus missing (examples/rv32i)"
    if request.config.getoption("--regen-goldens"):
        regenerated = {name: _end_state(image)
                       for name, image in sorted(programs.items())}
        GOLDENS.write_text(
            json.dumps(regenerated, indent=1, sort_keys=True) + "\n")
        return regenerated
    assert GOLDENS.is_file(), (f"{GOLDENS} missing; create it with "
                               f"--regen-goldens and commit it")
    return json.loads(GOLDENS.read_text())


@pytest.mark.parametrize("name", sorted(BUNDLED))
def test_bundled_end_state(name, goldens):
    image = bundled_programs().get(name)
    assert image is not None, f"bundled image for {name!r} missing"
    assert name in goldens, f"no golden for {name!r}; regenerate"
    actual = _end_state(image)
    expected = goldens[name]
    diffs = {key: (expected.get(key), actual[key]) for key in actual
             if actual[key] != expected.get(key)}
    assert not diffs, (
        f"{name}: architectural end state changed: {diffs}. If this is "
        f"intentional, re-run with --regen-goldens and commit the new "
        f"goldens.json.")


def test_corpus_complete(goldens):
    """Every bundled kernel has an image, a listing, and a golden."""
    programs = bundled_programs()
    assert sorted(programs) == sorted(BUNDLED)
    assert sorted(goldens) == sorted(BUNDLED)
    for image in programs.values():
        assert image.with_suffix(".s").is_file(), \
            f"source listing missing next to {image.name}"


def test_images_match_listings():
    """The checked-in .hex images are exactly the assembled listings."""
    from repro.isa.rv32i.asm import assemble, to_hex

    for name, image in sorted(bundled_programs().items()):
        listing = image.with_suffix(".s")
        assert to_hex(assemble(listing.read_text())) == image.read_text(), \
            f"{image.name} is stale; re-assemble {listing.name}"
