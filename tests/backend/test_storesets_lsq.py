import pytest

from repro.backend.lsq import LoadStoreQueue
from repro.backend.storesets import StoreSets
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def ld(seq, addr, pc=0x10):
    return MicroOp(seq, pc, OpClass.LOAD, srcs=[1], dst=2, mem_addr=addr)


def st(seq, addr, pc=0x20):
    return MicroOp(seq, pc, OpClass.STORE, srcs=[1, 2], mem_addr=addr)


class TestStoreSets:
    def test_cold_predictor_predicts_independent(self):
        ss = StoreSets()
        assert ss.lookup_dependence(ld(5, 0x100)) is None

    def test_violation_creates_dependence(self):
        ss = StoreSets()
        ss.train_violation(store_pc=0x20, load_pc=0x10)
        store = st(1, 0x100)
        assert ss.lookup_dependence(store) is None   # no older store inflight
        load = ld(2, 0x100)
        assert ss.lookup_dependence(load) is store

    def test_store_done_clears_lfst(self):
        ss = StoreSets()
        ss.train_violation(0x20, 0x10)
        store = st(1, 0x100)
        ss.lookup_dependence(store)
        store.executed = True
        ss.store_done(store)
        assert ss.lookup_dependence(ld(2, 0x100)) is None

    def test_store_store_ordering(self):
        ss = StoreSets()
        ss.train_violation(0x20, 0x10)
        ss.train_violation(0x24, 0x10)     # merge both stores into one set
        s1 = st(1, 0x100, pc=0x20)
        s2 = st(2, 0x108, pc=0x24)
        assert ss.lookup_dependence(s1) is None
        assert ss.lookup_dependence(s2) is s1

    def test_merge_sets(self):
        ss = StoreSets()
        ss.train_violation(0x20, 0x10)
        ss.train_violation(0x24, 0x14)
        # Cross violation re-assigns both PCs to the same (smaller) set id.
        ss.train_violation(0x20, 0x14)
        store = st(1, 0x100, pc=0x20)
        ss.lookup_dependence(store)
        load = ld(2, 0x100, pc=0x14)
        assert ss.lookup_dependence(load) is store

    def test_executed_store_not_a_dependence(self):
        ss = StoreSets()
        ss.train_violation(0x20, 0x10)
        store = st(1, 0x100)
        ss.lookup_dependence(store)
        store.executed = True
        assert ss.lookup_dependence(ld(2, 0x100)) is None


class TestLsqOccupancy:
    def test_capacity_limits(self):
        lsq = LoadStoreQueue(lq_capacity=1, sq_capacity=1)
        lsq.insert(ld(0, 0))
        assert lsq.lq_full()
        with pytest.raises(OverflowError):
            lsq.insert(ld(1, 8))
        lsq.insert(st(2, 0))
        with pytest.raises(OverflowError):
            lsq.insert(st(3, 8))

    def test_non_memory_rejected(self):
        with pytest.raises(ValueError):
            LoadStoreQueue().insert(MicroOp(0, 0, OpClass.INT_ALU))

    def test_release_and_squash(self):
        lsq = LoadStoreQueue()
        a, b, c = ld(0, 0), st(1, 8), ld(2, 16)
        for u in (a, b, c):
            lsq.insert(u)
        doomed = lsq.squash_younger(0)
        assert {u.seq for u in doomed} == {1, 2}
        lsq.release(a)
        assert not lsq.loads and not lsq.stores


class TestForwarding:
    def test_forwards_from_youngest_older_executed_store(self):
        lsq = LoadStoreQueue()
        s1, s2 = st(1, 0x100), st(2, 0x100)
        s1.executed = s2.executed = True
        load = ld(3, 0x100)
        for u in (s1, s2, load):
            lsq.insert(u)
        assert lsq.forwarding_store(load) is s2
        assert lsq.forwards == 1

    def test_no_forward_from_younger_store(self):
        lsq = LoadStoreQueue()
        load = ld(1, 0x100)
        s = st(2, 0x100)
        s.executed = True
        lsq.insert(load)
        lsq.insert(s)
        assert lsq.forwarding_store(load) is None

    def test_no_forward_from_unexecuted_store(self):
        lsq = LoadStoreQueue()
        s = st(1, 0x100)
        load = ld(2, 0x100)
        lsq.insert(s)
        lsq.insert(load)
        assert lsq.forwarding_store(load) is None

    def test_quadword_granularity(self):
        lsq = LoadStoreQueue()
        s = st(1, 0x100)
        s.executed = True
        lsq.insert(s)
        same_q = ld(2, 0x104)      # same 8B quadword
        diff_q = ld(3, 0x108)
        lsq.insert(same_q)
        lsq.insert(diff_q)
        assert lsq.forwarding_store(same_q) is s
        assert lsq.forwarding_store(diff_q) is None


class TestViolationDetection:
    def test_younger_executed_load_violates(self):
        lsq = LoadStoreQueue()
        store = st(1, 0x200)
        early_load = ld(2, 0x200)
        early_load.executed = True
        lsq.insert(store)
        lsq.insert(early_load)
        assert lsq.detect_violation(store) is early_load
        assert lsq.violations == 1

    def test_oldest_offender_chosen(self):
        lsq = LoadStoreQueue()
        store = st(1, 0x200)
        l2, l3 = ld(2, 0x200), ld(3, 0x200)
        l2.executed = l3.executed = True
        for u in (store, l2, l3):
            lsq.insert(u)
        assert lsq.detect_violation(store) is l2

    def test_unexecuted_load_is_safe(self):
        lsq = LoadStoreQueue()
        store = st(1, 0x200)
        load = ld(2, 0x200)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.detect_violation(store) is None

    def test_older_load_is_safe(self):
        lsq = LoadStoreQueue()
        load = ld(0, 0x200)
        load.executed = True
        store = st(1, 0x200)
        lsq.insert(load)
        lsq.insert(store)
        assert lsq.detect_violation(store) is None


class TestStoreDependenceWakeups:
    def test_waiter_woken_on_store_execute(self):
        woken = []
        lsq = LoadStoreQueue(on_ready=woken.append)
        store = st(1, 0x100)
        load = ld(2, 0x100)
        lsq.insert(store)
        lsq.insert(load)
        lsq.add_store_dependence(load, store)
        assert load.pending == 1 and load.store_dep is store
        store.executed = True
        lsq.store_executed_wakeups(store)
        assert woken == [load]
        assert load.pending == 0 and load.store_dep is None

    def test_dead_waiter_skipped(self):
        woken = []
        lsq = LoadStoreQueue(on_ready=woken.append)
        store = st(1, 0x100)
        load = ld(2, 0x100)
        lsq.insert(store)
        lsq.insert(load)
        lsq.add_store_dependence(load, store)
        load.dead = True
        lsq.store_executed_wakeups(store)
        assert not woken
