from repro.common.config import CoreConfig
from repro.backend.fu import FuPool
from repro.isa.opclass import OpClass


def make():
    return FuPool(CoreConfig())


def test_alu_count():
    fus = make()
    fus.new_cycle()
    grants = [fus.try_allocate(OpClass.INT_ALU, 0) for _ in range(5)]
    assert grants == [True] * 4 + [False]


def test_load_ports():
    fus = make()
    fus.new_cycle()
    assert fus.try_allocate(OpClass.LOAD, 0)
    assert fus.loads_issued_this_cycle() == 1
    assert fus.try_allocate(OpClass.LOAD, 0)
    assert not fus.try_allocate(OpClass.LOAD, 0)
    assert fus.loads_issued_this_cycle() == 2


def test_store_port_single():
    fus = make()
    fus.new_cycle()
    assert fus.try_allocate(OpClass.STORE, 0)
    assert not fus.try_allocate(OpClass.STORE, 0)


def test_new_cycle_resets_ports():
    fus = make()
    fus.new_cycle()
    for _ in range(4):
        fus.try_allocate(OpClass.INT_ALU, 0)
    fus.new_cycle()
    assert fus.try_allocate(OpClass.INT_ALU, 1)


def test_branches_share_alu_ports():
    fus = make()
    fus.new_cycle()
    for _ in range(4):
        assert fus.try_allocate(OpClass.BRANCH, 0)
    assert not fus.try_allocate(OpClass.INT_ALU, 0)


def test_unpipelined_divider_blocks():
    fus = make()
    fus.new_cycle()
    assert fus.try_allocate(OpClass.INT_DIV, 0)
    fus.new_cycle()
    # Divider busy for 25 cycles: next div rejected even next cycle.
    assert not fus.try_allocate(OpClass.INT_DIV, 1)
    fus.new_cycle()
    assert fus.try_allocate(OpClass.INT_DIV, 25)


def test_pipelined_mul_not_blocked():
    fus = make()
    fus.new_cycle()
    assert fus.try_allocate(OpClass.INT_MUL, 0)
    fus.new_cycle()
    assert fus.try_allocate(OpClass.INT_MUL, 1)


def test_fp_divider_separate_units():
    fus = make()
    fus.new_cycle()
    # Two FPMulDiv units: two divs same cycle OK, third rejected.
    assert fus.try_allocate(OpClass.FP_DIV, 0)
    assert fus.try_allocate(OpClass.FP_DIV, 0)
    assert not fus.try_allocate(OpClass.FP_DIV, 0)
    fus.new_cycle()
    assert not fus.try_allocate(OpClass.FP_DIV, 1)
    fus.new_cycle()
    assert fus.try_allocate(OpClass.FP_DIV, 10)


def test_grant_rejection_counters():
    fus = make()
    fus.new_cycle()
    fus.try_allocate(OpClass.STORE, 0)
    fus.try_allocate(OpClass.STORE, 0)
    assert fus.grants == 1 and fus.rejections == 1
