import pytest

from repro.backend.iq import IssueQueue
from repro.backend.rob import ReorderBuffer
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def op(seq, opclass=OpClass.INT_ALU):
    return MicroOp(seq, 0x10 + seq, opclass, srcs=[1], dst=2)


class TestRob:
    def test_fifo_retirement(self):
        rob = ReorderBuffer(8)
        uops = [op(i) for i in range(3)]
        for u in uops:
            rob.allocate(u)
        assert rob.head() is uops[0]
        assert rob.retire_head() is uops[0]
        assert rob.head() is uops[1]

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.allocate(op(0))
        rob.allocate(op(1))
        assert rob.full and rob.free_slots() == 0
        with pytest.raises(OverflowError):
            rob.allocate(op(2))

    def test_squash_younger_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        uops = [op(i) for i in range(5)]
        for u in uops:
            rob.allocate(u)
        squashed = rob.squash_younger(1)
        assert [u.seq for u in squashed] == [4, 3, 2]
        assert len(rob) == 2

    def test_squash_inclusive(self):
        rob = ReorderBuffer(8)
        for i in range(4):
            rob.allocate(op(i))
        squashed = rob.squash_younger(2, inclusive=True)
        assert [u.seq for u in squashed] == [3, 2]

    def test_criticality_tag_head_only(self):
        rob = ReorderBuffer(8)
        a, b = op(0), op(1)
        rob.allocate(a)
        rob.allocate(b)
        rob.note_completed(b)
        assert not b.was_critical         # not at head
        rob.note_completed(a)
        assert a.was_critical             # at head when completed

    def test_retired_counter(self):
        rob = ReorderBuffer(4)
        rob.allocate(op(0))
        rob.retire_head()
        assert rob.retired == 1


class TestIq:
    def test_insert_release(self):
        iq = IssueQueue(4)
        u = op(0)
        iq.insert(u)
        assert u.in_iq and len(iq) == 1
        iq.release(u)
        assert not u.in_iq and len(iq) == 0

    def test_capacity(self):
        iq = IssueQueue(2)
        iq.insert(op(0))
        iq.insert(op(1))
        assert iq.full
        with pytest.raises(OverflowError):
            iq.insert(op(2))

    def test_ready_oldest_first(self):
        iq = IssueQueue(8)
        uops = [op(i) for i in range(4)]
        for u in uops:
            iq.insert(u)
        for u in reversed(uops):
            iq.make_ready(u)
        assert [u.seq for u in iq.take_ready()] == [0, 1, 2, 3]

    def test_make_ready_requires_occupancy(self):
        iq = IssueQueue(4)
        u = op(0)
        iq.make_ready(u)          # never inserted: ignored
        assert iq.take_ready() == []

    def test_take_ready_prunes_dead(self):
        iq = IssueQueue(4)
        a, b = op(0), op(1)
        iq.insert(a)
        iq.insert(b)
        iq.make_ready(a)
        iq.make_ready(b)
        a.dead = True
        assert iq.take_ready() == [b]

    def test_squash_younger(self):
        iq = IssueQueue(8)
        uops = [op(i) for i in range(4)]
        for u in uops:
            iq.insert(u)
            iq.make_ready(u)
        doomed = iq.squash_younger(1)
        assert {u.seq for u in doomed} == {2, 3}
        assert {u.seq for u in iq.take_ready()} == {0, 1}

    def test_no_duplicate_ready(self):
        iq = IssueQueue(4)
        u = op(0)
        iq.insert(u)
        iq.make_ready(u)
        iq.make_ready(u)
        assert iq.take_ready() == [u]

    def test_peak_occupancy(self):
        iq = IssueQueue(8)
        for i in range(5):
            iq.insert(op(i))
        assert iq.peak_occupancy == 5
