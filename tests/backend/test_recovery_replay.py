import pytest

from repro.backend.recovery import RecoveryBuffer
from repro.backend.replay import ReplayController, ReplayEvent
from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def op(seq):
    return MicroOp(seq, 0x10 + seq, OpClass.INT_ALU, srcs=[1], dst=2)


class TestRecoveryBuffer:
    def test_insert_remove(self):
        rb = RecoveryBuffer()
        u = op(0)
        rb.insert(u)
        assert u in rb and len(rb) == 1
        rb.remove(u)
        assert u not in rb

    def test_ready_requires_replay_pending(self):
        rb = RecoveryBuffer()
        u = op(0)
        rb.insert(u)
        rb.make_ready(u)             # not replay-pending: ignored
        assert rb.take_ready() == []
        u.replay_pending = True
        rb.make_ready(u)
        assert rb.take_ready() == [u]

    def test_ready_oldest_first(self):
        rb = RecoveryBuffer()
        uops = [op(i) for i in range(3)]
        for u in uops:
            u.replay_pending = True
            rb.insert(u)
        for u in reversed(uops):
            rb.make_ready(u)
        assert [u.seq for u in rb.take_ready()] == [0, 1, 2]

    def test_take_ready_prunes_stale(self):
        rb = RecoveryBuffer()
        a, b = op(0), op(1)
        for u in (a, b):
            u.replay_pending = True
            rb.insert(u)
            rb.make_ready(u)
        a.dead = True
        b.replay_pending = False
        assert rb.take_ready() == []

    def test_squash_younger(self):
        rb = RecoveryBuffer()
        for i in range(4):
            rb.insert(op(i))
        doomed = rb.squash_younger(1)
        assert {u.seq for u in doomed} == {2, 3}
        assert len(rb) == 2


class TestReplayController:
    def test_window_contents(self):
        rc = ReplayController(delay=4)
        uops = {}
        for cycle in range(10):
            u = op(cycle)
            u.issue_cycle = cycle
            uops[cycle] = u
            rc.note_issue(u, cycle)
        doomed = rc.squashable_uops(9)
        # window is [9-4, 8] = cycles 5..8
        assert sorted(u.seq for u in doomed) == [5, 6, 7, 8]

    def test_executed_uops_not_squashed(self):
        rc = ReplayController(delay=2)
        u = op(0)
        u.issue_cycle = 5
        rc.note_issue(u, 5)
        u.executed = True
        assert rc.squashable_uops(6) == []

    def test_stale_issue_instance_not_squashed(self):
        rc = ReplayController(delay=2)
        u = op(0)
        u.issue_cycle = 5
        rc.note_issue(u, 5)
        u.issue_cycle = 9      # re-issued later: old group record stale
        assert rc.squashable_uops(6) == []

    def test_event_calendar(self):
        rc = ReplayController(delay=4)
        load = op(0)
        ev = ReplayEvent(load, CAUSE_L1_MISS, corrected_latency=17)
        rc.schedule(ev, detection_cycle=12)
        assert not rc.has_event(11)
        assert rc.has_event(12)
        assert rc.pop_events(12) == [ev]
        assert not rc.has_event(12)

    def test_events_sorted_oldest_trigger_first(self):
        rc = ReplayController(delay=4)
        young, old = op(9), op(3)
        rc.schedule(ReplayEvent(young, CAUSE_L1_MISS, 17), 10)
        rc.schedule(ReplayEvent(old, CAUSE_BANK_CONFLICT, 5), 10)
        events = rc.pop_events(10)
        assert events[0].load is old

    def test_bad_cause_rejected(self):
        with pytest.raises(ValueError):
            ReplayEvent(op(0), "gamma_ray", 5)

    def test_prune_bounds_window(self):
        rc = ReplayController(delay=2)
        for cycle in range(100):
            u = op(cycle)
            u.issue_cycle = cycle
            rc.note_issue(u, cycle)
            rc.prune(cycle)
        assert len(rc._window) <= 4
