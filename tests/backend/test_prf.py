from repro.backend.prf import NEVER, Scoreboard
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def consumer(psrcs):
    u = MicroOp(0, 0x10, OpClass.INT_ALU, srcs=[0] * len(psrcs), dst=None)
    u.psrcs = list(psrcs)
    return u


def make(n=16):
    woken = []
    sb = Scoreboard(n, on_ready=woken.append)
    return sb, woken


class TestBroadcastAndWakeup:
    def test_initially_ready(self):
        sb, _ = make()
        u = consumer([1, 2])
        assert sb.watch(u) == 0
        assert sb.operands_issue_ready(u, 0)

    def test_broadcast_then_event_fires(self):
        sb, woken = make()
        sb.broadcast(3, wake_cycle=10, data_ready_exec=15)
        u = consumer([3])
        assert sb.watch(u) == 1
        sb.tick(9)
        assert not woken
        sb.tick(10)
        assert woken == [u]
        assert sb.ready[3]

    def test_multi_source_waits_for_all(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        sb.broadcast(4, 12, 17)
        u = consumer([3, 4])
        sb.watch(u)
        sb.tick(10)
        assert not woken
        sb.tick(12)
        assert woken == [u]

    def test_duplicate_source(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        u = consumer([3, 3])
        assert sb.watch(u) == 2
        sb.tick(10)
        assert woken == [u]


class TestSquashSemantics:
    def test_unready_cancels_stale_event(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        u = consumer([3])
        sb.watch(u)
        sb.unready(3)                    # producer squashed
        sb.tick(10)                      # stale event must not fire
        assert not woken
        assert not sb.ready[3]
        assert sb.ready_at[3] == NEVER

    def test_rebroadcast_after_unready(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        u = consumer([3])
        sb.watch(u)
        sb.unready(3)
        sb.broadcast(3, 20, 25)          # replayed producer
        sb.tick(10)
        assert not woken
        sb.tick(20)
        assert woken == [u]

    def test_drop_waiter_then_rewatch(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        u = consumer([3])
        sb.watch(u)
        sb.drop_waiter(u)
        assert sb.watch(u) == 1          # re-armed exactly once
        sb.tick(10)
        assert woken == [u]
        assert u.pending == 0

    def test_dead_waiter_skipped(self):
        sb, woken = make()
        sb.broadcast(3, 10, 15)
        u = consumer([3])
        sb.watch(u)
        u.dead = True
        sb.tick(10)
        assert not woken


class TestDataValidity:
    def test_data_ready_check(self):
        sb, _ = make()
        sb.broadcast(5, 10, data_ready_exec=15)
        u = consumer([5])
        sb.tick(10)
        assert not sb.operands_data_valid(u, 14)
        assert sb.operands_data_valid(u, 15)

    def test_mark_ready_now(self):
        sb, _ = make()
        sb.unready(7)
        sb.mark_ready_now(7, now=5)
        u = consumer([7])
        assert sb.watch(u) == 0
        assert sb.operands_data_valid(u, 0)

    def test_wakeups_fired_counter(self):
        sb, _ = make()
        sb.broadcast(1, 3, 4)
        sb.broadcast(2, 3, 4)
        sb.tick(3)
        assert sb.wakeups_fired == 2
