"""Phase instrumentation: accounting sanity + zero behavioral drift."""

from __future__ import annotations

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp
from repro.perf.instrument import PHASES, PhaseProfile
from repro.pipeline.cpu import Simulator
from tests.conftest import spec_config


def hand_trace(n=64):
    uops = []
    for i in range(n):
        uops.append(MicroOp(seq=0, pc=0x100 + i, opclass=OpClass.INT_ALU,
                            srcs=[2], dst=3 + (i % 4)))
    return uops


class TestPhaseProfile:
    def test_initial_state(self):
        profile = PhaseProfile()
        assert set(profile.seconds) == set(PHASES)
        assert profile.total_seconds == 0.0
        assert profile.fractions()["fetch"] == 0.0

    def test_add_and_fractions(self):
        profile = PhaseProfile()
        profile.add("fetch", 3.0)
        profile.add("commit", 1.0)
        fractions = profile.fractions()
        assert fractions["fetch"] == 0.75
        assert fractions["commit"] == 0.25

    def test_merge(self):
        a, b = PhaseProfile(), PhaseProfile()
        a.add("issue", 1.0)
        b.add("issue", 2.0)
        b.cycles = 5
        b.replay_storms = 2
        a.merge(b)
        assert a.seconds["issue"] == 3.0
        assert a.cycles == 5 and a.replay_storms == 2

    def test_as_dict_keys(self):
        data = PhaseProfile().as_dict()
        for phase in PHASES:
            assert f"{phase}_seconds" in data
        assert {"cycles", "replay_storms", "uops_committed"} <= set(data)

    def test_summary_renders(self):
        profile = PhaseProfile()
        profile.add("fetch", 0.25)
        text = profile.summary()
        assert "fetch" in text and "storms" in text


class TestInstrumentedStep:
    def test_profiled_run_counts_cycles_and_commits(self):
        profile = PhaseProfile()
        sim = Simulator(spec_config(), ListTrace(hand_trace()),
                        phase_profile=profile)
        sim.run(max_cycles=2_000)
        assert sim.done
        assert profile.cycles == sim.stats.cycles > 0
        assert profile.uops_committed == sim.stats.committed_uops
        assert profile.total_seconds > 0.0

    def test_profiling_does_not_change_stats(self):
        plain = Simulator(spec_config(), ListTrace(hand_trace()))
        plain.run(max_cycles=2_000)
        profiled = Simulator(spec_config(), ListTrace(hand_trace()),
                             phase_profile=PhaseProfile())
        profiled.run(max_cycles=2_000)
        assert plain.stats.to_dict() == profiled.stats.to_dict()
