"""Direction-aware gating: lower-is-better metrics and absolute ceilings."""

from __future__ import annotations

import pytest

from repro.perf.bench import BenchResult
from repro.perf.gate import (
    GATE_SPECS,
    GATED_METRICS,
    LOWER,
    RATIO_METRICS,
    check_regression,
)


def sampling_result(speedup=4.0, rel_err=0.01) -> BenchResult:
    return BenchResult(
        name="sampling",
        metrics={"speedup": speedup, "mean_ipc_rel_err": rel_err,
                 "wall_seconds": 10.0},
        provenance={}, quick=True, calibration_ops_per_sec=1_000_000.0)


def telemetry_result(off=10_000.0, ratio=1.3,
                     calibration=1_000_000.0) -> BenchResult:
    return BenchResult(
        name="telemetry",
        metrics={"events_off_uops_per_sec": off, "overhead_ratio": ratio,
                 "wall_seconds": 2.0},
        provenance={}, quick=True, calibration_ops_per_sec=calibration)


class TestSpecTable:
    def test_primary_metric_is_the_first_spec(self):
        for name, specs in GATE_SPECS.items():
            assert GATED_METRICS[name] == specs[0].metric

    def test_unnormalized_metrics_are_ratio_metrics(self):
        assert "speedup" in RATIO_METRICS
        assert "overhead_ratio" in RATIO_METRICS
        assert "uops_per_sec" not in RATIO_METRICS

    def test_ceilings_only_on_lower_is_better(self):
        for specs in GATE_SPECS.values():
            for spec in specs:
                if spec.ceiling is not None:
                    assert spec.direction == LOWER


class TestLowerIsBetter:
    def test_error_growth_fails(self):
        base = sampling_result(rel_err=0.005)
        current = sampling_result(rel_err=0.008)   # 1.6x worse
        failures = check_regression(current, base, max_regression=0.2)
        assert [f.metric for f in failures] == ["mean_ipc_rel_err"]
        assert failures[0].ratio == pytest.approx(0.005 / 0.008)
        assert not failures[0].absolute

    def test_error_shrink_passes(self):
        base = sampling_result(rel_err=0.008)
        current = sampling_result(rel_err=0.004)
        assert check_regression(current, base) == []

    def test_overhead_growth_fails_without_ceiling_breach(self):
        base = telemetry_result(ratio=1.2)
        current = telemetry_result(ratio=1.8)      # < 2.0, but +50%
        failures = check_regression(current, base, max_regression=0.2)
        assert [f.metric for f in failures] == ["overhead_ratio"]

    def test_zero_baseline_error_not_ratio_gated(self):
        base = sampling_result(rel_err=0.0)
        current = sampling_result(rel_err=0.01)    # under the ceiling
        assert check_regression(current, base) == []


class TestAbsoluteCeiling:
    def test_ceiling_breach_fails_even_with_a_bad_baseline(self):
        # A committed baseline cannot ratify an over-ceiling value.
        base = telemetry_result(ratio=2.5)
        current = telemetry_result(ratio=2.4)
        failures = check_regression(current, base, max_regression=0.2)
        assert len(failures) == 1
        assert failures[0].absolute
        assert failures[0].limit == 2.0
        assert "absolute ceiling" in str(failures[0])

    def test_ceiling_breach_and_regression_both_reported(self):
        base = telemetry_result(ratio=1.2)
        current = telemetry_result(ratio=2.5)
        failures = check_regression(current, base, max_regression=0.2)
        assert {f.absolute for f in failures} == {True, False}

    def test_sampling_error_ceiling(self):
        base = sampling_result(rel_err=0.018)
        current = sampling_result(rel_err=0.021)
        failures = check_regression(current, base, max_regression=0.2)
        assert len(failures) == 1
        assert failures[0].absolute


class TestTelemetryBenchmarkGate:
    def test_both_metrics_pass_in_budget(self):
        base = telemetry_result()
        assert check_regression(telemetry_result(), base) == []

    def test_throughput_is_calibration_normalized(self):
        base = telemetry_result(off=10_000, calibration=2_000_000)
        current = telemetry_result(off=5_000, calibration=1_000_000)
        assert check_regression(current, base) == []

    def test_throughput_regression_fails(self):
        base = telemetry_result(off=10_000)
        current = telemetry_result(off=7_000)
        failures = check_regression(current, base, max_regression=0.2)
        assert [f.metric for f in failures] == ["events_off_uops_per_sec"]

    def test_overhead_is_not_calibration_normalized(self):
        # Same ratio on a machine with a different calibration figure
        # must compare equal — it is already machine-neutral.
        base = telemetry_result(ratio=1.3, calibration=2_000_000)
        current = telemetry_result(ratio=1.3, calibration=1_000_000)
        assert check_regression(current, base) == []
