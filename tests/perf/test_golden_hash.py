"""Golden-hash lock: the optimized kernel is bit-identical to the
pre-optimization simulator.

``tests/golden/goldens.json`` was generated *before* the hot-path
optimization pass (PR 1's golden suite). It has been regenerated once
since: the fix for the frontend dropping in-flight correct-path µops on
a memory-order-violation squash intentionally changed one cell
(``gzip/Baseline_0(dual)``). Two locks hold the claim in place:

* the sha256 of the committed goldens file matches the constant below —
  so the file cannot be silently regenerated to mask a semantic change
  (``--regen-goldens`` changes this hash and the diff says so);
* a fresh simulation of each golden cell hashes to the same digest as
  the committed counters — the per-counter comparison lives in
  ``tests/golden/test_golden_results.py``; the digest here is the
  compact summary the perf work quotes.
"""

from __future__ import annotations

import hashlib
import json

from tests.golden.test_golden_results import CELLS, GOLDEN_PATH, _simulate

#: sha256 of tests/golden/goldens.json as committed before the hot-path
#: optimization pass. Regenerating the goldens (an *intentional* semantic
#: change) must update this constant in the same commit.
PRE_OPTIMIZATION_GOLDENS_SHA256 = (
    "a3974cdbbb04e244d11d06f282d48e1bc145958d809621c3746e80187b771897")


def canonical_digest(data: dict) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def test_goldens_file_is_the_pre_optimization_one():
    digest = hashlib.sha256(GOLDEN_PATH.read_bytes()).hexdigest()
    assert digest == PRE_OPTIMIZATION_GOLDENS_SHA256, (
        "tests/golden/goldens.json changed; if a semantic change was "
        "intended, update PRE_OPTIMIZATION_GOLDENS_SHA256 and explain "
        "the drift in the commit message")


def test_optimized_kernel_matches_pre_optimization_hashes():
    committed = json.loads(GOLDEN_PATH.read_text())
    for cell_id, cell in CELLS.items():
        fresh = canonical_digest(_simulate(cell))
        golden = canonical_digest(committed[cell_id])
        assert fresh == golden, (
            f"{cell_id}: optimized kernel diverged from the "
            f"pre-optimization golden (SimStats hash mismatch)")
