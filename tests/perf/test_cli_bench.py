"""``repro bench`` CLI: happy path, error paths, the gate exit code.

The only benchmark actually executed is ``trace`` (sub-second); the
simulation benchmarks are exercised through the unit-level helpers and
the golden/throughput suites, not through the CLI.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.perf.bench import BenchResult
from repro.perf.gate import read_baseline, write_baseline


def read_result(tmp_path):
    return BenchResult.read(tmp_path / "BENCH_trace.json")


class TestHappyPath:
    def test_writes_result_file(self, tmp_path, capsys):
        rc = main(["bench", "trace", "--quick",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        result = read_result(tmp_path)
        assert result.name == "trace" and result.quick
        assert result.metrics["replay_uops_per_sec"] > 0
        assert result.calibration_ops_per_sec > 0
        assert result.provenance["python"]
        assert "trace" in capsys.readouterr().out

    def test_write_baseline(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        rc = main(["bench", "trace", "--quick",
                   "--out-dir", str(tmp_path),
                   "--write-baseline", str(baseline_path)])
        assert rc == 0
        baseline = read_baseline(baseline_path)
        assert set(baseline) == {"trace"}

    def test_profile_flag_adds_phases(self, tmp_path):
        rc = main(["bench", "trace", "--quick", "--profile",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        # The trace benchmark runs no cycle loop, but the phases dict
        # must still be present (all-zero) when profiling is requested.
        assert read_result(tmp_path).phases["cycles"] == 0


class TestErrorPaths:
    def test_unknown_benchmark_name(self, tmp_path, capsys):
        rc = main(["bench", "nope", "--out-dir", str(tmp_path)])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_missing_baseline_file(self, tmp_path, capsys):
        rc = main(["bench", "trace", "--quick",
                   "--out-dir", str(tmp_path),
                   "--baseline", str(tmp_path / "absent.json")])
        assert rc == 2

    def test_corrupt_baseline_file(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{broken")
        rc = main(["bench", "trace", "--quick",
                   "--out-dir", str(tmp_path), "--baseline", str(bad)])
        assert rc == 2


class TestGateExitCodes:
    def _run_gated(self, tmp_path, mutate):
        """Run once to get a real baseline, mutate it, re-run gated."""
        baseline_path = tmp_path / "baseline.json"
        assert main(["bench", "trace", "--quick",
                     "--out-dir", str(tmp_path),
                     "--write-baseline", str(baseline_path)]) == 0
        baseline = read_baseline(baseline_path)
        mutate(baseline["trace"])
        write_baseline(baseline, baseline_path)
        return main(["bench", "trace", "--quick",
                     "--out-dir", str(tmp_path),
                     "--baseline", str(baseline_path)])

    def test_gate_passes_against_own_result(self, tmp_path):
        def untouched(entry):
            pass
        assert self._run_gated(tmp_path, untouched) == 0

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        def inflate(entry):
            # Pretend the baseline machine-normalized throughput was 100x
            # better: the fresh run must trip the 20% gate.
            entry.metrics["replay_uops_per_sec"] *= 100
        assert self._run_gated(tmp_path, inflate) == 1
        assert "GATE FAIL" in capsys.readouterr().out

    def test_quick_mismatch_is_a_clean_error(self, tmp_path, capsys):
        def flip_quick(entry):
            entry.quick = False
        assert self._run_gated(tmp_path, flip_quick) == 2
        assert "quick" in capsys.readouterr().err

    def test_missing_entry_not_gated(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        write_baseline({}, baseline_path)
        rc = main(["bench", "trace", "--quick",
                   "--out-dir", str(tmp_path),
                   "--baseline", str(baseline_path)])
        assert rc == 0
        assert "not gated" in capsys.readouterr().out


def test_result_json_on_disk_is_schema_versioned(tmp_path):
    assert main(["bench", "trace", "--quick",
                 "--out-dir", str(tmp_path)]) == 0
    raw = json.loads((tmp_path / "BENCH_trace.json").read_text())
    assert raw["schema"] == 1
