"""BenchResult schema round-trip + the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import BENCH_SCHEMA, BenchResult, bench_filename
from repro.perf.gate import (
    GATED_METRICS,
    check_regression,
    read_baseline,
    write_baseline,
)


def make_result(uops_per_sec=10_000.0, calibration=1_000_000.0,
                name="headline", quick=True) -> BenchResult:
    return BenchResult(
        name=name,
        metrics={"uops_per_sec": uops_per_sec, "wall_seconds": 1.5,
                 "cells": 4.0},
        provenance={"git_sha": "deadbeef", "python": "3.11.7",
                    "host": "test"},
        quick=quick,
        calibration_ops_per_sec=calibration,
        phases={"fetch_seconds": 0.5},
    )


class TestSchema:
    def test_round_trip(self):
        result = make_result()
        clone = BenchResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_file_round_trip(self, tmp_path):
        result = make_result()
        path = result.write(tmp_path / bench_filename(result.name))
        assert path.name == "BENCH_headline.json"
        assert BenchResult.read(path) == result

    def test_written_json_is_stable(self, tmp_path):
        path = make_result().write(tmp_path / "r.json")
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert data["metrics"]["uops_per_sec"] == 10_000.0
        assert data["provenance"]["git_sha"] == "deadbeef"

    @pytest.mark.parametrize("corrupt", [
        {"metrics": {"x": 1.0}},                       # missing name
        {"name": "x"},                                 # missing metrics
        {"name": "x", "metrics": []},                  # wrong metrics type
        {"name": "x", "metrics": {}, "schema": 99},    # future schema
        {"name": "x", "metrics": {}, "bogus": 1},      # unknown field
        [],                                            # not an object
    ])
    def test_malformed_rejected(self, corrupt):
        with pytest.raises(ValueError):
            BenchResult.from_dict(corrupt)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("not json {")
        with pytest.raises(ValueError):
            BenchResult.read(path)


class TestGate:
    def test_within_budget_passes(self):
        base = make_result(uops_per_sec=10_000)
        current = make_result(uops_per_sec=8_500)   # -15% < 20% budget
        assert check_regression(current, base, max_regression=0.2) == []

    def test_regression_fails(self):
        base = make_result(uops_per_sec=10_000)
        current = make_result(uops_per_sec=7_000)   # -30%
        failures = check_regression(current, base, max_regression=0.2)
        assert len(failures) == 1
        failure = failures[0]
        assert failure.benchmark == "headline"
        assert failure.metric == "uops_per_sec"
        assert failure.ratio == pytest.approx(0.7)
        assert "0.70x" in str(failure)

    def test_normalization_absorbs_machine_speed(self):
        # Same simulator, half-speed machine: raw uops/sec halves but so
        # does the calibration figure — the gate must pass.
        base = make_result(uops_per_sec=10_000, calibration=2_000_000)
        current = make_result(uops_per_sec=5_000, calibration=1_000_000)
        assert check_regression(current, base, max_regression=0.2) == []

    def test_speedup_never_fails(self):
        base = make_result(uops_per_sec=10_000)
        current = make_result(uops_per_sec=50_000)
        assert check_regression(current, base) == []

    def test_zero_baseline_not_gated(self):
        base = make_result(uops_per_sec=0.0)
        current = make_result(uops_per_sec=1.0)
        assert check_regression(current, base) == []

    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_regression(make_result(name="headline"),
                             make_result(name="table2"))

    def test_quick_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_regression(make_result(quick=True),
                             make_result(quick=False))

    def test_every_benchmark_has_a_gated_metric(self):
        from repro.perf.bench import BENCHMARKS

        assert set(GATED_METRICS) == set(BENCHMARKS)


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        results = {"headline": make_result(),
                   "table2": make_result(name="table2")}
        path = write_baseline(results, tmp_path / "baseline.json")
        assert read_baseline(path) == results

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"results": "nope"}))
        with pytest.raises(ValueError):
            read_baseline(path)
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            read_baseline(path)
        path.write_text(json.dumps(
            {"schema": 99, "results": {}}))
        with pytest.raises(ValueError):
            read_baseline(path)
