"""Checkpoint round-trip suite: save → restore → continue is
bit-identical to an uninterrupted run.

This is the contract the whole sampling/warm-start story rests on: a
restored simulator is THE simulator, not an approximation. Every case
runs a (workload, configuration) pair twice —

* **reference**: one uninterrupted run to ``TOTAL_UOPS``;
* **round trip**: run to ``SPLIT_UOPS``, ``state_dict()`` the complete
  machine, rebuild a *fresh* simulator from scratch, load the state and
  continue to ``TOTAL_UOPS`` —

and asserts the final ``SimStats`` counter dicts are equal (every
counter, not just IPC). A second pass does the same through the on-disk
``.ckpt`` format (pickle + zlib + digest verify), so the serialization
layer is held to the same bit-exactness as the in-memory protocol.
"""

from __future__ import annotations

import pickle

import pytest

from repro.checkpoint.format import restore_simulator, save_checkpoint
from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.traces.format import capture
from repro.traces.registry import TraceWorkload, resolve_workload

SPLIT_UOPS = 4_000
TOTAL_UOPS = 9_000
FUNCTIONAL_WARMUP = 15_000

#: Diverse coverage at test-suite-friendly volumes: every mechanism of
#: the paper's stack (conservative baseline, plain speculative, shifting
#: + filter + criticality), plus high-miss, bank-conflict-prone and
#: branchy workloads. mcf runs the full replay/recovery machinery hot.
CASES = [
    ("gzip", "Baseline_0"),
    ("gzip", "SpecSched_4"),
    ("gzip", "SpecSched_4_Crit"),
    ("swim", "SpecSched_4_Combined"),
    ("xalancbmk", "SpecSched_4_Shift"),
    ("mcf", "SpecSched_4_Combined"),
]


def _reference_stats(workload, config, seed=1):
    sim = Simulator(config, workload.build_trace(seed))
    sim.functional_warmup(workload.build_trace(seed), FUNCTIONAL_WARMUP)
    sim.run(max_uops=TOTAL_UOPS)
    return sim.stats.to_dict()


def _split_sim(workload, config, seed=1):
    sim = Simulator(config, workload.build_trace(seed))
    sim.functional_warmup(workload.build_trace(seed), FUNCTIONAL_WARMUP)
    sim.run(max_uops=SPLIT_UOPS)
    return sim


@pytest.mark.parametrize("workload_name,preset", CASES)
def test_state_dict_roundtrip_is_bit_identical(workload_name, preset):
    workload = resolve_workload(workload_name)
    config = make_config(preset)
    reference = _reference_stats(workload, config)

    sim = _split_sim(workload, config)
    # Through pickle, as the on-disk format stores it: catches state
    # that only survives by object identity inside one process.
    state = pickle.loads(pickle.dumps(sim.state_dict(), protocol=4))

    restored = Simulator(config, workload.build_trace(1))
    restored.load_state_dict(state)
    restored.run(max_uops=TOTAL_UOPS)
    assert restored.stats.to_dict() == reference


@pytest.mark.parametrize("workload_name,preset",
                         [("gzip", "SpecSched_4_Crit"),
                          ("mcf", "SpecSched_4_Combined")])
def test_file_checkpoint_roundtrip_is_bit_identical(tmp_path, workload_name,
                                                    preset):
    workload = resolve_workload(workload_name)
    config = make_config(preset)
    reference = _reference_stats(workload, config)

    sim = _split_sim(workload, config)
    path = tmp_path / "mid.ckpt"
    info = save_checkpoint(sim, path, workload=workload, seed=1)
    assert info.uops_committed == sim.stats.committed_uops

    restored = restore_simulator(path)
    restored.run(max_uops=TOTAL_UOPS)
    assert restored.stats.to_dict() == reference


def test_scenario_workload_roundtrip():
    workload = resolve_workload("examples/scenarios/pointer-chase-storm.toml")
    config = make_config("SpecSched_4_Combined")
    reference = _reference_stats(workload, config, seed=workload.seed)

    sim = _split_sim(workload, config, seed=workload.seed)
    state = pickle.loads(pickle.dumps(sim.state_dict(), protocol=4))
    restored = Simulator(config, workload.build_trace(workload.seed))
    restored.load_state_dict(state)
    restored.run(max_uops=TOTAL_UOPS)
    assert restored.stats.to_dict() == reference


def test_recorded_trace_roundtrip(tmp_path):
    source = resolve_workload("gzip")
    path = tmp_path / "gzip.trc"
    capture(source.build_trace(1), path, 40_000, wp_seed=1)
    workload = TraceWorkload(path)
    config = make_config("SpecSched_4_Combined")
    reference = _reference_stats(workload, config)

    sim = _split_sim(workload, config)
    state = pickle.loads(pickle.dumps(sim.state_dict(), protocol=4))
    restored = Simulator(config, workload.build_trace())
    restored.load_state_dict(state)
    restored.run(max_uops=TOTAL_UOPS)
    assert restored.stats.to_dict() == reference


def test_double_roundtrip_is_stable():
    """state → load → state is a fixed point (no drift across cycles)."""
    workload = resolve_workload("gzip")
    config = make_config("SpecSched_4_Combined")
    sim = _split_sim(workload, config)
    state = sim.state_dict()

    restored = Simulator(config, workload.build_trace(1))
    restored.load_state_dict(state)
    again = restored.state_dict()
    assert pickle.dumps(again, protocol=4) == pickle.dumps(state, protocol=4)


def test_restore_after_further_split_points():
    """Checkpointing at several depths all converge to the reference."""
    workload = resolve_workload("xalancbmk")
    config = make_config("SpecSched_4_Combined")
    reference = _reference_stats(workload, config)
    for split in (1_000, 5_000, 8_000):
        sim = Simulator(config, workload.build_trace(1))
        sim.functional_warmup(workload.build_trace(1), FUNCTIONAL_WARMUP)
        sim.run(max_uops=split)
        restored = Simulator(config, workload.build_trace(1))
        restored.load_state_dict(sim.state_dict())
        restored.run(max_uops=TOTAL_UOPS)
        assert restored.stats.to_dict() == reference, f"split at {split}"


def test_roundtrip_constructed_via_stage_api():
    """A machine wired through the stage API (override + extra stage)
    round-trips exactly like the default wiring — the decomposition
    seam does not perturb the state protocol (the stateful-extra-stage
    case lives in tests/pipeline/test_stages.py)."""
    from repro.pipeline.stages import Issue, Stage

    class LoggingIssue(Issue):
        """Behaviour-preserving override (the scheduler-swap seam)."""

        def _do_issue(self, uop, now, loads_before):
            super()._do_issue(uop, now, loads_before)

    class NullProbe(Stage):
        """Stateless observer appended at the end of the tick order."""

        name = "null_probe"

        def tick(self, now):
            pass

    workload = resolve_workload("gzip")
    config = make_config("SpecSched_4_Crit")
    reference = _reference_stats(workload, config)

    def build():
        return Simulator(config, workload.build_trace(1),
                         stage_overrides={"issue": LoggingIssue},
                         extra_stages=[NullProbe])

    sim = build()
    sim.functional_warmup(workload.build_trace(1), FUNCTIONAL_WARMUP)
    sim.run(max_uops=SPLIT_UOPS)
    state = pickle.loads(pickle.dumps(sim.state_dict(), protocol=4))

    restored = build()
    restored.load_state_dict(state)
    restored.run(max_uops=TOTAL_UOPS)
    assert restored.stats.to_dict() == reference
