"""Sampling-layer tests: spec validation, cell compilation, cache keys,
determinism, aggregation and the sampled sweep/report path."""

from __future__ import annotations

import math

import pytest

from repro.checkpoint.format import save_checkpoint
from repro.checkpoint.sampling import (
    SampledResult,
    SamplingError,
    SamplingSpec,
    checkpoint_reference,
    run_sampled,
    run_sampled_chained,
    sample_payloads,
)
from repro.common.mathutil import ci95_half_width, mean, sample_stdev
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    Sweep,
    cell_key,
    cell_payload,
    simulate_payload,
)
from repro.experiments.report import sampling_table
from repro.experiments.runner import Settings, run_sweep
from repro.pipeline.cpu import Simulator
from repro.traces.registry import resolve_workload

SPEC = SamplingSpec(intervals=3, interval_uops=1_000, warmup_uops=300,
                    period_uops=4_000, offset_uops=6_000)


# ---------------------------------------------------------------------------
# Spec


def test_spec_geometry():
    assert SPEC.interval_offset(0) == 6_000
    assert SPEC.interval_offset(2) == 14_000
    assert SPEC.detailed_uops == 3 * 1_300
    assert SPEC.span_uops == 14_000 + 1_300


def test_spec_validation_errors():
    with pytest.raises(SamplingError):
        SamplingSpec(intervals=0).validate()
    with pytest.raises(SamplingError):
        SamplingSpec(interval_uops=0).validate()
    with pytest.raises(SamplingError):
        # Overlapping intervals: period shorter than warmup + interval.
        SamplingSpec(interval_uops=5_000, warmup_uops=2_000,
                     period_uops=6_000).validate()
    with pytest.raises(SamplingError):
        SamplingSpec.from_dict({"intervals": 4, "intervalz": 1})
    with pytest.raises(SamplingError):
        SPEC.interval_offset(3)


def test_spec_roundtrip_and_hash():
    again = SamplingSpec.from_dict(SPEC.to_dict())
    assert again == SPEC
    assert again.content_hash() == SPEC.content_hash()
    assert SamplingSpec().content_hash() != SPEC.content_hash()


# ---------------------------------------------------------------------------
# Statistics helpers


def test_ci_math():
    values = [1.0, 2.0, 3.0, 4.0]
    assert mean(values) == 2.5
    assert sample_stdev(values) == pytest.approx(
        math.sqrt(sum((v - 2.5) ** 2 for v in values) / 3))
    assert ci95_half_width(values) == pytest.approx(
        1.96 * sample_stdev(values) / 2.0)
    assert ci95_half_width([1.0]) == 0.0
    assert sample_stdev([1.0]) == 0.0


def test_sampled_result_aggregation():
    a = SimStats(cycles=100, committed_uops=200, issued_total=250,
                 unique_issued=240, replayed_miss=8, replayed_bank=2)
    b = SimStats(cycles=100, committed_uops=100, issued_total=120,
                 unique_issued=110, replayed_miss=6, replayed_bank=4)
    result = SampledResult(workload="w", config_name="c", spec=SPEC,
                           interval_stats=[a, b])
    assert result.ipc_values == [2.0, 1.0]
    assert result.mean_ipc == 1.5
    total = result.total
    assert total.cycles == 200 and total.committed_uops == 300
    breakdown = result.breakdown()
    assert breakdown["unique"] == pytest.approx(350 / 370)
    assert breakdown["rpld_miss"] == pytest.approx(14 / 370)
    assert breakdown["rpld_bank"] == pytest.approx(6 / 370)


# ---------------------------------------------------------------------------
# Cell compilation + cache keys


def _base_payload():
    return cell_payload("SpecSched_4", resolve_workload("gzip"),
                        warmup_uops=300, measure_uops=1_000,
                        functional_warmup_uops=5_000, seed=1)


def test_sample_payloads_shape_and_keys():
    cells = sample_payloads(_base_payload(), SPEC)
    assert len(cells) == SPEC.intervals
    keys = {cell_key(cell) for cell in cells}
    assert len(keys) == SPEC.intervals          # every interval distinct
    for index, cell in enumerate(cells):
        assert cell["sampling"] == {"spec": SPEC.to_dict(), "index": index}
        assert cell["functional_warmup_uops"] == 0
        assert cell["warmup_uops"] == SPEC.warmup_uops
        assert cell["measure_uops"] == SPEC.interval_uops
    # The base cell (no sampling) keys differently from interval 0.
    assert cell_key(_base_payload()) not in keys


def test_checkpoint_cells_key_on_digest_not_path(tmp_path):
    workload = resolve_workload("gzip")
    sim = Simulator(make_config("SpecSched_4"), workload.build_trace(1))
    sim.fast_forward(2_000)
    info_a = save_checkpoint(sim, tmp_path / "a.ckpt", workload=workload,
                             seed=1, provenance={"stream_uops": 2_000})
    save_checkpoint(sim, tmp_path / "b.ckpt", workload=workload, seed=1,
                    provenance={"stream_uops": 2_000})

    base = _base_payload()
    with_a = {**base, "checkpoint": checkpoint_reference(tmp_path / "a.ckpt")}
    with_b = {**base, "checkpoint": checkpoint_reference(tmp_path / "b.ckpt")}
    assert with_a["checkpoint"]["digest"] == info_a.digest
    assert with_a["checkpoint"]["position"] == 2_000
    # Same state at two paths: same key. No checkpoint: different key.
    assert cell_key(with_a) == cell_key(with_b)
    assert cell_key(with_a) != cell_key(base)


# ---------------------------------------------------------------------------
# Execution paths


def test_interval_cell_simulation_is_deterministic():
    cells = sample_payloads(_base_payload(), SPEC)
    first = simulate_payload(cells[1])
    again = simulate_payload(cells[1])
    assert first == again
    committed = SimStats.from_dict(first).committed_uops
    assert committed >= SPEC.interval_uops


def test_run_sampled_uses_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    options = EngineOptions(jobs=1, cache_dir=str(tmp_path / "cache"))
    first = run_sampled("gzip", "SpecSched_4", SPEC, seed=1,
                        options=options, cache=cache)
    assert cache.misses == SPEC.intervals
    rerun_cache = ResultCache(tmp_path / "cache")
    again = run_sampled("gzip", "SpecSched_4", SPEC, seed=1,
                        options=options, cache=rerun_cache)
    assert rerun_cache.misses == 0
    assert rerun_cache.disk_hits == SPEC.intervals
    assert [s.to_dict() for s in first.interval_stats] \
        == [s.to_dict() for s in again.interval_stats]
    assert first.mean_ipc > 0
    assert first.ipc_ci95 >= 0


def test_run_sampled_from_checkpoint_matches_cold_cells(tmp_path):
    """A functional checkpoint at the offset replaces the cold
    fast-forward bit-identically (same stream, same warm state)."""
    workload = resolve_workload("gzip")
    config = make_config("SpecSched_4")
    sim = Simulator(config, workload.build_trace(1))
    consumed = sim.fast_forward(SPEC.offset_uops)
    path = tmp_path / "off.ckpt"
    save_checkpoint(sim, path, workload=workload, seed=1,
                    provenance={"mode": "functional",
                                "stream_uops": consumed})
    cold = run_sampled("gzip", config, SPEC, seed=1,
                       options=EngineOptions(jobs=1, cache_dir="off"))
    warm = run_sampled("gzip", config, SPEC, seed=1,
                       options=EngineOptions(jobs=1, cache_dir="off"),
                       checkpoint=path)
    assert [s.to_dict() for s in cold.interval_stats] \
        == [s.to_dict() for s in warm.interval_stats]


def test_chained_and_cells_agree_on_interval_count():
    chained = run_sampled_chained("gzip", "SpecSched_4", SPEC, seed=1)
    assert len(chained.interval_stats) == SPEC.intervals
    # Chained inherits detailed-mode perturbations (by design), so only
    # sanity-level agreement with the cell shape is asserted.
    cells = run_sampled("gzip", "SpecSched_4", SPEC, seed=1,
                        options=EngineOptions(jobs=1, cache_dir="off"))
    assert chained.mean_ipc == pytest.approx(cells.mean_ipc, rel=0.15)


def test_sampled_sweep_carries_confidence_intervals():
    sweep = Sweep.from_dict({
        "name": "sampled-smoke",
        "baseline": "base",
        "series": [{"label": "base", "preset": "Baseline_0"},
                   {"label": "spec", "preset": "SpecSched_4"}],
        "workloads": ["gzip"],
        "sampling": SPEC.to_dict(),
    })
    result = run_sweep(sweep,
                       settings=Settings(workloads=("gzip",)),
                       options=EngineOptions(jobs=1, cache_dir="off"),
                       cache=ResultCache(None))
    assert set(result.ipc_ci) == {"base", "spec"}
    mean_ipc, half = result.ipc_ci["spec"]["gzip"]
    assert mean_ipc > 0 and half >= 0
    # The grid entry is the counter-wise interval sum. Each interval's
    # warmup/measure boundary lands on a retire-group edge, so a cell's
    # committed count wobbles by up to retire_width-1 µops around the
    # interval target.
    total = result.get("spec", "gzip")
    slop = SPEC.intervals * (make_config("SpecSched_4").core.retire_width - 1)
    assert total.committed_uops >= SPEC.intervals * SPEC.interval_uops - slop
    rendered = sampling_table(result)
    assert "±" in rendered and "gzip" in rendered


def test_sweep_rejects_bad_sampling_table():
    with pytest.raises(SamplingError):
        Sweep.from_dict({
            "name": "bad", "baseline": "base",
            "series": [{"label": "base", "preset": "Baseline_0"}],
            "sampling": {"intervals": 0},
        })


def test_trace_too_short_for_interval_rejected(tmp_path):
    from repro.traces.format import capture
    from repro.traces.registry import TraceWorkload

    source = resolve_workload("gzip")
    path = tmp_path / "short.trc"
    capture(source.build_trace(1), path, 8_000, wp_seed=1)
    base = cell_payload("SpecSched_4", TraceWorkload(path),
                        warmup_uops=300, measure_uops=1_000,
                        functional_warmup_uops=0, seed=1)
    cells = sample_payloads(base, SPEC)
    # Interval 0 (ends at 7300) fits an 8000-µop trace; interval 2
    # (ends at 15300) does not.
    simulate_payload(cells[0])
    with pytest.raises(ValueError, match="holds only"):
        simulate_payload(cells[2])
