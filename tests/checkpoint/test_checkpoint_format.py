"""Checkpoint file-format tests: header, digest, tamper resistance."""

from __future__ import annotations

import struct

import pytest

from repro.checkpoint.format import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    FORMAT_VERSION,
    HEADER,
    MAGIC,
    checkpoint_digest,
    load_checkpoint,
    read_info,
    save_checkpoint,
)
from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.traces.registry import resolve_workload


@pytest.fixture(scope="module")
def warm_sim():
    workload = resolve_workload("gzip")
    sim = Simulator(make_config("SpecSched_4_Combined"),
                    workload.build_trace(1))
    sim.fast_forward(5_000)
    sim.run(max_uops=2_000)
    return workload, sim


def test_info_fields(tmp_path, warm_sim):
    workload, sim = warm_sim
    path = tmp_path / "a.ckpt"
    info = save_checkpoint(sim, path, workload=workload, seed=1,
                           provenance={"mode": "detailed"})
    assert info.version == FORMAT_VERSION
    assert info.compressed
    assert info.config_name == "SpecSched_4_Combined"
    assert info.workload_name == "gzip"
    assert info.seed == 1
    assert info.uops_committed == sim.stats.committed_uops
    assert info.cycles == sim.stats.cycles
    assert info.provenance["mode"] == "detailed"
    assert len(info.digest) == 64
    assert info.file_bytes == path.stat().st_size
    assert info.raw_bytes > info.file_bytes  # zlib actually compressed
    assert checkpoint_digest(path) == info.digest


def test_digest_is_content_addressed(tmp_path, warm_sim):
    """Same state → same digest, independent of path and compression."""
    workload, sim = warm_sim
    a = save_checkpoint(sim, tmp_path / "a.ckpt", workload=workload, seed=1)
    b = save_checkpoint(sim, tmp_path / "b.ckpt", workload=workload, seed=1)
    raw = save_checkpoint(sim, tmp_path / "c.ckpt", workload=workload,
                          seed=1, compress=False)
    assert a.digest == b.digest == raw.digest
    assert not raw.compressed
    # ... and a different state digests differently.
    sim.run(max_uops=sim.stats.committed_uops + 500)
    c = save_checkpoint(sim, tmp_path / "d.ckpt", workload=workload, seed=1)
    assert c.digest != a.digest


def test_uncompressed_roundtrip(tmp_path, warm_sim):
    workload, sim = warm_sim
    path = tmp_path / "raw.ckpt"
    save_checkpoint(sim, path, workload=workload, seed=1, compress=False)
    loaded = load_checkpoint(path)
    assert loaded.payload["sim"]["stats"] == sim.stats.to_dict()


def test_truncated_file_rejected(tmp_path, warm_sim):
    workload, sim = warm_sim
    path = tmp_path / "t.ckpt"
    save_checkpoint(sim, path, workload=workload, seed=1)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_corrupt_payload_rejected(tmp_path, warm_sim):
    workload, sim = warm_sim
    path = tmp_path / "c.ckpt"
    save_checkpoint(sim, path, workload=workload, seed=1)
    data = bytearray(path.read_bytes())
    data[-20] ^= 0xFF                    # flip a payload byte
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_bad_magic_and_version_rejected(tmp_path, warm_sim):
    workload, sim = warm_sim
    path = tmp_path / "m.ckpt"
    save_checkpoint(sim, path, workload=workload, seed=1)
    data = bytearray(path.read_bytes())
    original = bytes(data)

    data[:4] = b"NOPE"
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="magic"):
        read_info(path)

    data = bytearray(original)
    struct.pack_into("<H", data, 4, FORMAT_VERSION + 1)
    path.write_bytes(bytes(data))
    with pytest.raises(CheckpointError, match="version"):
        read_info(path)


def test_code_bearing_payload_rejected(tmp_path):
    """A payload referencing any global (class/function) must not load."""
    import math
    import pickle
    import zlib

    payload = pickle.dumps({"evil": math.sqrt}, protocol=4)
    import hashlib
    import json

    meta = json.dumps({"schema": CHECKPOINT_SCHEMA}).encode()
    path = tmp_path / "evil.ckpt"
    with path.open("wb") as handle:
        handle.write(HEADER.pack(MAGIC, FORMAT_VERSION, 0x1, len(payload),
                                 hashlib.sha256(payload).digest(),
                                 len(meta), b"\0" * 12))
        handle.write(meta)
        handle.write(zlib.compress(payload))
    with pytest.raises(CheckpointError, match="plain data"):
        load_checkpoint(path)


def test_restore_without_workload_needs_trace(tmp_path, warm_sim):
    _workload, sim = warm_sim
    path = tmp_path / "n.ckpt"
    save_checkpoint(sim, path, workload=None, seed=None)
    loaded = load_checkpoint(path)
    with pytest.raises(CheckpointError, match="no workload"):
        loaded.restore()
    # ... but an explicit equivalent trace works.
    workload = resolve_workload("gzip")
    restored = loaded.restore(trace=workload.build_trace(1))
    assert restored.stats.to_dict() == sim.stats.to_dict()
