"""Checkpoint-chained sampling cells: equivalence with from-zero cells,
the content-addressed store's reuse/tamper/version behavior, and the
cache-key contract for producing cells."""

from __future__ import annotations

import struct

import pytest

from repro.checkpoint.format import CHECKPOINT_SUFFIX, load_checkpoint
from repro.checkpoint.sampling import (
    SamplingError,
    SamplingSpec,
    chained_cell_payloads,
    run_sampled,
    run_sampled_cells_chained,
)
from repro.core.presets import make_config
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    Sweep,
    base_cell_payload,
    cell_key,
    produce_payload,
)
from repro.experiments.runner import Settings, run_sweep
from repro.traces.registry import resolve_workload

SPEC = SamplingSpec(intervals=3, interval_uops=600, warmup_uops=200,
                    period_uops=2_500, offset_uops=3_000)
OFF = EngineOptions(jobs=1, cache_dir="off")


def _base(preset="SpecSched_4", workload="gzip"):
    return base_cell_payload(
        make_config(preset), resolve_workload(workload),
        warmup_uops=SPEC.warmup_uops, measure_uops=SPEC.interval_uops,
        functional_warmup_uops=0, seed=1)


# ---------------------------------------------------------------------------
# Equivalence


@pytest.mark.parametrize("preset", ["Baseline_0", "SpecSched_4_Combined"])
def test_chained_cells_bit_identical_to_legacy_cells(tmp_path, preset):
    legacy = run_sampled("gzip", preset, SPEC, seed=1, options=OFF)
    chained = run_sampled_cells_chained("gzip", preset, SPEC, seed=1,
                                        options=OFF, store=tmp_path)
    assert [s.to_dict() for s in chained.interval_stats] == \
        [s.to_dict() for s in legacy.interval_stats]


def test_sweep_cells_mode_matches_chained_default(tmp_path):
    table = {
        "name": "mode-smoke",
        "baseline": "base",
        "series": [{"label": "base", "preset": "Baseline_0"},
                   {"label": "spec", "preset": "SpecSched_4"}],
        "workloads": ["gzip"],
    }
    settings = Settings(workloads=("gzip",))
    grids = {}
    for mode in ("cells", "cells-chained"):
        sweep = Sweep.from_dict(
            dict(table, sampling=dict(SPEC.to_dict(), mode=mode)))
        assert sweep.sampling_mode() == mode
        result = run_sweep(sweep, settings=settings, options=OFF,
                           cache=ResultCache(None))
        grids[mode] = {(label, "gzip"): result.get(label, "gzip").to_dict()
                       for label in ("base", "spec")}
    assert grids["cells"] == grids["cells-chained"]


def test_sweep_rejects_unknown_sampling_mode():
    with pytest.raises(ValueError, match="unknown sampling mode"):
        Sweep.from_dict({
            "name": "bad-mode", "baseline": "base",
            "series": [{"label": "base", "preset": "Baseline_0"}],
            "sampling": dict(SPEC.to_dict(), mode="telepathy"),
        }).validate()


# ---------------------------------------------------------------------------
# Store behavior


def test_store_entries_are_reused_across_runs(tmp_path):
    first = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                      options=OFF, store=tmp_path)
    entries = sorted(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))
    assert len(entries) == SPEC.intervals
    stamps = {p: p.stat().st_mtime_ns for p in entries}
    again = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                      options=OFF, store=tmp_path)
    assert {p: p.stat().st_mtime_ns for p in entries} == stamps
    assert [s.to_dict() for s in again.interval_stats] == \
        [s.to_dict() for s in first.interval_stats]


def test_tampered_store_entry_is_regenerated(tmp_path):
    reference = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                          options=OFF, store=tmp_path)
    victim = sorted(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))[0]
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF                    # corrupt the compressed payload
    victim.write_bytes(bytes(blob))
    healed = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                       options=OFF, store=tmp_path)
    assert [s.to_dict() for s in healed.interval_stats] == \
        [s.to_dict() for s in reference.interval_stats]
    load_checkpoint(victim)             # regenerated file verifies again


def test_version_bumped_store_entry_is_regenerated(tmp_path):
    reference = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                          options=OFF, store=tmp_path)
    victim = sorted(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))[0]
    blob = bytearray(victim.read_bytes())
    blob[4:6] = struct.pack("<H", 99)   # foreign FORMAT_VERSION
    victim.write_bytes(bytes(blob))
    healed = run_sampled_cells_chained("gzip", "SpecSched_4", SPEC, seed=1,
                                       options=OFF, store=tmp_path)
    assert [s.to_dict() for s in healed.interval_stats] == \
        [s.to_dict() for s in reference.interval_stats]
    assert load_checkpoint(victim).info.digest


def test_chained_cells_without_store_or_cache_refused():
    with pytest.raises(SamplingError, match="checkpoint store"):
        chained_cell_payloads([_base()], SPEC, options=OFF)


# ---------------------------------------------------------------------------
# Cache-key contract


def test_checkpoint_store_location_not_in_cell_key(tmp_path):
    base = _base()
    here = produce_payload(base, SPEC.interval_offset(0), tmp_path / "a")
    there = produce_payload(base, SPEC.interval_offset(0), tmp_path / "b")
    assert here["checkpoint_store"] != there["checkpoint_store"]
    assert cell_key(here) == cell_key(there)
    # ...while the produce position is an input and must be keyed.
    other = produce_payload(base, SPEC.interval_offset(1), tmp_path / "a")
    assert cell_key(other) != cell_key(here)


def test_rebased_chains_share_one_warming_pass(tmp_path):
    bases = [_base("Baseline_0"), _base("SpecSched_4")]
    payloads = chained_cell_payloads(bases, SPEC, options=OFF,
                                     store=tmp_path)
    assert len(payloads) == len(bases) * SPEC.intervals
    # One chain of produced checkpoints plus one rebased file per
    # interval for the second config — not two independent chains.
    entries = sorted(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))
    assert len(entries) == 2 * SPEC.intervals
    digests = {p.name: load_checkpoint(p).info for p in entries}
    rebased = [info for info in digests.values()
               if info.provenance.get("mode") == "rebase"]
    assert len(rebased) == SPEC.intervals
    for payload in payloads:
        assert payload["checkpoint"]["digest"]
        assert payload["sampling"]["spec"] == SPEC.to_dict()
