"""Cross-config checkpoint rebase: the byte-identity property and the
compatibility refusals that keep it honest.

The pinned claim (module docstring of :mod:`repro.checkpoint.rebase`):
re-targeting a purely functional checkpoint from config A to config B is
byte-identical to having functionally warmed a fresh B machine over the
same stream — checked here as payload-digest equality, per config pair,
for both generated and recorded-trace workloads.
"""

from __future__ import annotations

import pytest

from repro.checkpoint.format import (
    load_checkpoint,
    restore_simulator,
    save_checkpoint,
)
from repro.checkpoint.rebase import (
    RebaseError,
    check_rebase_compatible,
    filter_shape,
    rebase_checkpoint,
)
from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.traces.format import capture
from repro.traces.registry import TraceWorkload, resolve_workload

WARM_UOPS = 4_000
SEED = 1

#: (source preset, target preset) pairs covering the compatibility
#: lattice: plain -> plain, filter -> same-shape filter, and
#: filter -> filterless (the filter state is dropped, not transplanted).
REBASE_PAIRS = [
    ("Baseline_0", "SpecSched_4"),
    ("SpecSched_4_Filter", "SpecSched_4_Combined"),
    ("SpecSched_4_Combined", "Baseline_0"),
]


def _functional_checkpoint(preset, workload, path, *, uops=WARM_UOPS):
    sim = Simulator(make_config(preset), workload.build_trace(SEED))
    sim.functional_warmup(workload.build_trace(SEED), uops)
    return save_checkpoint(sim, path, workload=workload, seed=SEED)


def _recorded_workload(tmp_path, uops=WARM_UOPS + 2_000):
    trace = resolve_workload("gzip").build_trace(SEED)
    path = tmp_path / "gzip-recorded.trc"
    capture(trace, path, uops, wp_seed=SEED,
            provenance={"workload": "gzip-recorded", "is_fp": False})
    return TraceWorkload(path)


@pytest.mark.parametrize("source,target", REBASE_PAIRS)
def test_rebase_is_byte_identical_to_native_warming(tmp_path, source, target):
    workload = resolve_workload("gzip")
    _functional_checkpoint(source, workload, tmp_path / "src.ckpt")
    rebased = rebase_checkpoint(tmp_path / "src.ckpt", make_config(target),
                                tmp_path / "rebased.ckpt")
    native = _functional_checkpoint(target, workload, tmp_path / "native.ckpt")
    # The digest covers the full pickled payload (config + workload +
    # every state island), so equality is byte-identity of the state.
    assert rebased.digest == native.digest
    assert rebased.config_name == target


def test_rebase_recorded_trace_workload(tmp_path):
    workload = _recorded_workload(tmp_path)
    _functional_checkpoint("Baseline_0", workload, tmp_path / "src.ckpt")
    rebased = rebase_checkpoint(tmp_path / "src.ckpt",
                                make_config("SpecSched_4"),
                                tmp_path / "rebased.ckpt")
    native = _functional_checkpoint("SpecSched_4", workload,
                                    tmp_path / "native.ckpt")
    assert rebased.digest == native.digest


def test_rebased_checkpoint_restores_and_resumes(tmp_path):
    workload = resolve_workload("gzip")
    _functional_checkpoint("Baseline_0", workload, tmp_path / "src.ckpt")
    rebase_checkpoint(tmp_path / "src.ckpt", make_config("SpecSched_4"),
                      tmp_path / "rebased.ckpt")
    native = Simulator(make_config("SpecSched_4"),
                       workload.build_trace(SEED))
    native.functional_warmup(workload.build_trace(SEED), WARM_UOPS)
    stats_native = native.run_with_warmup(300, 1_000)
    restored = restore_simulator(tmp_path / "rebased.ckpt")
    stats_rebased = restored.run_with_warmup(300, 1_000)
    assert stats_rebased.to_dict() == stats_native.to_dict()


def test_rebase_records_provenance(tmp_path):
    workload = resolve_workload("gzip")
    src = _functional_checkpoint("Baseline_0", workload, tmp_path / "src.ckpt")
    rebased = rebase_checkpoint(tmp_path / "src.ckpt",
                                make_config("SpecSched_4"),
                                tmp_path / "rebased.ckpt")
    assert rebased.provenance["mode"] == "rebase"
    assert rebased.provenance["source_digest"] == src.digest
    assert rebased.provenance["source_config"] == "Baseline_0"


# ---------------------------------------------------------------------------
# Refusals


def test_rebase_refuses_memory_mismatch(tmp_path):
    workload = resolve_workload("gzip")
    _functional_checkpoint("Baseline_0", workload, tmp_path / "src.ckpt")
    unbanked = make_config("SpecSched_4", banked=False)
    with pytest.raises(RebaseError, match="memory"):
        rebase_checkpoint(tmp_path / "src.ckpt", unbanked,
                          tmp_path / "out.ckpt")


def test_rebase_refuses_detailed_source(tmp_path):
    workload = resolve_workload("gzip")
    sim = Simulator(make_config("Baseline_0"), workload.build_trace(SEED))
    sim.run(max_uops=500)               # detailed state: in-flight µops
    save_checkpoint(sim, tmp_path / "detailed.ckpt",
                    workload=workload, seed=SEED)
    with pytest.raises(RebaseError, match="functional"):
        rebase_checkpoint(tmp_path / "detailed.ckpt",
                          make_config("SpecSched_4"), tmp_path / "out.ckpt")


def test_rebase_refuses_filterless_donor_for_filter_target(tmp_path):
    workload = resolve_workload("gzip")
    _functional_checkpoint("Baseline_0", workload, tmp_path / "src.ckpt")
    with pytest.raises(RebaseError, match="filter"):
        rebase_checkpoint(tmp_path / "src.ckpt",
                          make_config("SpecSched_4_Combined"),
                          tmp_path / "out.ckpt")


def test_check_rebase_compatible_is_the_cli_precheck():
    a = make_config("Baseline_0").to_dict()
    b = make_config("SpecSched_4").to_dict()
    check_rebase_compatible(a, b)       # must not raise
    with pytest.raises(RebaseError):
        check_rebase_compatible(
            a, make_config("SpecSched_4", banked=False).to_dict())


def test_filter_shape_only_for_filter_policies():
    assert filter_shape(make_config("Baseline_0").to_dict()["sched"]) is None
    shape = filter_shape(make_config("SpecSched_4_Combined").to_dict()["sched"])
    assert shape is not None
    assert shape == filter_shape(
        make_config("SpecSched_4_Crit").to_dict()["sched"])


def test_rebase_refuses_workloadless_checkpoint(tmp_path):
    workload = resolve_workload("gzip")
    sim = Simulator(make_config("Baseline_0"), workload.build_trace(SEED))
    sim.functional_warmup(workload.build_trace(SEED), 1_000)
    save_checkpoint(sim, tmp_path / "bare.ckpt")     # no workload recorded
    with pytest.raises(RebaseError, match="workload"):
        rebase_checkpoint(tmp_path / "bare.ckpt",
                          make_config("SpecSched_4"), tmp_path / "out.ckpt")
