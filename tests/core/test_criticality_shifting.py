from repro.core.criticality import CriticalityPredictor
from repro.core.shifting import ScheduleShifter


class TestCriticality:
    def test_fresh_entry_predicts_critical(self):
        # Safe default: stalling a critical load costs performance.
        assert CriticalityPredictor().predict_critical(0x10)

    def test_learns_non_critical(self):
        p = CriticalityPredictor()
        p.train(0x10, was_critical=False)
        assert not p.predict_critical(0x10)

    def test_learns_critical(self):
        p = CriticalityPredictor()
        for _ in range(3):
            p.train(0x10, was_critical=False)
        for _ in range(4):
            p.train(0x10, was_critical=True)
        assert p.predict_critical(0x10)

    def test_saturation_bounds(self):
        p = CriticalityPredictor(ctr_bits=4)
        for _ in range(100):
            p.train(0x10, True)
        assert p._counters[p._index(0x10)] == 7
        for _ in range(100):
            p.train(0x10, False)
        assert p._counters[p._index(0x10)] == -8

    def test_hysteresis(self):
        """A deeply non-critical load needs sustained evidence to flip."""
        p = CriticalityPredictor()
        for _ in range(8):
            p.train(0x10, False)
        p.train(0x10, True)
        assert not p.predict_critical(0x10)    # one sample is not enough

    def test_direct_mapping(self):
        p = CriticalityPredictor(entries=8)
        p.train(0, False)
        assert p.predict_critical(8) is p.predict_critical(0)

    def test_update_counter(self):
        p = CriticalityPredictor()
        p.train(1, True)
        p.train(2, False)
        assert p.updates == 2


class TestScheduleShifter:
    def test_first_load_unshifted(self):
        s = ScheduleShifter(enabled=True)
        assert s.promised_latency(4, loads_already_this_cycle=0) == 4

    def test_second_load_shifted(self):
        s = ScheduleShifter(enabled=True)
        assert s.promised_latency(4, loads_already_this_cycle=1) == 5
        assert s.shifted == 1

    def test_disabled_never_shifts(self):
        s = ScheduleShifter(enabled=False)
        assert s.promised_latency(4, 1) == 4
        assert s.shifted == 0

    def test_custom_slack(self):
        s = ScheduleShifter(enabled=True, slack=2)
        assert s.promised_latency(4, 1) == 6
