from repro.core.global_ctr import GlobalHitMissCounter


def test_initial_state_speculates():
    assert GlobalHitMissCounter().predict_hit()


def test_paper_update_rule():
    """-2 on a miss cycle, +1 otherwise, 4-bit saturating (Section 5.2)."""
    c = GlobalHitMissCounter()
    assert c.value == 15
    c.observe_cycle(True)
    assert c.value == 13
    c.observe_cycle(False)
    assert c.value == 14
    c.observe_cycle(False)
    c.observe_cycle(False)
    assert c.value == 15       # saturates high


def test_msb_threshold():
    c = GlobalHitMissCounter()
    # Drive down to just below the MSB (8): 15 -> 7 needs 4 misses.
    for _ in range(4):
        c.observe_cycle(True)
    assert c.value == 7
    assert not c.predict_hit()
    c.observe_cycle(False)
    assert c.value == 8
    assert c.predict_hit()


def test_saturates_low():
    c = GlobalHitMissCounter()
    for _ in range(20):
        c.observe_cycle(True)
    assert c.value == 0
    assert not c.predict_hit()


def test_miss_bursts_flip_mode_quickly():
    """Misses cluster: 4 consecutive miss cycles silence speculation, and
    8 quiet cycles restore it — the Alpha 21264 asymmetry."""
    c = GlobalHitMissCounter()
    for _ in range(4):
        c.observe_cycle(True)
    assert not c.predict_hit()
    for _ in range(8):
        c.observe_cycle(False)
    assert c.predict_hit()


def test_cycle_counters():
    c = GlobalHitMissCounter()
    c.observe_cycle(True)
    c.observe_cycle(False)
    c.observe_cycle(False)
    assert c.miss_cycles == 1 and c.hit_cycles == 2


def test_custom_geometry():
    c = GlobalHitMissCounter(bits=3, dec_on_miss=1, inc_on_hit=2)
    assert c.max_value == 7
    c.observe_cycle(True)
    assert c.value == 6
