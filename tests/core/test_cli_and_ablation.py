import pytest

from repro.cli import build_parser, main
from repro.core.hm_filter import FilterPrediction, HitMissFilter


class TestSilenceBitAblation:
    def test_plain_counters_never_defer(self):
        f = HitMissFilter(entries=16, use_silence_bit=False)
        for i in range(10):
            f.train(0x10, hit=(i % 2 == 0))
            assert f.predict(0x10) in (FilterPrediction.SURE_HIT,
                                       FilterPrediction.SURE_MISS)

    def test_plain_counters_msb_decides(self):
        f = HitMissFilter(entries=16, use_silence_bit=False)
        f.train(0x10, hit=True)     # init 2 -> 3
        assert f.predict(0x10) is FilterPrediction.SURE_HIT
        for _ in range(3):
            f.train(0x10, hit=False)
        assert f.predict(0x10) is FilterPrediction.SURE_MISS

    def test_plain_counters_keep_training(self):
        """Without silence bits, counters always move with outcomes."""
        f = HitMissFilter(entries=16, use_silence_bit=False)
        f.train(0x10, hit=False)
        f.train(0x10, hit=False)    # saturated low
        f.train(0x10, hit=True)     # would silence in the paper's scheme
        f.train(0x10, hit=True)
        f.train(0x10, hit=True)
        assert f.predict(0x10) is FilterPrediction.SURE_HIT


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (["table1"], ["table2"], ["figure", "5"], ["list"],
                     ["run", "gzip", "SpecSched_4"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake3", "SpecSched_4"])

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "192-entry ROB" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "xalancbmk" in out and "SpecSched_4_Crit" in out

    def test_run_command(self, capsys):
        assert main(["run", "gzip", "SpecSched_4", "--measure", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "replayed_miss" in out

    def test_parser_engine_flags(self):
        args = build_parser().parse_args(
            ["figure", "5", "--jobs", "4", "--cache-dir", "/tmp/x"])
        assert args.jobs == 4 and args.cache_dir == "/tmp/x"
        args = build_parser().parse_args(["sweep", "grid.toml"])
        assert args.command == "sweep" and args.file == "grid.toml"

    def test_sweep_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")       # restored on teardown
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        sweep_file = tmp_path / "mini.toml"
        sweep_file.write_text(
            'name = "mini"\n'
            'baseline = "Baseline_0"\n'
            'workloads = ["gzip"]\n'
            'warmup_uops = 400\nmeasure_uops = 1200\n'
            'functional_warmup_uops = 4000\n\n'
            '[[series]]\nlabel = "Baseline_0"\npreset = "Baseline_0"\n'
            'banked = false\n\n'
            '[[series]]\nlabel = "SpecSched_4"\npreset = "SpecSched_4"\n')
        assert main(["sweep", str(sweep_file), "--jobs", "1",
                     "--cache-dir", "off"]) == 0
        out = capsys.readouterr().out
        assert "SpecSched_4" in out and "gmean" in out
        assert "speedup" in out
