from repro.cli import build_parser, main
from repro.core.hm_filter import FilterPrediction, HitMissFilter


class TestSilenceBitAblation:
    def test_plain_counters_never_defer(self):
        f = HitMissFilter(entries=16, use_silence_bit=False)
        for i in range(10):
            f.train(0x10, hit=(i % 2 == 0))
            assert f.predict(0x10) in (FilterPrediction.SURE_HIT,
                                       FilterPrediction.SURE_MISS)

    def test_plain_counters_msb_decides(self):
        f = HitMissFilter(entries=16, use_silence_bit=False)
        f.train(0x10, hit=True)     # init 2 -> 3
        assert f.predict(0x10) is FilterPrediction.SURE_HIT
        for _ in range(3):
            f.train(0x10, hit=False)
        assert f.predict(0x10) is FilterPrediction.SURE_MISS

    def test_plain_counters_keep_training(self):
        """Without silence bits, counters always move with outcomes."""
        f = HitMissFilter(entries=16, use_silence_bit=False)
        f.train(0x10, hit=False)
        f.train(0x10, hit=False)    # saturated low
        f.train(0x10, hit=True)     # would silence in the paper's scheme
        f.train(0x10, hit=True)
        f.train(0x10, hit=True)
        assert f.predict(0x10) is FilterPrediction.SURE_HIT


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (["table1"], ["table2"], ["figure", "5"], ["list"],
                     ["run", "gzip", "SpecSched_4"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_workload_rejected(self):
        # Workload validation happens in the registry (names may be
        # scenario/trace files), not in argparse: clean error, exit 2.
        assert main(["run", "quake3", "SpecSched_4"]) == 2

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "192-entry ROB" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "xalancbmk" in out and "SpecSched_4_Crit" in out

    def test_run_command(self, capsys):
        assert main(["run", "gzip", "SpecSched_4", "--measure", "1500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "replayed_miss" in out

    def test_parser_engine_flags(self):
        args = build_parser().parse_args(
            ["figure", "5", "--jobs", "4", "--cache-dir", "/tmp/x"])
        assert args.jobs == 4 and args.cache_dir == "/tmp/x"
        args = build_parser().parse_args(["sweep", "grid.toml"])
        assert args.command == "sweep" and args.file == "grid.toml"

    def test_sweep_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")       # restored on teardown
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        sweep_file = tmp_path / "mini.toml"
        sweep_file.write_text(
            'name = "mini"\n'
            'baseline = "Baseline_0"\n'
            'workloads = ["gzip"]\n'
            'warmup_uops = 400\nmeasure_uops = 1200\n'
            'functional_warmup_uops = 4000\n\n'
            '[[series]]\nlabel = "Baseline_0"\npreset = "Baseline_0"\n'
            'banked = false\n\n'
            '[[series]]\nlabel = "SpecSched_4"\npreset = "SpecSched_4"\n')
        assert main(["sweep", str(sweep_file), "--jobs", "1",
                     "--cache-dir", "off"]) == 0
        out = capsys.readouterr().out
        assert "SpecSched_4" in out and "gmean" in out
        assert "speedup" in out


class TestTraceCli:
    def test_record_info_replay_roundtrip(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_WARMUP", "300")
        monkeypatch.setenv("REPRO_MEASURE", "1200")
        monkeypatch.setenv("REPRO_FUNC_WARMUP", "2000")
        assert main(["trace", "record", "gzip", "-o", "g.trc"]) == 0
        assert main(["trace", "info", "g.trc", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "digest OK" in out and "wp_seed" in out
        assert main(["trace", "replay", "g.trc", "SpecSched_4",
                     "--measure", "1200"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_info_missing_file_clean_error(self, capsys):
        assert main(["trace", "info", "no-such.trc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_missing_file_clean_error(self, capsys):
        assert main(["trace", "replay", "no-such.trc", "SpecSched_4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_undersized_trace_clean_error(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "record", "gzip", "-o", "tiny.trc",
                     "--uops", "200"]) == 0
        capsys.readouterr()
        assert main(["trace", "replay", "tiny.trc", "SpecSched_4"]) == 2
        assert "re-record" in capsys.readouterr().err

    def test_record_unknown_workload_clean_error(self, capsys):
        assert main(["trace", "record", "quake3"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_corrupt_trace_clean_error(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.trc"
        bad.write_bytes(b"RPTR not a real trace")
        assert main(["run", str(bad), "SpecSched_4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_bad_scenario_knob_clean_error(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "s.toml").write_text(
            'name = "s"\n[deps]\nbogus_knob = 3\n'
            '[[mix]]\nname = "a"\nop = "alu"\nnext = { a = 1.0 }\n')
        assert main(["run", "s.toml", "SpecSched_4"]) == 2
        assert "unknown [deps] fields" in capsys.readouterr().err

    def test_replay_defaults_follow_env_volumes(self, tmp_path, capsys,
                                                monkeypatch):
        # A recording auto-sized for the current REPRO_* volumes must
        # replay under those same volumes with no extra flags.
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_WARMUP", "300")
        monkeypatch.setenv("REPRO_MEASURE", "1200")
        monkeypatch.setenv("REPRO_FUNC_WARMUP", "2000")
        assert main(["trace", "record", "gzip", "-o", "g.trc"]) == 0
        capsys.readouterr()
        assert main(["trace", "replay", "g.trc", "SpecSched_4"]) == 0
        out = capsys.readouterr().out
        committed = int(out.split("committed_uops")[1].split()[0])
        # The REPRO_MEASURE=1200 budget, give or take one retire group.
        assert 1200 <= committed < 1300
