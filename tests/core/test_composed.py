import pytest

from repro.common.config import HitMissPolicy, SchedPolicyConfig
from repro.core.composed import ComposedPolicy, build_policy
from repro.core.policy import AlwaysHitPolicy, ConservativePolicy
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp

PLAT = 4


def load(pc=0x10):
    return MicroOp(0, pc, OpClass.LOAD, srcs=[1], dst=2, mem_addr=0x100)


def committed_load(pc, hit):
    u = load(pc)
    u.l1_hit = hit
    return u


def make(**kw):
    return ComposedPolicy(SchedPolicyConfig(**kw), PLAT)


class TestFactory:
    def test_baseline_is_conservative(self):
        p = build_policy(SchedPolicyConfig(speculative=False), PLAT)
        assert isinstance(p, ConservativePolicy)
        assert not p.decide(load(), 0).speculate

    def test_plain_always_hit(self):
        p = build_policy(SchedPolicyConfig(), PLAT)
        assert isinstance(p, AlwaysHitPolicy)
        d = p.decide(load(), 0)
        assert d.speculate and d.promised_latency == PLAT

    def test_any_mechanism_composes(self):
        p = build_policy(SchedPolicyConfig(schedule_shifting=True), PLAT)
        assert isinstance(p, ComposedPolicy)

    def test_criticality_without_filter_rejected(self):
        with pytest.raises(ValueError):
            ComposedPolicy(SchedPolicyConfig(
                hit_miss=HitMissPolicy.GLOBAL_CTR, criticality=True), PLAT)


class TestShiftingComposition:
    def test_second_load_promise(self):
        p = make(schedule_shifting=True)
        assert p.decide(load(), 0).promised_latency == PLAT
        assert p.decide(load(), 1).promised_latency == PLAT + 1

    def test_no_shift_when_disabled(self):
        p = make(hit_miss=HitMissPolicy.GLOBAL_CTR)
        assert p.decide(load(), 1).promised_latency == PLAT


class TestGlobalCtrGating:
    def test_miss_cycles_stall_speculation(self):
        p = make(hit_miss=HitMissPolicy.GLOBAL_CTR)
        assert p.decide(load(), 0).speculate
        for _ in range(4):
            p.on_cycle(l1_miss_this_cycle=True)
        assert not p.decide(load(), 0).speculate
        for _ in range(8):
            p.on_cycle(l1_miss_this_cycle=False)
        assert p.decide(load(), 0).speculate

    def test_always_hit_ignores_counter(self):
        p = make(schedule_shifting=True)     # hit_miss stays ALWAYS_HIT
        for _ in range(10):
            p.on_cycle(True)
        assert p.decide(load(), 0).speculate


class TestFilterGating:
    def test_sure_hit_overrides_counter(self):
        p = make(hit_miss=HitMissPolicy.FILTER_CTR)
        p.on_load_commit(committed_load(0x10, hit=True))
        for _ in range(10):
            p.on_cycle(True)                  # counter says stall
        assert p.decide(load(0x10), 0).speculate
        assert p.stats.filter_sure_hit == 1

    def test_sure_miss_stalls_despite_counter(self):
        p = make(hit_miss=HitMissPolicy.FILTER_CTR)
        for _ in range(2):
            p.on_load_commit(committed_load(0x10, hit=False))
        assert not p.decide(load(0x10), 0).speculate
        assert p.stats.filter_sure_miss == 1

    def test_deferred_uses_counter(self):
        p = make(hit_miss=HitMissPolicy.FILTER_CTR)
        assert p.decide(load(0x50), 0).speculate      # fresh: defer + ctr hi
        for _ in range(4):
            p.on_cycle(True)
        assert not p.decide(load(0x50), 0).speculate
        assert p.stats.filter_deferred == 2


class TestCriticalityGating:
    def _crit_policy(self):
        return make(hit_miss=HitMissPolicy.FILTER_CTR, criticality=True,
                    schedule_shifting=True)

    def test_noncritical_unsure_load_stalls(self):
        p = self._crit_policy()
        u = committed_load(0x30, hit=True)
        u.was_critical = False
        # Keep the filter unsure for 0x30 by alternating outcomes.
        for i in range(8):
            c = committed_load(0x30, hit=(i % 2 == 0))
            c.was_critical = False
            p.on_load_commit(c)
            p.on_uop_commit(c)
        assert not p.decide(load(0x30), 0).speculate
        assert p.stats.crit_predicted_noncritical >= 1

    def test_critical_unsure_load_uses_counter(self):
        p = self._crit_policy()
        for i in range(8):
            c = committed_load(0x30, hit=(i % 2 == 0))
            c.was_critical = True
            p.on_load_commit(c)
            p.on_uop_commit(c)
        assert p.decide(load(0x30), 0).speculate      # counter still high

    def test_sure_hit_bypasses_criticality(self):
        p = self._crit_policy()
        for _ in range(3):
            c = committed_load(0x40, hit=True)
            c.was_critical = False
            p.on_load_commit(c)
            p.on_uop_commit(c)
        assert p.decide(load(0x40), 0).speculate
