import pytest

from repro.common.config import HitMissPolicy
from repro.core.presets import PRESET_NAMES, make_config


class TestBaselinePresets:
    @pytest.mark.parametrize("delay", [0, 2, 4, 6])
    def test_baseline(self, delay):
        cfg = make_config(f"Baseline_{delay}")
        assert cfg.delay == delay
        assert not cfg.sched.speculative
        assert cfg.name == f"Baseline_{delay}"

    def test_baseline_rejects_suffix(self):
        with pytest.raises(ValueError):
            make_config("Baseline_4_Crit")


class TestSpecSchedPresets:
    def test_plain(self):
        cfg = make_config("SpecSched_4")
        assert cfg.sched.speculative
        assert cfg.sched.hit_miss == HitMissPolicy.ALWAYS_HIT
        assert not cfg.sched.schedule_shifting
        assert not cfg.sched.criticality

    def test_shift(self):
        cfg = make_config("SpecSched_4_Shift")
        assert cfg.sched.schedule_shifting
        assert cfg.sched.hit_miss == HitMissPolicy.ALWAYS_HIT

    def test_ctr(self):
        cfg = make_config("SpecSched_4_Ctr")
        assert cfg.sched.hit_miss == HitMissPolicy.GLOBAL_CTR
        assert not cfg.sched.schedule_shifting

    def test_filter(self):
        cfg = make_config("SpecSched_4_Filter")
        assert cfg.sched.hit_miss == HitMissPolicy.FILTER_CTR

    def test_combined(self):
        cfg = make_config("SpecSched_4_Combined")
        assert cfg.sched.hit_miss == HitMissPolicy.FILTER_CTR
        assert cfg.sched.schedule_shifting
        assert not cfg.sched.criticality

    def test_crit_builds_on_combined(self):
        cfg = make_config("SpecSched_4_Crit")
        assert cfg.sched.hit_miss == HitMissPolicy.FILTER_CTR
        assert cfg.sched.schedule_shifting
        assert cfg.sched.criticality

    @pytest.mark.parametrize("delay", [2, 6])
    def test_variants_at_other_delays(self, delay):
        cfg = make_config(f"SpecSched_{delay}_Crit")
        assert cfg.delay == delay and cfg.sched.criticality


class TestOptions:
    def test_banked_default(self):
        assert make_config("SpecSched_4").memory.l1d.banked

    def test_dual_ported(self):
        assert not make_config("SpecSched_4", banked=False).memory.l1d.banked

    def test_load_ports(self):
        cfg = make_config("Baseline_0", load_ports=1)
        assert cfg.core.num_load_ports == 1

    def test_all_preset_names_buildable(self):
        for name in PRESET_NAMES:
            make_config(name).validate()

    def test_unknown_name_rejected(self):
        for bad in ("Foo_4", "SpecSched", "SpecSched_4_Turbo", ""):
            with pytest.raises(ValueError):
                make_config(bad)
