from repro.core.hm_filter import FilterPrediction, HitMissFilter


def make(entries=64, reset=10_000):
    return HitMissFilter(entries=entries, reset_interval=reset)


def test_fresh_entry_defers():
    f = make()
    assert f.predict(0x10) is FilterPrediction.DEFER


def test_always_hitting_load_becomes_sure_hit():
    f = make()
    f.train(0x10, hit=True)
    assert f.predict(0x10) is FilterPrediction.SURE_HIT


def test_always_missing_load_becomes_sure_miss():
    f = make()
    f.train(0x10, hit=False)
    f.train(0x10, hit=False)
    assert f.predict(0x10) is FilterPrediction.SURE_MISS


def test_leaving_saturation_silences():
    """Section 5.2: a counter going from saturated to transient (e.g. 0->1
    after a hit) silences the entry — the load's behaviour follows recent
    dynamic context, so the global counter should decide."""
    f = make()
    f.train(0x10, hit=False)
    f.train(0x10, hit=False)       # saturated low (sure miss)
    f.train(0x10, hit=True)        # 0 -> 1: silenced
    assert f.predict(0x10) is FilterPrediction.DEFER


def test_silenced_counters_not_updated():
    f = make()
    f.train(0x10, hit=False)
    f.train(0x10, hit=False)
    f.train(0x10, hit=True)        # silenced at counter 1
    for _ in range(5):
        f.train(0x10, hit=True)    # must not move the counter
    assert f.predict(0x10) is FilterPrediction.DEFER
    assert f._counters[f._index(0x10)] == 1


def test_silence_reset_interval():
    """Silence bits clear every reset_interval committed loads."""
    f = make(reset=8)
    f.train(0x10, hit=False)
    f.train(0x10, hit=False)
    f.train(0x10, hit=True)        # silenced, counter 1 (3 commits so far)
    for i in range(5):             # commits 4..8; reset fires at 8
        f.train(0x80 + i, hit=True)
    assert f.silence_resets == 1
    # Unsilenced again: counter 1 is transient -> DEFER but now trainable.
    f.train(0x10, hit=True)        # 1 -> 2
    f.train(0x10, hit=True)        # 2 -> 3: sure hit again
    assert f.predict(0x10) is FilterPrediction.SURE_HIT


def test_storage_budget_matches_paper():
    """2K entries x (2-bit counter + silence bit) = 768 bytes."""
    f = HitMissFilter(entries=2048, ctr_bits=2)
    assert f.storage_bits == 2048 * 3
    assert f.storage_bits / 8 == 768


def test_direct_mapped_aliasing():
    f = make(entries=4)
    f.train(0, hit=True)
    assert f.predict(4) is f.predict(0)     # same entry


def test_hit_then_miss_oscillation_defers():
    f = make()
    for i in range(12):
        f.train(0x10, hit=(i % 2 == 0))
    assert f.predict(0x10) is FilterPrediction.DEFER


def test_silenced_fraction():
    f = make(entries=4)
    f.train(0, hit=False)
    f.train(0, hit=False)
    f.train(0, hit=True)
    assert 0.0 < f.silenced_fraction() <= 1.0
