import math

import pytest

from repro.common.mathutil import clamp, geomean, is_pow2, log2_int


class TestGeomean:
    def test_single_value(self):
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_two_values(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_is_scale_invariant_ratio(self):
        a = geomean([0.5, 2.0])
        assert a == pytest.approx(1.0)

    def test_matches_log_definition(self):
        vals = [0.3, 1.7, 2.5, 0.9]
        expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
        assert geomean(vals) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-3, 0, 10) == 0

    def test_above(self):
        assert clamp(42, 0, 10) == 10

    def test_degenerate_range(self):
        assert clamp(7, 3, 3) == 3

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)


class TestPow2:
    def test_powers(self):
        for k in range(12):
            assert is_pow2(1 << k)
            assert log2_int(1 << k) == k

    def test_non_powers(self):
        for n in (0, -1, 3, 6, 12, 1000):
            assert not is_pow2(n)

    def test_log2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(12)
