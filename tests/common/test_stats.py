import pytest

from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS, SimStats


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimStats()
        s.cycles = 100
        s.committed_uops = 250
        assert s.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_miss_rate(self):
        s = SimStats()
        s.l1d_accesses = 200
        s.l1d_misses = 46
        assert s.l1d_miss_rate == pytest.approx(0.23)

    def test_replayed_total(self):
        s = SimStats()
        s.replayed_miss = 7
        s.replayed_bank = 5
        assert s.replayed_total == 12

    def test_branch_mpki(self):
        s = SimStats()
        s.committed_uops = 10_000
        s.branch_mispredicts = 50
        assert s.branch_mpki == pytest.approx(5.0)


class TestReplayAccounting:
    def test_miss_cause(self):
        s = SimStats()
        s.record_replayed(CAUSE_L1_MISS, 10)
        assert s.replayed_miss == 10
        assert s.squash_events_miss == 1
        assert s.replayed_bank == 0

    def test_bank_cause(self):
        s = SimStats()
        s.record_replayed(CAUSE_BANK_CONFLICT, 4)
        assert s.replayed_bank == 4
        assert s.squash_events_bank == 1

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValueError):
            SimStats().record_replayed("cosmic_ray", 1)


class TestDeltaAndCopy:
    def test_delta_since(self):
        a = SimStats()
        a.cycles = 100
        a.committed_uops = 150
        a.bump("x", 3)
        b = a.copy()
        b.cycles = 300
        b.committed_uops = 550
        b.bump("x", 4)
        d = b.delta_since(a)
        assert d.cycles == 200
        assert d.committed_uops == 400
        assert d.ipc == pytest.approx(2.0)
        assert d.extra["x"] == 4

    def test_copy_is_independent(self):
        a = SimStats()
        a.cycles = 5
        b = a.copy()
        b.cycles = 9
        b.bump("y")
        assert a.cycles == 5
        assert "y" not in a.extra

    def test_snapshot_contains_derived(self):
        s = SimStats()
        s.cycles = 10
        s.committed_uops = 20
        snap = s.snapshot()
        assert snap["ipc"] == pytest.approx(2.0)
        assert snap["cycles"] == 10
        assert "replayed_total" in snap

    def test_bump_accumulates(self):
        s = SimStats()
        s.bump("k")
        s.bump("k", 2)
        assert s.extra["k"] == 3
