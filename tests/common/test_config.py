import dataclasses

import pytest

from repro.common.config import (
    BRANCH_MISS_PENALTY,
    CacheConfig,
    CoreConfig,
    DramConfig,
    HitMissPolicy,
    SchedPolicyConfig,
    SimConfig,
)


class TestTable1Defaults:
    """The default SimConfig must match the paper's Table 1."""

    def test_core_dimensions(self):
        core = CoreConfig()
        assert core.rob_entries == 192
        assert core.iq_entries == 60
        assert core.lq_entries == 72
        assert core.sq_entries == 48
        assert core.int_prf == 256 and core.fp_prf == 256
        assert core.issue_width == 6
        assert core.fetch_width == 8 and core.retire_width == 8

    def test_functional_units(self):
        core = CoreConfig()
        assert core.num_alu == 4
        assert core.num_muldiv == 1
        assert core.num_fp == 2
        assert core.num_fpmuldiv == 2
        assert core.num_load_ports == 2
        assert core.num_store_ports == 1

    def test_l1d(self):
        cfg = SimConfig().memory.l1d
        assert cfg.size_bytes == 32 * 1024
        assert cfg.assoc == 8
        assert cfg.latency == 4
        assert cfg.banks == 8
        assert cfg.mshrs == 64
        assert cfg.num_sets == 64

    def test_l2(self):
        cfg = SimConfig().memory.l2
        assert cfg.size_bytes == 1024 * 1024
        assert cfg.assoc == 16
        assert cfg.latency == 13

    def test_dram_latency_band(self):
        dram = DramConfig()
        assert dram.base_latency == 75
        assert dram.max_latency == 185

    def test_default_delay_is_4(self):
        assert SimConfig().delay == 4


class TestFrontendDepth:
    """Section 3.1: frontend shrinks to keep the 20-cycle penalty."""

    @pytest.mark.parametrize("delay,depth", [(0, 15), (2, 13), (4, 11), (6, 9)])
    def test_depth(self, delay, depth):
        core = CoreConfig(issue_to_execute_delay=delay)
        assert core.frontend_depth == depth
        # frontend + backend distance stays constant.
        assert core.frontend_depth + delay == 15

    def test_penalty_constant(self):
        assert BRANCH_MISS_PENALTY == 20


class TestValidation:
    def test_default_validates(self):
        SimConfig().validate()

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError):
            SimConfig().with_core(issue_to_execute_delay=99).validate()

    def test_bad_cache_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000).validate()

    def test_bad_hit_miss_policy(self):
        with pytest.raises(ValueError):
            SchedPolicyConfig(hit_miss="bogus").validate()

    def test_criticality_requires_speculative(self):
        with pytest.raises(ValueError):
            SchedPolicyConfig(speculative=False, criticality=True).validate()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SimConfig().name = "x"


class TestWithHelpers:
    def test_with_core_copies(self):
        a = SimConfig()
        b = a.with_core(issue_to_execute_delay=6)
        assert a.delay == 4 and b.delay == 6

    def test_with_l1d(self):
        b = SimConfig().with_l1d(banked=False)
        assert b.memory.l1d.banked is False
        assert b.memory.l2.latency == 13   # untouched

    def test_with_sched(self):
        b = SimConfig().with_sched(hit_miss=HitMissPolicy.FILTER_CTR)
        assert b.sched.hit_miss == HitMissPolicy.FILTER_CTR

    def test_describe_is_plain_data(self):
        d = SimConfig().describe()
        assert d["core"]["rob_entries"] == 192
