"""Execution-backend seam: local pool vs file/spool queue.

The contract under test (normative copy in ``docs/ARCHITECTURE.md``):
every backend runs the same module-level worker over the same (key,
payload) cells and streams results back in completion order — so the
engine's cache entries are byte-identical whichever backend computed
them. The queue backend adds crash-safety mechanics (atomic rename
claims, stale-claim requeue, submitter timeout) that get their own
tests.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.presets import make_config
from repro.experiments.backends import (
    SPOOL_SCHEMA,
    BackendError,
    LocalPoolBackend,
    QueueBackend,
    drain_spool,
    requeue_stale,
)
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    base_cell_payload,
    cell_key,
    run_cells,
    simulate_cell,
)
from repro.traces.registry import resolve_workload


def _payloads(n=2):
    gzip = resolve_workload("gzip")
    return [base_cell_payload(make_config("Baseline_0"), gzip,
                              warmup_uops=50, measure_uops=150 + 10 * i,
                              functional_warmup_uops=0, seed=1)
            for i in range(n)]


def _cells(payloads):
    return [(cell_key(p), p) for p in payloads]


def _drain_in_thread(spool, **kwargs):
    kwargs.setdefault("idle_timeout", 5.0)
    thread = threading.Thread(target=drain_spool, args=(spool,),
                              kwargs=kwargs, daemon=True)
    thread.start()
    return thread


# ---------------------------------------------------------------------------
# Local pool


def test_local_pool_streams_every_cell_inline():
    cells = _cells(_payloads(3))
    seen = []
    LocalPoolBackend(jobs=1).execute(
        cells, simulate_cell,
        lambda key, cell, done, total: seen.append((key, done, total)))
    assert [key for key, _, _ in seen] == [key for key, _ in cells]
    assert [(done, total) for _, done, total in seen] == \
        [(1, 3), (2, 3), (3, 3)]


# ---------------------------------------------------------------------------
# Queue backend round trip


def test_queue_backend_round_trip(tmp_path):
    cells = _cells(_payloads(2))
    spool = tmp_path / "spool"
    results = {}
    worker = _drain_in_thread(spool)
    QueueBackend(spool, timeout=60).execute(
        cells, simulate_cell,
        lambda key, cell, done, total: results.setdefault(key, cell))
    worker.join(timeout=10)
    local = {}
    LocalPoolBackend(jobs=1).execute(
        cells, simulate_cell,
        lambda key, cell, done, total: local.setdefault(key, cell))
    assert set(results) == set(local)
    for key in local:
        assert results[key]["stats"] == local[key]["stats"]


def test_queue_and_local_backends_write_identical_cache_bytes(tmp_path):
    payloads = _payloads(2)
    opts_local = EngineOptions(jobs=1, cache_dir=str(tmp_path / "a"))
    cache_a = ResultCache(opts_local.cache_path())
    stats_local = run_cells(payloads, options=opts_local, cache=cache_a)

    spool = tmp_path / "spool"
    opts_queue = EngineOptions(jobs=1, cache_dir=str(tmp_path / "b"),
                               backend="queue", spool_dir=str(spool))
    worker = _drain_in_thread(spool)
    cache_b = ResultCache(opts_queue.cache_path())
    stats_queue = run_cells(payloads, options=opts_queue, cache=cache_b)
    worker.join(timeout=10)

    assert [s.to_dict() for s in stats_local] == \
        [s.to_dict() for s in stats_queue]
    entries_a = sorted((tmp_path / "a").rglob("*.json"))
    entries_b = sorted((tmp_path / "b").rglob("*.json"))
    named_a = {p.name: p.read_bytes() for p in entries_a
               if "manifest" not in str(p)}
    named_b = {p.name: p.read_bytes() for p in entries_b
               if "manifest" not in str(p) and "spool" not in str(p)}
    assert named_a and set(named_a) == set(named_b)
    for name, blob in named_a.items():
        assert named_b[name] == blob, f"cache entry {name} differs"


def test_concurrent_workers_claim_each_task_exactly_once(tmp_path):
    cells = _cells(_payloads(4))
    spool = tmp_path / "spool"
    tasks = spool / "tasks"
    for key, payload in cells:
        record = {"schema": SPOOL_SCHEMA, "key": key,
                  "worker": "simulate_cell", "payload": payload}
        tasks.mkdir(parents=True, exist_ok=True)
        (tasks / f"{key}.json").write_text(json.dumps(record))
    counts = []
    threads = [threading.Thread(
        target=lambda: counts.append(drain_spool(spool, idle_timeout=0.5)))
        for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert sum(counts) == len(cells)    # rename claim: exactly one winner
    results = sorted((spool / "results").glob("*.json"))
    assert {p.stem for p in results} == {key for key, _ in cells}


# ---------------------------------------------------------------------------
# Failure modes


def test_worker_failure_propagates_as_backend_error(tmp_path):
    payload = _payloads(1)[0]
    del payload["config"]               # simulate_cell will blow up
    spool = tmp_path / "spool"
    worker = _drain_in_thread(spool)
    with pytest.raises(BackendError, match="queue worker failed"):
        QueueBackend(spool, timeout=60).execute(
            [("broken", payload)], simulate_cell,
            lambda *args: None)
    worker.join(timeout=10)


def test_queue_backend_times_out_without_workers(tmp_path):
    cells = _cells(_payloads(1))
    with pytest.raises(BackendError, match="timed out"):
        QueueBackend(tmp_path / "spool", timeout=0.3,
                     poll_interval=0.02).execute(
            cells, simulate_cell, lambda *args: None)


def test_queue_backend_rejects_unknown_worker(tmp_path):
    def mystery(payload):
        return {}

    with pytest.raises(BackendError, match="cannot dispatch"):
        QueueBackend(tmp_path / "spool").execute(
            [("k", {})], mystery, lambda *args: None)


def test_drain_spool_ignores_malformed_tasks(tmp_path):
    spool = tmp_path / "spool"
    tasks = spool / "tasks"
    tasks.mkdir(parents=True)
    (tasks / "junk.json").write_text("{not json")
    (tasks / "wrong-schema.json").write_text(
        json.dumps({"schema": 99, "key": "x", "worker": "simulate_cell",
                    "payload": {}}))
    assert drain_spool(spool, idle_timeout=0.0) == 0
    assert not list((spool / "results").glob("*.json"))


# ---------------------------------------------------------------------------
# Worker-loop controls


def test_drain_spool_max_tasks_stops_early(tmp_path):
    cells = _cells(_payloads(3))
    spool = tmp_path / "spool"
    tasks = spool / "tasks"
    tasks.mkdir(parents=True)
    for key, payload in cells:
        (tasks / f"{key}.json").write_text(json.dumps(
            {"schema": SPOOL_SCHEMA, "key": key,
             "worker": "simulate_cell", "payload": payload}))
    assert drain_spool(spool, max_tasks=2) == 2
    assert len(list(tasks.glob("*.json"))) == 1


def test_requeue_stale_restores_crash_debris(tmp_path):
    spool = tmp_path / "spool"
    claimed = spool / "claimed"
    claimed.mkdir(parents=True)
    (claimed / "dead.json").write_text(json.dumps(
        {"schema": SPOOL_SCHEMA, "key": "dead",
         "worker": "simulate_cell", "payload": {}}))
    assert requeue_stale(spool) == 1
    assert (spool / "tasks" / "dead.json").exists()
    assert not list(claimed.glob("*.json"))
    assert requeue_stale(spool) == 0    # idempotent on an empty claimed/


# ---------------------------------------------------------------------------
# Options plumbing


def test_engine_options_backend_from_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BACKEND", "queue")
    monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "sp"))
    options = EngineOptions.from_env()
    assert options.backend == "queue"
    assert options.spool_path() == tmp_path / "sp"
    assert isinstance(options.execution_backend(), QueueBackend)


def test_spool_defaults_under_cache_dir(tmp_path):
    options = EngineOptions(cache_dir=str(tmp_path), backend="queue")
    assert options.spool_path() == tmp_path / "spool"


def test_queue_without_cache_or_spool_refused():
    options = EngineOptions(cache_dir="off", backend="queue")
    with pytest.raises(ValueError, match="spool"):
        options.spool_path()


def test_unknown_backend_name_refused():
    with pytest.raises(ValueError, match="unknown execution backend"):
        EngineOptions(backend="carrier-pigeon").execution_backend()
