"""Experiment harness tests (tiny simulation volumes)."""

import pytest

from repro.experiments.figures import BASELINE, fig5, headline
from repro.experiments.report import (
    breakdown_table,
    format_table,
    performance_table,
    summary_line,
)
from repro.experiments.runner import (
    Settings,
    _CACHE,
    run_experiment,
)
from repro.experiments.tables import render_table1, render_table2, table2

TINY = Settings(workloads=("gzip", "swim"), warmup_uops=500,
                measure_uops=1500, functional_warmup_uops=5000)


@pytest.fixture(scope="module")
def fig5_result():
    return fig5(TINY)


class TestRunner:
    def test_grid_populated(self, fig5_result):
        assert set(fig5_result.labels()) == {
            "Baseline_0", "SpecSched_4", "SpecSched_4_Shift"}
        for label in fig5_result.labels():
            for wl in ("gzip", "swim"):
                assert fig5_result.get(label, wl).cycles > 0

    def test_baseline_ratio_is_unity(self, fig5_result):
        ratios = fig5_result.ipc_ratio("Baseline_0")
        assert all(r == pytest.approx(1.0) for r in ratios.values())

    def test_gmean_in_plausible_band(self, fig5_result):
        g = fig5_result.gmean_ipc_ratio("SpecSched_4")
        assert 0.3 < g <= 1.3

    def test_breakdown_fields(self, fig5_result):
        b = fig5_result.breakdown("SpecSched_4")
        for wl in ("gzip", "swim"):
            row = b[wl]
            assert set(row) == {"unique", "rpld_miss", "rpld_bank", "total"}
            assert row["total"] >= row["unique"] > 0

    def test_replay_reduction_kinds(self, fig5_result):
        for kind in ("total", "miss", "bank"):
            red = fig5_result.replay_reduction(
                "SpecSched_4_Shift", "SpecSched_4", kind)
            assert -2.0 <= red <= 1.0

    def test_cache_hit_on_second_run(self):
        before = len(_CACHE)
        fig5(TINY)
        assert len(_CACHE) == before     # everything memoized

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("x", [BASELINE, BASELINE], BASELINE.label, TINY)

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("x", [BASELINE], "nope", TINY)


class TestSettings:
    def test_from_env_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "subset")
        s = Settings.from_env()
        assert len(s.workloads) >= 10

    def test_from_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "full")
        assert len(Settings.from_env().workloads) == 36

    def test_from_env_explicit_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "gzip, mcf")
        assert Settings.from_env().workloads == ("gzip", "mcf")

    def test_from_env_typo_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "gzipp")
        with pytest.raises(KeyError):
            Settings.from_env()

    def test_volume_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "123")
        monkeypatch.setenv("REPRO_MEASURE", "456")
        s = Settings.from_env()
        assert s.warmup_uops == 123 and s.measure_uops == 456


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["xx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1    # rectangular

    def test_performance_table_has_gmean_row(self, fig5_result):
        text = performance_table(fig5_result)
        assert "gmean" in text and "SpecSched_4_Shift" in text

    def test_breakdown_table_columns(self, fig5_result):
        text = breakdown_table(fig5_result, "SpecSched_4")
        assert "RpldMiss" in text and "RpldBank" in text and "Unique" in text

    def test_summary_line(self, fig5_result):
        line = summary_line(fig5_result, "SpecSched_4_Shift", "SpecSched_4")
        assert "speedup" in line and "bank" in line


class TestTables:
    def test_table1_mentions_key_structures(self):
        text = render_table1()
        assert "192-entry ROB" in text
        assert "60-entry IQ" in text
        assert "32KB" in text
        assert "75" in text           # DRAM min latency

    def test_table2_runs(self):
        data = table2(TINY)
        assert set(data) == {"gzip", "swim"}
        assert data["swim"]["fp"] is True
        assert data["gzip"]["ipc"] > 0

    def test_render_table2(self):
        text = render_table2(TINY)
        assert "gzip" in text and "swim" in text and "IPC" in text


class TestHeadline:
    def test_headline_numbers_well_formed(self):
        numbers = headline(TINY)
        rows = numbers.rows()
        assert len(rows) == 7
        assert numbers.total_replay_reduction <= 1.0
        assert -1.0 < numbers.speedup_over_specsched < 1.0
