"""Engine tests: cell dispatch, persistent cache, determinism, sweeps.

Determinism is the load-bearing property here: the same cell must yield
bit-identical counters whether simulated inline, in a worker process, or
loaded back from the persistent cache — otherwise figures would depend on
``REPRO_JOBS`` and cache state.
"""

import json

import pytest

from repro.common.stats import SimStats
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    Sweep,
    SweepSeries,
    cell_key,
    cell_payload,
    code_version,
    run_cells,
    simulate_payload,
)
from repro.experiments.runner import (
    ConfigRequest,
    Settings,
    run_experiment,
    run_sweep,
)
from repro.workloads.suite import get_workload

TINY = Settings(workloads=("gzip", "swim"), warmup_uops=500,
                measure_uops=1500, functional_warmup_uops=5000)

GRID = [
    ConfigRequest("Baseline_0", "Baseline_0", banked=False),
    ConfigRequest("SpecSched_4", "SpecSched_4", banked=True),
]

GRID4 = Settings(workloads=("gzip", "swim", "mcf", "art"), warmup_uops=500,
                 measure_uops=1500, functional_warmup_uops=5000)


def _payload(workload="gzip", preset="SpecSched_4", **overrides):
    volumes = dict(warmup_uops=500, measure_uops=1500,
                   functional_warmup_uops=5000, seed=1)
    volumes.update(overrides)
    return cell_payload(preset, get_workload(workload), **volumes)


class TestResultCache:
    def test_miss_then_memory_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("aa" * 32) is None
        stats = SimStats(cycles=10, committed_uops=20)
        cache.put("aa" * 32, stats)
        hit = cache.get("aa" * 32)
        assert hit.to_dict() == stats.to_dict()
        assert cache.memory_hits == 1 and cache.misses == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        stats = SimStats(cycles=7, committed_uops=13)
        stats.bump("adhoc", 3)
        ResultCache(tmp_path).put("bb" * 32, stats, {"why": "test"})
        fresh = ResultCache(tmp_path)          # new memory, same disk
        hit = fresh.get("bb" * 32)
        assert hit is not None and hit.to_dict() == stats.to_dict()
        assert fresh.disk_hits == 1 and fresh.misses == 0

    def test_entries_are_sharded_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(_payload())
        cache.put(key, SimStats(cycles=1), _payload())
        path = tmp_path / key[:2] / f"{key}.json"
        assert path.exists()
        entry = json.loads(path.read_text())
        assert entry["key"] == key
        assert entry["payload"]["seed"] == 1

    @pytest.mark.parametrize("garbage", [
        "not json{", "[]", "42", '{"schema": 99}',
        '{"schema": 1, "stats": []}',
        '{"schema": 1, "stats": {"cycles": 1, "ipc": 2.0}}',
    ])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        key = cell_key(_payload())
        cache.put(key, SimStats(cycles=1))
        (tmp_path / key[:2] / f"{key}.json").write_text(garbage)
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None

    def test_disabled_disk_layer(self):
        cache = ResultCache(None)
        cache.put("cc" * 32, SimStats(cycles=1))
        assert cache.entry_count() == 0
        assert ResultCache(None).get("cc" * 32) is None

    def test_returned_stats_are_copies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("dd" * 32, SimStats(cycles=5))
        first = cache.get("dd" * 32)
        first.cycles = 999
        assert cache.get("dd" * 32).cycles == 5


class TestCellPayload:
    def test_payload_is_self_contained_and_json(self):
        payload = _payload()
        json.dumps(payload)                   # picklable and serializable
        assert payload["code_version"] == code_version()

    def test_key_changes_with_any_knob(self):
        base = cell_key(_payload())
        assert cell_key(_payload(workload="swim")) != base
        assert cell_key(_payload(preset="Baseline_0")) != base
        assert cell_key(_payload(measure_uops=1501)) != base
        assert cell_key(_payload(seed=2)) != base

    def test_simulate_payload_matches_direct_simulation(self):
        from repro.pipeline.sim import run_workload

        stat_dict = simulate_payload(_payload())
        direct = run_workload("gzip", "SpecSched_4", warmup_uops=500,
                              measure_uops=1500, seed=1,
                              functional_warmup_uops=5000)
        assert stat_dict == direct.stats.to_dict()


class TestDeterminism:
    """Same cell: serial == process pool == cache round-trip."""

    def test_serial_pool_and_cache_identical(self, tmp_path):
        payloads = [_payload("gzip"), _payload("mcf", "SpecSched_4_Crit")]
        serial = run_cells(payloads, EngineOptions(jobs=1),
                           ResultCache(None))
        pooled = run_cells(payloads, EngineOptions(jobs=2),
                           ResultCache(None))
        primed = ResultCache(tmp_path)
        run_cells(payloads, EngineOptions(jobs=1), primed)
        reload_cache = ResultCache(tmp_path)   # fresh memory, warm disk
        reloaded = run_cells(payloads, EngineOptions(jobs=1), reload_cache)
        for a, b, c in zip(serial, pooled, reloaded):
            assert a.to_dict() == b.to_dict() == c.to_dict()
        assert reload_cache.disk_hits == len(payloads)
        assert reload_cache.misses == 0

    def test_duplicate_payloads_simulate_once(self):
        payload = _payload()
        cache = ResultCache(None)
        results = run_cells([payload, dict(payload)],
                            EngineOptions(jobs=1), cache)
        assert results[0].to_dict() == results[1].to_dict()
        assert cache.stores == 1       # both lookups missed, one simulation

    @pytest.mark.slow
    def test_grid_identical_across_jobs_and_warm_cache(self, tmp_path):
        """The acceptance grid: 2 presets x 4 workloads, three ways."""
        serial = run_experiment("grid", GRID, "Baseline_0", GRID4,
                                options=EngineOptions(jobs=1),
                                cache=ResultCache(tmp_path / "c"))
        pooled = run_experiment("grid", GRID, "Baseline_0", GRID4,
                                options=EngineOptions(jobs=4),
                                cache=ResultCache(None))
        warm = ResultCache(tmp_path / "c")     # fresh memory, warm disk
        cached = run_experiment("grid", GRID, "Baseline_0", GRID4,
                                options=EngineOptions(jobs=1), cache=warm)
        for request in GRID:
            for wl in GRID4.workloads:
                s = serial.get(request.label, wl).to_dict()
                assert s == pooled.get(request.label, wl).to_dict()
                assert s == cached.get(request.label, wl).to_dict()
        # Warm run performed zero simulations.
        assert warm.misses == 0
        assert warm.disk_hits == len(GRID) * len(GRID4.workloads)


class TestEngineOptions:
    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        options = EngineOptions.from_env()
        assert options.jobs == 1
        assert options.cache_path() is not None    # default cache dir

    def test_from_env_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "6")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        options = EngineOptions.from_env()
        assert options.jobs == 6
        assert options.cache_path() == tmp_path

    @pytest.mark.parametrize("token", ["off", "none", "0", "", "OFF"])
    def test_cache_disable_tokens(self, token):
        assert EngineOptions(cache_dir=token).cache_path() is None

    def test_xdg_cache_home_respected(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        path = EngineOptions.from_env().cache_path()
        assert path == tmp_path / "repro-isca2015"


class TestSweep:
    def _sweep_dict(self):
        return {
            "name": "mini",
            "baseline": "Baseline_0",
            "workloads": ["gzip", "swim"],
            "warmup_uops": 500,
            "measure_uops": 1500,
            "functional_warmup_uops": 5000,
            "series": [
                {"label": "Baseline_0", "preset": "Baseline_0",
                 "banked": False},
                {"label": "SpecSched_4", "preset": "SpecSched_4"},
            ],
        }

    def test_from_dict_and_run(self, tmp_path):
        sweep = Sweep.from_dict(self._sweep_dict())
        result = run_sweep(sweep, options=EngineOptions(jobs=1),
                           cache=ResultCache(None))
        assert set(result.labels()) == {"Baseline_0", "SpecSched_4"}
        assert result.workloads == ["gzip", "swim"]
        assert result.get("SpecSched_4", "gzip").cycles > 0

    def test_sweep_matches_run_experiment(self):
        sweep = Sweep.from_dict(self._sweep_dict())
        via_sweep = run_sweep(sweep, options=EngineOptions(jobs=1),
                              cache=ResultCache(None))
        via_grid = run_experiment("mini", GRID, "Baseline_0", TINY,
                                  options=EngineOptions(jobs=1),
                                  cache=ResultCache(None))
        for wl in TINY.workloads:
            assert (via_sweep.get("SpecSched_4", wl).to_dict()
                    == via_grid.get("SpecSched_4", wl).to_dict())

    def test_toml_round_trip(self, tmp_path):
        toml_text = (
            'name = "mini"\n'
            'baseline = "Baseline_0"\n'
            'workloads = ["gzip", "swim"]\n'
            'warmup_uops = 500\n'
            'measure_uops = 1500\n'
            'functional_warmup_uops = 5000\n\n'
            '[[series]]\nlabel = "Baseline_0"\npreset = "Baseline_0"\n'
            'banked = false\n\n'
            '[[series]]\nlabel = "SpecSched_4"\npreset = "SpecSched_4"\n'
        )
        path = tmp_path / "mini.toml"
        path.write_text(toml_text)
        assert Sweep.from_file(path) == Sweep.from_dict(self._sweep_dict())

    def test_json_file(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(self._sweep_dict()))
        assert Sweep.from_file(path) == Sweep.from_dict(self._sweep_dict())

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "mini.yaml"
        path.write_text("nope")
        with pytest.raises(ValueError, match="unsupported file type"):
            Sweep.from_file(path)

    def test_validation_failures(self):
        data = self._sweep_dict()
        data["baseline"] = "missing"
        with pytest.raises(ValueError, match="baseline"):
            Sweep.from_dict(data)
        data = self._sweep_dict()
        data["series"].append(dict(data["series"][0]))
        with pytest.raises(ValueError, match="duplicate"):
            Sweep.from_dict(data)
        data = self._sweep_dict()
        data["series"][1]["preset"] = "SpecSched_4_Typo"
        with pytest.raises(ValueError):
            Sweep.from_dict(data)
        data = self._sweep_dict()
        data["workloads"] = ["gzipp"]
        with pytest.raises(KeyError):
            Sweep.from_dict(data)
        data = self._sweep_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown sweep fields"):
            Sweep.from_dict(data)

    def test_sweep_overrides_win_over_settings(self):
        sweep = Sweep.from_dict(self._sweep_dict())
        effective = TINY.with_sweep_overrides(sweep)
        assert effective.workloads == ("gzip", "swim")
        assert effective.measure_uops == 1500
        bare = Sweep(name="bare", baseline="b",
                     series=(SweepSeries("b", "Baseline_0"),))
        assert TINY.with_sweep_overrides(bare) == TINY


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_is_hex_digest(self):
        assert len(code_version()) == 64
        int(code_version(), 16)

    def test_non_semantic_exclusions_still_exist(self):
        """Guard against renames silently emptying the exclusion list."""
        import repro
        from repro.experiments.engine import _NON_SEMANTIC_SOURCES

        root = __import__("pathlib").Path(repro.__file__).parent
        for relative in _NON_SEMANTIC_SOURCES:
            assert (root / relative).exists(), relative
