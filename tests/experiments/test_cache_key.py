"""Property tests for serialization and the persistent-cache key.

Two guarantees keep the on-disk cache sound:

1. ``to_dict``/``from_dict`` round-trip losslessly for every preset
   configuration, every suite workload and :class:`SimStats`;
2. the content hash is *injective over fields*: perturbing any single
   leaf value in a config's dict encoding changes the hash. (We walk the
   fully nested encoding and flip every leaf one at a time — stronger
   than spot-checking a few fields.)
"""

import itertools

from repro.common.config import SimConfig
from repro.common.serialize import canonical_json, stable_hash
from repro.common.stats import SimStats
from repro.core.presets import PRESET_NAMES, make_config
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import SUITE


def _perturb_leaf(value):
    """A different value of the same JSON shape."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "_x"
    raise TypeError(f"unexpected leaf type {type(value)!r}")


def _leaf_paths(node, prefix=()):
    """Yield (path, value) for every leaf in a nested dict/list."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _leaf_paths(value, prefix + (key,))
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            yield from _leaf_paths(value, prefix + (index,))
    else:
        yield prefix, node


def _with_leaf(node, path, value):
    """Deep copy of ``node`` with the leaf at ``path`` replaced."""
    if not path:
        return value
    head, rest = path[0], path[1:]
    if isinstance(node, dict):
        out = dict(node)
        out[head] = _with_leaf(node[head], rest, value)
        return out
    out = list(node)
    out[head] = _with_leaf(node[head], rest, value)
    return out


class TestConfigRoundTrip:
    def test_every_preset_round_trips(self):
        for name in PRESET_NAMES:
            for banked, load_ports in ((True, 2), (False, 1)):
                config = make_config(name, banked=banked,
                                     load_ports=load_ports)
                rebuilt = SimConfig.from_dict(config.to_dict())
                assert rebuilt == config, name
                assert rebuilt.content_hash() == config.content_hash()
                rebuilt.validate()

    def test_default_config_round_trips(self):
        config = SimConfig()
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_dict_encoding_is_canonical(self):
        one = make_config("SpecSched_4_Crit")
        two = make_config("SpecSched_4_Crit")
        assert canonical_json(one.to_dict()) == canonical_json(two.to_dict())


class TestConfigHashInjectivity:
    def test_all_presets_hash_differently(self):
        hashes = {}
        for name in PRESET_NAMES:
            for banked in (True, False):
                config = make_config(name, banked=banked)
                digest = config.content_hash()
                assert digest not in hashes, (name, hashes.get(digest))
                hashes[digest] = (name, banked)

    def test_any_single_field_change_changes_hash(self):
        """Perturb every leaf of the nested encoding, one at a time."""
        base = make_config("SpecSched_4").to_dict()
        base_hash = stable_hash(base)
        leaves = list(_leaf_paths(base))
        assert len(leaves) > 60          # the whole of Table 1 is covered
        for path, value in leaves:
            mutated = _with_leaf(base, path, _perturb_leaf(value))
            assert stable_hash(mutated) != base_hash, path

    def test_load_ports_and_banking_distinguish(self):
        pairs = itertools.combinations(
            [make_config("SpecSched_4", banked=b, load_ports=p)
             for b in (True, False) for p in (1, 2)], 2)
        for one, two in pairs:
            assert one.content_hash() != two.content_hash()


class TestWorkloadSpecRoundTrip:
    def test_every_suite_workload_round_trips(self):
        for name, spec in SUITE.items():
            rebuilt = WorkloadSpec.from_dict(spec.to_dict())
            assert rebuilt == spec, name
            assert rebuilt.content_hash() == spec.content_hash()
            rebuilt.validate()

    def test_workloads_hash_differently(self):
        hashes = {spec.content_hash() for spec in SUITE.values()}
        assert len(hashes) == len(SUITE)

    def test_rebuilt_spec_builds_identical_trace(self):
        spec = SUITE["xalancbmk"]
        rebuilt = WorkloadSpec.from_dict(spec.to_dict())
        original = spec.build_trace(3)
        clone = rebuilt.build_trace(3)
        for _ in range(500):
            a, b = original.next_uop(), clone.next_uop()
            assert (a.pc, a.opclass, tuple(a.srcs), a.dst, a.mem_addr) == \
                   (b.pc, b.opclass, tuple(b.srcs), b.dst, b.mem_addr)


class TestStatsRoundTrip:
    def test_round_trip_with_extra(self):
        stats = SimStats(cycles=123, committed_uops=456, replayed_miss=7)
        stats.bump("custom", 9)
        rebuilt = SimStats.from_dict(stats.to_dict())
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.ipc == stats.ipc

    def test_unknown_counter_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown SimStats"):
            SimStats.from_dict({"cycles": 1, "not_a_counter": 2})

    def test_snapshot_output_rejected(self):
        """snapshot() mixes in derived rates (ipc, ...) — feeding it back
        must fail loudly, not half-populate an instance."""
        import pytest

        snap = SimStats(cycles=10, committed_uops=20).snapshot()
        with pytest.raises(ValueError, match="unknown SimStats"):
            SimStats.from_dict(snap)

    def test_json_round_trip(self):
        import json

        stats = SimStats(cycles=5, l1d_misses=2)
        stats.bump("k", 1)
        rebuilt = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt.to_dict() == stats.to_dict()
