from repro.experiments.timeline import TracingSimulator, render_timeline
from repro.isa.trace import ListTrace

from tests.conftest import alu, load, run_to_completion, spec_config


def test_render_back_to_back_chain():
    sim = TracingSimulator(spec_config(delay=4),
                           ListTrace([alu([2], 4), alu([4], 5)]))
    run_to_completion(sim)
    art = render_timeline(sim, labels={0: "add r4", 1: "add r5"})
    lines = art.splitlines()
    assert lines[1].startswith("add r4")
    assert "I" in art and "E" in art


def test_replayed_attempt_marked():
    sim = TracingSimulator(spec_config(delay=4),
                           ListTrace([load(0x1000, dst=4), alu([4], 5)]))
    sim.hierarchy.l2.fill(0x1000)       # L1 miss -> replay
    run_to_completion(sim)
    art = render_timeline(sim)
    assert "x" in art                   # squashed issue attempt visible


def test_no_events_handled():
    sim = TracingSimulator(spec_config(), ListTrace([]))
    assert "no issue events" in render_timeline(sim)


def test_issue_log_has_every_uop():
    sim = TracingSimulator(spec_config(delay=2),
                           ListTrace([alu([2], 4), alu([2], 5), alu([4], 6)]))
    run_to_completion(sim)
    assert set(sim.issue_log) == {0, 1, 2}
