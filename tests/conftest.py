"""Shared test fixtures and µop/trace builders."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.common.config import HitMissPolicy, SimConfig
from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp
from repro.pipeline.cpu import Simulator

# Architectural registers guaranteed ready at reset (initial mappings).
ADDR_REG = 2      # never written in hand traces: loads' address source
ACC_REG = 3


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite tests/golden/goldens.json from the current "
             "simulator instead of asserting against it")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test; deselect with -m 'not slow'")


@pytest.fixture
def regen_goldens(request) -> bool:
    return bool(request.config.getoption("--regen-goldens"))


@pytest.fixture(autouse=True)
def _hermetic_engine_env(monkeypatch):
    """Keep the suite off the user's real result cache: tests must not
    read stale entries from (or write into) ~/.cache. Tests exercising
    the persistent layer point REPRO_CACHE_DIR at a tmp_path or pass an
    explicit ResultCache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    monkeypatch.delenv("REPRO_JOBS", raising=False)


def uop(opclass: OpClass, pc: int = 0x100, srcs: Optional[List[int]] = None,
        dst: Optional[int] = None, addr: int = 0, taken: bool = False,
        target: int = 0) -> MicroOp:
    """Hand-trace µop template (seq assigned by fetch)."""
    return MicroOp(seq=0, pc=pc, opclass=opclass, srcs=srcs or [],
                   dst=dst, mem_addr=addr, taken=taken, target=target)


def load(addr: int, dst: int, pc: int = 0x100) -> MicroOp:
    return uop(OpClass.LOAD, pc=pc, srcs=[ADDR_REG], dst=dst, addr=addr)


def store(addr: int, data_reg: int = ACC_REG, pc: int = 0x180) -> MicroOp:
    return uop(OpClass.STORE, pc=pc, srcs=[ADDR_REG, data_reg], addr=addr)


def alu(srcs: List[int], dst: int, pc: int = 0x200) -> MicroOp:
    return uop(OpClass.INT_ALU, pc=pc, srcs=srcs, dst=dst)


def spec_config(delay: int = 4, banked: bool = False,
                speculative: bool = True,
                hit_miss: str = HitMissPolicy.ALWAYS_HIT,
                shifting: bool = False, criticality: bool = False,
                **core_overrides) -> SimConfig:
    """Small-knob configuration builder for timing tests."""
    config = SimConfig(name="test")
    config = config.with_core(issue_to_execute_delay=delay, **core_overrides)
    config = config.with_l1d(banked=banked)
    config = config.with_sched(speculative=speculative, hit_miss=hit_miss,
                               schedule_shifting=shifting,
                               criticality=criticality)
    return config.validate()


def build_sim(uops: List[MicroOp], config: Optional[SimConfig] = None,
              prefill_lines: Optional[List[int]] = None) -> Simulator:
    """Simulator over a finite hand trace; optionally pre-warm L1 lines."""
    sim = Simulator(config or spec_config(), ListTrace(uops))
    for line_addr in prefill_lines or []:
        sim.hierarchy.l1d.fill(line_addr)
        sim.hierarchy.l2.fill(line_addr)
    return sim


def run_to_completion(sim: Simulator, max_cycles: int = 20_000) -> None:
    sim.run(max_cycles=max_cycles)
    assert sim.done, "hand trace did not drain"


@pytest.fixture
def default_config() -> SimConfig:
    return spec_config()
