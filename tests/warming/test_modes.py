"""Warming-tier selection: resolution precedence and dispatch."""

from __future__ import annotations

import pytest

import repro.pipeline.warming as warming
from repro.pipeline.warming import (
    WARMING_MODES,
    default_mode,
    resolve_mode,
    set_default_mode,
    warm_stream,
)

from tests.warming.conftest import build_sim, list_trace


@pytest.fixture(autouse=True)
def _restore_default(monkeypatch):
    monkeypatch.delenv("REPRO_WARMING", raising=False)
    yield
    set_default_mode(None)


class TestResolution:
    def test_mode_names(self):
        assert WARMING_MODES == ("auto", "scalar", "vectorized")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown warming mode"):
            resolve_mode("simd")

    def test_auto_resolves_by_numpy(self, monkeypatch):
        monkeypatch.setattr(warming, "_numpy_available", True)
        assert resolve_mode("auto") == "vectorized"
        monkeypatch.setattr(warming, "_numpy_available", False)
        assert resolve_mode("auto") == "scalar"

    def test_explicit_vectorized_without_numpy_fails(self, monkeypatch):
        monkeypatch.setattr(warming, "_numpy_available", False)
        with pytest.raises(ValueError, match="requires numpy"):
            resolve_mode("vectorized")

    def test_scalar_always_available(self, monkeypatch):
        monkeypatch.setattr(warming, "_numpy_available", False)
        assert resolve_mode("scalar") == "scalar"

    def test_env_channel(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMING", "scalar")
        assert default_mode() == "scalar"
        assert resolve_mode() == "scalar"

    def test_forced_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMING", "scalar")
        set_default_mode("auto")
        assert default_mode() == "auto"

    def test_set_default_validates(self):
        with pytest.raises(ValueError):
            set_default_mode("simd")

    def test_reset_to_none_restores_auto(self):
        set_default_mode("scalar")
        set_default_mode(None)
        assert default_mode() == "auto"


class TestDispatch:
    def test_scalar_dispatch_without_numpy(self, monkeypatch):
        monkeypatch.setattr(warming, "_numpy_available", False)
        sim = build_sim("Baseline_0", list_trace(1, 300))
        assert warm_stream(sim, sim.trace, 300) == 300

    def test_explicit_mode_beats_default(self, monkeypatch):
        set_default_mode("scalar")
        sim = build_sim("Baseline_0", list_trace(2, 300))
        # explicit scalar request under a scalar default: plain dispatch
        assert warm_stream(sim, sim.trace, 300, mode="scalar") == 300


class TestEnginePayload:
    def test_cell_key_excludes_warming(self):
        from repro.experiments.engine import cell_key, cell_payload
        from repro.traces.registry import resolve_workload

        payload = cell_payload("Baseline_0", resolve_workload("gzip"),
                               warmup_uops=100, measure_uops=100,
                               functional_warmup_uops=100, seed=1)
        tagged = dict(payload)
        tagged["warming"] = "scalar"
        assert cell_key(tagged) == cell_key(payload)

    def test_simulate_payload_honors_warming_field(self):
        from repro.experiments.engine import cell_payload, simulate_payload
        from repro.traces.registry import resolve_workload

        payload = cell_payload("Baseline_0", resolve_workload("gzip"),
                               warmup_uops=100, measure_uops=300,
                               functional_warmup_uops=500, seed=1)
        plain = simulate_payload(dict(payload))
        tagged = dict(payload)
        tagged["warming"] = "scalar"
        assert simulate_payload(tagged) == plain

    def test_run_sampled_accepts_warming(self):
        from repro.checkpoint.sampling import SamplingSpec, run_sampled

        spec = SamplingSpec(intervals=2, interval_uops=200,
                            warmup_uops=100, period_uops=1000,
                            offset_uops=500)
        scalar = run_sampled("gzip", "Baseline_0", spec, seed=1,
                             warming="scalar")
        default = run_sampled("gzip", "Baseline_0", spec, seed=1)
        assert scalar.mean_ipc == default.mean_ipc
