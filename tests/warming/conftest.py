"""Shared builders for the warming-tier equivalence suite."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.presets import make_config
from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp
from repro.pipeline.cpu import Simulator
from repro.traces.registry import resolve_workload

PRESETS = ("Baseline_0", "SpecSched_4_Combined")


def build_sim(preset: str, trace) -> Simulator:
    return Simulator(make_config(preset), trace)


def workload_sim(preset: str, name: str, seed: int = 7) -> Simulator:
    return build_sim(preset, resolve_workload(name).build_trace(seed))


def state_bytes(sim: Simulator) -> bytes:
    return pickle.dumps(sim.state_dict())


def random_uops(seed: int, count: int, pcs: int = 40) -> list:
    """A mixed µop stream with clustered pcs (branch aliasing likely)."""
    rng = random.Random(seed)
    ops = []
    for seq in range(count):
        kind = rng.random()
        if kind < 0.3:
            ops.append(MicroOp(
                seq=seq, pc=0x400 + 4 * rng.randrange(pcs),
                opclass=OpClass.LOAD, srcs=[2], dst=4,
                mem_addr=rng.randrange(1 << 20)))
        elif kind < 0.4:
            ops.append(MicroOp(
                seq=seq, pc=0x800 + 4 * rng.randrange(pcs),
                opclass=OpClass.STORE, srcs=[2, 4],
                mem_addr=rng.randrange(1 << 20)))
        elif kind < 0.6:
            pc = 0xc00 + 4 * rng.randrange(pcs)
            ops.append(MicroOp(
                seq=seq, pc=pc, opclass=OpClass.BRANCH, srcs=[4],
                taken=rng.random() < 0.5, target=pc + rng.randrange(2, 60)))
        elif kind < 0.65:
            pc = 0x1000 + 4 * rng.randrange(pcs)
            call = rng.random() < 0.5
            ops.append(MicroOp(
                seq=seq, pc=pc,
                opclass=OpClass.CALL if call else OpClass.RET,
                taken=True, target=pc + 16))
        else:
            ops.append(MicroOp(
                seq=seq, pc=0x1400 + 4 * rng.randrange(pcs),
                opclass=OpClass.INT_ALU, srcs=[2], dst=5))
    return ops


def list_trace(seed: int, count: int) -> ListTrace:
    return ListTrace(random_uops(seed, count))


@pytest.fixture
def recorded_trace(tmp_path):
    """A short recorded gzip trace on disk; returns its path."""
    from repro.traces.format import capture

    path = tmp_path / "warm.trc"
    capture(resolve_workload("gzip").build_trace(3), path, 9000, wp_seed=3)
    return path
