"""Block supply: record blocks, decoded batches and the array views."""

from __future__ import annotations

import pytest

from repro.traces.format import FileTrace
from repro.traces.registry import resolve_workload

from tests.warming.conftest import list_trace, random_uops

np = pytest.importorskip("numpy")


def drain_fields(trace):
    """(pc, mem_addr, target, opclass, taken) per µop via next_uop."""
    out = []
    while True:
        uop = trace.next_uop()
        if uop is None:
            return out
        out.append((uop.pc, uop.mem_addr, uop.target, int(uop.opclass),
                    uop.taken))


class TestRecordBlocks:
    def test_matches_next_uop(self, recorded_trace):
        reference = drain_fields(FileTrace(recorded_trace))
        replay = FileTrace(recorded_trace)
        got = []
        while True:
            records = replay.next_record_block(1000)
            if records is None:
                break
            for rec in records:
                got.append((int(rec["pc"]), int(rec["mem_addr"]),
                            int(rec["target"]), int(rec["opclass"]),
                            bool(rec["flags"] & 1)))
        assert got == reference

    def test_mixed_consumption_preserves_stream(self, recorded_trace):
        reference = drain_fields(FileTrace(recorded_trace))
        replay = FileTrace(recorded_trace)
        got = []
        records = replay.next_record_block(137)
        assert len(records) == 137
        got.extend((int(r["pc"]), int(r["mem_addr"]), int(r["target"]),
                    int(r["opclass"]), bool(r["flags"] & 1))
                   for r in records)
        for _ in range(3):                  # switch to per-µop decode
            uop = replay.next_uop()
            got.append((uop.pc, uop.mem_addr, uop.target, int(uop.opclass),
                        uop.taken))
        while True:                         # record supply, with the
            records = replay.next_record_block(512)   # decoded fallback
            if records is not None:
                got.extend((int(r["pc"]), int(r["mem_addr"]),
                            int(r["target"]), int(r["opclass"]),
                            bool(r["flags"] & 1)) for r in records)
                continue
            batch = replay.next_block(512)
            if not batch:
                break
            got.extend((u.pc, u.mem_addr, u.target, int(u.opclass),
                        u.taken) for u in batch)
        assert got == reference

    def test_exhaustion_returns_none(self, recorded_trace):
        replay = FileTrace(recorded_trace)
        total = 0
        while True:
            records = replay.next_record_block(4096)
            if records is None:
                break
            total += len(records)
        assert total == replay.info.uop_count
        assert replay.next_record_block(10) is None

    def test_replayed_counter_advances(self, recorded_trace):
        replay = FileTrace(recorded_trace)
        replay.next_record_block(500)
        state = replay.state_dict()
        fresh = FileTrace(recorded_trace)
        fresh.load_state_dict(state)
        assert drain_fields(fresh) == drain_fields(FileTrace(
            recorded_trace))[500:]

    def test_zero_request(self, recorded_trace):
        assert FileTrace(recorded_trace).next_record_block(0) is None


class TestNextBlock:
    def test_workload_trace_matches_next_uop(self):
        reference_trace = resolve_workload("gzip").build_trace(5)
        reference = [(u.pc, u.mem_addr, u.target, int(u.opclass), u.taken)
                     for u in (reference_trace.next_uop()
                               for _ in range(5000))]
        blocked = resolve_workload("gzip").build_trace(5)
        got = []
        while len(got) < 5000:
            batch = blocked.next_block(977)
            got.extend((u.pc, u.mem_addr, u.target, int(u.opclass), u.taken)
                       for u in batch)
        assert got[:5000] == reference

    def test_scenario_trace_matches_next_uop(self):
        spec = resolve_workload("pointer-chase-storm")
        reference_trace = spec.build_trace(5)
        reference = [(u.pc, u.mem_addr, int(u.opclass))
                     for u in (reference_trace.next_uop()
                               for _ in range(3000))]
        blocked = spec.build_trace(5)
        got = []
        while len(got) < 3000:
            batch = blocked.next_block(501)
            got.extend((u.pc, u.mem_addr, int(u.opclass)) for u in batch)
        assert got[:3000] == reference

    def test_list_trace_base_implementation(self):
        trace = list_trace(23, 250)
        first = trace.next_block(100)
        rest = trace.next_block(1000)
        assert len(first) == 100 and len(rest) == 150
        assert trace.next_block(10) == []

    def test_state_round_trip_mid_block(self):
        trace = resolve_workload("mcf").build_trace(9)
        trace.next_block(777)
        state = trace.state_dict()
        expected = [u.pc for u in trace.next_block(500)]
        resumed = resolve_workload("mcf").build_trace(9)
        resumed.load_state_dict(state)
        assert [u.pc for u in resumed.next_block(500)] == expected


class TestUopBlock:
    def test_from_uops_fields(self):
        from repro.pipeline.warming.blocks import UopBlock

        uops = random_uops(31, 400)
        block = UopBlock.from_uops(uops)
        assert block.size == 400
        assert block.pc.tolist() == [u.pc for u in uops]
        assert block.addr.tolist() == [u.mem_addr for u in uops]
        assert block.target.tolist() == [u.target for u in uops]
        assert block.opclass.tolist() == [int(u.opclass) for u in uops]
        assert block.taken.tolist() == [u.taken for u in uops]

    def test_kind_masks_match_uop_flags(self):
        from repro.pipeline.warming.blocks import (
            IS_BRANCH,
            IS_CALL_OR_RET,
            IS_LOAD,
            IS_MEM,
        )
        from repro.isa.opclass import OpClass

        for uop in random_uops(37, 300):
            assert IS_MEM[int(uop.opclass)] == uop.is_mem
            assert IS_LOAD[int(uop.opclass)] == uop.is_load
            assert IS_BRANCH[int(uop.opclass)] == uop.is_branch
            assert IS_CALL_OR_RET[int(uop.opclass)] == (
                uop.opclass in (OpClass.CALL, OpClass.RET))
