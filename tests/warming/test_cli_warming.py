"""CLI + gate surface for the warming track (no benchmark executed)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.bench import BENCHMARKS
from repro.perf.gate import GATE_SPECS, LOWER

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBenchHelp:
    def test_help_lists_every_benchmark(self, capsys):
        """The literal name list in --help must not drift from BENCHMARKS."""
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        for name in BENCHMARKS:
            assert name in help_text, name

    def test_unknown_name_exits_2_listing_valid_names(self, tmp_path,
                                                      capsys):
        rc = main(["bench", "nosuch", "--out-dir", str(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown benchmark" in err
        assert "warming" in err


class TestGateSpec:
    def test_warming_registered(self):
        assert "warming" in BENCHMARKS
        assert "warming" in GATE_SPECS

    def test_digest_ceiling_is_zero(self):
        """A checkpoint divergence can never pass, whatever the baseline."""
        specs = {spec.metric: spec for spec in GATE_SPECS["warming"]}
        assert specs["speedup"].direction == "higher"
        assert not specs["speedup"].normalize
        digest = specs["digest_mismatches"]
        assert digest.direction == LOWER
        assert digest.ceiling == 0.0

    def test_committed_baseline_has_warming_entry(self):
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        entry = baseline["results"]["warming"]
        assert entry["quick"] is True
        assert entry["metrics"]["speedup"] > 1.0
        assert entry["metrics"]["digest_mismatches"] == 0.0
