"""TAGE fold math: incremental folds, bulk folds, warm_predict."""

from __future__ import annotations

import random

import pytest

from repro.frontend.tage import TageLite

np = pytest.importorskip("numpy")


def branch_stream(seed: int, count: int, pcs: int = 64):
    """(pc, taken) pairs with clustered pcs so tables actually train."""
    rng = random.Random(seed)
    return [(0x4000 + 4 * rng.randrange(pcs), rng.random() < 0.55)
            for _ in range(count)]


def scalar_rows(tage: TageLite, pc: int):
    """Per-table (idx, tag) via the reference hash methods."""
    tables = range(tage.config.num_tagged_tables)
    return ([tage._index(pc, t) for t in tables],
            [tage._tag(pc, t) for t in tables])


class TestIncrementalFolds:
    def test_predict_keeps_folds_live(self):
        """After every predict, the live folds equal a fresh recompute."""
        tage = TageLite()
        for pc, taken in branch_stream(1, 800):
            _, state = tage.predict(pc)
            tage.update(taken, state)
            if tage._folds_history != tage._history:
                continue           # a mispredict repair invalidated them
            live_idx = list(tage._fold_idx)
            live_tag = list(tage._fold_tag)
            tage._recompute_folds(tage._history)
            assert tage._fold_idx == live_idx
            assert tage._fold_tag == live_tag


class TestBulkFolds:
    def test_rows_match_scalar_hashes(self):
        """tage_fold_indices rows == _index/_tag with outcome history."""
        from repro.pipeline.warming.engine import tage_fold_indices

        tage = TageLite()
        for pc, taken in branch_stream(2, 300):     # arbitrary start state
            _, state = tage.predict(pc)
            tage.update(taken, state)

        block = branch_stream(3, 257)
        pcs = np.array([pc for pc, _ in block], dtype=np.uint64)
        takens = np.array([taken for _, taken in block], dtype=np.uint64)
        idx_rows, tag_rows = tage_fold_indices(tage, pcs, takens)

        for i, (pc, taken) in enumerate(block):
            expected_idx, expected_tag = scalar_rows(tage, pc)
            assert list(idx_rows[i]) == expected_idx, i
            assert list(tag_rows[i]) == expected_tag, i
            tage._push_history(taken)    # history after branch = outcome

    def test_split_blocks_match_whole(self):
        """Folding a block in two halves equals folding it at once."""
        from repro.pipeline.warming.engine import tage_fold_indices

        tage = TageLite()
        for pc, taken in branch_stream(4, 200):
            _, state = tage.predict(pc)
            tage.update(taken, state)

        block = branch_stream(5, 180)
        pcs = np.array([pc for pc, _ in block], dtype=np.uint64)
        takens = np.array([taken for _, taken in block], dtype=np.uint64)
        whole_idx, whole_tag = tage_fold_indices(tage, pcs, takens)

        split = 77
        half_idx, half_tag = tage_fold_indices(
            tage, pcs[:split], takens[:split])
        for taken in takens[:split]:     # advance history to the boundary
            tage._push_history(bool(taken))
        rest_idx, rest_tag = tage_fold_indices(
            tage, pcs[split:], takens[split:])

        assert [list(r) for r in half_idx + rest_idx] == \
            [list(r) for r in whole_idx]
        assert [list(r) for r in half_tag + rest_tag] == \
            [list(r) for r in whole_tag]


class TestWarmPredict:
    def test_matches_predict(self):
        """warm_predict with correct rows is bit-identical to predict."""
        reference = TageLite()
        warmed = TageLite()
        for pc, taken in branch_stream(6, 600):
            pred_r, state_r = reference.predict(pc)
            idxs, tags = scalar_rows(warmed, pc)
            pred_w, state_w = warmed.warm_predict(pc, idxs, tags)
            assert (pred_r, state_r) == (pred_w, state_w)
            reference.update(taken, state_r)
            warmed.update(taken, state_w)
        assert reference.state_dict() == warmed.state_dict()
