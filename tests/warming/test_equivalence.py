"""Scalar vs vectorized warming: identical state, identical checkpoints.

The contract under test (see ``repro.pipeline.warming.engine``): after
warming the same stream span, the vectorized tier must leave every
component byte-identical to the scalar reference — same ``state_dict``
pickles, same ``.ckpt`` digests. Everything else about the vectorized
tier is an implementation detail; this equality is the feature.
"""

from __future__ import annotations

import pytest

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp
from repro.pipeline.warming import warm_stream

from tests.warming.conftest import (
    PRESETS,
    build_sim,
    list_trace,
    random_uops,
    state_bytes,
    workload_sim,
)

np = pytest.importorskip("numpy")


def warmed_state(preset, trace_factory, uops, mode, train=True, **kwargs):
    sim = build_sim(preset, trace_factory())
    consumed = warm_stream(sim, sim.trace, uops, train_policy=train,
                           mode=mode, **kwargs)
    return consumed, state_bytes(sim)


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("workload", ("gzip", "mcf"))
    def test_fast_forward_identity(self, preset, workload):
        states = {}
        for mode in ("scalar", "vectorized"):
            sim = workload_sim(preset, workload)
            assert sim.fast_forward(9000, mode=mode) == 9000
            states[mode] = state_bytes(sim)
        assert states["scalar"] == states["vectorized"]

    def test_functional_warmup_identity(self):
        from repro.traces.registry import resolve_workload

        states = {}
        for mode in ("scalar", "vectorized"):
            sim = workload_sim("SpecSched_4_Combined", "gzip")
            sim.functional_warmup(
                resolve_workload("gzip").build_trace(7), 8000, mode=mode)
            states[mode] = state_bytes(sim)
        assert states["scalar"] == states["vectorized"]

    def test_scenario_identity(self):
        from repro.traces.registry import resolve_workload

        states = {}
        for mode in ("scalar", "vectorized"):
            sim = build_sim(
                "SpecSched_4_Combined",
                resolve_workload("pointer-chase-storm").build_trace(5))
            assert sim.fast_forward(6000, mode=mode) == 6000
            states[mode] = state_bytes(sim)
        assert states["scalar"] == states["vectorized"]


class TestRecordedTraces:
    def test_state_and_digest_identity(self, recorded_trace, tmp_path):
        from repro.checkpoint.format import checkpoint_digest, save_checkpoint
        from repro.traces.format import FileTrace

        states, digests = {}, {}
        for mode in ("scalar", "vectorized"):
            sim = build_sim("SpecSched_4_Combined", FileTrace(recorded_trace))
            assert sim.fast_forward(9000, mode=mode) == 9000
            states[mode] = state_bytes(sim)
            ckpt = tmp_path / f"{mode}.ckpt"
            save_checkpoint(sim, ckpt)
            digests[mode] = checkpoint_digest(ckpt)
        assert states["scalar"] == states["vectorized"]
        assert digests["scalar"] == digests["vectorized"]

    def test_non_frame_aligned_blocks(self, recorded_trace):
        from repro.traces.format import FileTrace

        states = {}
        for mode, kwargs in (("scalar", {}),
                             ("vectorized", {"block_uops": 97})):
            sim = build_sim("Baseline_0", FileTrace(recorded_trace))
            consumed = warm_stream(sim, sim.trace, 8503, train_policy=True,
                                   mode=mode, **kwargs)
            assert consumed == 8503
            states[mode] = state_bytes(sim)
        assert states["scalar"] == states["vectorized"]


class TestListStreams:
    def test_random_stream_identity(self):
        consumed_s, scalar = warmed_state(
            "SpecSched_4_Combined", lambda: list_trace(11, 4000), 4000,
            "scalar")
        consumed_v, vectorized = warmed_state(
            "SpecSched_4_Combined", lambda: list_trace(11, 4000), 4000,
            "vectorized")
        assert consumed_s == consumed_v == 4000
        assert scalar == vectorized

    def test_force_arrays_identity(self):
        from repro.pipeline.warming.engine import warm_stream_vectorized

        sim_s = build_sim("SpecSched_4_Combined", list_trace(13, 3000))
        warm_stream(sim_s, sim_s.trace, 3000, train_policy=True,
                    mode="scalar")
        sim_v = build_sim("SpecSched_4_Combined", list_trace(13, 3000))
        consumed = warm_stream_vectorized(sim_v, sim_v.trace, 3000,
                                          train_policy=True,
                                          force_arrays=True, block_uops=97)
        assert consumed == 3000
        assert state_bytes(sim_s) == state_bytes(sim_v)

    def test_short_trace_reports_consumed(self):
        for mode in ("scalar", "vectorized"):
            sim = build_sim("Baseline_0", list_trace(17, 500))
            assert warm_stream(sim, sim.trace, 2000, mode=mode) == 500

    def test_empty_trace(self):
        for mode in ("scalar", "vectorized"):
            sim = build_sim("Baseline_0", ListTrace([]))
            assert warm_stream(sim, sim.trace, 100, mode=mode) == 0

    def test_zero_uops(self):
        for mode in ("scalar", "vectorized"):
            sim = build_sim("Baseline_0", list_trace(19, 100))
            assert warm_stream(sim, sim.trace, 0, mode=mode) == 0


class TestBtbDemoteDivergence:
    """The one case where folded-ahead TAGE indices go stale.

    A branch trained taken (TAGE direction = taken) whose BTB entry has
    been evicted demotes to not-taken at predict; when it then resolves
    not-taken, no repair fires and the history keeps the TAGE
    *direction*, not the outcome. ``resolve_block`` must detect this and
    abandon the remaining precomputed rows, or every later branch in the
    block hashes with a wrong history bit.
    """

    @staticmethod
    def _stream():
        def br(pc, taken):
            return MicroOp(seq=0, pc=pc, opclass=OpClass.BRANCH, srcs=[0],
                           target=pc + 7, taken=taken)

        victim = 0x1000
        num_sets = 4096              # BTB: 8192 entries, 2 ways
        alias1 = victim + 4 * num_sets
        alias2 = victim + 8 * num_sets
        uops = [br(victim, True) for _ in range(6)]       # train taken
        for _ in range(3):                                # evict via set
            uops.append(br(alias1, True))
            uops.append(br(alias2, True))
        uops.append(br(victim, False))                    # the trigger
        import random

        rng = random.Random(9)
        for _ in range(200):                              # stale-fold tail
            uops.append(br(0x2000 + 8 * rng.randrange(40),
                           rng.random() < 0.5))
        return uops

    def test_trigger_fires(self):
        """The crafted stream really exercises the demote case."""
        sim = build_sim("SpecSched_4_Combined", ListTrace(self._stream()))
        unit = sim.branch_unit
        events = 0
        for template in self._stream():
            uop = template.clone_arch(0)
            pred_taken, pred_target = unit.predict(uop)
            uop.pred_taken, uop.pred_target = pred_taken, pred_target
            tage_direction = uop.bp_state[1][3]
            mispredicted = (pred_taken != uop.taken) or (
                uop.taken and pred_target != uop.target)
            if not mispredicted and tage_direction != uop.taken:
                events += 1
            unit.resolve(uop)
        assert events >= 1

    def test_identity_across_divergence(self):
        from repro.pipeline.warming.engine import warm_stream_vectorized

        stream = self._stream()
        sim_s = build_sim("SpecSched_4_Combined", ListTrace(stream))
        warm_stream(sim_s, sim_s.trace, len(stream), train_policy=True,
                    mode="scalar")
        sim_v = build_sim("SpecSched_4_Combined", ListTrace(stream))
        warm_stream_vectorized(sim_v, sim_v.trace, len(stream),
                               train_policy=True, force_arrays=True)
        assert state_bytes(sim_s) == state_bytes(sim_v)


class TestPropertyEquivalence:
    def test_random_seeds_identity(self):
        """Property-style sweep: many random streams, exact identity."""
        from repro.pipeline.warming.engine import warm_stream_vectorized

        for seed in range(12):
            count = 600 + 137 * seed
            sim_s = build_sim("SpecSched_4_Combined",
                              ListTrace(random_uops(seed, count)))
            warm_stream(sim_s, sim_s.trace, count, train_policy=True,
                        mode="scalar")
            sim_v = build_sim("SpecSched_4_Combined",
                              ListTrace(random_uops(seed, count)))
            warm_stream_vectorized(sim_v, sim_v.trace, count,
                                   train_policy=True, force_arrays=True,
                                   block_uops=101)
            assert state_bytes(sim_s) == state_bytes(sim_v), seed
