"""O3PipeView export: record shapes, replay semantics, golden output."""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.core.presets import make_config
from repro.isa.opclass import OpClass
from repro.pipeline.cpu import Simulator
from repro.telemetry.events import EventBus, JsonlEventWriter
from repro.telemetry.export import (
    TICKS_PER_CYCLE,
    export_o3pipeview,
    write_o3pipeview,
)
from repro.workloads.suite import get_workload

GOLDEN_PATH = Path(__file__).parent / "golden_o3pipeview.txt"

LOAD = int(OpClass.LOAD)


def _lines(events):
    out = io.StringIO()
    count = write_o3pipeview(events, out)
    return count, out.getvalue().splitlines()


def test_retired_uop_record():
    events = [
        (10, "fetch", 1, 0x400, 0, LOAD),
        (11, "rename", 1, 0x400, 0, 0),
        (14, "issue", 1, 0x400, 1, 4),
        (18, "writeback", 1, 0x400, 0, 0),
        (20, "commit", 1, 0x400, 0, 0),
    ]
    count, lines = _lines(events)
    assert count == 1
    assert lines == [
        f"O3PipeView:fetch:{10 * TICKS_PER_CYCLE}:0x00000400:0:1:load",
        f"O3PipeView:decode:{10 * TICKS_PER_CYCLE}",
        f"O3PipeView:rename:{11 * TICKS_PER_CYCLE}",
        f"O3PipeView:dispatch:{11 * TICKS_PER_CYCLE}",
        f"O3PipeView:issue:{14 * TICKS_PER_CYCLE}",
        f"O3PipeView:complete:{18 * TICKS_PER_CYCLE}",
        f"O3PipeView:retire:{20 * TICKS_PER_CYCLE}"
        f":store:{18 * TICKS_PER_CYCLE}",
    ]


def test_flushed_uop_reports_zero_for_unreached_stages():
    events = [(5, "fetch", 2, 0x500, 1, 0), (6, "rename", 2, 0x500, 0, 0),
              (9, "squash", 2, 0x500, 0, 0)]
    count, lines = _lines(events)
    assert count == 1
    assert lines[0].endswith(":2:int_alu (wrong-path)")
    assert lines[4] == "O3PipeView:issue:0"       # never issued
    assert lines[6] == "O3PipeView:retire:0:store:0"


def test_replayed_uop_reports_last_issue_and_final_completion():
    events = [
        (10, "fetch", 3, 0x600, 0, LOAD),
        (11, "rename", 3, 0x600, 0, 0),
        (14, "issue", 3, 0x600, 1, 4),
        (18, "writeback", 3, 0x600, 0, 0),
        (22, "issue", 3, 0x600, 2, 4),     # replay re-issue
        (30, "writeback", 3, 0x600, 0, 0),
        (32, "commit", 3, 0x600, 0, 0),
    ]
    _, lines = _lines(events)
    assert lines[4] == f"O3PipeView:issue:{22 * TICKS_PER_CYCLE}"
    assert lines[5] == f"O3PipeView:complete:{30 * TICKS_PER_CYCLE}"


def test_reissue_voids_a_stale_completion():
    events = [
        (10, "fetch", 4, 0x700, 0, LOAD),
        (11, "rename", 4, 0x700, 0, 0),
        (14, "issue", 4, 0x700, 1, 4),
        (18, "writeback", 4, 0x700, 0, 0),
        (22, "issue", 4, 0x700, 2, 4),     # re-issued, still in flight
    ]
    _, lines = _lines(events)
    assert lines[5] == "O3PipeView:complete:0"


def test_records_sorted_by_sequence_number():
    events = [(9, "fetch", 7, 0x100, 0, 0), (3, "fetch", 2, 0x200, 0, 0)]
    _, lines = _lines(events)
    assert ":2:" in lines[0]
    assert ":7:" in lines[7]


# ---------------------------------------------------------------------------
# Golden: a fixed-seed recorded run exports to exactly this file


def _record_and_export(tmp_path) -> str:
    events_path = tmp_path / "golden.events.jsonl.gz"
    out_path = tmp_path / "golden.o3pipeview.txt"
    config = make_config("SpecSched_4_Crit", banked=True)
    trace = get_workload("mcf").build_trace(1)
    with JsonlEventWriter(events_path) as writer:
        Simulator(config, trace,
                  event_bus=EventBus(writer)).run(max_uops=250)
    header, count = export_o3pipeview(events_path, out_path)
    assert header["format"] == "repro-events"
    assert count >= 250
    return out_path.read_text()


def test_golden_o3pipeview(tmp_path, request):
    text = _record_and_export(tmp_path)
    if request.config.getoption("--regen-goldens"):
        GOLDEN_PATH.write_text(text)
        return
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; run pytest tests/telemetry "
                    f"--regen-goldens and commit it")
    assert text == GOLDEN_PATH.read_text(), (
        "O3PipeView export drifted; if intentional, regenerate with "
        "--regen-goldens and commit the diff")
