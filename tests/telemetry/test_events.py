"""Event bus, sinks, and the JSONL event-trace format."""

from __future__ import annotations

import json

import pytest

from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.telemetry.events import (
    EV_FILTER_OUT,
    EV_ISSUE,
    EV_REPLAY,
    EVENT_FIELDS,
    EVENTS_FORMAT,
    EVENTS_VERSION,
    AggregatorSink,
    EventBus,
    EventsFormatError,
    JsonlEventWriter,
    NULL_BUS,
    RingBufferSink,
    count_events,
    null_emit,
    open_events,
)
from repro.workloads.suite import get_workload


# ---------------------------------------------------------------------------
# Bus


def test_empty_bus_emits_to_the_null_sink():
    bus = EventBus()
    assert bus.emit is null_emit
    bus.emit(1, EV_ISSUE, 2)            # must be callable and do nothing


def test_null_bus_is_shared_and_disabled():
    assert NULL_BUS.emit is null_emit


def test_single_sink_bus_uses_the_sinks_bound_emit():
    sink = RingBufferSink()
    bus = EventBus()
    assert bus.attach(sink) is sink     # assignment-friendly return
    assert bus.emit == sink.emit
    bus.emit(7, EV_ISSUE, 3, pc=0x40, a=1, b=2)
    assert sink.events() == [(7, EV_ISSUE, 3, 0x40, 1, 2)]


def test_multi_sink_bus_fans_out_to_every_sink():
    first, second = RingBufferSink(), RingBufferSink()
    bus = EventBus(first)
    bus.attach(second)
    bus.emit(1, EV_ISSUE, 1)
    assert first.events() == second.events() == [(1, EV_ISSUE, 1, 0, 0, 0)]


def test_emission_points_see_sinks_attached_mid_run():
    bus = EventBus()
    emitting = bus
    sink = RingBufferSink()
    bus.attach(sink)
    emitting.emit(5, EV_ISSUE, 9)       # read through the bus, not captured
    assert len(sink) == 1


# ---------------------------------------------------------------------------
# Sinks


def test_ring_buffer_keeps_the_most_recent_tail():
    sink = RingBufferSink(capacity=3)
    for cycle in range(5):
        sink.emit(cycle, EV_ISSUE, cycle)
    assert [event[0] for event in sink.events()] == [2, 3, 4]
    sink.clear()
    assert len(sink) == 0


def test_aggregator_histograms_and_census():
    sink = AggregatorSink()
    sink.emit(10, EV_REPLAY, 1, a=3, b=7)
    sink.emit(20, EV_REPLAY, 2, a=3, b=9)
    sink.emit(30, EV_ISSUE, 3)
    assert sink.counts == {EV_REPLAY: 2, EV_ISSUE: 1}
    assert sink.replay_burst == {3: 2}
    assert sink.issue_to_replay == {7: 1, 9: 1}
    report = sink.report()
    assert report["replay_burst"] == {"3": 2}    # JSON-able string keys
    assert report["events"][EV_ISSUE] == 1


def test_aggregator_filter_accuracy_quadrants():
    sink = AggregatorSink()
    # pc 0x10: predicted hit / was hit (correct) twice.
    sink.emit(1, EV_FILTER_OUT, 1, pc=0x10, a=1, b=1)
    sink.emit(2, EV_FILTER_OUT, 2, pc=0x10, a=1, b=1)
    # pc 0x20: predicted hit / was miss, then predicted miss / was miss.
    sink.emit(3, EV_FILTER_OUT, 3, pc=0x20, a=1, b=0)
    sink.emit(4, EV_FILTER_OUT, 4, pc=0x20, a=0, b=0)
    assert sink.filter_pcs[0x10] == [2, 0, 0, 0]
    assert sink.filter_pcs[0x20] == [0, 1, 0, 1]
    assert sink.filter_accuracy() == pytest.approx(3 / 4)


def test_filter_accuracy_empty_is_zero():
    assert AggregatorSink().filter_accuracy() == 0.0


# ---------------------------------------------------------------------------
# JSONL writer + reader


EVENTS = [
    (1, EV_ISSUE, 1, 0x100, 0, 4),
    (5, EV_REPLAY, 1, 0x100, 2, 4),
]


def _write(path, provenance=None):
    with JsonlEventWriter(path, provenance=provenance) as writer:
        for event in EVENTS:
            writer.emit(*event)
    return writer


@pytest.mark.parametrize("name", ["t.events.jsonl", "t.events.jsonl.gz"])
def test_writer_round_trip(tmp_path, name):
    path = tmp_path / name
    writer = _write(path, provenance={"workload": "unit"})
    assert writer.count == len(EVENTS)
    assert writer.compressed == name.endswith(".gz")
    header, events = open_events(path)
    assert header["format"] == EVENTS_FORMAT
    assert header["version"] == EVENTS_VERSION
    assert header["fields"] == list(EVENT_FIELDS)
    assert header["provenance"] == {"workload": "unit"}
    assert list(events) == EVENTS


def test_count_events(tmp_path):
    path = tmp_path / "t.events.jsonl.gz"
    _write(path)
    _, counts = count_events(path)
    assert counts == {EV_ISSUE: 1, EV_REPLAY: 1}


def test_identical_streams_produce_identical_gzip_bytes(tmp_path):
    first, second = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
    _write(first, provenance={"seed": 1})
    _write(second, provenance={"seed": 1})
    assert first.read_bytes() == second.read_bytes()


def test_open_events_rejects_non_event_files(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(EventsFormatError):
        open_events(path)
    path.write_text("not json at all\n")
    with pytest.raises(EventsFormatError):
        open_events(path)


def test_open_events_rejects_future_versions(tmp_path):
    path = tmp_path / "future.jsonl"
    header = {"format": EVENTS_FORMAT, "version": EVENTS_VERSION + 1,
              "fields": list(EVENT_FIELDS), "provenance": {}}
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(EventsFormatError, match="version"):
        open_events(path)


def test_corrupt_event_line_raises_on_iteration(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    header = {"format": EVENTS_FORMAT, "version": EVENTS_VERSION,
              "fields": list(EVENT_FIELDS), "provenance": {}}
    path.write_text(json.dumps(header) + "\n[1,\n")
    _, events = open_events(path)
    with pytest.raises(EventsFormatError, match="corrupt"):
        list(events)


# ---------------------------------------------------------------------------
# End to end: same seed => byte-identical recorded trace


def _record(path, seed: int) -> None:
    config = make_config("SpecSched_4_Crit", banked=True)
    trace = get_workload("mcf").build_trace(seed)
    with JsonlEventWriter(path, provenance={"seed": seed}) as writer:
        sim = Simulator(config, trace, event_bus=EventBus(writer))
        sim.run(max_uops=1_500)


def test_recorded_runs_are_byte_deterministic(tmp_path):
    first, second = tmp_path / "a.events.jsonl.gz", tmp_path / "b.events.jsonl.gz"
    _record(first, seed=1)
    _record(second, seed=1)
    assert first.read_bytes() == second.read_bytes()
    header, counts = count_events(first)
    assert header["provenance"]["seed"] == 1
    assert counts["commit"] >= 1_500     # every retirement was recorded
