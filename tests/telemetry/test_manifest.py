"""Run manifests: build/write/read round trip, rollup, engine wiring."""

from __future__ import annotations

import json

from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    cell_key,
    cell_payload,
    run_cells,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifests_dir,
    peak_rss_kb,
    read_manifests,
    render_rollup,
    rollup,
    write_manifest,
)
from repro.workloads.suite import get_workload

VOLUMES = dict(warmup_uops=200, measure_uops=600,
               functional_warmup_uops=1_000, seed=1)


def _payload(workload="gzip", preset="Baseline_0"):
    return cell_payload(preset, get_workload(workload), banked=False,
                        **VOLUMES)


def test_build_manifest_captures_the_cell_identity():
    payload = _payload()
    key = cell_key(payload)
    record = build_manifest(payload, key, cached=False, wall_seconds=1.25,
                            peak_rss_kb=4_096, jobs=2)
    assert record["schema"] == MANIFEST_SCHEMA
    assert record["key"] == key
    assert record["config"] == "Baseline_0"
    assert record["workload"] == "gzip"
    assert record["workload_kind"] == "spec"
    assert record["measure_uops"] == VOLUMES["measure_uops"]
    assert record["cached"] is False
    assert record["wall_seconds"] == 1.25
    assert record["peak_rss_kb"] == 4_096
    assert record["jobs"] == 2
    assert "checkpoint_digest" not in record
    assert "sampling_interval" not in record
    json.dumps(record)                   # must be JSON-able as-is


def test_write_and_read_round_trip(tmp_path):
    payload = _payload()
    record = build_manifest(payload, cell_key(payload), cached=True,
                            wall_seconds=0.0)
    path = write_manifest(tmp_path, record)
    assert path.name == f"{record['key']}.json"
    assert read_manifests(tmp_path) == [record]


def test_rewriting_a_key_overwrites_in_place(tmp_path):
    payload = _payload()
    key = cell_key(payload)
    write_manifest(tmp_path, build_manifest(
        payload, key, cached=False, wall_seconds=2.0))
    write_manifest(tmp_path, build_manifest(
        payload, key, cached=True, wall_seconds=0.0))
    records = read_manifests(tmp_path)
    assert len(records) == 1
    assert records[0]["cached"] is True


def test_read_manifests_skips_foreign_files(tmp_path):
    (tmp_path / "junk.json").write_text("not json")
    (tmp_path / "foreign.json").write_text('{"schema": 999}')
    payload = _payload()
    write_manifest(tmp_path, build_manifest(
        payload, cell_key(payload), cached=False, wall_seconds=1.0))
    assert len(read_manifests(tmp_path)) == 1
    assert read_manifests(tmp_path / "does-not-exist") == []


def test_rollup_splits_simulated_and_cached():
    payloads = [_payload("gzip"), _payload("mcf"),
                _payload("gzip", "SpecSched_4")]
    records = [
        build_manifest(payloads[0], "k0", cached=False, wall_seconds=2.0,
                       peak_rss_kb=100),
        build_manifest(payloads[1], "k1", cached=True, wall_seconds=0.0,
                       peak_rss_kb=50),
        build_manifest(payloads[2], "k2", cached=False, wall_seconds=3.0,
                       peak_rss_kb=200),
    ]
    summary = rollup(records)
    assert summary["total"] == {
        "cells": 3, "cached": 1, "simulated": 2,
        "wall_seconds": 5.0, "peak_rss_kb": 200}
    assert summary["by_config"]["Baseline_0"]["cells"] == 2
    assert summary["by_config"]["SpecSched_4"]["wall_seconds"] == 3.0
    assert summary["by_workload"]["gzip"]["simulated"] == 2
    # Cached cells contribute no wall time: the table reports real work.
    assert summary["by_workload"]["mcf"]["wall_seconds"] == 0.0
    text = render_rollup(summary)
    assert "cells: 3" in text
    assert "Baseline_0" in text
    assert "by workload:" in text


def test_manifests_dir_follows_the_cache():
    assert manifests_dir(None) is None
    assert manifests_dir("/tmp/cache").name == "manifests"


def test_peak_rss_is_positive_on_posix():
    assert peak_rss_kb() > 0


# ---------------------------------------------------------------------------
# Engine wiring


def test_run_cells_writes_manifests_and_marks_cache_hits(tmp_path):
    cache_dir = tmp_path / "cache"
    payloads = [_payload("gzip"), _payload("mcf")]
    progress_seen = []

    def progress(done, total, manifest):
        progress_seen.append((done, total, manifest["workload"]))

    run_cells(payloads, options=EngineOptions(jobs=1),
              cache=ResultCache(cache_dir), progress=progress)
    records = {r["workload"]: r for r in
               read_manifests(manifests_dir(cache_dir))}
    assert set(records) == {"gzip", "mcf"}
    assert all(not r["cached"] for r in records.values())
    assert all(r["wall_seconds"] > 0 for r in records.values())
    assert [p[:2] for p in progress_seen] == [(1, 2), (2, 2)]

    # Second run: all hits, manifests overwritten as cached.
    run_cells(payloads, options=EngineOptions(jobs=1),
              cache=ResultCache(cache_dir))
    records = read_manifests(manifests_dir(cache_dir))
    assert len(records) == 2
    assert all(r["cached"] for r in records)
    assert all(r["wall_seconds"] == 0.0 for r in records)


def test_run_cells_without_disk_cache_skips_manifests(tmp_path):
    stats = run_cells([_payload("gzip")], options=EngineOptions(jobs=1),
                      cache=ResultCache(None))
    assert stats[0].committed_uops > 0
    assert not list(tmp_path.iterdir())   # nothing written anywhere here
