"""Metric probes: zero perturbation, occupancy sampling, the collector."""

from __future__ import annotations

from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.telemetry.events import EventBus, RingBufferSink
from repro.telemetry.probes import (
    MetricsCollector,
    OccupancyProbe,
    render_metrics,
)
from repro.workloads.suite import get_workload

UOPS = 2_000


def _run(collector=None):
    config = make_config("SpecSched_4_Crit", banked=True)
    trace = get_workload("mcf").build_trace(1)
    if collector is None:
        sim = Simulator(config, trace)
    else:
        sim = Simulator(config, trace, event_bus=collector.bus,
                        extra_stages=collector.probes)
    sim.run(max_uops=UOPS)
    return sim


def test_instrumented_stats_are_bit_identical_to_plain():
    """The whole point of the seam: observing must not perturb."""
    plain = _run().stats.to_dict()
    collector = MetricsCollector()
    sim = _run(collector)
    collector.finalize(sim)
    instrumented = sim.stats.to_dict()
    instrumented.pop("telemetry")
    assert instrumented == plain
    assert "telemetry" not in plain      # events-off dicts stay unchanged


def test_occupancy_probe_samples_every_cycle():
    collector = MetricsCollector()
    sim = _run(collector)
    probe = sim.stage(OccupancyProbe.name)
    assert probe.cycles == sim.now
    summary = probe.summary()
    assert summary["cycles"] == sim.now
    assert set(summary["structures"]) == set(OccupancyProbe.STRUCTURES)
    for row in summary["structures"].values():
        assert sum(row["hist"].values()) == sim.now
        assert row["peak"] >= 0
    # A real OoO run keeps the window busy: the ROB must have been
    # non-empty at some point.
    assert summary["structures"]["rob"]["peak"] > 0


def test_collector_finalize_fills_the_telemetry_table():
    collector = MetricsCollector()
    sim = _run(collector)
    table = collector.finalize(sim)
    assert sim.stats.telemetry is table
    assert table["events"]["commit"] >= UOPS
    assert 0.0 <= table["filter_accuracy"] <= 1.0
    assert table["occupancy"]["cycles"] == sim.now
    # The table must survive the stats dict round trip.
    from repro.common.stats import SimStats

    rebuilt = SimStats.from_dict(sim.stats.to_dict())
    assert rebuilt.telemetry == table


def test_collector_bus_accepts_extra_sinks():
    bus = EventBus()
    ring = bus.attach(RingBufferSink())
    collector = MetricsCollector(bus)
    assert collector.bus is bus
    sim = _run(collector)
    assert len(ring) > 0                 # both sinks saw the stream
    assert collector.aggregator.counts


def test_finalize_without_probe_omits_occupancy():
    collector = MetricsCollector()
    config = make_config("Baseline_0", banked=False)
    trace = get_workload("gzip").build_trace(1)
    # Bus wired, probes not: e.g. a caller recording events only.
    sim = Simulator(config, trace, event_bus=collector.bus)
    sim.run(max_uops=500)
    table = collector.finalize(sim)
    assert "occupancy" not in table


def test_render_metrics_lists_every_section():
    collector = MetricsCollector()
    sim = _run(collector)
    text = render_metrics(collector.finalize(sim))
    assert "event census:" in text
    assert "filter accuracy" in text
    assert "occupancy over" in text
    assert "rob" in text


def test_run_workload_collector_integration():
    from repro.pipeline.sim import run_workload

    collector = MetricsCollector()
    result = run_workload("mcf", "SpecSched_4_Crit", warmup_uops=200,
                          measure_uops=800, functional_warmup_uops=1_000,
                          collector=collector)
    assert result.stats.telemetry["events"]
    plain = run_workload("mcf", "SpecSched_4_Crit", warmup_uops=200,
                         measure_uops=800, functional_warmup_uops=1_000)
    assert plain.stats.telemetry == {}
    measured = result.stats.to_dict()
    measured.pop("telemetry")
    assert measured == plain.stats.to_dict()
