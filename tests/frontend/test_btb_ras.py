import pytest

from repro.frontend.btb import Btb
from repro.frontend.ras import ReturnAddressStack


class TestBtb:
    def test_miss_then_hit(self):
        b = Btb(entries=16, ways=2)
        assert b.lookup(0x100) is None
        b.install(0x100, 0x400)
        assert b.lookup(0x100) == 0x400

    def test_update_existing(self):
        b = Btb(entries=16, ways=2)
        b.install(0x100, 0x400)
        b.install(0x100, 0x500)
        assert b.lookup(0x100) == 0x500

    def test_way_lru_eviction(self):
        b = Btb(entries=2, ways=2)    # single set
        b.install(0x0, 1)
        b.install(0x4, 2)
        b.lookup(0x0)                 # refresh first
        b.install(0x8, 3)             # evicts 0x4
        assert b.lookup(0x0) == 1
        assert b.lookup(0x4) is None
        assert b.lookup(0x8) == 3

    def test_hit_miss_counters(self):
        b = Btb(entries=16, ways=2)
        b.lookup(0x10)
        b.install(0x10, 0x20)
        b.lookup(0x10)
        assert b.misses == 1 and b.hits == 1

    def test_geometry_rejected(self):
        with pytest.raises(ValueError):
            Btb(entries=10, ways=3)


class TestRas:
    def test_push_pop(self):
        r = ReturnAddressStack(8)
        r.push(0x100)
        r.push(0x200)
        assert r.pop() == 0x200
        assert r.pop() == 0x100

    def test_underflow_returns_zero(self):
        r = ReturnAddressStack(4)
        assert r.pop() == 0
        assert r.underflows == 1

    def test_circular_overwrite(self):
        r = ReturnAddressStack(2)
        r.push(1)
        r.push(2)
        r.push(3)              # overwrites 1; depth saturates at 2
        assert r.pop() == 3
        assert r.pop() == 2
        assert r.pop() == 0    # depth exhausted: underflow
        assert r.underflows == 1

    def test_snapshot_restore(self):
        r = ReturnAddressStack(4)
        r.push(10)
        snap = r.snapshot()
        r.push(20)
        r.pop()
        r.pop()
        r.restore(snap)
        assert r.pop() == 10

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
