from repro.common.config import CoreConfig
from repro.common.stats import SimStats
from repro.frontend.branch_unit import BranchUnit
from repro.frontend.fetch import FetchStage
from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp


def alu(pc):
    return MicroOp(0, pc, OpClass.INT_ALU, srcs=[1], dst=2)


def make_fetch(uops, delay=4):
    core = CoreConfig(issue_to_execute_delay=delay)
    return FetchStage(ListTrace(uops), BranchUnit(), core, SimStats())


def test_fetch_width_limit():
    f = make_fetch([alu(i) for i in range(20)])
    f.tick(0)
    assert len(f.pipe) == 8     # fetch_width


def test_frontend_depth_delays_delivery():
    f = make_fetch([alu(i) for i in range(4)], delay=4)   # depth 11
    f.tick(0)
    assert f.deliver(10, 8) == []
    out = f.deliver(11, 8)
    assert len(out) == 4


def test_delivery_respects_width():
    f = make_fetch([alu(i) for i in range(8)])
    f.tick(0)
    out = f.deliver(100, 3)
    assert len(out) == 3
    assert len(f.deliver(100, 8)) == 5


def test_seq_assignment_monotonic():
    f = make_fetch([alu(i) for i in range(12)])
    f.tick(0)
    f.tick(1)
    seqs = [u.seq for _, u in f.pipe]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_undeliver_preserves_order():
    f = make_fetch([alu(i) for i in range(6)])
    f.tick(0)
    out = f.deliver(50, 6)
    f.undeliver(out[2:], 50)
    again = f.deliver(50, 6)
    assert [u.pc for u in again] == [2, 3, 4, 5]


def test_wrong_path_mode_on_mispredict():
    # A branch that is taken: cold predictor predicts not-taken (BTB miss),
    # so fetch must switch to wrong-path synthesis.
    br = MicroOp(0, 0x10, OpClass.BRANCH, srcs=[1], taken=True, target=0x40)
    f = make_fetch([alu(0), br, alu(0x11), alu(0x12)])
    f.tick(0)
    assert f.wrong_path
    f.tick(1)
    # Wrong-path fetch is lazy: tick(1) records a virtual full-width
    # group instead of materializing µops into the pipe...
    assert f.fetched_wrong == 8
    assert not any(u.wrong_path for _, u in f.pipe)
    # ...but delivery materializes them once their frontend traversal
    # completes, younger than (and behind) the mispredicted branch.
    out = f.deliver(1 + f.depth, 16)
    wrong = [u for u in out if u.wrong_path]
    assert len(wrong) == 8, "wrong-path µops must materialize on delivery"
    seqs = [u.seq for u in out]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_wrong_path_bulk_discard_matches_eager_stream():
    # Two fetches with the same trace seed: one delivers wrong-path µops
    # before redirecting, one redirects straight away (bulk discard).
    # After the redirect both must synthesize identical wrong-path
    # streams in the *next* episode — the bulk skip advances the
    # synthesis RNG exactly as if the µops had been built.
    br = MicroOp(0, 0x10, OpClass.BRANCH, srcs=[1], taken=True, target=0x40)

    def episode(deliver_first):
        trace = [alu(0), br.clone_arch(), alu(0x11), br.clone_arch()]
        f = make_fetch(trace)
        f.tick(0)                     # mispredict -> wrong-path mode
        for cycle in range(1, 4):
            f.tick(cycle)             # three virtual wrong-path groups
        if deliver_first:
            f.deliver(3 + f.depth, 10)
        f.redirect(20)
        f.tick(22)                    # next correct-path group (+ branch)
        assert f.wrong_path           # second mispredict
        f.tick(23)
        return [(u.srcs[0], u.dst) for u in f.deliver(23 + f.depth, 30)
                if u.wrong_path]

    first = episode(deliver_first=False)
    second = episode(deliver_first=True)
    assert first and first == second


def test_redirect_clears_and_stalls():
    br = MicroOp(0, 0x10, OpClass.BRANCH, srcs=[1], taken=True, target=0x40)
    f = make_fetch([alu(0), br, alu(0x11)])
    f.tick(0)
    f.tick(1)
    f.redirect(5)
    assert not f.pipe and not f.wrong_path
    f.tick(5)
    assert not f.pipe            # redirect bubble
    f.tick(5 + 2)
    assert f.pipe                # fetch resumed on the correct path
    assert all(not u.wrong_path for _, u in f.pipe)


def test_trace_exhaustion_and_done():
    f = make_fetch([alu(0)])
    f.tick(0)
    f.tick(1)
    assert f.trace_exhausted
    assert not f.done            # µop still in the pipe
    f.deliver(100, 8)
    assert f.done


def test_refetch_queue_served_before_trace():
    f = make_fetch([alu(5), alu(6)])
    clones = [alu(1), alu(2)]
    f.inject_refetch(clones)
    f.tick(0)
    pcs = [u.pc for _, u in f.pipe]
    assert pcs[:2] == [1, 2]
    assert pcs[2:] == [5, 6]


def test_group_stops_after_second_taken_branch():
    def taken_br(pc):
        return MicroOp(0, pc, OpClass.BRANCH, srcs=[1], taken=True,
                       target=pc + 0x100)
    bu = BranchUnit()
    # Pre-train the BTB/TAGE so both branches predict taken correctly.
    for pc in (0x10, 0x20):
        for _ in range(50):
            u = taken_br(pc)
            u.pred_taken, u.pred_target = bu.predict(u)
            bu.resolve(u)
    trace = ListTrace([taken_br(0x10), alu(0x11), taken_br(0x20),
                       alu(0x21), alu(0x22)])
    f = FetchStage(trace, bu, CoreConfig(), SimStats())
    f.tick(0)
    # Group must end with the second predicted-taken branch.
    assert len(f.pipe) <= 3
