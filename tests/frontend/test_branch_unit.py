from repro.frontend.branch_unit import BranchUnit
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def branch(pc, taken, target, opclass=OpClass.BRANCH):
    return MicroOp(0, pc, opclass, srcs=[1], taken=taken, target=target)


def predict_resolve(bu, uop):
    uop.pred_taken, uop.pred_target = bu.predict(uop)
    return bu.resolve(uop)


class TestConditional:
    def test_learns_taken_branch_with_btb(self):
        bu = BranchUnit()
        mispredicts = 0
        for _ in range(100):
            uop = branch(0x100, taken=True, target=0x80)
            if predict_resolve(bu, uop):
                mispredicts += 1
        assert mispredicts < 10

    def test_btb_miss_forces_not_taken(self):
        bu = BranchUnit()
        uop = branch(0x200, taken=True, target=0x90)
        # TAGE may predict taken, but with no BTB entry the frontend cannot
        # redirect: prediction reported as not-taken -> mispredict.
        pred_taken, pred_target = bu.predict(uop)
        if pred_taken:
            # only possible after install; first lookup must fall through
            raise AssertionError("no target should be available yet")
        assert pred_target == uop.pc + 1

    def test_not_taken_branch(self):
        bu = BranchUnit()
        wrong = 0
        for _ in range(100):
            uop = branch(0x300, taken=False, target=0x99)
            if predict_resolve(bu, uop):
                wrong += 1
        assert wrong < 10


class TestCallReturn:
    def test_call_then_ret_roundtrip(self):
        bu = BranchUnit()
        call = branch(0x1000, True, 0x2000, OpClass.CALL)
        call.pred_taken, call.pred_target = bu.predict(call)
        ret = branch(0x2010, True, 0x1001, OpClass.RET)
        ret.pred_taken, ret.pred_target = bu.predict(ret)
        assert ret.pred_target == 0x1001       # RAS: call pc + 1

    def test_nested_calls(self):
        bu = BranchUnit()
        for pc in (0x100, 0x200, 0x300):
            c = branch(pc, True, pc + 0x1000, OpClass.CALL)
            bu.predict(c)
        targets = []
        for pc in (0x900, 0x910, 0x920):
            r = branch(pc, True, 0, OpClass.RET)
            _, tgt = bu.predict(r)
            targets.append(tgt)
        assert targets == [0x301, 0x201, 0x101]


class TestRepair:
    def test_mispredict_repairs_history(self):
        bu = BranchUnit()
        # Train a pattern, then check a mispredict doesn't wedge history:
        # subsequent predictions still function and accuracy recovers.
        for i in range(300):
            uop = branch(0x400, taken=(i % 2 == 0), target=0x500)
            predict_resolve(bu, uop)
        late_wrong = 0
        for i in range(300, 400):
            uop = branch(0x400, taken=(i % 2 == 0), target=0x500)
            if predict_resolve(bu, uop):
                late_wrong += 1
        assert late_wrong < 15
