from repro.common.config import BranchPredictorConfig
from repro.frontend.tage import TageLite


def run_pattern(tage, pc, outcomes):
    """Predict+update over an outcome sequence; returns accuracy."""
    correct = 0
    for taken in outcomes:
        pred, state = tage.predict(pc)
        if pred == taken:
            correct += 1
        tage.update(taken, state)
    return correct / len(outcomes)


def test_geometric_history_lengths():
    t = TageLite()
    lengths = t.history_lengths
    assert lengths == sorted(lengths)
    assert len(set(lengths)) == len(lengths)
    assert lengths[0] == t.config.min_history
    assert lengths[-1] >= t.config.max_history // 2


def test_learns_always_taken():
    t = TageLite()
    acc = run_pattern(t, 0x40, [True] * 200)
    assert acc > 0.95


def test_learns_always_not_taken():
    t = TageLite()
    acc = run_pattern(t, 0x44, [False] * 200)
    assert acc > 0.95


def test_learns_short_loop_pattern():
    # taken 7, not-taken 1 — classic loop branch; needs history.
    t = TageLite()
    pattern = ([True] * 7 + [False]) * 80
    warm = run_pattern(t, 0x48, pattern[:320])
    trained = run_pattern(t, 0x48, pattern[320:])
    assert trained > warm - 0.02          # never regresses materially
    assert trained > 0.93


def test_learns_alternating():
    t = TageLite()
    pattern = [bool(i % 2) for i in range(600)]
    acc = run_pattern(t, 0x4C, pattern[200:])
    assert acc > 0.95


def test_random_biased_tracks_bias():
    import random
    rng = random.Random(7)
    t = TageLite()
    outcomes = [rng.random() < 0.9 for _ in range(1500)]
    acc = run_pattern(t, 0x50, outcomes)
    assert acc > 0.80        # at least the bias, minus learning noise


def test_history_snapshot_restore():
    t = TageLite()
    snap = t.snapshot_history()
    pred, state = t.predict(0x54)
    assert t.snapshot_history() != snap or pred is not None
    t.restore_history(snap)
    assert t.snapshot_history() == snap


def test_accuracy_counter():
    t = TageLite()
    run_pattern(t, 0x58, [True] * 50)
    assert t.predictions == 50
    assert 0.0 <= t.accuracy <= 1.0


def test_distinct_pcs_do_not_destructively_alias():
    t = TageLite()
    a = run_pattern(t, 0x100, [True] * 150)
    b = run_pattern(t, 0x204, [False] * 150)
    assert a > 0.9 and b > 0.9


def test_custom_config_validated():
    cfg = BranchPredictorConfig(num_tagged_tables=3, table_entries=256,
                                min_history=2, max_history=32)
    t = TageLite(cfg)
    assert len(t.history_lengths) == 3
