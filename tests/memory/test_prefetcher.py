from repro.memory.prefetcher import StridePrefetcher


def test_no_prefetch_until_confident():
    p = StridePrefetcher(degree=4)
    assert p.train_and_prefetch(0x10, 0) == []
    assert p.train_and_prefetch(0x10, 64) == []      # stride learned
    assert p.train_and_prefetch(0x10, 128) == []     # conf 1
    assert p.train_and_prefetch(0x10, 192) != []     # conf 2: fire


def test_prefetch_addresses_follow_stride():
    p = StridePrefetcher(degree=3, line_bytes=64)
    for addr in (0, 64, 128):
        p.train_and_prefetch(0x20, addr)
    lines = p.train_and_prefetch(0x20, 192)
    assert lines == [4, 5, 6]


def test_small_stride_dedupes_lines():
    p = StridePrefetcher(degree=8, line_bytes=64)
    for addr in (0, 8, 16):
        p.train_and_prefetch(0x30, addr)
    lines = p.train_and_prefetch(0x30, 24)
    assert len(lines) == len(set(lines))
    assert lines      # 8-byte stride still crosses a line within degree 8


def test_stride_change_resets_confidence():
    p = StridePrefetcher(degree=4)
    for addr in (0, 64, 128, 192):
        p.train_and_prefetch(0x40, addr)
    assert p.train_and_prefetch(0x40, 1000) == []    # broken stride
    assert p.train_and_prefetch(0x40, 1064) == []    # rebuilding confidence


def test_usefulness_accounting():
    p = StridePrefetcher(degree=2)
    p.mark_prefetched(10)
    p.issued = 2
    p.note_demand_hit(10)
    p.note_demand_hit(11)      # never prefetched: no credit
    assert p.useful == 1
    assert p.accuracy == 0.5


def test_zero_stride_never_fires():
    p = StridePrefetcher(degree=4)
    for _ in range(10):
        assert p.train_and_prefetch(0x50, 4096) == []


def test_per_pc_entries_are_independent():
    p = StridePrefetcher(degree=2, table_entries=256)
    for addr in (0, 64, 128):
        p.train_and_prefetch(1, addr)
    # Different PC (different table entry) starts cold.
    assert p.train_and_prefetch(2, 192) == []
