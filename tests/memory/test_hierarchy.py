from repro.common.config import MemoryConfig
from repro.memory.hierarchy import MemoryHierarchy


def make(banked=True):
    cfg = MemoryConfig()
    if not banked:
        import dataclasses
        cfg = dataclasses.replace(
            cfg, l1d=dataclasses.replace(cfg.l1d, banked=False))
    return MemoryHierarchy(cfg)


class TestLoadLatencies:
    def test_l1_hit_is_load_to_use(self):
        h = make(banked=False)
        h.l1d.fill(0x1000)
        out = h.load(0x1000, pc=1, now=100)
        assert out.hit and out.latency == 4 and out.bank_delay == 0

    def test_l1_miss_l2_hit(self):
        h = make(banked=False)
        h.l2.fill(0x1000)
        out = h.load(0x1000, pc=1, now=100)
        assert not out.hit
        assert out.latency == 13

    def test_full_miss_reaches_dram(self):
        h = make(banked=False)
        out = h.load(0x100000, pc=1, now=100)
        assert not out.hit
        assert out.latency >= 13 + 75
        assert h.dram.reads == 1

    def test_fill_after_miss(self):
        h = make(banked=False)
        h.load(0x2000, pc=1, now=0)
        assert h.l1d.probe(0x2000) and h.l2.probe(0x2000)

    def test_secondary_miss_merges(self):
        h = make(banked=False)
        a = h.load(0x3000, pc=1, now=0)
        b = h.load(0x3008, pc=2, now=1)       # same line, one cycle later
        assert b.merged
        assert b.latency <= a.latency
        assert h.dram.reads == 1

    def test_bank_conflict_adds_delay(self):
        h = make(banked=True)
        h.l1d.fill(0x0 << 6 | 0x0)
        h.l1d.fill(0x1 << 6 | 0x0)
        a = h.load(0x000, pc=1, now=50)            # bank 0, set 0
        b = h.load(0x040, pc=2, now=50)            # bank 0, set 1
        assert a.latency == 4
        assert b.bank_delay == 1 and b.latency == 5
        assert h.stats.l1d_bank_conflicts == 1

    def test_dual_ported_no_conflicts(self):
        h = make(banked=False)
        h.l1d.fill(0x000)
        h.l1d.fill(0x040)
        a = h.load(0x000, pc=1, now=50)
        b = h.load(0x040, pc=2, now=50)
        assert a.latency == 4 and b.latency == 4


class TestStores:
    def test_store_allocates(self):
        h = make(banked=False)
        h.store(0x4000, pc=9, now=0)
        assert h.l1d.probe(0x4000) and h.l2.probe(0x4000)

    def test_store_does_not_touch_load_stats(self):
        h = make(banked=False)
        h.store(0x4000, pc=9, now=0)
        assert h.stats.l1d_accesses == 0
        assert h.stats.extra.get("store_accesses") == 1


class TestPrefetcher:
    def test_streaming_trains_prefetcher(self):
        h = make(banked=False)
        # Miss a long stride-1-line stream: prefetcher should start filling.
        for i in range(32):
            h.load(0x800000 + i * 64, pc=42, now=i * 400)
        assert h.prefetcher.issued > 0
        # With generous spacing the prefetched data has arrived: far-ahead
        # demand accesses hit in the L2 (dram.reads also counts the
        # prefetch traffic itself, so check demand-side L2 misses).
        assert h.stats.l2_misses < 8
        assert h.prefetcher.useful > 0

    def test_stats_forwarded(self):
        h = make(banked=False)
        for i in range(16):
            h.load(0x900000 + i * 64, pc=7, now=i * 30)
        assert h.stats.prefetches_issued == h.prefetcher.issued


class TestStatsPlumbing:
    def test_counters(self):
        h = make(banked=False)
        h.l1d.fill(0x1000)
        h.load(0x1000, pc=1, now=0)     # hit
        h.load(0x5000, pc=1, now=1)     # miss
        assert h.stats.l1d_accesses == 2
        assert h.stats.l1d_misses == 1
        assert h.stats.l2_accesses == 1
