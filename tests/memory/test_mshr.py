import pytest

from repro.memory.mshr import MshrFile


def test_allocate_and_lookup():
    m = MshrFile(4)
    done = m.allocate(0x10, ready_cycle=100, now=0)
    assert done == 100
    assert m.lookup(0x10) == 100
    assert m.lookup(0x11) is None


def test_merge_returns_primary_completion():
    m = MshrFile(4)
    m.allocate(0x10, 100, now=0)
    assert m.allocate(0x10, 150, now=5) == 100
    assert m.merges == 1
    assert m.allocations == 1


def test_expiry():
    m = MshrFile(4)
    m.allocate(0x10, 100, now=0)
    m.expire(99)
    assert m.lookup(0x10) == 100
    m.expire(100)
    assert m.lookup(0x10) is None


def test_capacity_pressure_serializes():
    m = MshrFile(2)
    m.allocate(1, 50, now=0)
    m.allocate(2, 60, now=0)
    done = m.allocate(3, 55, now=0)
    assert done >= 51          # waits behind the earliest completion
    assert m.full_stalls == 1
    assert len(m) == 2


def test_len_tracks_inflight():
    m = MshrFile(8)
    for i in range(5):
        m.allocate(i, 100 + i, now=0)
    assert len(m) == 5


def test_invalid_capacity():
    with pytest.raises(ValueError):
        MshrFile(0)
