import pytest

from repro.common.config import DramConfig
from repro.memory.dram import DdrModel


def test_first_read_is_row_miss_at_base_plus_penalty():
    d = DdrModel(DramConfig())
    lat = d.read(0, now=0)
    assert lat == 75 + 55
    assert d.row_misses == 1


def test_row_hit_pays_base_only():
    d = DdrModel(DramConfig())
    d.read(0, now=0)
    # Same row, same bank, long after the first completes.
    lat = d.read(16, now=10_000)    # lines 0 and 16 share bank 0 (16 banks)
    assert lat == 75
    assert d.row_hits == 1


def test_latency_within_paper_band():
    d = DdrModel(DramConfig())
    lats = [d.read(i * 7, now=i * 3) for i in range(200)]
    assert min(lats) >= 75
    assert max(lats) <= 185


def test_bank_occupancy_serializes():
    d = DdrModel(DramConfig())
    first = d.read(0, now=0)
    # Immediately read a different row of the same bank: waits + row miss.
    second = d.read(16 * 1024, now=0)
    assert second >= first   # clamped by max_latency but never cheaper


def test_bus_contention_affects_other_banks():
    d = DdrModel(DramConfig())
    d.read(0, now=0)
    lat = d.read(1, now=0)       # different bank, same cycle: bus busy
    assert lat >= 75 + 20        # waits at least the burst occupancy


def test_row_hit_rate_tracks():
    d = DdrModel(DramConfig())
    for _ in range(4):
        d.read(0, now=d.reads * 1000)
    assert d.row_hit_rate == pytest.approx(3 / 4)


def test_deterministic():
    a = DdrModel(DramConfig())
    b = DdrModel(DramConfig())
    seq = [(i * 13) % 64 for i in range(50)]
    assert [a.read(x, i * 5) for i, x in enumerate(seq)] == \
           [b.read(x, i * 5) for i, x in enumerate(seq)]
