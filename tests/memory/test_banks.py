"""Bank-conflict model tests — the Section 3.1/4.2 rules, including the
paper's worked queueing example."""

from repro.memory.banks import BankScheduler, bank_of, set_of


def addr(bank: int, set_idx: int) -> int:
    """Compose an address with the given bank [5:3] and set [11:6] bits."""
    return (set_idx << 6) | (bank << 3)


class TestAddressMapping:
    def test_bank_bits(self):
        assert bank_of(0x00, 8) == 0
        assert bank_of(0x08, 8) == 1
        assert bank_of(0x38, 8) == 7
        assert bank_of(0x40, 8) == 0      # next line, same offset

    def test_set_bits(self):
        assert set_of(0x000, 64, 64) == 0
        assert set_of(0x040, 64, 64) == 1
        assert set_of(0x1000 + 0x40 * 63, 64, 64) == (64 + 63) % 64


class TestConflictRules:
    def test_same_bank_different_set_conflicts(self):
        b = BankScheduler()
        assert b.would_conflict(addr(3, 1), addr(3, 2))

    def test_same_set_does_not_conflict(self):
        # Rivers line buffer: two reads to the same set may proceed.
        b = BankScheduler()
        assert not b.would_conflict(addr(3, 5), addr(3, 5))

    def test_different_bank_does_not_conflict(self):
        b = BankScheduler()
        assert not b.would_conflict(addr(1, 4), addr(2, 4))

    def test_unbanked_never_conflicts(self):
        b = BankScheduler(banked=False)
        assert not b.would_conflict(addr(3, 1), addr(3, 2))
        assert b.access(addr(3, 1), 10) == 0
        assert b.access(addr(3, 2), 10) == 0


class TestAccessScheduling:
    def test_pair_conflict_delays_second(self):
        b = BankScheduler()
        assert b.access(addr(0, 1), 100) == 0
        assert b.access(addr(0, 2), 100) == 1
        assert b.conflicts == 1

    def test_same_set_pair_no_delay(self):
        b = BankScheduler()
        assert b.access(addr(0, 1), 100) == 0
        assert b.access(addr(0, 1) + 8 * 0, 100) == 0

    def test_different_banks_no_delay(self):
        b = BankScheduler()
        assert b.access(addr(0, 1), 100) == 0
        assert b.access(addr(1, 1), 100) == 0

    def test_port_limit_two_per_cycle(self):
        b = BankScheduler()
        assert b.access(addr(0, 1), 50) == 0
        assert b.access(addr(1, 1), 50) == 0
        # Third access this cycle: all ports busy even on a free bank.
        assert b.access(addr(2, 1), 50) == 1

    def test_paper_queueing_example(self):
        """Section 3.1: conflicting pair at cycle 0; two more loads at
        cycle 1 conflicting with the buffered load. The last proceeds at
        cycle 3."""
        b = BankScheduler()
        assert b.access(addr(0, 1), 0) == 0      # load A: cycle 0
        assert b.access(addr(0, 2), 0) == 1      # load B: buffered, cycle 1
        assert b.access(addr(0, 3), 1) == 1      # load C: cycle 2
        assert b.access(addr(0, 4), 1) == 2      # load D: cycle 3

    def test_paper_example_port_variant(self):
        """If the younger loads do NOT conflict with the buffered load,
        one still queues: the cache services only two accesses/cycle."""
        b = BankScheduler()
        b.access(addr(0, 1), 0)
        assert b.access(addr(0, 2), 0) == 1      # buffered to cycle 1
        assert b.access(addr(1, 3), 1) == 0      # different bank: fits
        assert b.access(addr(2, 4), 1) == 1      # port limit pushes to 2

    def test_delay_statistics(self):
        b = BankScheduler()
        b.access(addr(0, 1), 0)
        b.access(addr(0, 2), 0)
        b.access(addr(0, 3), 0)
        assert b.conflicts == 2
        assert b.total_delay == 1 + 2

    def test_prune_keeps_behaviour(self):
        b = BankScheduler()
        for t in range(0, 10_000, 2):
            b.access(addr(0, (t // 2) % 60 + 1), t)
        # after pruning, current-cycle scheduling still works
        assert b.access(addr(0, 61), 10_000) == 0
        assert b.access(addr(0, 62), 10_000) == 1
