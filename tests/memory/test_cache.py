import pytest

from repro.common.config import CacheConfig
from repro.memory.cache import SetAssocCache


def small_cache(assoc=2, sets=4, line=64):
    return SetAssocCache(CacheConfig(
        name="t", size_bytes=assoc * sets * line, assoc=assoc,
        line_bytes=line, latency=1, banks=0, banked=False))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.lookup(0x1000)
        c.fill(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_offsets_hit(self):
        c = small_cache()
        c.fill(0x1000)
        assert c.probe(0x1008)
        assert c.probe(0x103F)
        assert not c.probe(0x1040)

    def test_miss_counting(self):
        c = small_cache()
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.accesses == 2 and c.misses == 1
        assert c.miss_rate == pytest.approx(0.5)

    def test_probe_has_no_side_effects(self):
        c = small_cache()
        c.probe(0x40)
        assert c.accesses == 0 and c.misses == 0


class TestLru:
    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0 * 64)
        c.fill(1 * 64)
        c.lookup(0 * 64)           # touch 0: 1 is now LRU
        victim = c.fill(2 * 64)
        assert victim == 1         # line address of the evicted line
        assert c.probe(0) and not c.probe(64) and c.probe(128)

    def test_fill_refreshes_lru(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0)
        c.fill(64)
        c.fill(0)                  # refresh 0
        c.fill(128)
        assert c.probe(0) and not c.probe(64)

    def test_capacity_respected(self):
        c = small_cache(assoc=2, sets=4)
        for i in range(64):
            c.fill(i * 64)
        assert c.resident_lines() == 8

    def test_set_isolation(self):
        c = small_cache(assoc=1, sets=4)
        c.fill(0 * 64)   # set 0
        c.fill(1 * 64)   # set 1
        assert c.probe(0) and c.probe(64)


class TestInvalidate:
    def test_invalidate_present(self):
        c = small_cache()
        c.fill(0x2000)
        assert c.invalidate(0x2000)
        assert not c.probe(0x2000)

    def test_invalidate_absent(self):
        assert not small_cache().invalidate(0x2000)


class TestGeometry:
    def test_table1_l1d_geometry(self):
        c = SetAssocCache(CacheConfig())
        assert c.num_sets == 64

    def test_indexing_roundtrip(self):
        c = small_cache(assoc=2, sets=8)
        for addr in (0, 64, 512, 0x1234C0):
            c.fill(addr)
            assert c.probe(addr)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(CacheConfig(size_bytes=1000, assoc=3))
