"""Store-to-load forwarding, memory-order violations, store sets."""

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.pipeline.cpu import Simulator

from tests.conftest import alu, load, run_to_completion, spec_config, store, uop


def test_forwarding_from_executed_store():
    cfg = spec_config(delay=4)
    uops = [store(0x1000, data_reg=2, pc=0x10),
            alu([2], 6),                       # spacer
            load(0x1000, dst=4, pc=0x20)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.store_forwards >= 1
    assert sim.stats.memory_order_violations == 0


def test_violation_detected_and_refetched():
    """Store data comes off a long divide, so the younger load to the same
    address executes first -> violation -> squash + refetch from the load."""
    cfg = spec_config(delay=4)
    uops = [uop(OpClass.INT_DIV, pc=0x8, srcs=[2], dst=3),
            store(0x2000, data_reg=3, pc=0x10),
            load(0x2000, dst=4, pc=0x20),
            alu([4], 5, pc=0x30)]
    sim = Simulator(cfg, ListTrace(uops))
    sim.hierarchy.l1d.fill(0x2000)
    sim.hierarchy.l2.fill(0x2000)
    run_to_completion(sim)
    assert sim.stats.memory_order_violations == 1
    assert sim.stats.committed_uops == 4     # refetch re-executes everything
    assert sim.lsq.violations == 1


def test_store_sets_learn_to_serialize():
    """After the first violation, the predictor makes the load wait: the
    same pattern repeated must not keep violating."""
    cfg = spec_config(delay=4)
    block = [uop(OpClass.INT_DIV, pc=0x8, srcs=[2], dst=3),
             store(0x2000, data_reg=3, pc=0x10),
             load(0x2000, dst=4, pc=0x20),
             alu([4], 5, pc=0x30)]
    sim = Simulator(cfg, ListTrace(block * 10))
    sim.hierarchy.l1d.fill(0x2000)
    sim.hierarchy.l2.fill(0x2000)
    run_to_completion(sim, max_cycles=100_000)
    assert sim.stats.committed_uops == 40
    # One cold violation trains the predictor; later instances wait.
    assert sim.stats.memory_order_violations <= 3
    assert sim.store_sets.violations_trained == sim.stats.memory_order_violations


def test_loads_to_different_addresses_do_not_wait():
    cfg = spec_config(delay=4)
    uops = [uop(OpClass.INT_DIV, pc=0x8, srcs=[2], dst=3),
            store(0x2000, data_reg=3, pc=0x10),
            load(0x3000, dst=4, pc=0x20)]
    sim = Simulator(cfg, ListTrace(uops))
    for a in (0x2000, 0x3000):
        sim.hierarchy.l1d.fill(a)
        sim.hierarchy.l2.fill(a)
    run_to_completion(sim)
    assert sim.stats.memory_order_violations == 0
    assert sim.stats.committed_uops == 3


def test_forwarded_load_skips_cache_and_banks():
    cfg = spec_config(delay=4, banked=True)
    uops = [store(0x1000, data_reg=2, pc=0x10),
            alu([2], 6), alu([6], 7), alu([7], 8),
            load(0x1000, dst=4, pc=0x20)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.store_forwards == 1
    assert sim.stats.l1d_accesses == 0        # load never touched the cache
