"""Replay corner cases the paper calls out explicitly."""

from repro.experiments.timeline import TracingSimulator
from repro.isa.trace import ListTrace

from tests.conftest import alu, load, run_to_completion, spec_config


def trace_sim(uops, config, prefill=(), l2=()):
    sim = TracingSimulator(config, ListTrace(uops))
    for addr in prefill:
        sim.hierarchy.l1d.fill(addr)
        sim.hierarchy.l2.fill(addr)
    for addr in l2:
        sim.hierarchy.l2.fill(addr)
    return sim


class TestTwoMissingLoadsWithShifting:
    """Drawback 3 (Section 5.1): two same-cycle loads that both miss
    trigger *two* squash events under Schedule Shifting, because the
    second load's extra promised cycle separates the detections."""

    def _uops(self):
        return [load(0x1000, dst=4, pc=0x100),
                load(0x2000, dst=5, pc=0x101),
                alu([4], 6), alu([5], 7)]

    def test_without_shifting_one_event(self):
        sim = trace_sim(self._uops(), spec_config(delay=4, banked=True),
                        l2=[0x1000, 0x2000])
        run_to_completion(sim)
        assert sim.stats.squash_events_miss == 1

    def test_with_shifting_two_events(self):
        sim = trace_sim(self._uops(),
                        spec_config(delay=4, banked=True, shifting=True),
                        l2=[0x1000, 0x2000])
        run_to_completion(sim)
        assert sim.stats.squash_events_miss == 2


class TestNestedReplays:
    def test_replayed_dependent_of_second_miss_replays_again(self):
        """A chain across two missing loads: the dependent can be squashed
        twice (once per load's detection)."""
        cfg = spec_config(delay=4)
        uops = [load(0x1000, dst=4, pc=0x100),
                alu([4], 5),
                load(0x2000, dst=6, pc=0x102),
                alu([6], 7),
                alu([5, 7], 8)]
        sim = trace_sim(uops, cfg, l2=[0x1000, 0x2000])
        run_to_completion(sim)
        assert sim.stats.committed_uops == 5
        assert sim.stats.replayed_miss >= 2
        # Every µop's final issue is valid (assertion inside the core).

    def test_miss_load_in_replay_window_reaccesses_cache(self):
        """A load squashed by an unrelated replay re-issues from the IQ
        and accesses the cache a second time."""
        cfg = spec_config(delay=4)
        uops = [load(0x1000, dst=4, pc=0x100),   # misses -> squash window
                alu([4], 5),
                load(0x3000, dst=6, pc=0x102),   # hit, but in the window
                alu([6], 7)]
        sim = trace_sim(uops, cfg, prefill=[0x3000], l2=[0x1000])
        run_to_completion(sim)
        # The hit load was issued once or twice depending on alignment;
        # if squashed, it must have re-accessed the L1.
        hit_load_attempts = len(sim.issue_log[2])
        assert sim.stats.l1d_accesses == 1 + hit_load_attempts


class TestRecoveryBufferPriority:
    def test_replays_issue_before_younger_iq_uops(self):
        """After a squash, replayed µops (older) re-issue before younger
        never-issued µops: oldest-first with buffer priority."""
        cfg = spec_config(delay=4)
        uops = [load(0x1000, dst=4, pc=0x100)]
        uops += [alu([4], 5, pc=0x101 + i) for i in range(3)]   # dependents
        uops += [alu([2], 10, pc=0x180 + i) for i in range(12)]  # younger indep
        sim = trace_sim(uops, cfg, l2=[0x1000])
        run_to_completion(sim)
        dep_final = sim.issue_log[1][-1][0]
        # The dependent replays at the corrected wakeup (load issue + 13).
        load_issue = sim.issue_log[0][-1][0]
        assert dep_final == load_issue + 13
        assert sim.stats.committed_uops == len(uops)


class TestIssueCycleLoss:
    def test_one_lost_cycle_per_event(self):
        cfg = spec_config(delay=4)
        uops = [load(0x1000, dst=4, pc=0x100), alu([4], 5)]
        sim = trace_sim(uops, cfg, l2=[0x1000])
        run_to_completion(sim)
        assert sim.stats.issue_cycles_lost == sim.stats.squash_events_miss \
            + sim.stats.squash_events_bank == 1


class TestConservativeLoadInWindow:
    def test_conservative_load_squashed_and_reissued(self):
        """Mixing policies: a conservatively handled load caught in the
        squash window of a speculative load replays cleanly from the IQ."""
        from repro.common.config import HitMissPolicy
        cfg = spec_config(delay=4, hit_miss=HitMissPolicy.FILTER_CTR)
        # Train the filter so pc 0x200 is a sure miss (conservative).
        uops = []
        for i in range(3):
            uops.append(load(0x4000, dst=4, pc=0x200))
            uops.append(alu([4], 5, pc=0x300 + i))
        sim = trace_sim(uops, cfg, l2=[0x4000])
        run_to_completion(sim)
        assert sim.stats.committed_uops == len(uops)
