"""Structural limits: widths, queue capacities, PRF pressure, commit."""

import pytest

from repro.isa.trace import ListTrace
from repro.pipeline.cpu import SimulationError, Simulator

from tests.conftest import alu, load, run_to_completion, spec_config, store


def independent_alus(n):
    return [alu([2], 4, pc=0x100 + i) for i in range(n)]


def test_issue_width_caps_throughput():
    cfg = spec_config(delay=0, num_alu=4)
    sim = Simulator(cfg, ListTrace(independent_alus(400)))
    run_to_completion(sim, max_cycles=50_000)
    # 4 ALUs bound sustained throughput even with 6-issue.
    assert sim.stats.committed_uops / sim.stats.cycles <= 4.01


def test_retire_width_bound():
    cfg = spec_config(delay=0)
    sim = Simulator(cfg, ListTrace(independent_alus(600)))
    run_to_completion(sim, max_cycles=50_000)
    assert sim.stats.committed_uops / sim.stats.cycles <= 8.0


def test_small_rob_limits_inflight():
    cfg = spec_config(delay=4, rob_entries=64, iq_entries=16)
    sim = Simulator(cfg, ListTrace(independent_alus(200)))
    occupancies = []
    while not sim.done:
        sim.step()
        occupancies.append(sim.occupancy())
    assert max(o["rob"] for o in occupancies) <= 64
    assert max(o["iq"] for o in occupancies) <= 16
    assert sim.stats.committed_uops == 200


def test_lsq_capacity_respected():
    cfg = spec_config(delay=4, lq_entries=8, sq_entries=4)
    uops = []
    for i in range(40):
        uops.append(load(0x1000 + 64 * (i % 4), dst=4, pc=0x100 + i))
        uops.append(store(0x8000 + 64 * (i % 4), pc=0x200 + i))
    sim = Simulator(cfg, ListTrace(uops))
    highwater_lq = highwater_sq = 0
    while not sim.done:
        sim.step()
        occ = sim.occupancy()
        highwater_lq = max(highwater_lq, occ["lq"])
        highwater_sq = max(highwater_sq, occ["sq"])
        if sim.stats.cycles > 50_000:
            raise AssertionError("stuck")
    assert highwater_lq <= 8 and highwater_sq <= 4
    assert sim.stats.committed_uops == 80


def test_serial_chain_unbothered_by_small_iq():
    cfg = spec_config(delay=4, iq_entries=4)
    uops = [alu([2], 4)] + [alu([4], 4, pc=0x101 + i) for i in range(50)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim, max_cycles=50_000)
    assert sim.stats.committed_uops == 51


def test_deadlock_guard_raises():
    cfg = spec_config(delay=4)
    sim = Simulator(cfg, ListTrace(independent_alus(4)))
    sim.DEADLOCK_LIMIT = 100
    # Wedge the machine artificially: block commit forever.
    sim.stage("commit").tick = lambda now: None
    with pytest.raises(SimulationError):
        sim.run(max_cycles=10_000)


def test_run_with_warmup_returns_delta():
    cfg = spec_config(delay=4)
    sim = Simulator(cfg, ListTrace(independent_alus(300)))
    stats = sim.run_with_warmup(100, 100)
    assert 90 <= stats.committed_uops <= 120   # retire-width granularity
    assert stats.cycles < sim.stats.cycles


def test_occupancy_snapshot_keys():
    cfg = spec_config()
    sim = Simulator(cfg, ListTrace(independent_alus(4)))
    occ = sim.occupancy()
    assert set(occ) == {"rob", "iq", "recovery", "lq", "sq"}
