"""The stage/port seam: tick order, stub insertion, checkpoint identity.

These tests hold the decomposition's three contracts (the normative
statement lives in ``docs/ARCHITECTURE.md``):

* the wired stage list ticks in exactly the documented order;
* the machine is extensible — a stub stage inserts without perturbing
  any ``SimStats`` counter, and stage overrides swap cleanly by name;
* the state protocol survives the stage API: save → restore → continue
  stays bit-identical for machines built with overrides and extra
  (stateful) stages.
"""

from __future__ import annotations

import pickle
import re
from pathlib import Path

import pytest

from repro.core.presets import make_config
from repro.isa.trace import ListTrace
from repro.pipeline.cpu import Simulator
from repro.pipeline.ports import DelayQueue, Port, PortError, Wire
from repro.pipeline.stages import (
    DEFAULT_STAGES,
    TICK_ORDER,
    Issue,
    Stage,
    build_stages,
)
from repro.traces.registry import resolve_workload
from tests.conftest import alu, spec_config


def independent_alus(n):
    """A short dependency-free ALU burst (hand-trace helper)."""
    return [alu([2], 3 + (i % 4), pc=0x200 + i) for i in range(n)]

ARCHITECTURE_MD = Path(__file__).resolve().parents[2] / "docs" / "ARCHITECTURE.md"


def documented_tick_order():
    """The tick order stated in docs/ARCHITECTURE.md (machine-readable
    ``<!-- tick-order: ... -->`` marker)."""
    match = re.search(r"<!--\s*tick-order:\s*([a-z_ ]+?)\s*-->",
                      ARCHITECTURE_MD.read_text(encoding="utf-8"))
    assert match, "docs/ARCHITECTURE.md lost its tick-order marker"
    return tuple(match.group(1).split())


class TickProbe(Stage):
    """Pure observer: counts ticks, touches nothing."""

    name = "tick_probe"
    after = "execute"

    def __init__(self, sim):
        super().__init__(sim)
        self.ticks = 0

    def tick(self, now):
        self.ticks += 1


class CycleParityStage(Stage):
    """Stateful stage: owns a counter that must survive checkpoints."""

    name = "cycle_parity"
    after = None          # appended at the end of the tick order

    def __init__(self, sim):
        super().__init__(sim)
        self.count = 0

    def tick(self, now):
        self.count += 1

    def state_dict(self, ctx):
        # Returns {} when empty: exercises the save-side elision and the
        # restore-side "{} means reset" contract (stages/base.py).
        return {"count": self.count} if self.count else {}

    def load_state_dict(self, state, ctx):
        self.count = state.get("count", 0)


class TestTickOrder:
    def test_wired_stage_list_matches_documented_order(self):
        sim = Simulator(spec_config(), ListTrace(independent_alus(4)))
        assert tuple(s.name for s in sim.stages) == documented_tick_order()

    def test_tick_order_constant_matches_documented_order(self):
        assert TICK_ORDER == documented_tick_order()

    def test_default_stage_classes_cover_every_slot(self):
        assert set(DEFAULT_STAGES) == set(TICK_ORDER)
        for name, cls in DEFAULT_STAGES.items():
            assert cls.name == name

    def test_stage_lookup_by_name(self):
        sim = Simulator(spec_config(), ListTrace(independent_alus(4)))
        assert sim.stage("issue") is sim.stages[TICK_ORDER.index("issue")]
        with pytest.raises(KeyError):
            sim.stage("nonesuch")


class TestStubInsertion:
    def _stats(self, workload, config, extra=()):
        sim = Simulator(config, workload.build_trace(1),
                        extra_stages=extra)
        sim.functional_warmup(workload.build_trace(1), 10_000)
        sim.run(max_uops=5_000)
        return sim, sim.stats.to_dict()

    @pytest.mark.parametrize("workload_name,preset",
                             [("gzip", "SpecSched_4_Crit"),
                              ("mcf", "SpecSched_4_Combined")])
    def test_stub_stage_leaves_simstats_bit_identical(self, workload_name,
                                                      preset):
        workload = resolve_workload(workload_name)
        config = make_config(preset)
        _, reference = self._stats(workload, config)
        sim, probed = self._stats(workload, config, extra=[TickProbe])
        assert probed == reference
        assert sim.stage("tick_probe").ticks == sim.stats.cycles

    def test_extra_stage_anchors_after_named_stage(self):
        sim = Simulator(spec_config(), ListTrace(independent_alus(4)),
                        extra_stages=[TickProbe])
        names = [s.name for s in sim.stages]
        assert names.index("tick_probe") == names.index("execute") + 1

    def test_extra_stage_without_anchor_appends(self):
        sim = Simulator(spec_config(), ListTrace(independent_alus(4)),
                        extra_stages=[CycleParityStage])
        assert sim.stages[-1].name == "cycle_parity"

    def test_unknown_override_name_raises(self):
        with pytest.raises(ValueError, match="unknown stage override"):
            Simulator(spec_config(), ListTrace(independent_alus(4)),
                      stage_overrides={"decode": Issue})

    def test_unknown_anchor_raises(self):
        class Orphan(TickProbe):
            name = "orphan"
            after = "decode"

        with pytest.raises(ValueError, match="unknown stage"):
            Simulator(spec_config(), ListTrace(independent_alus(4)),
                      extra_stages=[Orphan])

    def test_duplicate_stage_name_raises(self):
        class Impostor(TickProbe):
            name = "issue"

        with pytest.raises(ValueError, match="duplicate stage name"):
            Simulator(spec_config(), ListTrace(independent_alus(4)),
                      extra_stages=[Impostor])


class QuietIssue(Issue):
    """Behaviour-preserving override used to exercise the swap seam."""

    def _do_issue(self, uop, now, loads_before):
        super()._do_issue(uop, now, loads_before)
        self.sim.issue_count = getattr(self.sim, "issue_count", 0) + 1


class TestCheckpointThroughStageApi:
    """save → restore → continue through stage-API construction."""

    WORKLOAD = "mcf"
    PRESET = "SpecSched_4_Combined"
    SPLIT, TOTAL, WARMUP = 3_000, 7_000, 10_000

    def _build(self, workload, config):
        return Simulator(config, workload.build_trace(1),
                         stage_overrides={"issue": QuietIssue},
                         extra_stages=[CycleParityStage])

    def test_roundtrip_is_bit_identical_with_custom_stages(self):
        workload = resolve_workload(self.WORKLOAD)
        config = make_config(self.PRESET)

        reference = self._build(workload, config)
        reference.functional_warmup(workload.build_trace(1), self.WARMUP)
        reference.run(max_uops=self.TOTAL)

        split = self._build(workload, config)
        split.functional_warmup(workload.build_trace(1), self.WARMUP)
        split.run(max_uops=self.SPLIT)
        state = pickle.loads(pickle.dumps(split.state_dict(), protocol=4))
        assert state["stages"] == {
            "cycle_parity": {"count": split.stats.cycles}}

        restored = self._build(workload, config)
        restored.load_state_dict(state)
        restored.run(max_uops=self.TOTAL)
        assert restored.stats.to_dict() == reference.stats.to_dict()
        assert (restored.stage("cycle_parity").count
                == reference.stage("cycle_parity").count)

    def test_state_for_unknown_stage_is_rejected_before_mutation(self):
        workload = resolve_workload(self.WORKLOAD)
        config = make_config(self.PRESET)
        sim = self._build(workload, config)
        sim.run(max_uops=200)
        state = sim.state_dict()

        plain = Simulator(config, workload.build_trace(1))
        with pytest.raises(ValueError, match="unknown stage"):
            plain.load_state_dict(state)
        # The rejection is atomic: nothing was restored into the target.
        assert plain.now == 0
        assert plain.stats.cycles == 0
        assert plain.stats.committed_uops == 0

    def test_empty_stage_state_resets_on_restore(self):
        """A snapshot that recorded nothing for a stage hands it ``{}``
        at restore — accumulated state must reset, not linger."""
        workload = resolve_workload(self.WORKLOAD)
        config = make_config(self.PRESET)

        fresh = Simulator(config, workload.build_trace(1),
                          extra_stages=[CycleParityStage])
        state = fresh.state_dict()          # count == 0 -> blob elided
        assert "stages" not in state

        stale = Simulator(config, workload.build_trace(1),
                          extra_stages=[CycleParityStage])
        stale.run(max_uops=200)
        assert stale.stage("cycle_parity").count > 0
        stale.load_state_dict(state)
        assert stale.stage("cycle_parity").count == 0


class TestPortPrimitives:
    def test_port_connects_exactly_once(self):
        port = Port("p")
        sink = port.connect(lambda value: None)
        assert port.connected and callable(sink)
        with pytest.raises(PortError, match="already connected"):
            port.connect(lambda value: None)

    def test_unconnected_port_raises_on_send_and_sink(self):
        port = Port("p")
        with pytest.raises(PortError, match="before wiring"):
            port.send(object())
        with pytest.raises(PortError, match="not connected"):
            port.sink()

    def test_connected_port_forwards_same_cycle(self):
        port = Port("p")
        seen = []
        port.connect(seen.append)
        port.send("event")
        assert seen == ["event"]

    def test_wire_reset_and_state_roundtrip(self):
        wire = Wire("w", default=-1)
        wire.value = 7
        assert wire.state_dict() == 7
        wire.reset()
        assert wire.value == -1
        wire.load_state_dict(7)
        assert wire.value == 7

    def test_delay_queue_restore_keeps_bound_slots_alive(self):
        """The hot-path contract: restore must mutate ``slots`` in place
        (stages bind the dict at wiring time)."""

        class _Codec:
            def ref(self, uop):
                return 0

            def uop(self, ref):
                return "uop"

        queue = DelayQueue("q")
        bound = queue.slots            # what a stage binds at wiring
        queue.push(5, "uop", 1)
        state = queue.state_dict(_Codec())
        queue.load_state_dict(state, _Codec())
        assert queue.slots is bound
        assert bound == {5: [("uop", 1)]}
        assert queue.pop(5) == [("uop", 1)]
        assert queue.pop(5) is None


def test_build_stages_requires_simulator_wiring():
    """build_stages needs the structures a Simulator provides; the check
    that overrides reject unknown names must not need one."""
    with pytest.raises(ValueError, match="unknown stage override"):
        build_stages(object(), overrides={"nonesuch": Issue})
