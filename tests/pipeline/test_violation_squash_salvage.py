"""Regression: a memory-order-violation squash must not drop correct-path
µops still inside the frontend pipe.

Found by the drain-and-commit property suite: after a mispredicted
branch *resolves* (redirect), the frontend starts fetching correct-path
µops again; if a violation squash fires while those are still in the
frontend delay pipe, the old ``redirect``-based flush discarded them —
and a trace cursor never rewinds, so they were lost forever (the run
drained with fewer commits than trace µops). ``FetchStage.squash_all``
now salvages correct-path pipe occupants into the replay queue behind
the re-injected ROB clones.
"""

from __future__ import annotations

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.pipeline.cpu import Simulator

from tests.conftest import alu, run_to_completion, spec_config, uop


def _violation_during_refetch_uops():
    # A frozen fuzzer counterexample (delay=0 config): the store at
    # 0x105 takes its data off a multiply chain, so the younger load at
    # 0x106 executes first. By the time the store fires the violation
    # squash, the mispredicted taken branch at 0x107 has already
    # resolved and restarted correct-path fetch — the trailing branches
    # are mid-frontend, and the old flush dropped two of them for good
    # (8 of 10 committed).
    from repro.isa.uop import MicroOp

    return [
        MicroOp(0, 0x100, OpClass.LOAD, srcs=[8], dst=4, mem_addr=0x2040),
        MicroOp(0, 0x101, OpClass.INT_MUL, srcs=[8, 2], dst=6),
        MicroOp(0, 0x102, OpClass.INT_MUL, srcs=[5, 8], dst=2),
        MicroOp(0, 0x103, OpClass.INT_MUL, srcs=[2, 4], dst=9),
        MicroOp(0, 0x104, OpClass.BRANCH, srcs=[8], taken=False,
                target=0x105),
        MicroOp(0, 0x105, OpClass.STORE, srcs=[6, 6], mem_addr=0x2040),
        MicroOp(0, 0x106, OpClass.LOAD, srcs=[3], dst=8, mem_addr=0x2040),
        MicroOp(0, 0x107, OpClass.BRANCH, srcs=[7], taken=True,
                target=0x147),
        MicroOp(0, 0x108, OpClass.BRANCH, srcs=[4], taken=False,
                target=0x109),
        MicroOp(0, 0x109, OpClass.BRANCH, srcs=[5], taken=True,
                target=0x149),
    ]


def test_every_uop_commits_despite_violation_during_refetch():
    uops = _violation_during_refetch_uops()
    sim = Simulator(spec_config(delay=0), ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.memory_order_violations >= 1, \
        "scenario must actually trigger the violation squash"
    assert sim.stats.committed_uops == len(uops)


def test_squash_all_salvages_correct_path_pipe_occupants():
    uops = [alu([2], 3, pc=0x10 + i) for i in range(6)]
    sim = Simulator(spec_config(delay=0), ListTrace(uops))
    fetch = sim.fetch
    fetch.tick(0)                       # µops now sit in the delay pipe
    in_pipe = [u.pc for _, u in fetch.pipe if not u.wrong_path]
    assert in_pipe, "precondition: the pipe holds correct-path µops"
    fetch.squash_all(0)
    assert not fetch.pipe
    salvaged = [u.pc for u in fetch.replay_queue]
    assert salvaged == in_pipe          # same µops, program order kept
    assert all(not u.wrong_path for u in fetch.replay_queue)


def test_branch_redirect_alone_still_discards_wrong_path():
    # The inverse guard: a plain mispredict flush must not "salvage"
    # wrong-path filler into the replay queue.
    uops = [
        alu([2], 3, pc=0x10),
        uop(OpClass.BRANCH, pc=0x11, srcs=[2], taken=True, target=0x80),
        alu([3], 4, pc=0x80),
        alu([4], 5, pc=0x81),
    ]
    sim = Simulator(spec_config(delay=2), ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.committed_uops == len(uops)
    assert sim.fetch.replay_queue == type(sim.fetch.replay_queue)()
