"""Cycle-exact scheduling tests on hand-built traces.

These pin the paper's timing contract (Figures 1, 2, 6):

* back-to-back execution of dependent µops;
* speculative wakeup `issue + load-to-use` for L1 hits;
* conservative wakeup `issue + load-to-use + D` for L1 hits (Baseline_*);
* miss detection at `issue + D + load-to-use − 1` with the Alpha-style
  window squash and corrected re-issue;
* Schedule Shifting absorbing same-cycle pair bank conflicts.
"""

from typing import List

from repro.experiments.timeline import TracingSimulator
from repro.isa.trace import ListTrace
from repro.isa.uop import MicroOp

from tests.conftest import alu, load, run_to_completion, spec_config


def trace_sim(uops: List[MicroOp], config, prefill=()):
    sim = TracingSimulator(config, ListTrace(uops))
    for addr in prefill:
        sim.hierarchy.l1d.fill(addr)
        sim.hierarchy.l2.fill(addr)
    return sim


def attempts(sim, seq):
    return sim.issue_log[seq]


def final_issue(sim, seq):
    return attempts(sim, seq)[-1][0]


class TestBackToBack:
    def test_alu_chain_issues_one_apart(self):
        cfg = spec_config(delay=4)
        sim = trace_sim([alu([2], 4), alu([4], 5), alu([5], 6)], cfg)
        run_to_completion(sim)
        i0, i1, i2 = (final_issue(sim, s) for s in (0, 1, 2))
        assert i1 == i0 + 1
        assert i2 == i1 + 1

    def test_exec_start_is_issue_plus_delay_plus_one(self):
        cfg = spec_config(delay=4)
        sim = trace_sim([alu([2], 4)], cfg)
        run_to_completion(sim)
        issue, exec_start, squashed = attempts(sim, 0)[0]
        assert exec_start == issue + 5
        assert not squashed

    def test_mul_latency_respected(self):
        from repro.isa.opclass import OpClass
        from tests.conftest import uop
        cfg = spec_config(delay=4)
        sim = trace_sim([uop(OpClass.INT_MUL, srcs=[2], dst=4),
                         alu([4], 5)], cfg)
        run_to_completion(sim)
        assert final_issue(sim, 1) == final_issue(sim, 0) + 3


class TestSpeculativeLoadWakeup:
    def test_hit_dependent_issues_at_load_to_use(self):
        cfg = spec_config(delay=4)
        sim = trace_sim([load(0x1000, dst=4), alu([4], 5)], cfg,
                        prefill=[0x1000])
        run_to_completion(sim)
        assert final_issue(sim, 1) == final_issue(sim, 0) + 4
        assert sim.stats.replayed_total == 0

    def test_conservative_hit_pays_issue_to_execute(self):
        cfg = spec_config(delay=4, speculative=False)
        sim = trace_sim([load(0x1000, dst=4), alu([4], 5)], cfg,
                        prefill=[0x1000])
        run_to_completion(sim)
        assert final_issue(sim, 1) == final_issue(sim, 0) + 4 + 4
        assert sim.stats.replayed_total == 0

    def test_conservative_penalty_scales_with_delay(self):
        for delay in (2, 6):
            cfg = spec_config(delay=delay, speculative=False)
            sim = trace_sim([load(0x1000, dst=4), alu([4], 5)], cfg,
                            prefill=[0x1000])
            run_to_completion(sim)
            assert final_issue(sim, 1) == final_issue(sim, 0) + 4 + delay


class TestMissReplay:
    def _miss_sim(self, delay=4):
        cfg = spec_config(delay=delay)
        sim = trace_sim([load(0x1000, dst=4), alu([4], 5)], cfg)
        sim.hierarchy.l2.fill(0x1000)       # L1 miss, L2 hit: alat = 13
        return sim

    def test_dependent_squashed_and_replayed(self):
        sim = self._miss_sim()
        run_to_completion(sim)
        tries = attempts(sim, 1)
        assert len(tries) == 2
        first, second = tries
        assert first[2] == 1                 # squashed attempt
        assert second[2] == 0
        load_issue = final_issue(sim, 0)
        assert first[0] == load_issue + 4    # woken assuming a hit
        assert second[0] == load_issue + 13  # corrected to the L2 latency

    def test_replay_statistics(self):
        sim = self._miss_sim()
        run_to_completion(sim)
        assert sim.stats.replayed_miss >= 1
        assert sim.stats.replayed_bank == 0
        assert sim.stats.squash_events_miss == 1
        assert sim.stats.issue_cycles_lost == 1

    def test_unique_vs_issued_counts(self):
        sim = self._miss_sim()
        run_to_completion(sim)
        assert sim.stats.unique_issued == 2
        assert sim.stats.issued_total == 3   # dependent issued twice

    def test_no_replay_when_delay_zero(self):
        """With D=0 the correction lands before dependents issue:
        SpecSched_0 cannot replay (Section 4 / DESIGN invariant)."""
        sim = self._miss_sim(delay=0)
        run_to_completion(sim)
        assert sim.stats.replayed_total == 0
        assert len(attempts(sim, 1)) == 1

    def test_independent_uop_in_window_squashed_too(self):
        """Alpha-style replay is non-selective: independents in the
        in-flight window are squashed with the dependents."""
        cfg = spec_config(delay=4)
        uops = [load(0x1000, dst=4), alu([4], 5),
                alu([2], 6), alu([6], 7), alu([7], 8), alu([8], 9),
                alu([9], 10), alu([10], 11), alu([11], 12)]
        sim = trace_sim(uops, cfg)
        sim.hierarchy.l2.fill(0x1000)
        run_to_completion(sim)
        # More µops replayed than the single true dependent.
        assert sim.stats.replayed_miss > 1


class TestBankConflictReplay:
    BANK0_SET0 = 0x000
    BANK0_SET1 = 0x040

    def _conflict_trace(self):
        return [load(self.BANK0_SET0, dst=4, pc=0x100),
                load(self.BANK0_SET1, dst=5, pc=0x101),
                alu([5], 6)]

    def test_pair_conflict_replays_dependent(self):
        cfg = spec_config(delay=4, banked=True)
        sim = trace_sim(self._conflict_trace(), cfg,
                        prefill=[self.BANK0_SET0, self.BANK0_SET1])
        run_to_completion(sim)
        assert final_issue(sim, 0) == attempts(sim, 1)[0][0]  # same cycle
        assert sim.stats.l1d_bank_conflicts == 1
        assert sim.stats.replayed_bank >= 1
        assert sim.stats.replayed_miss == 0

    def test_dual_ported_cache_no_conflict(self):
        cfg = spec_config(delay=4, banked=False)
        sim = trace_sim(self._conflict_trace(), cfg,
                        prefill=[self.BANK0_SET0, self.BANK0_SET1])
        run_to_completion(sim)
        assert sim.stats.replayed_total == 0

    def test_schedule_shifting_absorbs_conflict(self):
        cfg = spec_config(delay=4, banked=True, shifting=True)
        sim = trace_sim(self._conflict_trace(), cfg,
                        prefill=[self.BANK0_SET0, self.BANK0_SET1])
        run_to_completion(sim)
        assert sim.stats.replayed_total == 0
        assert sim.stats.shifted_loads >= 1
        # Dependent of the second load woken one cycle late, no replay.
        assert final_issue(sim, 2) == final_issue(sim, 1) + 5

    def test_shifting_costs_cycle_without_conflict(self):
        """Drawback 1 (Section 5.1): a non-conflicting pair still delays
        the second load's dependents by one cycle."""
        cfg = spec_config(delay=4, banked=True, shifting=True)
        uops = [load(0x000, dst=4, pc=0x100),       # bank 0
                load(0x048, dst=5, pc=0x101),       # bank 1: no conflict
                alu([5], 6)]
        sim = trace_sim(uops, cfg, prefill=[0x000, 0x040])
        run_to_completion(sim)
        assert sim.stats.replayed_total == 0
        assert final_issue(sim, 2) == final_issue(sim, 1) + 5

    def test_same_set_pair_needs_no_shift(self):
        cfg = spec_config(delay=4, banked=True)
        uops = [load(0x000, dst=4, pc=0x100),
                load(0x000 + 0, dst=5, pc=0x101),   # same set: line buffer
                alu([5], 6)]
        sim = trace_sim(uops, cfg, prefill=[0x000])
        run_to_completion(sim)
        assert sim.stats.replayed_total == 0
