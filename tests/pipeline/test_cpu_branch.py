"""Branch handling: mispredict squash, wrong-path accounting, penalty."""

from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace
from repro.pipeline.cpu import Simulator

from tests.conftest import alu, run_to_completion, spec_config, uop


def taken_branch(pc=0x10, target=0x40):
    return uop(OpClass.BRANCH, pc=pc, srcs=[2], taken=True, target=target)


def test_cold_taken_branch_mispredicts_once():
    cfg = spec_config(delay=4)
    uops = [alu([2], 4), taken_branch(), alu([4], 5), alu([5], 6)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.branch_mispredicts == 1
    assert sim.stats.committed_uops == 4      # everything still commits


def test_wrong_path_uops_issued_but_never_committed():
    cfg = spec_config(delay=4)
    uops = [taken_branch()] + [alu([2], 4, pc=0x100 + i) for i in range(6)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.wrong_path_issued > 0
    assert sim.stats.committed_uops == len(uops)


def test_mispredict_penalty_constant_across_delays():
    """Section 3.1: frontend shortens as D grows, so the fetch-to-resolve
    distance (and thus the misprediction penalty) stays constant."""
    def cycles_for(delay):
        cfg = spec_config(delay=delay)
        uops = [taken_branch()] + [alu([2], 4, pc=0x200 + i)
                                   for i in range(8)]
        sim = Simulator(cfg, ListTrace(uops))
        run_to_completion(sim)
        return sim.stats.cycles
    base = cycles_for(0)
    for delay in (2, 4, 6):
        assert abs(cycles_for(delay) - base) <= 2


def test_trained_branch_stops_mispredicting():
    cfg = spec_config(delay=4)
    block = [alu([2], 4, pc=0x100), taken_branch(pc=0x101, target=0x100)]
    sim = Simulator(cfg, ListTrace(block * 200))
    run_to_completion(sim, max_cycles=100_000)
    assert sim.stats.branches == 200
    assert sim.stats.branch_mispredicts < 20   # only the cold start


def test_branch_after_load_waits_for_data():
    """A branch whose source is a load result resolves later: more wrong
    path. Sanity: simulation stays consistent and commits everything."""
    from tests.conftest import load
    cfg = spec_config(delay=4)
    uops = [load(0x100000, dst=4),
            uop(OpClass.BRANCH, pc=0x20, srcs=[4], taken=True, target=0x80),
            alu([2], 5)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.stats.committed_uops == 3
    assert sim.stats.branch_mispredicts == 1


def test_nested_wrong_path_does_not_redirect():
    """Wrong-path branches must never redirect fetch; after resolution of
    the real branch everything drains cleanly."""
    cfg = spec_config(delay=4)
    uops = [taken_branch(pc=0x10)] + [alu([2], 4, pc=0x300 + i)
                                      for i in range(10)]
    sim = Simulator(cfg, ListTrace(uops))
    run_to_completion(sim)
    assert sim.done
    assert sim.stats.committed_uops == len(uops)
