"""Run-helper coverage: run_workload / run_config / functional warmup."""

import pytest

from repro.common.config import SimConfig
from repro.pipeline.sim import RunResult, run_config, run_workload
from repro.workloads.suite import SUITE

TINY = dict(warmup_uops=400, measure_uops=1200, functional_warmup_uops=4000)


def test_run_workload_by_names():
    result = run_workload("gzip", "SpecSched_4", **TINY)
    assert isinstance(result, RunResult)
    assert result.workload == "gzip"
    assert result.config_name == "SpecSched_4"
    assert result.ipc > 0


def test_run_workload_with_spec_and_config_objects():
    spec = SUITE["swim"]
    config = SimConfig(name="custom").with_core(issue_to_execute_delay=2)
    result = run_workload(spec, config, **TINY)
    assert result.config_name == "custom"
    assert result.stats.committed_uops >= 1200


def test_banked_flag_only_for_names():
    banked = run_workload("swim", "SpecSched_4", banked=True, **TINY)
    dual = run_workload("swim", "SpecSched_4", banked=False, **TINY)
    assert banked.stats.l1d_bank_conflicts >= dual.stats.l1d_bank_conflicts
    assert dual.stats.l1d_bank_conflicts == 0


def test_seed_override_changes_stream():
    a = run_workload("xalancbmk", "SpecSched_4", seed=1, **TINY)
    b = run_workload("xalancbmk", "SpecSched_4", seed=2, **TINY)
    assert (a.stats.cycles, a.stats.issued_total) != \
        (b.stats.cycles, b.stats.issued_total)


def test_functional_warmup_improves_hit_rate():
    cold = run_workload("xalancbmk", "Baseline_0", banked=False,
                        warmup_uops=400, measure_uops=1200,
                        functional_warmup_uops=0)
    warm = run_workload("xalancbmk", "Baseline_0", banked=False, **TINY)
    # The warm run should see noticeably fewer DRAM reads in measurement.
    assert warm.stats.dram_reads <= cold.stats.dram_reads


def test_run_config_maps_names():
    results = run_config("Baseline_0", ["gzip", "swim"], **TINY)
    assert set(results) == {"gzip", "swim"}
    assert all(r.ipc > 0 for r in results.values())


def test_run_config_accepts_spec_objects():
    results = run_config("Baseline_0", [SUITE["gzip"], "swim"], **TINY)
    assert set(results) == {"gzip", "swim"}
    assert all(r.ipc > 0 for r in results.values())


def test_run_config_spec_matches_name():
    by_name = run_config("SpecSched_4", ["mcf"], **TINY)
    by_spec = run_config("SpecSched_4", [SUITE["mcf"]], **TINY)
    assert by_name["mcf"].stats.to_dict() == by_spec["mcf"].stats.to_dict()


def test_unknown_config_name_raises():
    with pytest.raises(ValueError):
        run_workload("gzip", "HyperSched_9000", **TINY)
