"""Small-scale checks of the paper's qualitative results (the benchmarks
verify them at scale; these keep the shapes under plain `pytest tests/`).
"""

import pytest

from repro.pipeline.sim import run_workload

SMALL = dict(warmup_uops=1000, measure_uops=4000, functional_warmup_uops=30000)


@pytest.fixture(scope="module")
def xalanc_runs():
    return {
        name: run_workload("xalancbmk", name, banked=True, **SMALL)
        for name in ("Baseline_4", "SpecSched_4", "SpecSched_4_Crit")
    }


class TestXalancStory:
    """The paper's motivating workload: high IPC x high miss rate."""

    def test_always_hit_loses_to_conservative(self, xalanc_runs):
        # Section 4.3: xalancbmk is the one workload where replays make
        # Always-Hit speculation a net loss.
        assert xalanc_runs["SpecSched_4"].ipc < \
            xalanc_runs["Baseline_4"].ipc

    def test_crit_recovers(self, xalanc_runs):
        assert xalanc_runs["SpecSched_4_Crit"].ipc > \
            xalanc_runs["SpecSched_4"].ipc

    def test_crit_removes_most_replays(self, xalanc_runs):
        assert xalanc_runs["SpecSched_4_Crit"].stats.replayed_total < \
            0.2 * xalanc_runs["SpecSched_4"].stats.replayed_total


class TestGzipStory:
    """Pointer-chasing INT code: the Figure-3 effect and its recovery."""

    def test_conservative_scheduling_costs(self):
        fast = run_workload("gzip", "Baseline_0", banked=False, **SMALL)
        slow = run_workload("gzip", "Baseline_4", banked=False, **SMALL)
        assert slow.ipc < fast.ipc * 0.92

    def test_speculation_recovers_most(self):
        conservative = run_workload("gzip", "Baseline_4", banked=False,
                                    **SMALL)
        speculative = run_workload("gzip", "SpecSched_4", banked=False,
                                   **SMALL)
        assert speculative.ipc > conservative.ipc * 1.05


class TestLibquantumStory:
    """Always-missing streamer: filtering removes nearly all replays."""

    def test_filter_eliminates_replays(self):
        base = run_workload("libquantum", "SpecSched_4", banked=True, **SMALL)
        filt = run_workload("libquantum", "SpecSched_4_Filter",
                            banked=True, **SMALL)
        assert base.stats.replayed_miss > 1000
        assert filt.stats.replayed_miss < 0.05 * base.stats.replayed_miss

    def test_performance_unharmed(self):
        base = run_workload("libquantum", "SpecSched_4", banked=True, **SMALL)
        filt = run_workload("libquantum", "SpecSched_4_Filter",
                            banked=True, **SMALL)
        assert filt.ipc > base.ipc * 0.95


class TestSwimStory:
    """Bank-conflict-heavy FP streams: shifting recovers the banking loss."""

    def test_shifting_recovers_banking_loss(self):
        dual = run_workload("swim", "SpecSched_4", banked=False, **SMALL)
        banked = run_workload("swim", "SpecSched_4", banked=True, **SMALL)
        shifted = run_workload("swim", "SpecSched_4_Shift", banked=True,
                               **SMALL)
        assert banked.ipc < dual.ipc            # banking costs
        assert shifted.ipc > banked.ipc         # shifting recovers
        gap = dual.ipc - banked.ipc
        recovered = shifted.ipc - banked.ipc
        assert recovered > 0.5 * gap            # paper: 2.8 of 4.7 points
