"""End-to-end model invariants on real workloads (small runs)."""

import pytest

from repro.isa.trace import ListTrace
from repro.pipeline.cpu import Simulator
from repro.pipeline.sim import run_workload
from repro.workloads.suite import SUITE

SMALL = dict(warmup_uops=800, measure_uops=2500)


class TestSpecSched0Equivalence:
    """With D=0 the latency correction always lands before dependents
    issue: SpecSched_0 must behave *exactly* like Baseline_0."""

    @pytest.mark.parametrize("workload", ["gzip", "swim", "mcf"])
    def test_identical_cycles(self, workload):
        a = run_workload(workload, "Baseline_0", banked=False, **SMALL)
        b = run_workload(workload, "SpecSched_0", banked=False, **SMALL)
        assert a.stats.cycles == b.stats.cycles
        assert b.stats.replayed_total == 0


class TestBaselineNeverReplays:
    @pytest.mark.parametrize("workload", ["xalancbmk", "libquantum"])
    def test_conservative_has_no_replays(self, workload):
        r = run_workload(workload, "Baseline_4", banked=True, **SMALL)
        assert r.stats.replayed_total == 0
        assert r.stats.issue_cycles_lost == 0


class TestDualPortedNeverBankReplays:
    @pytest.mark.parametrize("workload", ["swim", "hmmer"])
    def test_no_bank_replays(self, workload):
        r = run_workload(workload, "SpecSched_4", banked=False, **SMALL)
        assert r.stats.replayed_bank == 0
        assert r.stats.l1d_bank_conflicts == 0


class TestAccountingConsistency:
    @pytest.mark.parametrize("workload", ["gzip", "xalancbmk", "swim"])
    def test_issued_equals_unique_plus_replays(self, workload):
        """Every issue event is either a µop's first issue or a replay of
        a previously squashed issue."""
        r = run_workload(workload, "SpecSched_4", banked=True, **SMALL)
        s = r.stats
        assert s.issued_total >= s.unique_issued
        assert s.issued_total - s.unique_issued >= 0
        # replays counted at squash == re-issues eventually performed,
        # modulo µops still in flight at measurement end.
        assert abs((s.issued_total - s.unique_issued) - s.replayed_total) \
            <= s.replayed_total * 0.25 + 50

    def test_committed_matches_trace_exactly_on_finite_run(self):
        trace_uops = []
        spec = SUITE["gzip"]
        t = spec.build_trace()
        for _ in range(600):
            trace_uops.append(t.next_uop())
        from repro.core.presets import make_config
        sim = Simulator(make_config("SpecSched_4"), ListTrace(trace_uops))
        sim.run(max_cycles=100_000)
        assert sim.done
        assert sim.stats.committed_uops == 600


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_workload("crafty", "SpecSched_4_Crit", **SMALL)
        b = run_workload("crafty", "SpecSched_4_Crit", **SMALL)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.issued_total == b.stats.issued_total
        assert a.stats.replayed_total == b.stats.replayed_total


class TestCrossConfigSanity:
    def test_shifting_never_increases_bank_replays(self):
        base = run_workload("swim", "SpecSched_4", banked=True, **SMALL)
        shift = run_workload("swim", "SpecSched_4_Shift", banked=True, **SMALL)
        assert shift.stats.replayed_bank < base.stats.replayed_bank

    def test_filter_reduces_miss_replays_on_missy_workload(self):
        base = run_workload("libquantum", "SpecSched_4", banked=True, **SMALL)
        filt = run_workload("libquantum", "SpecSched_4_Filter",
                            banked=True, **SMALL)
        assert filt.stats.replayed_miss < base.stats.replayed_miss * 0.5

    def test_crit_reduces_total_replays(self):
        base = run_workload("xalancbmk", "SpecSched_4", banked=True, **SMALL)
        crit = run_workload("xalancbmk", "SpecSched_4_Crit",
                            banked=True, **SMALL)
        assert crit.stats.replayed_total < base.stats.replayed_total * 0.6
