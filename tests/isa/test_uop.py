from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


def test_classification_load():
    u = MicroOp(0, 0x10, OpClass.LOAD, srcs=[1], dst=2, mem_addr=0x100)
    assert u.is_load and u.is_mem
    assert not u.is_store and not u.is_branch


def test_classification_store():
    u = MicroOp(0, 0x10, OpClass.STORE, srcs=[1, 2], mem_addr=0x100)
    assert u.is_store and u.is_mem and not u.is_load


def test_classification_branches():
    for oc in (OpClass.BRANCH, OpClass.CALL, OpClass.RET):
        assert MicroOp(0, 0, oc).is_branch


def test_classification_alu():
    u = MicroOp(0, 0, OpClass.INT_ALU, srcs=[3], dst=4)
    assert not (u.is_load or u.is_store or u.is_mem or u.is_branch)


def test_initial_dynamic_state():
    u = MicroOp(5, 0x20, OpClass.INT_ALU, srcs=[1], dst=2)
    assert u.num_issues == 0
    assert u.issue_cycle == -1
    assert not u.executed and not u.completed
    assert not u.squashed and not u.dead and not u.replay_pending
    assert u.pending == 0 and u.store_dep is None


def test_clone_arch_resets_dynamic_state():
    u = MicroOp(5, 0x20, OpClass.LOAD, srcs=[1], dst=2, mem_addr=0xAB0,
                taken=True, target=0x40)
    u.num_issues = 3
    u.executed = True
    u.pdst = 77
    c = u.clone_arch(seq=9)
    assert c.seq == 9
    assert c.pc == u.pc and c.opclass == u.opclass
    assert c.srcs == u.srcs and c.srcs is not u.srcs
    assert c.mem_addr == 0xAB0 and c.taken and c.target == 0x40
    assert c.num_issues == 0 and not c.executed and c.pdst == -1


def test_slots_reject_unknown_attrs():
    u = MicroOp(0, 0, OpClass.NOP)
    try:
        u.bogus_field = 1
        assert False, "MicroOp should use __slots__"
    except AttributeError:
        pass


def test_repr_contains_flags():
    u = MicroOp(1, 0x8, OpClass.INT_ALU, wrong_path=True)
    u.executed = True
    text = repr(u)
    assert "WP" in text and "X" in text
