from repro.isa.opclass import OpClass
from repro.isa.trace import ListTrace, TraceSource, iterate
from repro.isa.uop import MicroOp


def _uops(n):
    return [MicroOp(0, 0x100 + i, OpClass.INT_ALU, srcs=[1], dst=2)
            for i in range(n)]


def test_finite_trace_exhausts():
    t = ListTrace(_uops(3))
    got = [t.next_uop() for _ in range(4)]
    assert got[3] is None
    assert [u.pc for u in got[:3]] == [0x100, 0x101, 0x102]


def test_trace_assigns_monotone_seq():
    t = ListTrace(_uops(5))
    seqs = [t.next_uop().seq for _ in range(5)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5


def test_trace_clones_templates():
    templates = _uops(1)
    t = ListTrace(templates, loop=True)
    a = t.next_uop()
    b = t.next_uop()
    assert a is not b and a is not templates[0]
    a.executed = True
    assert not b.executed


def test_loop_trace_repeats():
    t = ListTrace(_uops(2), loop=True)
    pcs = [t.next_uop().pc for _ in range(6)]
    assert pcs == [0x100, 0x101] * 3


def test_reset():
    t = ListTrace(_uops(2))
    t.next_uop()
    t.next_uop()
    assert t.next_uop() is None
    t.reset()
    assert t.next_uop().pc == 0x100


def test_iterate_limit():
    t = ListTrace(_uops(10))
    assert len(list(iterate(t, 4))) == 4


def test_iterate_stops_at_exhaustion():
    t = ListTrace(_uops(2))
    assert len(list(iterate(t, 10))) == 2


def test_default_wrong_path_uop_is_alu():
    t = TraceSource()
    wp = t.wrong_path_uop(3, 0xDEAD)
    assert wp.wrong_path
    assert wp.opclass == OpClass.INT_ALU
    assert wp.pc == 0xDEAD


def test_list_trace_wrong_path_has_seeded_variety():
    # ListTrace must not share the base class's constant filler: the
    # (srcs, dst) pattern varies, but only over the reserved registers.
    t = ListTrace(_uops(3))
    wps = [t.wrong_path_uop(0, 0x1000 + i) for i in range(64)]
    assert all(w.wrong_path and w.opclass == OpClass.INT_ALU for w in wps)
    assert all(set(w.srcs) | {w.dst} <= {0, 1} for w in wps)
    assert len({(tuple(w.srcs), w.dst) for w in wps}) > 1


def test_list_trace_wrong_path_deterministic_per_seed():
    a = ListTrace(_uops(3), wp_seed=9)
    b = ListTrace(_uops(3), wp_seed=9)
    c = ListTrace(_uops(3), wp_seed=10)
    pa = [(tuple(u.srcs), u.dst) for u in
          (a.wrong_path_uop(0, i) for i in range(32))]
    pb = [(tuple(u.srcs), u.dst) for u in
          (b.wrong_path_uop(0, i) for i in range(32))]
    pc = [(tuple(u.srcs), u.dst) for u in
          (c.wrong_path_uop(0, i) for i in range(32))]
    assert pa == pb
    assert pa != pc


def test_list_trace_reset_restarts_wrong_path_stream():
    t = ListTrace(_uops(3), wp_seed=5)
    first = [(tuple(u.srcs), u.dst) for u in
             (t.wrong_path_uop(0, i) for i in range(16))]
    t.reset()
    again = [(tuple(u.srcs), u.dst) for u in
             (t.wrong_path_uop(0, i) for i in range(16))]
    assert first == again
