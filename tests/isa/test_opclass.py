from repro.isa.opclass import (
    BRANCH_OPS,
    EXEC_LATENCY,
    FU_KIND,
    MEMORY_OPS,
    UNPIPELINED,
    FuKind,
    OpClass,
)


def test_every_opclass_has_fu_and_latency():
    for oc in OpClass:
        assert oc in FU_KIND
        assert oc in EXEC_LATENCY
        assert EXEC_LATENCY[oc] >= 1


def test_table1_latencies():
    assert EXEC_LATENCY[OpClass.INT_ALU] == 1
    assert EXEC_LATENCY[OpClass.INT_MUL] == 3
    assert EXEC_LATENCY[OpClass.INT_DIV] == 25
    assert EXEC_LATENCY[OpClass.FP_ADD] == 3
    assert EXEC_LATENCY[OpClass.FP_MUL] == 5
    assert EXEC_LATENCY[OpClass.FP_DIV] == 10


def test_fu_mapping():
    assert FU_KIND[OpClass.LOAD] == FuKind.LOAD_PORT
    assert FU_KIND[OpClass.STORE] == FuKind.STORE_PORT
    assert FU_KIND[OpClass.INT_DIV] == FuKind.MULDIV
    assert FU_KIND[OpClass.FP_DIV] == FuKind.FPMULDIV
    assert FU_KIND[OpClass.BRANCH] == FuKind.ALU


def test_dividers_unpipelined():
    assert OpClass.INT_DIV in UNPIPELINED
    assert OpClass.FP_DIV in UNPIPELINED
    assert OpClass.INT_MUL not in UNPIPELINED


def test_class_sets():
    assert MEMORY_OPS == {OpClass.LOAD, OpClass.STORE}
    assert BRANCH_OPS == {OpClass.BRANCH, OpClass.CALL, OpClass.RET}
