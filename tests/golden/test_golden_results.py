"""Golden-result regression suite.

Three tiny fixed-seed (workload, preset) cells are simulated and every
``SimStats`` counter is compared **exactly** against the checked-in
``goldens.json``. Any refactor that changes simulation semantics — seed
plumbing, issue ordering, replay accounting — fails here loudly instead
of silently skewing the figures.

If a change is *intentional*, regenerate and commit the goldens::

    PYTHONPATH=src python -m pytest tests/golden -q --regen-goldens

and call out the semantic change in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.engine import cell_payload, simulate_payload
from repro.workloads.suite import get_workload

GOLDEN_PATH = Path(__file__).parent / "goldens.json"

#: Small but diverse: a low-miss INT baseline, a bank-conflict-prone FP
#: workload under plain speculative scheduling, and a high-miss workload
#: under the paper's full mechanism stack.
CELLS = {
    "gzip/Baseline_0(dual)": dict(
        workload="gzip", preset="Baseline_0", banked=False),
    "swim/SpecSched_4(banked)": dict(
        workload="swim", preset="SpecSched_4", banked=True),
    "mcf/SpecSched_4_Crit(banked)": dict(
        workload="mcf", preset="SpecSched_4_Crit", banked=True),
}

#: Fixed, tiny volumes: goldens must be immune to REPRO_* scaling knobs.
VOLUMES = dict(warmup_uops=500, measure_uops=1500,
               functional_warmup_uops=5000, seed=1)


def _simulate(cell: dict) -> dict:
    payload = cell_payload(
        cell["preset"], get_workload(cell["workload"]),
        banked=cell["banked"], **VOLUMES)
    return simulate_payload(payload)


@pytest.fixture(scope="module")
def goldens(request) -> dict:
    if request.config.getoption("--regen-goldens"):
        regenerated = {cell_id: _simulate(cell)
                       for cell_id, cell in CELLS.items()}
        GOLDEN_PATH.write_text(
            json.dumps(regenerated, indent=2, sort_keys=True) + "\n")
        return regenerated
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} missing; run pytest tests/golden "
                    f"--regen-goldens and commit it")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("cell_id", sorted(CELLS))
def test_golden_cell(cell_id, goldens):
    assert cell_id in goldens, f"no golden for {cell_id}; regenerate"
    measured = _simulate(CELLS[cell_id])
    expected = goldens[cell_id]
    if measured != expected:
        diffs = {key: (expected.get(key), measured.get(key))
                 for key in sorted(set(expected) | set(measured))
                 if expected.get(key) != measured.get(key)}
        pytest.fail(
            f"{cell_id}: simulation semantics changed "
            f"(golden, measured): {diffs}\nIf intentional, rerun with "
            f"--regen-goldens and commit the new goldens.json.")


def test_goldens_cover_exactly_the_declared_cells(goldens):
    assert set(goldens) == set(CELLS)


def test_golden_counters_are_sane(goldens):
    for cell_id, stats in goldens.items():
        assert stats["cycles"] > 0, cell_id
        # The run stops on the first retire group past the budget, so the
        # measured region can land one retire width either side of it.
        assert stats["committed_uops"] >= VOLUMES["measure_uops"] - 16, cell_id
        assert stats["issued_total"] >= stats["unique_issued"] > 0, cell_id
