import pytest

from repro.rename.freelist import FreeList


def test_reserved_registers_not_on_list():
    fl = FreeList(0, 8, reserved=3)
    assert len(fl) == 5
    allocated = {fl.allocate() for _ in range(5)}
    assert allocated == {3, 4, 5, 6, 7}


def test_allocate_release_roundtrip():
    fl = FreeList(10, 4)
    a = fl.allocate()
    fl.release(a)
    assert len(fl) == 4


def test_exhaustion():
    fl = FreeList(0, 2)
    fl.allocate()
    fl.allocate()
    assert fl.empty
    with pytest.raises(IndexError):
        fl.allocate()


def test_release_out_of_range_rejected():
    fl = FreeList(10, 4)
    with pytest.raises(ValueError):
        fl.release(9)
    with pytest.raises(ValueError):
        fl.release(14)


def test_release_many():
    fl = FreeList(0, 4)
    regs = [fl.allocate() for _ in range(3)]
    fl.release_many(regs)
    assert len(fl) == 4


def test_reserved_larger_than_pool_rejected():
    with pytest.raises(ValueError):
        FreeList(0, 2, reserved=3)


def test_fifo_recycling():
    fl = FreeList(0, 3)
    a = fl.allocate()
    b = fl.allocate()
    fl.release(a)
    fl.release(b)
    c = fl.allocate()
    assert c != a or len(fl) >= 0     # FIFO: remaining reg first
    # After draining, released regs come back in release order.
    fl2 = FreeList(0, 1)
    x = fl2.allocate()
    fl2.release(x)
    assert fl2.allocate() == x
