import pytest

from repro.common.config import CoreConfig
from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp
from repro.rename.rat import RegisterAliasTable
from repro.rename.rename import FP_REG_BASE, NUM_ARCH_REGS, RegisterRenamer


def op(srcs, dst):
    return MicroOp(0, 0x10, OpClass.INT_ALU, srcs=srcs, dst=dst)


class TestRat:
    def test_set_returns_previous(self):
        rat = RegisterAliasTable(4)
        assert rat.set(1, 100) == -1
        assert rat.set(1, 200) == 100
        assert rat.lookup(1) == 200

    def test_lookup_unmapped_raises(self):
        with pytest.raises(KeyError):
            RegisterAliasTable(4).lookup(2)

    def test_restore(self):
        rat = RegisterAliasTable(4)
        rat.set(1, 100)
        prev = rat.set(1, 200)
        rat.restore(1, prev)
        assert rat.lookup(1) == 100


class TestRenamer:
    def test_initial_mappings_cover_all_arch_regs(self):
        r = RegisterRenamer()
        for arch in range(NUM_ARCH_REGS):
            assert r.rat.lookup(arch) >= 0

    def test_rename_allocates_and_links(self):
        r = RegisterRenamer()
        u = op([2, 3], 4)
        old = r.rat.lookup(4)
        r.rename(u)
        assert u.psrcs == [2, 3]          # initial identity mappings
        assert u.pdst != old
        assert u.prev_pdst == old
        assert r.rat.lookup(4) == u.pdst

    def test_fp_regs_use_fp_pool(self):
        r = RegisterRenamer()
        u = op([FP_REG_BASE], FP_REG_BASE + 1)
        r.rename(u)
        assert u.pdst >= r.config.int_prf    # FP pool is above the INT file

    def test_dependency_chain_through_rat(self):
        r = RegisterRenamer()
        a = op([2], 5)
        b = op([5], 6)
        r.rename(a)
        r.rename(b)
        assert b.psrcs == [a.pdst]

    def test_commit_frees_previous_mapping(self):
        r = RegisterRenamer()
        free_before = len(r.int_free)
        a = op([2], 5)
        r.rename(a)
        assert len(r.int_free) == free_before - 1
        r.commit(a)
        assert len(r.int_free) == free_before   # prev mapping recycled

    def test_rollback_restores_rat_and_freelist(self):
        r = RegisterRenamer()
        snapshot = r.rat.snapshot()
        free_before = r.free_counts()
        uops = [op([2], 5), op([5], 5), op([5], 6)]
        for u in uops:
            r.rename(u)
        r.rollback(list(reversed(uops)))   # youngest first
        assert r.rat.snapshot() == snapshot
        assert r.free_counts() == free_before

    def test_can_rename_when_pool_empty(self):
        core = CoreConfig()
        r = RegisterRenamer(core)
        n = len(r.int_free)
        for _ in range(n):
            r.rename(op([2], 5))
        assert not r.can_rename(op([2], 5))
        assert r.can_rename(op([2], None))          # no dst: always OK
        assert r.can_rename(op([2], FP_REG_BASE))   # FP pool unaffected

    def test_no_dst_rename(self):
        r = RegisterRenamer()
        u = op([2, 3], None)
        r.rename(u)
        assert u.pdst == -1 and u.prev_pdst == -1
