import random

import pytest

from repro.isa.opclass import OpClass
from repro.memory.banks import bank_of
from repro.workloads.kernels import (
    BankConflictKernel,
    BranchKernel,
    ComputeKernel,
    PointerChaseKernel,
    RandomLoadKernel,
    StoreLoadKernel,
    StreamKernel,
)


def make(cls, **params):
    return cls("k", pc_base=0x1000, reg_base=2, addr_base=1 << 26,
               rng=random.Random(42), **params)


def blocks(kernel, n):
    return [kernel.next_block() for _ in range(n)]


class TestCommonProperties:
    @pytest.mark.parametrize("cls,params", [
        (StreamKernel, {}),
        (PointerChaseKernel, {"ws_lines": 1024}),
        (RandomLoadKernel, {"ws_lines": 1024}),
        (ComputeKernel, {}),
        (BankConflictKernel, {}),
        (BranchKernel, {}),
        (StoreLoadKernel, {}),
    ])
    def test_stable_pcs_across_iterations(self, cls, params):
        """Per-PC predictors need the same static µops every iteration."""
        k = make(cls, **params)
        a, b = blocks(k, 2)
        assert [u.pc for u in a] == [u.pc for u in b]
        assert [u.opclass for u in a] == [u.opclass for u in b]

    @pytest.mark.parametrize("cls,params", [
        (StreamKernel, {}),
        (RandomLoadKernel, {"ws_lines": 64}),
        (BankConflictKernel, {}),
    ])
    def test_pcs_within_region(self, cls, params):
        k = make(cls, **params)
        for block in blocks(k, 3):
            for u in block:
                assert 0x1000 <= u.pc < 0x2000

    def test_registers_within_window(self):
        k = make(StreamKernel)
        for block in blocks(k, 3):
            for u in block:
                for r in ([u.dst] if u.dst is not None else []) + u.srcs:
                    assert (2 <= r < 8) or (34 <= r < 40)


class TestStreamKernel:
    def test_addresses_stride_and_wrap(self):
        k = make(StreamKernel, stride=8, ws_lines=2, unroll=4)
        addrs = [u.mem_addr for b in blocks(k, 8) for u in b if u.is_load]
        assert addrs[1] - addrs[0] == 8
        assert max(addrs) < (1 << 26) + 2 * 64
        assert len(set(addrs)) <= 16      # wrapped around the tiny set

    def test_serial_acc_chains_through_accumulator(self):
        k = make(StreamKernel, serial_acc=True)
        block = k.next_block()
        adds = [u for u in block if u.opclass == OpClass.INT_ALU
                and not u.is_branch]
        assert all(u.dst in u.srcs for u in adds)


class TestPointerChase:
    def test_loads_serially_dependent(self):
        k = make(PointerChaseKernel, ws_lines=256)
        block = k.next_block()
        chase = [u for u in block if u.is_load][0]
        assert chase.srcs == [chase.dst]

    def test_addresses_cover_working_set(self):
        k = make(PointerChaseKernel, ws_lines=64)
        addrs = {u.mem_addr for b in blocks(k, 200) for u in b if u.is_load}
        assert len(addrs) > 16


class TestRandomLoad:
    def test_indirect_creates_two_level_chain(self):
        k = make(RandomLoadKernel, ws_lines=256, loads=2, indirect=True)
        block = k.next_block()
        loads = [u for u in block if u.is_load]
        assert len(loads) == 4            # index + data per access
        idx, data = loads[0], loads[1]
        assert data.srcs == [idx.dst]

    def test_direct_mode_single_level(self):
        k = make(RandomLoadKernel, ws_lines=256, loads=2, indirect=False)
        loads = [u for u in k.next_block() if u.is_load]
        assert len(loads) == 2


class TestBankConflictKernel:
    def test_pairs_share_bank_but_not_set(self):
        k = make(BankConflictKernel, unroll=2, ws_lines=64)
        loads = [u for u in k.next_block() if u.is_load]
        assert len(loads) == 4
        for a, b in zip(loads[::2], loads[1::2]):
            assert bank_of(a.mem_addr, 8) == bank_of(b.mem_addr, 8)
            assert (a.mem_addr >> 6) != (b.mem_addr >> 6)

    def test_banks_rotate_across_pairs(self):
        k = make(BankConflictKernel, unroll=2, ws_lines=64)
        banks = set()
        for block in blocks(k, 8):
            loads = [u for u in block if u.is_load]
            banks.update(bank_of(u.mem_addr, 8) for u in loads)
        assert len(banks) == 8


class TestBranchKernel:
    def test_noise_zero_is_pure_pattern(self):
        k = make(BranchKernel, branches=1, period=4, noise=0.0)
        outcomes = [u.taken for b in blocks(k, 32) for u in b if u.is_branch]
        expected = [(i % 4) != 0 for i in range(32)]
        assert outcomes == expected

    def test_noise_one_inverts_pattern(self):
        k = make(BranchKernel, branches=1, period=4, noise=1.0)
        outcomes = [u.taken for b in blocks(k, 16) for u in b if u.is_branch]
        expected = [not ((i % 4) != 0) for i in range(16)]
        assert outcomes == expected


class TestStoreLoadKernel:
    def test_alias_probability_one_always_pairs(self):
        k = make(StoreLoadKernel, pairs=1, alias_prob=1.0)
        for block in blocks(k, 10):
            st = next(u for u in block if u.is_store)
            ld = next(u for u in block if u.is_load)
            assert st.mem_addr == ld.mem_addr

    def test_store_data_off_a_chain(self):
        k = make(StoreLoadKernel, pairs=1, chain=3)
        block = k.next_block()
        st = next(u for u in block if u.is_store)
        chain = [u for u in block if not u.is_mem and not u.is_branch]
        assert st.srcs[1] == chain[-1].dst
