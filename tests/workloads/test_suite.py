import pytest

from repro.workloads.spec import KernelSpec, WorkloadSpec
from repro.workloads.suite import DEFAULT_SUBSET, SUITE, get_workload


class TestSuiteShape:
    def test_36_workloads(self):
        assert len(SUITE) == 36

    def test_int_fp_split_matches_table2(self):
        ints = sum(1 for s in SUITE.values() if not s.is_fp)
        fps = sum(1 for s in SUITE.values() if s.is_fp)
        assert ints == 18 and fps == 18

    def test_all_validate(self):
        for spec in SUITE.values():
            spec.validate()

    def test_expected_members(self):
        for name in ("gzip", "swim", "mcf", "libquantum", "xalancbmk",
                     "hmmer", "GemsFDTD", "omnetpp"):
            assert name in SUITE

    def test_subset_is_within_suite(self):
        assert set(DEFAULT_SUBSET) <= set(SUITE)
        assert len(DEFAULT_SUBSET) >= 10

    def test_get_workload_errors_helpfully(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("quake3")

    def test_descriptions_present(self):
        for spec in SUITE.values():
            assert spec.description


class TestTraceBuilding:
    def test_deterministic_across_builds(self):
        a = SUITE["gzip"].build_trace()
        b = SUITE["gzip"].build_trace()
        for _ in range(500):
            ua, ub = a.next_uop(), b.next_uop()
            assert (ua.pc, ua.opclass, ua.mem_addr, ua.taken) == \
                   (ub.pc, ub.opclass, ub.mem_addr, ub.taken)

    def test_seed_changes_stream(self):
        a = SUITE["gzip"].build_trace(seed=1)
        b = SUITE["gzip"].build_trace(seed=2)
        diffs = sum(a.next_uop().mem_addr != b.next_uop().mem_addr
                    for _ in range(500))
        assert diffs > 0

    def test_every_workload_generates(self):
        for name, spec in SUITE.items():
            trace = spec.build_trace()
            for _ in range(100):
                u = trace.next_uop()
                assert u is not None, name
                assert u.srcs is not None

    def test_address_regions_disjoint(self):
        trace = SUITE["swim"].build_trace()
        regions = set()
        for _ in range(2000):
            u = trace.next_uop()
            if u.is_mem:
                regions.add(u.mem_addr >> 26)
        assert len(regions) >= 2          # one region per kernel

    def test_wrong_path_uops_are_alu_on_reserved_regs(self):
        trace = SUITE["gzip"].build_trace()
        for i in range(50):
            wp = trace.wrong_path_uop(i, 0x999 + i)
            assert wp.wrong_path
            assert not wp.is_mem and not wp.is_branch
            assert set(wp.srcs) <= {0, 1}
            assert wp.dst in (0, 1)


class TestSpecValidation:
    def test_too_many_kernels_rejected(self):
        spec = WorkloadSpec(
            name="x",
            kernels=tuple(KernelSpec("compute") for _ in range(5)))
        with pytest.raises(ValueError):
            spec.validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", kernels=()).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", kernels=(KernelSpec("quantum"),)).validate()

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", kernels=(
                KernelSpec("compute", weight=0),)).validate()


class TestBehaviouralClasses:
    """Key class properties the paper's discussion relies on (cheap runs)."""

    def _miss_rate(self, name):
        from repro.pipeline.sim import run_workload
        r = run_workload(name, "Baseline_0", warmup_uops=1500,
                         measure_uops=3000, banked=False)
        return r.stats.l1d_miss_rate, r.ipc

    def test_mcf_class(self):
        miss, ipc = self._miss_rate("mcf")
        assert miss > 0.5 and ipc < 0.3

    def test_libquantum_class(self):
        miss, ipc = self._miss_rate("libquantum")
        assert miss > 0.8

    def test_namd_class(self):
        miss, ipc = self._miss_rate("namd")
        assert ipc > 1.2

    def test_xalancbmk_class(self):
        miss, ipc = self._miss_rate("xalancbmk")
        assert miss > 0.25 and ipc > 0.6
