"""Figure 7 — hit/miss filtering: global counter alone vs filter+counter.

Paper numbers: counter alone −59.3% miss replays; with the 768-byte
per-PC filter −65.0%, both at roughly unchanged performance (high-IPC +
high-miss workloads like xalancbmk improve).
"""

from repro.experiments.figures import fig7
from repro.experiments.report import (
    breakdown_table,
    performance_table,
    summary_line,
)

from benchmarks.conftest import emit


def test_fig7(benchmark, settings):
    result = benchmark.pedantic(fig7, args=(settings,),
                                iterations=1, rounds=1)
    emit("Figure 7 — hit/miss filtering",
         performance_table(result),
         breakdown_table(result, "SpecSched_4_Ctr"),
         breakdown_table(result, "SpecSched_4_Filter"),
         summary_line(result, "SpecSched_4_Ctr", "SpecSched_4"),
         summary_line(result, "SpecSched_4_Filter", "SpecSched_4"))

    # Shape: both mechanisms remove a large share of miss replays...
    ctr = result.replay_reduction("SpecSched_4_Ctr", "SpecSched_4", "miss")
    filt = result.replay_reduction("SpecSched_4_Filter", "SpecSched_4",
                                   "miss")
    assert ctr > 0.3
    assert filt > 0.4
    # ...at near-neutral performance (paper: "mostly no impact").
    assert result.speedup_over("SpecSched_4_Ctr", "SpecSched_4") > 0.9
    assert result.speedup_over("SpecSched_4_Filter", "SpecSched_4") > 0.95
