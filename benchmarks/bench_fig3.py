"""Figure 3 — slowdown of conservative scheduling vs issue-to-execute
delay (plus the single-load-port configuration).

Paper shape: performance drops monotonically as the delay grows; the
pointer-chasing INT workloads suffer most, memory-latency-bound workloads
(mcf, libquantum) barely move.
"""

from repro.experiments.figures import fig3
from repro.experiments.report import performance_table

from benchmarks.conftest import emit


def test_fig3(benchmark, settings):
    result = benchmark.pedantic(fig3, args=(settings,),
                                iterations=1, rounds=1)
    emit("Figure 3 — conservative scheduling vs delay",
         performance_table(result))
    # Shape assertions: monotone gmean decline with delay.
    g2 = result.gmean_ipc_ratio("Baseline_2")
    g4 = result.gmean_ipc_ratio("Baseline_4")
    g6 = result.gmean_ipc_ratio("Baseline_6")
    assert g2 <= 1.02
    assert g4 <= g2 + 0.01
    assert g6 <= g4 + 0.01
    # One load port per cycle costs performance.
    assert result.gmean_ipc_ratio("Baseline_0, 1 load/cycle") <= 1.0
