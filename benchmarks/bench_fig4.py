"""Figure 4 — speculative scheduling: dual-ported vs banked L1, and the
issued-µop breakdown (Unique / RpldMiss / RpldBank).

Paper shape: SpecSched_* recovers most of the Figure-3 loss with a
dual-ported L1; banking costs extra performance through bank-conflict
replays; replayed-µop counts grow with the delay.
"""

from repro.experiments.figures import fig4
from repro.experiments.report import breakdown_table, performance_table

from benchmarks.conftest import emit


def test_fig4(benchmark, settings):
    result = benchmark.pedantic(fig4, args=(settings,),
                                iterations=1, rounds=1)
    blocks = [performance_table(result)]
    for delay in (2, 4, 6):
        blocks.append(breakdown_table(result, f"SpecSched_{delay} (banked)"))
    emit("Figure 4 — speculative scheduling, dual vs banked L1", *blocks)

    # (a) speculative scheduling beats conservative scheduling where
    # conservatism actually hurts — the load-chain workloads (gzip is the
    # chase-dominated one in the subset). On gmean our suite is kinder to
    # Baseline_* than SPEC was (EXPERIMENTS.md fidelity note 2), so the
    # paper's average ordering is asserted per-workload instead.
    from repro.experiments.figures import fig3
    conservative = fig3(settings)
    chain_workloads = [w for w in result.workloads
                       if w in ("gzip", "parser", "perlbench", "sjeng")]
    for workload in chain_workloads:
        assert result.ipc_ratio("SpecSched_4 (dual)")[workload] > \
            conservative.ipc_ratio("Baseline_4")[workload]
    # (a) banking costs performance vs the dual-ported L1.
    assert result.gmean_ipc_ratio("SpecSched_4 (banked)") <= \
        result.gmean_ipc_ratio("SpecSched_4 (dual)") + 0.005
    # (b) banked configs replay for both causes; replays grow with delay.
    miss4, bank4 = result.total_replays("SpecSched_4 (banked)")
    assert miss4 > 0 and bank4 > 0
    miss2, bank2 = result.total_replays("SpecSched_2 (banked)")
    assert miss4 + bank4 >= (miss2 + bank2) * 0.8
    # Dual-ported cache never bank-replays.
    assert result.total_replays("SpecSched_4 (dual)")[1] == 0
