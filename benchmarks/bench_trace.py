"""Trace subsystem micro-benchmark — replay-from-file vs generate-live.

The point of the binary trace format is to take the workload generator
off every sweep's hot path: decoding fixed-width records must outrun
regenerating the stream from kernel specs (Markov kernel selection, rng
draws, block assembly). This bench measures raw trace-source throughput
(µops/s) three ways over the same stream:

* **generate live** — ``WorkloadSpec.build_trace`` (status quo);
* **replay (zlib)** — :class:`FileTrace` over the default compressed
  encoding;
* **replay (raw)** — :class:`FileTrace` over uncompressed records.

Scale the stream with ``REPRO_MEASURE`` (the bench replays
``25 x REPRO_MEASURE`` µops). Deselect with ``-m 'not slow'``.
"""

from __future__ import annotations

import time

import pytest

from repro.isa.trace import TraceSource, iterate
from repro.traces.format import FileTrace, capture
from repro.workloads.suite import get_workload

from benchmarks.conftest import emit

WORKLOAD = "xalancbmk"        # 4 kernels incl. the expensive random loads
SEED = 7


def _drain(source: TraceSource, limit: int) -> float:
    start = time.perf_counter()
    count = sum(1 for _ in iterate(source, limit))
    elapsed = time.perf_counter() - start
    assert count == limit, "source exhausted early"
    return limit / elapsed


@pytest.mark.slow
def test_replay_vs_generate_throughput(benchmark, settings, tmp_path):
    spec = get_workload(WORKLOAD)
    uops = 25 * settings.measure_uops

    zlib_path = tmp_path / "t.trc"
    raw_path = tmp_path / "t-raw.trc"
    record_start = time.perf_counter()
    info = capture(spec.build_trace(SEED), zlib_path, uops, wp_seed=SEED,
                   provenance={"workload": WORKLOAD})
    record_s = time.perf_counter() - record_start
    capture(spec.build_trace(SEED), raw_path, uops, wp_seed=SEED,
            compress=False)

    live_rate = _drain(spec.build_trace(SEED), uops)
    raw_rate = _drain(FileTrace(raw_path), uops)
    zlib_rate = benchmark.pedantic(
        lambda: _drain(FileTrace(zlib_path), uops), iterations=1, rounds=1)

    emit(
        "Trace replay vs live generation",
        f"stream: {uops} µops of {WORKLOAD!r} "
        f"(record once: {record_s:.2f} s, "
        f"{info.file_bytes / 1024:.0f} KB on disk, "
        f"{info.raw_bytes / max(1, info.file_bytes):.1f}x compression)",
        f"{'generate live':24s} {live_rate / 1e6:8.2f} Mµops/s",
        f"{'replay (zlib frames)':24s} {zlib_rate / 1e6:8.2f} Mµops/s "
        f"(x{zlib_rate / live_rate:.2f} vs live)",
        f"{'replay (raw records)':24s} {raw_rate / 1e6:8.2f} Mµops/s "
        f"(x{raw_rate / live_rate:.2f} vs live)",
    )
    # The subsystem's reason to exist: replay beats regeneration.
    assert zlib_rate > live_rate
