"""Section 5.3 closing sweep — SpecSched_{2,6}_Crit vs SpecSched_{2,6}.

Paper numbers: ~90% replay reduction at both delays; issued-µop reductions
of 11.2% (D=2) and 18.7% (D=6); speedups of 2.3% and 4.8%.
"""

from repro.experiments.figures import delay_sweep
from repro.experiments.report import performance_table, summary_line

from benchmarks.conftest import emit


def test_delay_sweep(benchmark, settings):
    result = benchmark.pedantic(delay_sweep, args=(settings,),
                                iterations=1, rounds=1)
    emit("Section 5.3 — criticality across issue-to-execute delays",
         performance_table(result),
         summary_line(result, "SpecSched_2_Crit", "SpecSched_2"),
         summary_line(result, "SpecSched_6_Crit", "SpecSched_6"))

    for delay in (2, 6):
        red = result.replay_reduction(f"SpecSched_{delay}_Crit",
                                      f"SpecSched_{delay}", "total")
        assert red > 0.6, f"delay {delay}: replay reduction too small"
        assert result.speedup_over(f"SpecSched_{delay}_Crit",
                                   f"SpecSched_{delay}") > 0.97
    # Issued-µop reduction grows with the delay (deeper squash windows).
    r2 = result.issued_reduction("SpecSched_2_Crit", "SpecSched_2")
    r6 = result.issued_reduction("SpecSched_6_Crit", "SpecSched_6")
    assert r6 >= r2 - 0.02
