"""Figure 8 — SpecSched_4_Combined and SpecSched_4_Crit.

Paper numbers: Combined −68.2% total replays at +3.7%; Crit −90.6% total
replays, −13.4% issued µops, at +3.4% over SpecSched_4.
"""

from repro.experiments.figures import fig8
from repro.experiments.report import (
    breakdown_table,
    performance_table,
    summary_line,
)

from benchmarks.conftest import emit


def test_fig8(benchmark, settings):
    result = benchmark.pedantic(fig8, args=(settings,),
                                iterations=1, rounds=1)
    emit("Figure 8 — Combined and Criticality-gated scheduling",
         performance_table(result),
         breakdown_table(result, "SpecSched_4_Combined"),
         breakdown_table(result, "SpecSched_4_Crit"),
         summary_line(result, "SpecSched_4_Combined", "SpecSched_4"),
         summary_line(result, "SpecSched_4_Crit", "SpecSched_4"))

    combined = result.replay_reduction("SpecSched_4_Combined",
                                       "SpecSched_4", "total")
    crit = result.replay_reduction("SpecSched_4_Crit", "SpecSched_4",
                                   "total")
    # Shape: Combined removes the majority; Crit removes the vast majority.
    assert combined > 0.4
    assert crit > combined
    assert crit > 0.7
    # Both keep (or slightly improve) performance over SpecSched_4.
    assert result.speedup_over("SpecSched_4_Combined", "SpecSched_4") > 0.98
    assert result.speedup_over("SpecSched_4_Crit", "SpecSched_4") > 0.98
    # Crit issues markedly fewer µops (paper: −13.4%).
    assert result.issued_reduction("SpecSched_4_Crit", "SpecSched_4") > 0.05
