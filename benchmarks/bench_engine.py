"""Engine micro-benchmark — serial vs parallel vs warm persistent cache.

Times the same (2 preset x 4 workload) grid three ways:

* **serial**: ``jobs=1``, cold cache (every cell simulated inline);
* **parallel**: ``jobs=REPRO_JOBS`` (default 4 here), cold cache;
* **warm cache**: second run against the persistent directory the serial
  run populated — must perform zero simulations.

With CI-sized cells the pool's fork overhead can eat the parallel win;
scale up (``REPRO_MEASURE=60000 REPRO_WORKLOADS=full``) to see the
engine amortize. The warm-cache row should stay in the milliseconds
regardless of volume.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.engine import EngineOptions, ResultCache
from repro.experiments.runner import ConfigRequest, Settings, run_experiment

from benchmarks.conftest import emit

GRID = [
    ConfigRequest("Baseline_0", "Baseline_0", banked=False),
    ConfigRequest("SpecSched_4_Crit", "SpecSched_4_Crit", banked=True),
]


def _grid_settings(base: Settings) -> Settings:
    workloads = base.workloads[:4]
    return Settings(workloads=workloads, warmup_uops=base.warmup_uops,
                    measure_uops=base.measure_uops,
                    functional_warmup_uops=base.functional_warmup_uops,
                    seed=base.seed)


def _run(settings: Settings, jobs: int, cache: ResultCache) -> float:
    start = time.perf_counter()
    run_experiment("bench_engine", GRID, "Baseline_0", settings,
                   options=EngineOptions(jobs=jobs), cache=cache)
    return time.perf_counter() - start


@pytest.mark.slow
def test_engine_modes(benchmark, settings, engine_options, tmp_path):
    grid = _grid_settings(settings)
    jobs = max(engine_options.jobs, 4)
    cache_dir = tmp_path / "cache"

    serial_s = _run(grid, 1, ResultCache(cache_dir))
    parallel_s = _run(grid, jobs, ResultCache(None))
    warm_cache = ResultCache(cache_dir)
    warm_s = benchmark.pedantic(
        lambda: _run(grid, 1, warm_cache), iterations=1, rounds=1)

    cells = len(GRID) * len(grid.workloads)
    emit(
        "Engine — serial vs parallel vs warm persistent cache",
        f"grid: {len(GRID)} presets x {len(grid.workloads)} workloads "
        f"= {cells} cells ({grid.measure_uops} measured uops each)",
        f"{'serial (jobs=1, cold)':32s} {serial_s:8.3f} s",
        f"{'parallel (jobs=%d, cold)' % jobs:32s} {parallel_s:8.3f} s "
        f"(speedup x{serial_s / parallel_s:.2f})",
        f"{'warm persistent cache':32s} {warm_s:8.3f} s "
        f"(speedup x{serial_s / warm_s:.0f})",
    )
    # The warm run must be pure cache: no cell simulated, all from disk.
    assert warm_cache.misses == 0
    assert warm_cache.disk_hits == cells
    assert warm_s < serial_s
