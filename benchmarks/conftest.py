"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: the
pytest-benchmark timing wraps the (cached) experiment run, and the bench
prints the paper-style rows so EXPERIMENTS.md can be refreshed from the
output. Scale with::

    REPRO_WORKLOADS=full REPRO_MEASURE=40000 REPRO_JOBS=8 \
        pytest benchmarks/ --benchmark-only

``REPRO_JOBS`` fans the grid out over worker processes and
``REPRO_CACHE_DIR`` points the persistent result cache somewhere durable,
so a re-run of the full figure set after an unrelated edit costs seconds,
not hours (see :mod:`repro.experiments.engine`).

**Collection rules.** Bench files are named ``bench_*.py``, which pytest
does not collect by default — a :func:`pytest_collect_file` hook here
makes them collectable, but *only* when benchmarks were requested:
either the command line names the ``benchmarks`` directory (or a file in
it), or the root-level ``--benchmarks`` flag is set. A plain
``pytest -x -q`` from the repository root therefore never runs a
benchmark by accident. The longest benches additionally carry the
``slow`` marker; deselect them inside a benchmark run with
``-m 'not slow'``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.engine import EngineOptions
from repro.experiments.runner import Settings

_BENCH_DIR = Path(__file__).resolve().parent


def _benchmarks_requested(config) -> bool:
    """True when the invocation explicitly asked for benchmarks."""
    if config.getoption("--benchmarks", default=False):
        return True
    invocation_dir = Path(str(config.invocation_params.dir))
    for arg in config.invocation_params.args:
        text = str(arg)
        if text.startswith("-"):
            continue
        # Strip parametrization/node-id suffixes ("path::test").
        path = Path(text.split("::", 1)[0])
        if not path.is_absolute():
            path = invocation_dir / path
        try:
            resolved = path.resolve()
        except OSError:         # unresolvable arg: not a benchmarks path
            continue
        if resolved == _BENCH_DIR or _BENCH_DIR in resolved.parents:
            return True
    return False


def pytest_collect_file(file_path, parent):
    """Collect ``bench_*.py`` modules — on explicit request only."""
    if (file_path.suffix == ".py" and file_path.name.startswith("bench_")
            and _benchmarks_requested(parent.config)):
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark/test; deselect with "
                   "-m 'not slow'")


@pytest.fixture(scope="session")
def settings() -> Settings:
    return Settings.from_env()


@pytest.fixture(scope="session")
def engine_options() -> EngineOptions:
    return EngineOptions.from_env()


def emit(title: str, *blocks: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for block in blocks:
        print(block)
        print()
