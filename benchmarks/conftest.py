"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: the
pytest-benchmark timing wraps the (cached) experiment run, and the bench
prints the paper-style rows so EXPERIMENTS.md can be refreshed from the
output. Scale with::

    REPRO_WORKLOADS=full REPRO_MEASURE=40000 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import Settings


@pytest.fixture(scope="session")
def settings() -> Settings:
    return Settings.from_env()


def emit(title: str, *blocks: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for block in blocks:
        print(block)
        print()
