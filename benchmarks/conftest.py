"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: the
pytest-benchmark timing wraps the (cached) experiment run, and the bench
prints the paper-style rows so EXPERIMENTS.md can be refreshed from the
output. Scale with::

    REPRO_WORKLOADS=full REPRO_MEASURE=40000 REPRO_JOBS=8 \
        pytest benchmarks/ --benchmark-only

``REPRO_JOBS`` fans the grid out over worker processes and
``REPRO_CACHE_DIR`` points the persistent result cache somewhere durable,
so a re-run of the full figure set after an unrelated edit costs seconds,
not hours (see :mod:`repro.experiments.engine`). Long-running benches are
marked ``slow``; deselect them with ``-m 'not slow'``.
"""

from __future__ import annotations

import pytest

from repro.experiments.engine import EngineOptions
from repro.experiments.runner import Settings


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark/test; deselect with "
                   "-m 'not slow'")


@pytest.fixture(scope="session")
def settings() -> Settings:
    return Settings.from_env()


@pytest.fixture(scope="session")
def engine_options() -> EngineOptions:
    return EngineOptions.from_env()


def emit(title: str, *blocks: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for block in blocks:
        print(block)
        print()
