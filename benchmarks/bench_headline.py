"""Headline numbers (abstract + Section 6).

Paper: 78.0% of bank-conflict replays and 96.5% of miss replays avoided,
3.4% performance gain and 13.4% fewer issued µops for SpecSched_4_Crit
over SpecSched_4; 68.2% total replay reduction at +3.7% for Combined.
"""

from repro.experiments.figures import headline

from benchmarks.conftest import emit


def test_headline(benchmark, settings):
    numbers = benchmark.pedantic(headline, args=(settings,),
                                 iterations=1, rounds=1)
    rows = "\n".join(f"{name:42s} {value:+8.1%}"
                     for name, value in numbers.rows().items())
    emit("Headline — paper abstract numbers (measured)", rows)

    assert numbers.bank_replay_reduction > 0.5      # paper 78.0%
    assert numbers.miss_replay_reduction > 0.5      # paper 96.5%
    assert numbers.total_replay_reduction > 0.6     # paper 90.6%
    assert numbers.issued_uop_reduction > 0.05      # paper 13.4%
    assert numbers.speedup_over_specsched > -0.02   # paper +3.4%
    assert numbers.combined_replay_reduction > 0.4  # paper 68.2%
