"""Figure 5 — Schedule Shifting.

Paper numbers: +2.9% over SpecSched_4, −74.8% bank-conflict replays; the
banky workloads (swim, crafty, gamess, hmmer, GemsFDTD...) recover most of
their banking loss.
"""

from repro.experiments.figures import fig5
from repro.experiments.report import (
    breakdown_table,
    performance_table,
    summary_line,
)

from benchmarks.conftest import emit


def test_fig5(benchmark, settings):
    result = benchmark.pedantic(fig5, args=(settings,),
                                iterations=1, rounds=1)
    emit("Figure 5 — Schedule Shifting",
         performance_table(result),
         breakdown_table(result, "SpecSched_4"),
         breakdown_table(result, "SpecSched_4_Shift"),
         summary_line(result, "SpecSched_4_Shift", "SpecSched_4"))

    # Shape: large bank-replay reduction (paper: 74.8%) at a speedup.
    assert result.replay_reduction("SpecSched_4_Shift", "SpecSched_4",
                                   "bank") > 0.5
    assert result.speedup_over("SpecSched_4_Shift", "SpecSched_4") > 1.0
