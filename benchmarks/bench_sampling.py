"""Sampled-vs-detailed throughput benchmark.

Wraps :func:`repro.perf.bench.bench_sampling` (the body behind
``repro bench sampling`` and the committed ``BENCH_sampling.json``):
each (preset, workload) cell simulates the same stream span twice —
fully detailed, then SMARTS-sampled (functional fast-forward + short
detailed measurement intervals) — and reports the wall-clock speedup
and the sampled IPC's relative error.

Quick volumes by default; set ``REPRO_BENCH_FULL=1`` for the committed
headline geometry (~320k-µop span, several minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.perf.bench import bench_sampling

from benchmarks.conftest import emit


@pytest.mark.slow
def test_sampling_speedup(benchmark):
    quick = os.environ.get("REPRO_BENCH_FULL", "") != "1"
    result = benchmark.pedantic(
        lambda: bench_sampling(quick=quick), iterations=1, rounds=1)
    m = result.metrics
    emit(
        "Sampling — SMARTS intervals vs full detailed simulation",
        f"{'cells':28s} {m['cells']:8.0f}  "
        f"(span {m['span_uops']:,.0f} µops each)",
        f"{'detailed wall':28s} {m['detailed_wall_seconds']:8.2f} s",
        f"{'sampled wall':28s} {m['sampled_wall_seconds']:8.2f} s",
        f"{'speedup':28s} {m['speedup']:8.2f} x",
        f"{'legacy cells wall':28s} {m['cells_legacy_wall_seconds']:8.2f} s",
        f"{'chained cells wall':28s} {m['cells_chained_wall_seconds']:8.2f} s",
        f"{'cell speedup':28s} {m['cell_speedup']:8.2f} x",
        f"{'mean IPC rel. error':28s} {m['mean_ipc_rel_err']:8.2%}",
        f"{'max IPC rel. error':28s} {m['max_ipc_rel_err']:8.2%}",
    )
    # Sampling that is slower than detailed simulation, or that misses
    # the detailed IPC badly, has lost its reason to exist.
    assert m["speedup"] > 1.0
    assert m["mean_ipc_rel_err"] < 0.05
    # Chained cells exist to beat from-zero cells on warming cost, and
    # the comparison is void unless both modes produced identical
    # interval counters.
    assert m["cell_speedup"] > 1.0
    assert m["cell_mode_mismatches"] == 0
