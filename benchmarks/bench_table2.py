"""Table 2 — the workload suite under Baseline_0 (IPC per program)."""

from repro.experiments.tables import render_table2

from benchmarks.conftest import emit


def test_table2(benchmark, settings):
    text = benchmark.pedantic(render_table2, args=(settings,),
                              iterations=1, rounds=1)
    emit("Table 2 — synthetic suite, Baseline_0 IPC", text)
    assert "IPC" in text
