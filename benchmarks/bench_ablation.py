"""Ablations of the paper's design choices.

1. **Silence bit** (Section 5.2): "using a silencing bit performs better
   than regular per-entry counters". We compare the filter with silence
   bits (deferring unstable loads to the global counter) against plain
   MSB-decides counters, which mispredict loads whose behaviour follows
   recent dynamic context.
2. **Shifting slack**: the paper always shifts the second load by exactly
   one cycle; slack 2 over-delays dependents for no extra coverage.
"""

from repro.common.mathutil import geomean
from repro.core.presets import make_config
from repro.experiments.runner import _CACHE
from repro.pipeline.cpu import Simulator
from repro.workloads.suite import get_workload

from benchmarks.conftest import emit


def _run(config, workload, settings):
    key = ("ablation", config.name, str(config.sched), workload,
           settings.measure_uops)
    if key in _CACHE:
        return _CACHE[key]
    spec = get_workload(workload)
    sim = Simulator(config, spec.build_trace(settings.seed))
    sim.functional_warmup(spec.build_trace(settings.seed),
                          settings.functional_warmup_uops)
    stats = sim.run_with_warmup(settings.warmup_uops, settings.measure_uops)
    _CACHE[key] = stats
    return stats


def test_silence_bit_ablation(benchmark, settings):
    base_cfg = make_config("SpecSched_4_Filter", banked=True)
    no_silence = base_cfg.with_sched(filter_silence_bit=False)

    def run_grid():
        rows = []
        for workload in settings.workloads:
            with_bit = _run(base_cfg, workload, settings)
            without = _run(no_silence, workload, settings)
            rows.append((workload, with_bit, without))
        return rows

    rows = benchmark.pedantic(run_grid, iterations=1, rounds=1)
    lines = [f"{'workload':12s} {'IPC(silence)':>13s} {'IPC(plain)':>11s} "
             f"{'rpld(silence)':>14s} {'rpld(plain)':>12s}"]
    for workload, with_bit, without in rows:
        lines.append(f"{workload:12s} {with_bit.ipc:13.2f} "
                     f"{without.ipc:11.2f} {with_bit.replayed_total:14d} "
                     f"{without.replayed_total:12d}")
    g_with = geomean(r[1].ipc for r in rows)
    g_without = geomean(r[2].ipc for r in rows)
    lines.append(f"gmean IPC: silence={g_with:.3f} plain={g_without:.3f}")
    emit("Ablation — filter silence bit (Section 5.2)", "\n".join(lines))
    # The silence bit must not lose performance overall (paper: it wins).
    assert g_with >= g_without * 0.98


def test_shifting_slack_ablation(benchmark, settings):
    def run_grid():
        out = {}
        for slack in (0, 1, 2):
            cfg = make_config("SpecSched_4_Shift", banked=True)
            ipcs, replays = [], 0
            for workload in settings.workloads:
                stats = _run_slack(cfg, slack, workload, settings)
                ipcs.append(stats.ipc)
                replays += stats.replayed_bank
            out[slack] = (geomean(ipcs), replays)
        return out

    def _run_slack(cfg, slack, workload, settings):
        key = ("slack", slack, workload, settings.measure_uops)
        if key in _CACHE:
            return _CACHE[key]
        spec = get_workload(workload)
        sim = Simulator(cfg, spec.build_trace(settings.seed))
        sim.policy.shifter.slack = slack
        sim.policy.shifter.enabled = slack > 0
        sim.functional_warmup(spec.build_trace(settings.seed),
                              settings.functional_warmup_uops)
        stats = sim.run_with_warmup(settings.warmup_uops,
                                    settings.measure_uops)
        _CACHE[key] = stats
        return stats

    out = benchmark.pedantic(run_grid, iterations=1, rounds=1)
    lines = [f"{'slack':>5s} {'gmean IPC':>10s} {'bank replays':>13s}"]
    for slack, (ipc, replays) in out.items():
        lines.append(f"{slack:5d} {ipc:10.3f} {replays:13d}")
    emit("Ablation — Schedule Shifting slack", "\n".join(lines))
    # Slack 1 removes most bank replays; slack 0 (disabled) removes none.
    assert out[1][1] < out[0][1]
