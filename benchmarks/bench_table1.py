"""Table 1 — simulator configuration (rendered + asserted)."""

from repro.core.presets import make_config
from repro.experiments.tables import render_table1

from benchmarks.conftest import emit


def test_table1(benchmark):
    text = benchmark(render_table1)
    cfg = make_config("SpecSched_4")
    assert cfg.core.rob_entries == 192
    assert cfg.core.iq_entries == 60
    assert cfg.memory.l1d.latency == 4
    assert cfg.memory.dram.base_latency == 75
    emit("Table 1 — simulator configuration", text)
