"""Table 1 (simulator configuration) and Table 2 (benchmarks + IPC)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import SimConfig
from repro.core.presets import make_config
from repro.experiments.engine import EngineOptions
from repro.experiments.report import format_table
from repro.experiments.runner import ConfigRequest, Settings, run_experiment
from repro.traces.registry import resolve_workload


def render_table1(config: Optional[SimConfig] = None) -> str:
    """Render the machine description the way Table 1 groups it."""
    cfg = config or make_config("SpecSched_4")
    core, mem, br = cfg.core, cfg.memory, cfg.branch
    rows = [
        ("Front End",
         f"{core.fetch_width}-wide fetch/decode, {core.rename_width}-wide "
         f"rename; TAGE {br.num_tagged_tables} tagged tables; "
         f"{br.btb_ways}-way {br.btb_entries}-entry BTB, "
         f"{br.ras_entries}-entry RAS; frontend depth "
         f"{core.frontend_depth} cycles"),
        ("Execution",
         f"{core.rob_entries}-entry ROB, {core.iq_entries}-entry IQ "
         f"unified, {core.lq_entries}/{core.sq_entries}-entry LQ/SQ, "
         f"{core.int_prf}/{core.fp_prf} INT/FP registers; "
         f"{core.store_set_ssid_entries}-SSID store sets; "
         f"{core.issue_width}-issue, {core.num_alu}ALU(1c) "
         f"{core.num_muldiv}MulDiv(3c/25c*) {core.num_fp}FP(3c) "
         f"{core.num_fpmuldiv}FPMulDiv(5c/10c*) "
         f"{core.num_load_ports}Ld {core.num_store_ports}Str; "
         f"{core.retire_width}-wide retire; issue-to-execute delay "
         f"{core.issue_to_execute_delay}"),
        ("Caches",
         f"L1D {mem.l1d.assoc}-way {mem.l1d.size_bytes // 1024}KB "
         f"{'banked x' + str(mem.l1d.banks) if mem.l1d.banked else 'dual-ported'}, "
         f"{mem.l1d.latency}-cycle load-to-use, {mem.l1d.mshrs} MSHRs; "
         f"L2 {mem.l2.assoc}-way {mem.l2.size_bytes // 1024}KB, "
         f"{mem.l2.latency} cycles, stride prefetcher degree "
         f"{mem.prefetcher_degree}; {mem.l1d.line_bytes}B lines, LRU"),
        ("Memory",
         f"DDR3-like: {mem.dram.ranks} ranks x {mem.dram.banks_per_rank} "
         f"banks, {mem.dram.row_bytes // 1024}KB rows; min read "
         f"{mem.dram.base_latency} cycles, max {mem.dram.max_latency}"),
        ("Scheduling",
         f"speculative={cfg.sched.speculative}, hit/miss="
         f"{cfg.sched.hit_miss}, shifting={cfg.sched.schedule_shifting}, "
         f"criticality={cfg.sched.criticality}"),
    ]
    return format_table(["Group", "Configuration"],
                        [[g, d] for g, d in rows],
                        title=f"Table 1 — {cfg.name}")


def table2(settings: Optional[Settings] = None,
           options: Optional[EngineOptions] = None,
           ) -> Dict[str, Dict[str, object]]:
    """Run Baseline_0 over the selected workloads: the Table-2 analogue.

    Returns ``name -> {ipc, fp, miss_rate, description}``.
    """
    settings = settings or Settings.from_env()
    request = ConfigRequest("Baseline_0", "Baseline_0", banked=False)
    result = run_experiment("table2", [request], request.label, settings,
                            options=options)
    out: Dict[str, Dict[str, object]] = {}
    for name in settings.workloads:
        stats = result.get(request.label, name)
        workload = resolve_workload(name)
        out[name] = {
            "ipc": stats.ipc,
            "fp": workload.is_fp,
            "l1_miss_rate": stats.l1d_miss_rate,
            "description": workload.description,
        }
    return out


def render_table2(settings: Optional[Settings] = None,
                  options: Optional[EngineOptions] = None) -> str:
    rows: List[List[str]] = []
    data = table2(settings, options=options)
    for name, row in data.items():
        rows.append([
            name, "FP" if row["fp"] else "INT", f"{row['ipc']:.3f}",
            f"{row['l1_miss_rate']:.1%}", str(row["description"]),
        ])
    return format_table(
        ["Program", "Class", "IPC", "L1D miss", "Description"], rows,
        title="Table 2 — synthetic suite under Baseline_0")
