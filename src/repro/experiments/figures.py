"""One driver per paper figure.

Each function runs the exact configuration grid of the corresponding
figure and returns an :class:`ExperimentResult`; ``print_*`` helpers in
:mod:`repro.experiments.report` render the paper-style rows. The
benchmarks call these and record paper-vs-measured in EXPERIMENTS.md.

Reference frame: as in Section 5, everything is normalized to
**Baseline_0 with a dual-ported L1D** (the ideal machine in this context).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.engine import Sweep, SweepSeries
from repro.experiments.runner import (
    ConfigRequest,
    ExperimentResult,
    Settings,
    run_sweep,
)

#: Every figure normalizes to this series.
BASELINE = ConfigRequest("Baseline_0", "Baseline_0", banked=False)
_BASE = BASELINE


def _sweep(name: str, series) -> Sweep:
    return Sweep(name=name, baseline=_BASE.label,
                 series=(_BASE,) + tuple(series)).validate()


def fig3_sweep() -> Sweep:
    return _sweep("fig3", [
        SweepSeries("Baseline_0, 1 load/cycle", "Baseline_0",
                    banked=False, load_ports=1),
        SweepSeries("Baseline_2", "Baseline_2", banked=False),
        SweepSeries("Baseline_4", "Baseline_4", banked=False),
        SweepSeries("Baseline_6", "Baseline_6", banked=False),
    ])


def fig4_sweep() -> Sweep:
    series = []
    for delay in (2, 4, 6):
        series.append(SweepSeries(
            f"SpecSched_{delay} (dual)", f"SpecSched_{delay}", banked=False))
        series.append(SweepSeries(
            f"SpecSched_{delay} (banked)", f"SpecSched_{delay}", banked=True))
    return _sweep("fig4", series)


def fig5_sweep() -> Sweep:
    return _sweep("fig5", [
        SweepSeries("SpecSched_4", "SpecSched_4", banked=True),
        SweepSeries("SpecSched_4_Shift", "SpecSched_4_Shift", banked=True),
    ])


def fig7_sweep() -> Sweep:
    return _sweep("fig7", [
        SweepSeries("SpecSched_4", "SpecSched_4", banked=True),
        SweepSeries("SpecSched_4_Ctr", "SpecSched_4_Ctr", banked=True),
        SweepSeries("SpecSched_4_Filter", "SpecSched_4_Filter", banked=True),
    ])


def fig8_sweep() -> Sweep:
    return _sweep("fig8", [
        SweepSeries("SpecSched_4", "SpecSched_4", banked=True),
        SweepSeries("SpecSched_4_Combined", "SpecSched_4_Combined",
                    banked=True),
        SweepSeries("SpecSched_4_Crit", "SpecSched_4_Crit", banked=True),
    ])


def delay_sweep_sweep() -> Sweep:
    series = []
    for delay in (2, 6):
        series.append(SweepSeries(
            f"SpecSched_{delay}", f"SpecSched_{delay}", banked=True))
        series.append(SweepSeries(
            f"SpecSched_{delay}_Crit", f"SpecSched_{delay}_Crit", banked=True))
    return _sweep("delay_sweep", series)


#: Declarative grid per figure — ``repro figure N`` and the ``fig*``
#: drivers below execute these by name.
FIGURE_SWEEPS = {
    "fig3": fig3_sweep,
    "fig4": fig4_sweep,
    "fig5": fig5_sweep,
    "fig7": fig7_sweep,
    "fig8": fig8_sweep,
    "delay_sweep": delay_sweep_sweep,
}


def fig3(settings: Optional[Settings] = None) -> ExperimentResult:
    """Figure 3: cost of *conservative* scheduling as the issue-to-execute
    delay grows (plus the single-load-port bar)."""
    return run_sweep(fig3_sweep(), settings)


def fig4(settings: Optional[Settings] = None) -> ExperimentResult:
    """Figure 4: speculative scheduling with dual-ported vs banked L1
    (performance, a) and the issued-µop breakdown for the banked case (b)."""
    return run_sweep(fig4_sweep(), settings)


def fig5(settings: Optional[Settings] = None) -> ExperimentResult:
    """Figure 5: Schedule Shifting on the banked L1."""
    return run_sweep(fig5_sweep(), settings)


def fig7(settings: Optional[Settings] = None) -> ExperimentResult:
    """Figure 7: hit/miss filtering (global counter alone, filter+counter)."""
    return run_sweep(fig7_sweep(), settings)


def fig8(settings: Optional[Settings] = None) -> ExperimentResult:
    """Figure 8: the combined mechanisms and criticality gating."""
    return run_sweep(fig8_sweep(), settings)


def delay_sweep(settings: Optional[Settings] = None) -> ExperimentResult:
    """Section 5.3's closing sweep: _Crit vs plain SpecSched at D=2 and 6."""
    return run_sweep(delay_sweep_sweep(), settings)


@dataclass
class HeadlineNumbers:
    """The abstract/conclusion summary (Sections 1 and 6)."""

    bank_replay_reduction: float      # paper: 78.0% (abstract)
    miss_replay_reduction: float      # paper: 96.5% (abstract)
    total_replay_reduction: float     # paper: 90.6%
    issued_uop_reduction: float       # paper: 13.4%
    speedup_over_specsched: float     # paper: +3.4%
    combined_replay_reduction: float  # paper: 68.2% (SpecSched_4_Combined)
    combined_speedup: float           # paper: +3.7%

    def rows(self) -> Dict[str, float]:
        return {
            "bank replays avoided (Crit)": self.bank_replay_reduction,
            "miss replays avoided (Crit)": self.miss_replay_reduction,
            "total replays avoided (Crit)": self.total_replay_reduction,
            "issued-uop reduction (Crit)": self.issued_uop_reduction,
            "speedup over SpecSched_4 (Crit)": self.speedup_over_specsched,
            "total replays avoided (Combined)": self.combined_replay_reduction,
            "speedup over SpecSched_4 (Combined)": self.combined_speedup,
        }


def headline(settings: Optional[Settings] = None) -> HeadlineNumbers:
    """Compute the paper's headline numbers from the Figure-8 grid."""
    result = fig8(settings)
    crit = "SpecSched_4_Crit"
    combined = "SpecSched_4_Combined"
    spec = "SpecSched_4"
    return HeadlineNumbers(
        bank_replay_reduction=result.replay_reduction(crit, spec, "bank"),
        miss_replay_reduction=result.replay_reduction(crit, spec, "miss"),
        total_replay_reduction=result.replay_reduction(crit, spec, "total"),
        issued_uop_reduction=result.issued_reduction(crit, spec),
        speedup_over_specsched=result.speedup_over(crit, spec) - 1.0,
        combined_replay_reduction=result.replay_reduction(
            combined, spec, "total"),
        combined_speedup=result.speedup_over(combined, spec) - 1.0,
    )
