"""Pluggable cell-execution backends behind the experiment engine.

:func:`repro.experiments.engine.run_cells` (and the checkpoint-producing
twin :func:`~repro.experiments.engine.run_produce_cells`) decide *what*
to execute — cache lookups, dedupe, manifest writing stay there — and
delegate *how* to an :class:`ExecutionBackend`:

* :class:`LocalPoolBackend` — the historical in-process shape: inline
  when ``jobs == 1``, a :class:`concurrent.futures.ProcessPoolExecutor`
  otherwise.
* :class:`QueueBackend` — a file/spool work queue (``REPRO_BACKEND=
  queue``). The submitter writes one task file per cell under
  ``<spool>/tasks/`` and polls ``<spool>/results/``; any number of
  worker processes (``repro worker``, possibly on another host sharing
  the directory) claim tasks by atomic rename into ``<spool>/claimed/``
  and write result files back. Results are streamed to the submitter in
  completion order, exactly like the pool.

The backend contract (normative copy in ``docs/ARCHITECTURE.md``):

* ``execute(cells, worker, on_result)`` runs ``worker(payload)`` for
  every ``(key, payload)`` pair and invokes ``on_result(key, result,
  done, total)`` once per cell in completion order;
* ``worker`` is one of the engine's module-level worker entry points
  (``simulate_cell`` / ``produce_cell``) — picklable, no mutable
  process-global state, result JSON-serializable — so a cell computes
  the same bytes in-process, in a pool worker, or on another machine;
* cache policy is the caller's: backends only ever see cache misses,
  and the caller persists results as they stream back. A remote worker
  therefore needs the *spool* directory and any paths named inside the
  payloads (trace files, checkpoint stores) shared with the submitter —
  the result cache itself need not be.

Spool layout::

    <spool>/tasks/<key>.json     {"schema": 1, "key", "worker", "payload"}
    <spool>/claimed/<key>.json   task being executed (crash debris is
                                 re-queued by ``requeue_stale``)
    <spool>/results/<key>.json   {"schema": 1, "key", "cell"} on success,
                                 {"schema": 1, "key", "error"} on failure

All writes are atomic (tempfile + ``os.replace``), so a submitter never
reads a half-written task or result.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "LocalPoolBackend",
    "QueueBackend",
    "SPOOL_SCHEMA",
    "drain_spool",
    "requeue_stale",
]

#: Bumped when the spool task/result record layout changes.
SPOOL_SCHEMA = 1

#: Worker entry points a spool task may name. Resolution is by name so
#: task files stay plain data; both live in the engine module.
_WORKER_NAMES = ("simulate_cell", "produce_cell")

Cells = Sequence[Tuple[str, Dict[str, Any]]]
OnResult = Callable[[str, Dict[str, Any], int, int], None]


class BackendError(RuntimeError):
    """A backend could not produce a result for a submitted cell."""


class ExecutionBackend:
    """Abstract execution seam: run workers over (key, payload) cells."""

    def execute(self, cells: Cells, worker: Callable[[Dict[str, Any]], Dict[str, Any]],
                on_result: OnResult) -> None:
        raise NotImplementedError


class LocalPoolBackend(ExecutionBackend):
    """Inline execution (``jobs == 1``) or a local process pool."""

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def execute(self, cells: Cells, worker, on_result: OnResult) -> None:
        total = len(cells)
        if self.jobs > 1 and total > 1:
            workers = min(self.jobs, total)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(worker, payload): key
                           for key, payload in cells}
                done = 0
                for future in as_completed(futures):
                    done += 1
                    on_result(futures[future], future.result(), done, total)
            return
        for done, (key, payload) in enumerate(cells, start=1):
            on_result(key, worker(payload), done, total)


# ---------------------------------------------------------------------------
# File/spool work queue


def _write_json(path: Path, record: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or record.get("schema") != SPOOL_SCHEMA:
        return None
    return record


class QueueBackend(ExecutionBackend):
    """Directory-mediated work queue: enqueue tasks, poll for results.

    The submitter never simulates; it blocks until external workers
    (:func:`drain_spool`, via ``repro worker``) have produced every
    result, raising :class:`BackendError` after ``timeout`` seconds
    without completion (0 waits forever).
    """

    def __init__(self, spool, *, timeout: Optional[float] = None,
                 poll_interval: float = 0.05) -> None:
        self.spool = Path(spool)
        if timeout is None:
            timeout = float(os.environ.get("REPRO_QUEUE_TIMEOUT", "600")
                            or "600")
        self.timeout = timeout
        self.poll_interval = poll_interval

    def _results_dir(self) -> Path:
        return self.spool / "results"

    def execute(self, cells: Cells, worker, on_result: OnResult) -> None:
        worker_name = getattr(worker, "__name__", "")
        if worker_name not in _WORKER_NAMES:
            raise BackendError(
                f"queue backend cannot dispatch worker {worker_name!r}; "
                f"known workers: {', '.join(_WORKER_NAMES)}")
        tasks_dir = self.spool / "tasks"
        results_dir = self._results_dir()
        outstanding = {}
        for key, payload in cells:
            result_path = results_dir / f"{key}.json"
            try:                         # stale result from a prior run
                result_path.unlink()
            except OSError:
                pass
            _write_json(tasks_dir / f"{key}.json",
                        {"schema": SPOOL_SCHEMA, "key": key,
                         "worker": worker_name, "payload": payload})
            outstanding[key] = result_path
        total = len(outstanding)
        done = 0
        deadline = (time.monotonic() + self.timeout
                    if self.timeout else None)
        while outstanding:
            landed = [key for key, path in outstanding.items()
                      if path.exists()]
            for key in landed:
                path = outstanding[key]
                record = _read_json(path)
                if record is None:       # half-visible on a shared FS
                    continue
                del outstanding[key]
                try:
                    path.unlink()
                except OSError:
                    pass
                if "error" in record:
                    raise BackendError(
                        f"queue worker failed on cell {key}:\n"
                        f"{record['error']}")
                done += 1
                on_result(key, record["cell"], done, total)
            if not outstanding:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise BackendError(
                    f"queue backend timed out after {self.timeout:.0f}s "
                    f"with {len(outstanding)} of {total} cell(s) "
                    f"unfinished under {self.spool} — is a worker "
                    f"draining this spool (`repro worker --spool ...`)?")
            time.sleep(self.poll_interval)


def _resolve_worker(name: str):
    from repro.experiments import engine

    if name not in _WORKER_NAMES:
        raise BackendError(f"spool task names unknown worker {name!r}")
    return getattr(engine, name)


def requeue_stale(spool) -> int:
    """Move crash debris from ``claimed/`` back to ``tasks/``.

    A worker that died mid-cell leaves its claimed task file behind;
    re-queueing it lets the next worker pick it up. Returns the number
    of tasks re-queued. Only run this when no worker is active on the
    spool — a live worker's in-flight claim looks identical to debris.
    """
    spool = Path(spool)
    claimed = spool / "claimed"
    tasks = spool / "tasks"
    moved = 0
    if not claimed.is_dir():
        return 0
    tasks.mkdir(parents=True, exist_ok=True)
    for path in sorted(claimed.glob("*.json")):
        try:
            os.replace(path, tasks / path.name)
            moved += 1
        except OSError:
            continue
    return moved


def drain_spool(spool, *, max_tasks: Optional[int] = None,
                idle_timeout: float = 0.0, poll_interval: float = 0.05,
                log=None) -> int:
    """Execute queued tasks from ``spool`` until it runs dry.

    The worker loop behind ``repro worker``: claim a task by atomically
    renaming it into ``claimed/``, execute its named worker entry point,
    write the result (or the failure traceback) under ``results/`` and
    delete the claim. Exits after ``max_tasks`` cells, or once the task
    directory has stayed empty for ``idle_timeout`` seconds (0 = exit
    the first time it is found empty). Returns the number of cells
    executed. Safe to run concurrently with other workers on the same
    spool — the rename claim makes every task execute exactly once.
    """
    spool = Path(spool)
    tasks_dir = spool / "tasks"
    claimed_dir = spool / "claimed"
    results_dir = spool / "results"
    claimed_dir.mkdir(parents=True, exist_ok=True)
    executed = 0
    idle_since = time.monotonic()
    while True:
        task_paths = (sorted(tasks_dir.glob("*.json"))
                      if tasks_dir.is_dir() else [])
        claimed_any = False
        for path in task_paths:
            claim = claimed_dir / path.name
            try:
                os.replace(path, claim)  # atomic: exactly one winner
            except OSError:
                continue                 # another worker got it
            claimed_any = True
            record = _read_json(claim)
            if record is None:           # malformed task: drop the claim
                try:
                    claim.unlink()
                except OSError:
                    pass
                continue
            key = record["key"]
            try:
                cell = _resolve_worker(record["worker"])(record["payload"])
                result = {"schema": SPOOL_SCHEMA, "key": key, "cell": cell}
            except BaseException:
                result = {"schema": SPOOL_SCHEMA, "key": key,
                          "error": traceback.format_exc()}
            _write_json(results_dir / f"{key}.json", result)
            try:
                claim.unlink()
            except OSError:
                pass
            executed += 1
            if log is not None:
                log(f"[{executed}] {key[:12]} "
                    f"{'ok' if 'cell' in result else 'FAILED'}")
            if max_tasks is not None and executed >= max_tasks:
                return executed
        if claimed_any:
            idle_since = time.monotonic()
            continue
        if time.monotonic() - idle_since >= idle_timeout:
            return executed
        time.sleep(poll_interval)
