"""Pipeline timing diagrams (Figures 1, 2 and 6 as ASCII).

:class:`TracingSimulator` records every issue/execute/squash event;
:func:`render_timeline` draws the classic pipeline diagram: ``I`` the issue
cycle, ``-`` transit between Issue and Execute, ``E`` execution, ``x`` a
squashed (replayed) issue attempt. Used by ``examples/timeline_diagrams.py``
to reproduce the paper's illustrative figures from live simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import SimConfig
from repro.isa.trace import TraceSource
from repro.isa.uop import MicroOp
from repro.pipeline.cpu import Simulator
from repro.pipeline.stages import Execute, Issue


class TracingIssue(Issue):
    """Issue stage that logs every issue attempt (the stage-override
    instrumentation seam — see docs/ARCHITECTURE.md)."""

    def _do_issue(self, uop: MicroOp, now: int, loads_before: int) -> None:
        super()._do_issue(uop, now, loads_before)
        self.sim.issue_log.setdefault(uop.seq, []).append(
            [now, uop.exec_start, 0])


class TracingExecute(Execute):
    """Execute stage that marks squashed issue attempts in the log."""

    def _handle_replay(self, now: int) -> None:
        doomed_before = {
            u.seq: u.issue_cycle for u in self.replay.squashable_uops(now)}
        super()._handle_replay(now)
        issue_log = self.sim.issue_log
        for seq, issue_cycle in doomed_before.items():
            for attempt in issue_log.get(seq, []):
                if attempt[0] == issue_cycle:
                    attempt[2] = 1


class TracingSimulator(Simulator):
    """Simulator that keeps a per-µop event log."""

    def __init__(self, config: SimConfig, trace: TraceSource) -> None:
        # seq -> list of (issue_cycle, exec_start, squashed?); created
        # before wiring so the tracing stages may bind it if they wish.
        self.issue_log: Dict[int, List[List[int]]] = {}
        super().__init__(config, trace,
                         stage_overrides={"issue": TracingIssue,
                                          "execute": TracingExecute})


def render_timeline(sim: TracingSimulator, seqs: Optional[List[int]] = None,
                    labels: Optional[Dict[int, str]] = None,
                    max_cycles: int = 60) -> str:
    """Draw the recorded timeline for the chosen µop sequence numbers."""
    seqs = seqs if seqs is not None else sorted(sim.issue_log)
    labels = labels or {}
    events: List[Tuple[int, str, List[List[int]]]] = []
    t0 = None
    for seq in seqs:
        attempts = sim.issue_log.get(seq, [])
        if not attempts:
            continue
        first = min(a[0] for a in attempts)
        t0 = first if t0 is None else min(t0, first)
        events.append((seq, labels.get(seq, f"uop{seq}"), attempts))
    if t0 is None:
        return "(no issue events recorded)"
    width = max(len(lbl) for _, lbl, _ in events) + 2
    header = " " * width + "".join(
        f"{(t0 + c) % 10}" for c in range(max_cycles))
    lines = [header]
    for seq, label, attempts in events:
        row = [" "] * max_cycles
        for issue, exec_start, squashed in attempts:
            i, e = issue - t0, exec_start - t0
            if i >= max_cycles:
                continue
            mark = "x" if squashed else "I"
            row[i] = mark
            for c in range(i + 1, min(e, max_cycles)):
                if row[c] == " ":
                    row[c] = "."
            if not squashed and e < max_cycles:
                row[e] = "E"
        lines.append(label.ljust(width) + "".join(row))
    return "\n".join(lines)
