"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.engine` — the parallel execution engine:
  process-pool cell dispatch, the persistent content-hash result cache,
  and the declarative :class:`Sweep` API;
* :mod:`repro.experiments.runner` — grid runner over (configuration,
  workload), funnelling through the engine;
* :mod:`repro.experiments.figures` — one driver per figure (3, 4, 5, 7, 8)
  plus the Section-5.3 delay sweep and the headline summary;
* :mod:`repro.experiments.tables` — Table 1 / Table 2 renderers;
* :mod:`repro.experiments.report` — ASCII table formatting;
* :mod:`repro.experiments.timeline` — the pipeline timing diagrams of
  Figures 1, 2 and 6.
"""

from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    Sweep,
    SweepSeries,
)
from repro.experiments.runner import (
    ConfigRequest,
    ExperimentResult,
    Settings,
    run_experiment,
    run_sweep,
)
from repro.experiments.figures import (
    fig3,
    fig4,
    fig5,
    fig7,
    fig8,
    delay_sweep,
    headline,
)
from repro.experiments.tables import render_table1, table2
from repro.experiments.report import format_table

__all__ = [
    "ConfigRequest",
    "EngineOptions",
    "ExperimentResult",
    "ResultCache",
    "Settings",
    "Sweep",
    "SweepSeries",
    "delay_sweep",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "format_table",
    "headline",
    "render_table1",
    "run_experiment",
    "run_sweep",
    "table2",
]
