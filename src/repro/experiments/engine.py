"""Parallel experiment engine with a persistent result cache.

This is the batch-execution core every sweep funnels through
(:func:`repro.experiments.runner.run_experiment`, the figure drivers, the
``repro sweep`` CLI subcommand and the benchmarks). It does three things:

1. **Cell dispatch.** A *cell* is one ``(configuration, workload)``
   simulation at fixed µop volumes and seed. :func:`run_cells` executes a
   batch of cells through a pluggable :class:`~repro.experiments.
   backends.ExecutionBackend` — inline / local process pool by default,
   or a file/spool work queue under ``REPRO_BACKEND=queue`` that a
   ``repro worker`` process (possibly on another host sharing the spool
   directory) drains. Each cell is fully described by a plain-dict
   *payload* (serialized config + workload spec + volumes + seed), so
   results are bit-identical no matter which process — or which run, or
   which machine — simulated them. Besides measurement cells there are
   *checkpoint-producing* cells (:func:`run_produce_cells`): their
   output is a warm checkpoint at a target µop position, stored
   content-addressed under ``<cache_dir>/checkpoints/`` so sampled
   sweeps can chain each interval off the previous interval's state.

2. **Persistent result cache.** :class:`ResultCache` layers an in-process
   memo over an on-disk store. Entries are keyed by a sha256 content hash
   of the payload *including a code-version digest over the package
   sources*, so editing any simulator source invalidates stale results
   automatically. Layout (under ``REPRO_CACHE_DIR``, default
   ``~/.cache/repro-isca2015``)::

       <cache_dir>/<key[:2]>/<key>.json
           {"schema": 1, "key": ..., "payload": {...}, "stats": {...}}

   Writes are atomic (tempfile + ``os.replace``), so concurrent sweeps
   sharing a cache directory cannot corrupt entries.

3. **Declarative sweeps.** A :class:`Sweep` names a grid of
   :class:`ConfigRequest` series plus optional workload/volume overrides;
   :meth:`Sweep.from_file` loads one from TOML or JSON (see
   ``examples/sweeps/``) and :func:`run_sweep` executes it.

Engine knobs come from the environment (see :class:`EngineOptions`):

* ``REPRO_JOBS`` — worker processes (default 1 = serial);
* ``REPRO_CACHE_DIR`` — cache directory; ``off``/``none``/``0`` or the
  empty string disables the persistent layer (the in-process memo always
  applies);
* ``REPRO_BACKEND`` — ``local`` (default) or ``queue``;
* ``REPRO_SPOOL_DIR`` — queue-backend spool directory (default
  ``<cache_dir>/spool``).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.serialize import load_structured_file, stable_hash
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.traces.registry import (
    WorkloadLike,
    resolve_workload,
    workload_from_payload,
    workload_identity,
    workload_payload,
)

#: Bumped when the cache entry format (not the simulator) changes.
#: 2: cell payloads carry a typed workload encoding ({kind, ...}) and
#: trace cells key on the recording's content digest.
#: 3: payloads may carry sampling ({spec, index}), checkpoint
#: ({path, digest, position} — keyed by digest only) and max_cycles.
#: (Checkpoint-producing payloads — produce/checkpoint_store — never
#: enter this cache: their output lives in the checkpoint store, and
#: the new fields change keys via the content hash, not the schema.)
CACHE_SCHEMA = 3

_DISABLE_TOKENS = frozenset({"", "off", "none", "0"})


# ---------------------------------------------------------------------------
# Code-version digest


#: Presentation-only modules excluded from the code-version digest: they
#: render or select results but cannot change a cell's counters (a cell's
#: configuration and workload are hashed into the key directly). Editing
#: CLI help or table formatting must not invalidate the whole cache.
_NON_SEMANTIC_SOURCES = frozenset({
    "cli.py",
    "__main__.py",
    "experiments/figures.py",
    "experiments/report.py",
    "experiments/tables.py",
    "experiments/timeline.py",
    # Telemetry is observation-only: instrumented runs never populate
    # the cache (simulate_payload with a collector bypasses it), and the
    # emitting stage subclasses are inert unless explicitly installed.
    "telemetry/__init__.py",
    "telemetry/events.py",
    "telemetry/export.py",
    "telemetry/manifest.py",
    "telemetry/probes.py",
    "telemetry/stages.py",
})


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Hex digest over the simulation-relevant ``.py`` sources of the
    ``repro`` package.

    Folding this into the cache key means any edit that can change a
    simulation's counters invalidates all previously cached results — no
    manual version bumps, no silently stale goldens. Pure presentation
    modules (:data:`_NON_SEMANTIC_SOURCES`) are excluded so cosmetic
    edits keep the cache warm.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        relative = source.relative_to(package_root).as_posix()
        if relative in _NON_SEMANTIC_SOURCES:
            continue
        digest.update(relative.encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Engine options


def default_cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro-isca2015"


#: Execution-backend names :meth:`EngineOptions.execution_backend` maps.
BACKENDS = ("local", "queue")


@dataclass(frozen=True)
class EngineOptions:
    """Execution knobs, normally taken from the environment."""

    jobs: int = 1
    cache_dir: Optional[str] = None     # None => default; "off" => disabled
    backend: str = "local"              # see BACKENDS
    spool_dir: Optional[str] = None     # queue backend; None => cache/spool

    @staticmethod
    def from_env() -> "EngineOptions":
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        backend = (os.environ.get("REPRO_BACKEND", "local")
                   or "local").strip().lower()
        return EngineOptions(jobs=max(1, jobs),
                             cache_dir=os.environ.get("REPRO_CACHE_DIR"),
                             backend=backend,
                             spool_dir=os.environ.get("REPRO_SPOOL_DIR"))

    def cache_path(self) -> Optional[Path]:
        """Resolved persistent-cache directory, or ``None`` if disabled."""
        if self.cache_dir is None:
            return default_cache_dir()
        if self.cache_dir.strip().lower() in _DISABLE_TOKENS:
            return None
        return Path(self.cache_dir)

    def spool_path(self) -> Path:
        """The queue backend's spool directory."""
        if self.spool_dir:
            return Path(self.spool_dir)
        cache = self.cache_path()
        if cache is None:
            raise ValueError(
                "the queue backend needs a spool directory: set "
                "REPRO_SPOOL_DIR (or --spool) when the result cache is "
                "disabled")
        return cache / "spool"

    def execution_backend(self):
        """The :class:`~repro.experiments.backends.ExecutionBackend`
        instance this run dispatches cells through."""
        from repro.experiments.backends import LocalPoolBackend, QueueBackend

        if self.backend in ("", "local"):
            return LocalPoolBackend(self.jobs)
        if self.backend == "queue":
            return QueueBackend(self.spool_path())
        raise ValueError(
            f"unknown execution backend {self.backend!r} "
            f"(REPRO_BACKEND must be one of: {', '.join(BACKENDS)})")


# ---------------------------------------------------------------------------
# Persistent result cache


class ResultCache:
    """Two-level result store: in-process memo over an on-disk JSON layer.

    ``memory`` may be shared between instances (the runner shares one
    process-wide dict so every sweep in a process benefits); the disk
    layer is optional. Hit/miss counters make cache behaviour assertable
    in tests and visible in benchmarks.
    """

    def __init__(self, directory: Optional[Path] = None,
                 memory: Optional[Dict[str, SimStats]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.memory = memory if memory is not None else {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # -- lookup ----------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimStats]:
        hit = self.memory.get(key)
        if hit is not None:
            self.memory_hits += 1
            return hit.copy()
        if self.directory is not None:
            path = self._entry_path(key)
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                entry = None
            if not isinstance(entry, dict):    # corrupt non-object JSON
                entry = None
            if entry is not None and entry.get("schema") == CACHE_SCHEMA \
                    and isinstance(entry.get("stats"), dict):
                try:
                    stats = SimStats.from_dict(entry["stats"])
                except ValueError:             # tampered counter names
                    stats = None
                if stats is not None:
                    self.memory[key] = stats.copy()
                    self.disk_hits += 1
                    return stats
        self.misses += 1
        return None

    def put(self, key: str, stats: SimStats,
            payload: Optional[Dict[str, Any]] = None) -> None:
        self.memory[key] = stats.copy()
        self.stores += 1
        if self.directory is None:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Entries record the payload in its location-independent identity
        # form (the structure the key hashes), so the same cell produces
        # byte-identical entries on any machine or execution backend.
        entry = {"schema": CACHE_SCHEMA, "key": key,
                 "payload": (payload if payload is None
                             else payload_identity(payload)),
                 "stats": stats.to_dict()}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- maintenance -----------------------------------------------------

    def clear_memory(self) -> None:
        self.memory.clear()

    def entry_count(self) -> int:
        """Number of entries in the persistent layer (0 if disabled)."""
        if self.directory is None or not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


# ---------------------------------------------------------------------------
# Cells and their payloads


def base_cell_payload(config, workload: WorkloadLike, *,
                      warmup_uops: int, measure_uops: int,
                      functional_warmup_uops: int, seed: int
                      ) -> Dict[str, Any]:
    """Cell payload from an already-resolved :class:`SimConfig`.

    The entry point every payload builder funnels through —
    :func:`cell_payload` (presets), :func:`repro.pipeline.sim.
    run_workload` (arbitrary configs) and the sampling driver — so
    checkpoint/sampling options cannot diverge between them.
    """
    return {
        "config": config.to_dict(),
        "workload": workload_payload(workload),
        "warmup_uops": warmup_uops,
        "measure_uops": measure_uops,
        "functional_warmup_uops": functional_warmup_uops,
        "seed": seed,
        "code_version": code_version(),
    }


def cell_payload(preset: str, workload: WorkloadLike, *,
                 banked: bool = True, load_ports: int = 2,
                 warmup_uops: int, measure_uops: int,
                 functional_warmup_uops: int, seed: int) -> Dict[str, Any]:
    """Self-contained, picklable description of one simulation cell.

    Everything that can influence the measured counters is in here — the
    fully resolved :class:`SimConfig`, the full workload encoding
    (spec/scenario dict, or trace path + content digest — so a cached
    result can never be served against a re-recorded trace), the µop
    volumes, the seed and the code-version digest — so the payload's
    content hash is a sound cache key. ``workload`` is anything the
    workload registry hands out: a :class:`WorkloadSpec`, a
    :class:`~repro.traces.scenario.ScenarioSpec` or a
    :class:`~repro.traces.registry.TraceWorkload`.
    """
    config = make_config(preset, banked=banked, load_ports=load_ports)
    return base_cell_payload(
        config, workload, warmup_uops=warmup_uops,
        measure_uops=measure_uops,
        functional_warmup_uops=functional_warmup_uops, seed=seed)


def cell_key(payload: Dict[str, Any]) -> str:
    """Content hash of a cell payload — the persistent-cache key.

    Trace workloads are keyed by their recorded stream's identity
    (content digest, wrong-path seed, length), not by file path, so the
    same recording hits the same entries wherever it lives on disk.
    Checkpoint bases likewise key on the checkpoint's *content digest*
    alone: the same warm state at two paths (or regenerated with
    different compression) hits the same entries, and a regenerated
    checkpoint with different state can never serve stale results.
    The ``warming`` tier selector is excluded: the vectorized and
    scalar warming tiers are bit-identical by contract
    (:mod:`repro.pipeline.warming`), so results are interchangeable.
    ``checkpoint_store`` (where a producing cell writes its output) is
    likewise excluded — it is a location, not an input; the produced
    state is pinned by the base digest + target position, which *are*
    keyed.
    """
    return stable_hash(payload_identity(payload))


def payload_identity(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Location-independent form of a cell payload.

    This is the exact structure :func:`cell_key` hashes, and the form
    :class:`ResultCache` records in persistent entries — so a cache
    entry's bytes never depend on where a trace file, checkpoint store
    or cache directory happens to live, and two machines (or two
    execution backends) computing the same cell write identical entries.
    Fields a payload does not carry are left alone, so free-form
    provenance dicts pass through unchanged.
    """
    normalized = dict(payload)
    if "workload" in normalized:
        normalized["workload"] = workload_identity(normalized["workload"])
    normalized.pop("warming", None)
    normalized.pop("checkpoint_store", None)
    checkpoint = normalized.get("checkpoint")
    if checkpoint is not None:
        normalized["checkpoint"] = {"digest": checkpoint["digest"]}
    return normalized


def cell_seed(payload: Dict[str, Any]) -> int:
    """The cell's trace seed: the sweep-wide base seed, unchanged.

    Every cell of a sweep deliberately shares one seed so all
    configurations of a workload see the *same* µop stream (the paper
    compares configurations, not trace instances). It is a function of
    the payload alone — never of dispatch order or worker identity.
    """
    return payload["seed"]


def _restore_checkpoint_base(payload: Dict[str, Any], workload, seed: int, *,
                             phase_profile=None, event_bus=None,
                             extra_stages=()) -> Tuple[Simulator, int]:
    """Restore a cell's ``checkpoint`` base, fully verified.

    The digest must match the ref (a regenerated checkpoint can never
    serve a stale cell), the saved configuration must equal the cell's,
    and the saved workload identity must equal the cell's. Returns the
    restored simulator and the checkpoint's stream position.
    """
    from repro.checkpoint.format import CheckpointError, load_checkpoint

    checkpoint = payload["checkpoint"]
    loaded = load_checkpoint(checkpoint["path"])
    if loaded.info.digest != checkpoint["digest"]:
        raise CheckpointError(
            f"checkpoint {checkpoint['path']} changed since the cell "
            f"was built (digest mismatch)")
    if loaded.payload["config"] != payload["config"]:
        raise CheckpointError(
            f"checkpoint {checkpoint['path']} was saved under "
            f"configuration {loaded.info.config_name!r}, but this "
            f"cell runs {payload['config'].get('name', '?')!r}; "
            f"checkpoints resume their own configuration")
    saved_workload = loaded.payload.get("workload")
    if saved_workload is not None and (
            workload_identity(saved_workload)
            != workload_identity(payload["workload"])):
        raise CheckpointError(
            f"checkpoint {checkpoint['path']} was saved for a "
            f"different workload; restoring its trace cursor into "
            f"this cell's stream would silently corrupt the run")
    sim = loaded.restore(trace=workload.build_trace(seed),
                         phase_profile=phase_profile,
                         event_bus=event_bus, extra_stages=extra_stages)
    return sim, int(checkpoint.get("position", 0))


def simulate_payload(payload: Dict[str, Any],
                     phase_profile=None, collector=None) -> Dict[str, Any]:
    """Worker entry point: simulate one cell, return its counter dict.

    Runs in worker processes under ``jobs > 1``; must stay a module-level
    function (picklable) and must touch no process-global mutable state.
    ``phase_profile`` (a :class:`repro.perf.instrument.PhaseProfile`)
    attaches per-stage cycle-loop timers — benchmarks only; it is never
    set on the worker-pool path. ``collector`` (a
    :class:`repro.telemetry.probes.MetricsCollector`) instruments the
    run with the metric probes and folds the distilled table into the
    returned dict's ``telemetry`` key — interactive ``--metrics`` runs
    only; instrumented results are never written to the result cache
    (callers that cache never pass a collector).

    Beyond the plain (cold-start, fixed-volume) cell, two optional
    payload fields change the shape:

    * ``checkpoint`` — ``{path, digest, position}``: the simulator is
      restored from the saved warm state (digest-verified) instead of
      built cold;
    * ``sampling`` — ``{spec, index}``: the cell is one measurement
      interval of a :class:`~repro.checkpoint.sampling.SamplingSpec`:
      functional fast-forward to the interval start, then a detailed
      warmup + measured region at the spec's per-interval volumes.

    A third field, ``warming``, selects the functional-warming tier
    (``scalar``/``vectorized``/``auto``) for any fast-forward or
    functional warmup the cell performs; it never changes the counters
    (bit-identity contract) and is excluded from the cache key.
    """
    from repro.common.config import SimConfig

    config = SimConfig.from_dict(payload["config"]).validate()
    workload = workload_from_payload(payload["workload"])
    event_bus = collector.bus if collector is not None else None
    extra_stages = tuple(collector.probes) if collector is not None else ()
    sampling = payload.get("sampling")
    required_trace_uops(payload["workload"],
                        warmup_uops=payload["warmup_uops"],
                        measure_uops=payload["measure_uops"],
                        sampling=sampling)
    seed = cell_seed(payload)
    warming = payload.get("warming")
    checkpoint = payload.get("checkpoint")
    if checkpoint is not None:
        sim, position = _restore_checkpoint_base(
            payload, workload, seed, phase_profile=phase_profile,
            event_bus=event_bus, extra_stages=extra_stages)
    else:
        position = 0
        sim = Simulator(config, workload.build_trace(seed),
                        phase_profile=phase_profile,
                        event_bus=event_bus, extra_stages=extra_stages)

    if sampling is not None:
        from repro.checkpoint.sampling import SamplingError, SamplingSpec

        spec = SamplingSpec.from_dict(sampling["spec"])
        gap = spec.interval_offset(sampling["index"]) - position
        if gap < 0:
            raise SamplingError(
                f"checkpoint position {position} is past interval "
                f"{sampling['index']}'s start "
                f"({spec.interval_offset(sampling['index'])})")
        sim.fast_forward(gap, mode=warming)
        base = sim.stats.committed_uops
        sim.run(max_uops=base + spec.warmup_uops)
        baseline = sim.stats.copy()
        sim.run(max_uops=base + spec.warmup_uops + spec.interval_uops)
        measured = sim.stats.delta_since(baseline)
        if collector is not None:
            collector.finalize(sim, measured)
        return measured.to_dict()

    if checkpoint is not None:
        # Continue the restored run: warmup/measure volumes are relative
        # to the checkpointed position.
        base = sim.stats.committed_uops
        sim.run(max_uops=base + payload["warmup_uops"],
                max_cycles=payload.get("max_cycles"))
        baseline = sim.stats.copy()
        sim.run(max_uops=(base + payload["warmup_uops"]
                          + payload["measure_uops"]),
                max_cycles=payload.get("max_cycles"))
        measured = sim.stats.delta_since(baseline)
        if collector is not None:
            collector.finalize(sim, measured)
        return measured.to_dict()

    if payload["functional_warmup_uops"]:
        sim.functional_warmup(workload.build_trace(seed),
                              payload["functional_warmup_uops"],
                              mode=warming)
    stats = sim.run_with_warmup(payload["warmup_uops"],
                                payload["measure_uops"],
                                max_cycles=payload.get("max_cycles"))
    if collector is not None:
        collector.finalize(sim, stats)
    return stats.to_dict()


def required_trace_uops(workload_data: Dict[str, Any], *,
                        warmup_uops: int, measure_uops: int,
                        sampling: Optional[Dict[str, Any]] = None) -> None:
    """Refuse a recorded trace too short for the timed volumes.

    A trace that exhausts during warmup would measure an empty region —
    all-zero stats that would then be cached persistently. (A trace
    shorter than the *functional* warmup merely warms less, which ends
    the warmup early rather than corrupting the measurement, so only the
    timed stream is enforced.) Sampled cells need the stream to reach
    their own interval's measured end.
    """
    if workload_data.get("kind") != "trace":
        return
    if sampling is not None:
        from repro.checkpoint.sampling import SamplingSpec

        spec = SamplingSpec.from_dict(sampling["spec"])
        needed = (spec.interval_offset(sampling["index"])
                  + spec.warmup_uops + spec.interval_uops)
        what = f"interval {sampling['index']} needs offset+warmup+measure"
    else:
        needed = warmup_uops + measure_uops
        what = "the timed run needs warmup+measure"
    if workload_data["uop_count"] < needed:
        raise ValueError(
            f"trace {workload_data.get('path', '?')} holds only "
            f"{workload_data['uop_count']} µops but {what} = {needed}; "
            f"re-record with more µops (`repro trace record --uops N`)")


def simulate_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker wrapper around :func:`simulate_payload` with run telemetry.

    Returns ``{"stats": ..., "wall_seconds": ..., "peak_rss_kb": ...}``.
    Peak RSS is the worker *process* high-water mark — exact under a
    fresh pool worker, an upper bound inline — which is what the
    manifest's runaway-cell alarm wants.
    """
    from time import perf_counter

    from repro.telemetry.manifest import peak_rss_kb

    start = perf_counter()
    stats = simulate_payload(payload)
    return {"stats": stats,
            "wall_seconds": perf_counter() - start,
            "peak_rss_kb": peak_rss_kb()}


# ---------------------------------------------------------------------------
# Checkpoint-producing cells


def checkpoint_store_path(options: EngineOptions) -> Optional[Path]:
    """Where produced checkpoints live: ``<cache_dir>/checkpoints``, or
    ``None`` when the persistent cache is disabled (callers then supply
    a temporary store for the run)."""
    cache = options.cache_path()
    return None if cache is None else cache / "checkpoints"


def checkpoint_store_ref(path) -> Optional[Dict[str, Any]]:
    """A verified ``{path, digest, position}`` ref for a store entry, or
    ``None`` when the entry is absent, truncated, tampered or written by
    a different format version — all of which read as cache misses, so
    the producing cell simply regenerates the file."""
    from repro.checkpoint.format import CheckpointError, load_checkpoint

    path = Path(path)
    if not path.exists():
        return None
    try:
        info = load_checkpoint(path).info    # full payload digest verify
    except (OSError, CheckpointError):
        return None
    position = int(info.provenance.get("stream_uops", info.uops_committed))
    return {"path": str(path), "digest": info.digest, "position": position}


def produce_payload(base: Dict[str, Any], position: int, store, *,
                    checkpoint: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Compile a checkpoint-producing cell from a measurement base.

    The cell functionally fast-forwards to stream ``position`` (from the
    optional base ``checkpoint`` ref, else from µop zero) and captures a
    purely functional checkpoint into ``store``. All timed volumes are
    zeroed — the cell simulates no detailed cycle, so its output rebases
    cleanly across scheduling-policy configs.
    """
    payload = {key: value for key, value in base.items()
               if key not in ("sampling", "produce", "checkpoint",
                              "checkpoint_store")}
    payload.update({
        "warmup_uops": 0,
        "measure_uops": 0,
        "functional_warmup_uops": 0,
        "produce": {"position": int(position)},
        "checkpoint_store": str(store),
    })
    if checkpoint is not None:
        payload["checkpoint"] = {"path": checkpoint["path"],
                                 "digest": checkpoint["digest"],
                                 "position": checkpoint["position"]}
    return payload


def produce_checkpoint(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Materialize one checkpoint-producing cell; returns its store ref.

    The output file is content-addressed by the cell key at
    ``<checkpoint_store>/<key>.ckpt``; an existing verified entry
    short-circuits the simulation (the store doubles as the cache).
    Writes are atomic, so concurrent producers of the same cell are
    harmless.
    """
    from repro.checkpoint.format import (
        CHECKPOINT_SUFFIX, CheckpointError, save_checkpoint)
    from repro.common.config import SimConfig

    produce = payload["produce"]
    store = Path(payload["checkpoint_store"])
    key = cell_key(payload)
    out = store / f"{key}{CHECKPOINT_SUFFIX}"
    cached = checkpoint_store_ref(out)
    if cached is not None:
        return cached

    config = SimConfig.from_dict(payload["config"]).validate()
    workload = workload_from_payload(payload["workload"])
    seed = cell_seed(payload)
    if payload.get("checkpoint") is not None:
        sim, position = _restore_checkpoint_base(payload, workload, seed)
    else:
        sim = Simulator(config, workload.build_trace(seed))
        position = 0
    target = int(produce["position"])
    gap = target - position
    if gap < 0:
        raise CheckpointError(
            f"checkpoint base at stream position {position} is already "
            f"past the produce target {target}")
    consumed = sim.fast_forward(gap, mode=payload.get("warming"))
    stream_uops = position + consumed

    store.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=store, suffix=".tmp")
    os.close(fd)
    try:
        info = save_checkpoint(
            sim, tmp_name, workload=workload, seed=seed,
            provenance={"mode": "functional", "stream_uops": stream_uops,
                        "cell_key": key})
        os.replace(tmp_name, out)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return {"path": str(out), "digest": info.digest,
            "position": stream_uops}


def produce_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker wrapper around :func:`produce_checkpoint` with telemetry,
    mirroring :func:`simulate_cell`'s result shape (``checkpoint``
    replaces ``stats``)."""
    from time import perf_counter

    from repro.telemetry.manifest import peak_rss_kb

    start = perf_counter()
    ref = produce_checkpoint(payload)
    return {"checkpoint": ref,
            "wall_seconds": perf_counter() - start,
            "peak_rss_kb": peak_rss_kb()}


def run_produce_cells(payloads: Sequence[Dict[str, Any]],
                      options: Optional[EngineOptions] = None,
                      progress=None) -> List[Dict[str, Any]]:
    """Execute checkpoint-producing cells; refs in payload order.

    The checkpoint store *is* the cache: an existing verified entry for
    a cell's key is returned without simulating. Executed cells write
    run manifests exactly like measurement cells (``produce_position``
    marks them), so sweep ETAs account for warming work too.
    """
    from repro.telemetry.manifest import (
        build_manifest, manifests_dir, write_manifest)

    options = options or EngineOptions.from_env()
    manifest_path = manifests_dir(options.cache_path())
    results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
    pending: Dict[str, List[int]] = {}
    for index, payload in enumerate(payloads):
        key = cell_key(payload)
        ref = checkpoint_store_ref(
            Path(payload["checkpoint_store"]) / f"{key}.ckpt")
        if ref is not None:
            results[index] = ref
        else:
            pending.setdefault(key, []).append(index)

    if pending:
        def on_result(key: str, cell: Dict[str, Any],
                      done: int, total: int) -> None:
            for index in pending[key]:
                results[index] = dict(cell["checkpoint"])
            manifest = build_manifest(
                payloads[pending[key][0]], key, cached=False,
                wall_seconds=cell["wall_seconds"],
                peak_rss_kb=cell["peak_rss_kb"], jobs=options.jobs)
            if manifest_path is not None:
                write_manifest(manifest_path, manifest)
            if progress is not None:
                progress(done, total, manifest)

        options.execution_backend().execute(
            [(key, payloads[indices[0]])
             for key, indices in pending.items()],
            produce_cell, on_result)

    assert all(r is not None for r in results)
    return results     # type: ignore[return-value]


def run_cells(payloads: Sequence[Dict[str, Any]],
              options: Optional[EngineOptions] = None,
              cache: Optional[ResultCache] = None,
              progress=None) -> List[SimStats]:
    """Execute a batch of cells, returning stats in payload order.

    Cache hits (memory, then disk) are never re-simulated; misses are
    dispatched through ``options.execution_backend()`` — inline or a
    local process pool by default, the spool work queue under
    ``REPRO_BACKEND=queue``. Caching stays on this (submitter) side of
    the backend seam, so every backend produces byte-identical cache
    entries. Duplicate payloads in one batch simulate once.

    ``progress`` (``callable(done, total, manifest)``) is invoked once
    per *simulated* cell as results land (completion order, not payload
    order); ``manifest`` is the cell's run-manifest record. Whenever the
    persistent cache is enabled, every executed batch also writes those
    records under ``<cache_dir>/manifests/`` — one JSON per cell, named
    by the cell key, overwritten on re-execution — for ``repro report
    manifests`` (see :mod:`repro.telemetry.manifest`).
    """
    from repro.telemetry.manifest import (
        build_manifest, manifests_dir, peak_rss_kb, write_manifest)

    options = options or EngineOptions.from_env()
    cache = cache if cache is not None else ResultCache(options.cache_path())
    manifest_path = manifests_dir(cache.directory)
    results: List[Optional[SimStats]] = [None] * len(payloads)
    pending: Dict[str, List[int]] = {}
    hits: List[str] = []
    for index, payload in enumerate(payloads):
        key = cell_key(payload)
        hit = cache.get(key)
        if hit is not None:
            if results[index] is None:
                hits.append(key)
            results[index] = hit
        else:
            pending.setdefault(key, []).append(index)

    def note(key: str, first_index: int, cell: Dict[str, Any],
             done: int, total: int) -> Dict[str, Any]:
        manifest = build_manifest(
            payloads[first_index], key, cached=False,
            wall_seconds=cell["wall_seconds"],
            peak_rss_kb=cell["peak_rss_kb"], jobs=options.jobs)
        if manifest_path is not None:
            write_manifest(manifest_path, manifest)
        if progress is not None:
            progress(done, total, manifest)
        return manifest

    if pending:
        todo = [(key, indices[0]) for key, indices in pending.items()]
        cells: Dict[str, Dict[str, Any]] = {}

        def on_result(key: str, cell: Dict[str, Any],
                      done: int, total: int) -> None:
            cells[key] = cell
            note(key, pending[key][0], cell, done, total)

        options.execution_backend().execute(
            [(key, payloads[i]) for key, i in todo],
            simulate_cell, on_result)
        for key, first_index in todo:
            stats = SimStats.from_dict(cells[key]["stats"])
            cache.put(key, stats, payloads[first_index])
            for index in pending[key]:
                results[index] = stats.copy()

    if manifest_path is not None and hits:
        # Cache hits get a manifest too (wall time 0) so a fully-warm
        # sweep still reports its cell census and hit rate.
        by_key = {cell_key(p): i for i, p in enumerate(payloads)}
        rss = peak_rss_kb()
        for key in hits:
            write_manifest(manifest_path, build_manifest(
                payloads[by_key[key]], key, cached=True, wall_seconds=0.0,
                peak_rss_kb=rss, jobs=options.jobs))

    assert all(r is not None for r in results)
    return results     # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Declarative sweeps


#: Sampled-cell compilation modes a sweep's ``[sampling] mode`` may name.
SAMPLING_MODES = ("cells-chained", "cells")


@dataclass(frozen=True)
class SweepSeries:
    """One series (configuration) of a sweep/experiment grid.

    This is the canonical series type; :mod:`repro.experiments.runner`
    re-exports it under its historical name ``ConfigRequest``."""

    label: str
    preset: str
    banked: bool = True
    load_ports: int = 2


@dataclass(frozen=True)
class Sweep:
    """A declarative (configuration × workload) grid.

    ``workloads`` and the volume fields are optional overrides; anything
    left ``None`` falls back to the environment-driven
    :class:`repro.experiments.runner.Settings` defaults, so sweep files
    stay small and CI can still scale them with ``REPRO_*`` knobs.

    A ``[sampling]`` table (keys of :class:`~repro.checkpoint.sampling.
    SamplingSpec`: ``intervals``, ``interval_uops``, ``warmup_uops``,
    ``period_uops``, ``offset_uops``) switches every cell of the sweep
    to SMARTS-style interval sampling; the per-cell volume fields above
    are then superseded by the spec's per-interval volumes. Its
    ``mode`` key picks the cell compilation: ``"cells-chained"``
    (default — each interval chains off the previous interval's
    checkpoint, one warming pass per workload rebased across the
    config grid) or ``"cells"`` (legacy — every interval fast-forwards
    from µop zero). Both produce bit-identical results.
    """

    name: str
    baseline: str
    series: Tuple[SweepSeries, ...]
    workloads: Optional[Tuple[str, ...]] = None
    warmup_uops: Optional[int] = None
    measure_uops: Optional[int] = None
    functional_warmup_uops: Optional[int] = None
    seed: Optional[int] = None
    sampling: Optional[Dict[str, Any]] = None

    def sampling_spec(self):
        """The validated :class:`SamplingSpec`, or ``None``."""
        if self.sampling is None:
            return None
        from repro.checkpoint.sampling import SamplingSpec

        data = {key: value for key, value in self.sampling.items()
                if key != "mode"}
        return SamplingSpec.from_dict(data)

    def sampling_mode(self) -> str:
        """The sampled-cell compilation mode (see class docstring)."""
        mode = (self.sampling or {}).get("mode", "cells-chained")
        if mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {mode!r} in sweep {self.name!r} "
                f"(choose from: {', '.join(SAMPLING_MODES)})")
        return mode

    def validate(self) -> "Sweep":
        labels = [s.label for s in self.series]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate series labels in sweep {self.name!r}")
        if self.baseline not in labels:
            raise ValueError(
                f"baseline {self.baseline!r} not among series of "
                f"sweep {self.name!r}")
        for series in self.series:
            make_config(series.preset)      # fail fast on preset typos
        for workload in self.workloads or ():
            resolve_workload(workload)      # fail fast on workload typos
        self.sampling_spec()                # fail fast on sampling typos
        self.sampling_mode()
        return self

    # -- construction ----------------------------------------------------

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Sweep":
        known = {f.name for f in dataclasses.fields(Sweep)} | {"series"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep fields: {sorted(unknown)}")
        series = tuple(SweepSeries(**entry) for entry in data["series"])
        workloads = data.get("workloads")
        sampling = data.get("sampling")
        return Sweep(
            name=data["name"],
            baseline=data["baseline"],
            series=series,
            workloads=tuple(workloads) if workloads is not None else None,
            warmup_uops=data.get("warmup_uops"),
            measure_uops=data.get("measure_uops"),
            functional_warmup_uops=data.get("functional_warmup_uops"),
            seed=data.get("seed"),
            sampling=dict(sampling) if sampling is not None else None,
        ).validate()

    @staticmethod
    def from_file(path) -> "Sweep":
        """Load a sweep from a ``.toml`` or ``.json`` file."""
        return Sweep.from_dict(load_structured_file(path))

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)
