"""ASCII rendering of experiment results (paper-style rows)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.runner import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def performance_table(result: ExperimentResult,
                      labels: Optional[Sequence[str]] = None) -> str:
    """Figure (a) style: per-workload IPC normalized to the baseline."""
    labels = list(labels or [lbl for lbl in result.labels()
                             if lbl != result.baseline_label])
    headers = ["workload"] + list(labels)
    rows = []
    ratios = {label: result.ipc_ratio(label) for label in labels}
    for wl in result.workloads:
        rows.append([wl] + [f"{ratios[label][wl]:.3f}" for label in labels])
    rows.append(["gmean"] + [f"{result.gmean_ipc_ratio(label):.3f}"
                             for label in labels])
    return format_table(headers, rows,
                        title=f"[{result.name}] IPC normalized to "
                              f"{result.baseline_label}")


def sampling_table(result: ExperimentResult,
                   labels: Optional[Sequence[str]] = None) -> str:
    """Sampled-run view: per-workload interval-mean IPC ± 95% CI.

    Only meaningful for results produced by a sampled experiment
    (``result.ipc_ci`` populated); detailed grids have no interval
    spread to report.
    """
    labels = list(labels or result.labels())
    headers = ["workload"] + [f"{label} (IPC ±CI95)" for label in labels]
    rows = []
    for wl in result.workloads:
        row = [wl]
        for label in labels:
            ci = result.ipc_ci.get(label, {}).get(wl)
            if ci is None:
                row.append(f"{result.get(label, wl).ipc:.3f}")
            else:
                mean_ipc, half = ci
                row.append(f"{mean_ipc:.3f} ±{half:.3f}")
        rows.append(row)
    return format_table(headers, rows,
                        title=f"[{result.name}] sampled IPC "
                              f"(interval mean ± 95% CI)")


def breakdown_table(result: ExperimentResult, label: str) -> str:
    """Figure (b) style: Unique / RpldMiss / RpldBank per workload."""
    headers = ["workload", "Unique", "RpldMiss", "RpldBank", "Total"]
    rows = []
    breakdown = result.breakdown(label)
    for wl in result.workloads:
        b = breakdown[wl]
        rows.append([wl, f"{b['unique']:.3f}", f"{b['rpld_miss']:.3f}",
                     f"{b['rpld_bank']:.3f}", f"{b['total']:.3f}"])
    n = len(result.workloads)
    rows.append([
        "mean",
        f"{sum(b['unique'] for b in breakdown.values()) / n:.3f}",
        f"{sum(b['rpld_miss'] for b in breakdown.values()) / n:.3f}",
        f"{sum(b['rpld_bank'] for b in breakdown.values()) / n:.3f}",
        f"{sum(b['total'] for b in breakdown.values()) / n:.3f}",
    ])
    return format_table(
        headers, rows,
        title=f"[{result.name}] issued µops for {label}, normalized to "
              f"{result.baseline_label} issued µops")


def summary_line(result: ExperimentResult, label: str,
                 reference: str) -> str:
    """One-line digest: speedup + replay/issued reductions vs reference."""
    speedup = result.speedup_over(label, reference) - 1.0
    total = result.replay_reduction(label, reference, "total")
    miss = result.replay_reduction(label, reference, "miss")
    bank = result.replay_reduction(label, reference, "bank")
    issued = result.issued_reduction(label, reference)
    return (f"{label} vs {reference}: speedup {speedup:+.1%}, replays "
            f"-{total:.1%} (miss -{miss:.1%}, bank -{bank:.1%}), "
            f"issued µops -{issued:.1%}")
