"""Grid runner: (configuration x workload) sweeps over the engine.

Every figure driver funnels through :func:`run_experiment`, so simulation
volume is controlled in one place. Execution itself — worker processes,
the persistent result cache, cell hashing — lives in
:mod:`repro.experiments.engine`; this module owns the sweep-level
bookkeeping (:class:`Settings`, :class:`ConfigRequest`,
:class:`ExperimentResult`) and the process-wide in-memory memo shared by
every sweep.

Scale knobs come from the environment:

* ``REPRO_WORKLOADS`` — ``subset`` (default, 12 diverse workloads),
  ``full`` (all 36), or a comma-separated list of registry names (suite
  workloads, scenario specs or recorded traces; see
  :mod:`repro.traces.registry`);
* ``REPRO_WARMUP`` / ``REPRO_MEASURE`` — µop counts per run (defaults
  3000/12000: small enough for CI, large enough for stable shapes);
* ``REPRO_JOBS`` — worker processes per sweep (default 1 = serial);
* ``REPRO_CACHE_DIR`` — persistent result cache directory
  (``off`` disables; see :mod:`repro.experiments.engine`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.mathutil import geomean
from repro.common.stats import SimStats
from repro.experiments.engine import (
    EngineOptions,
    ResultCache,
    Sweep,
    SweepSeries,
    cell_payload,
    run_cells,
)
from repro.traces.registry import resolve_workload
from repro.workloads.suite import DEFAULT_SUBSET, SUITE


@dataclass(frozen=True)
class Settings:
    """Simulation volume for one experiment sweep."""

    workloads: Tuple[str, ...]
    warmup_uops: int = 3_000
    measure_uops: int = 12_000
    functional_warmup_uops: int = 60_000
    seed: int = 1

    @staticmethod
    def from_env() -> "Settings":
        selector = os.environ.get("REPRO_WORKLOADS", "subset").strip()
        if selector == "full":
            names: Tuple[str, ...] = tuple(SUITE)
        elif selector == "subset":
            names = tuple(DEFAULT_SUBSET)
        else:
            names = tuple(n.strip() for n in selector.split(",") if n.strip())
            for name in names:
                resolve_workload(name)    # fail fast on typos
        warmup = int(os.environ.get("REPRO_WARMUP", "3000"))
        measure = int(os.environ.get("REPRO_MEASURE", "12000"))
        fwarm = int(os.environ.get("REPRO_FUNC_WARMUP", "60000"))
        return Settings(workloads=names, warmup_uops=warmup,
                        measure_uops=measure,
                        functional_warmup_uops=fwarm)

    def with_sweep_overrides(self, sweep: Sweep) -> "Settings":
        """Overlay a sweep's optional overrides on these settings."""
        overrides = {}
        if sweep.workloads is not None:
            overrides["workloads"] = sweep.workloads
        for field_name in ("warmup_uops", "measure_uops",
                           "functional_warmup_uops", "seed"):
            value = getattr(sweep, field_name)
            if value is not None:
                overrides[field_name] = value
        return replace(self, **overrides) if overrides else self


#: One machine configuration in a sweep (label, preset, banked,
#: load_ports) — the historical name for the engine's canonical series
#: type; experiments and sweeps use the same dataclass.
ConfigRequest = SweepSeries


class ExperimentResult:
    """Stats grid + the normalizations the figures report."""

    def __init__(self, name: str, baseline_label: str,
                 workloads: Sequence[str]) -> None:
        self.name = name
        self.baseline_label = baseline_label
        self.workloads = list(workloads)
        # label -> workload -> SimStats
        self.stats: Dict[str, Dict[str, SimStats]] = {}
        # Sampled runs only: label -> workload -> (mean IPC, 95% CI
        # half-width) over measurement intervals. Empty for detailed
        # grids; the report layer prints the ± column when present.
        self.ipc_ci: Dict[str, Dict[str, Tuple[float, float]]] = {}

    # -- ingestion -------------------------------------------------------

    def add(self, label: str, workload: str, stats: SimStats) -> None:
        self.stats.setdefault(label, {})[workload] = stats

    def add_ci(self, label: str, workload: str, mean_ipc: float,
               half_width: float) -> None:
        self.ipc_ci.setdefault(label, {})[workload] = (mean_ipc, half_width)

    def labels(self) -> List[str]:
        return list(self.stats)

    def get(self, label: str, workload: str) -> SimStats:
        return self.stats[label][workload]

    # -- figure (a): performance normalized to the baseline -----------------

    def ipc_ratio(self, label: str) -> Dict[str, float]:
        base = self.stats[self.baseline_label]
        return {
            wl: self.stats[label][wl].ipc / base[wl].ipc if base[wl].ipc else 0.0
            for wl in self.workloads
        }

    def gmean_ipc_ratio(self, label: str) -> float:
        return geomean(self.ipc_ratio(label).values())

    def speedup_over(self, label: str, reference: str) -> float:
        """Geometric-mean speedup of ``label`` over ``reference``."""
        ref = self.ipc_ratio(reference)
        tgt = self.ipc_ratio(label)
        return geomean(tgt[wl] / ref[wl] for wl in self.workloads)

    # -- figure (b): issued-µop breakdown normalized to the baseline ---------

    def breakdown(self, label: str) -> Dict[str, Dict[str, float]]:
        """Per workload: Unique / RpldMiss / RpldBank / Total, each
        normalized to the baseline's issued µops (the paper's Fig. 4b-8b
        y-axis)."""
        base = self.stats[self.baseline_label]
        out: Dict[str, Dict[str, float]] = {}
        for wl in self.workloads:
            stats = self.stats[label][wl]
            denom = base[wl].issued_total or 1
            out[wl] = {
                "unique": stats.unique_issued / denom,
                "rpld_miss": stats.replayed_miss / denom,
                "rpld_bank": stats.replayed_bank / denom,
                "total": stats.issued_total / denom,
            }
        return out

    def total_replays(self, label: str) -> Tuple[int, int]:
        """(miss, bank) replayed-µop totals across workloads."""
        miss = sum(self.stats[label][wl].replayed_miss for wl in self.workloads)
        bank = sum(self.stats[label][wl].replayed_bank for wl in self.workloads)
        return miss, bank

    def total_issued(self, label: str) -> int:
        return sum(self.stats[label][wl].issued_total for wl in self.workloads)

    def replay_reduction(self, label: str, reference: str,
                         kind: str = "total") -> float:
        """Fractional reduction in replayed µops vs ``reference``."""
        ref_miss, ref_bank = self.total_replays(reference)
        lbl_miss, lbl_bank = self.total_replays(label)
        pick = {
            "total": (ref_miss + ref_bank, lbl_miss + lbl_bank),
            "miss": (ref_miss, lbl_miss),
            "bank": (ref_bank, lbl_bank),
        }
        ref_val, lbl_val = pick[kind]
        if ref_val == 0:
            return 0.0
        return 1.0 - lbl_val / ref_val

    def issued_reduction(self, label: str, reference: str) -> float:
        ref = self.total_issued(reference)
        if ref == 0:
            return 0.0
        return 1.0 - self.total_issued(label) / ref


# Process-wide memo shared by every sweep: content-hash -> SimStats.
# Benchmarks share Baseline_0 etc. across figures; the persistent layer
# (REPRO_CACHE_DIR) additionally shares results across processes.
_CACHE: Dict[str, SimStats] = {}


def clear_cache() -> None:
    _CACHE.clear()


def shared_cache(options: Optional[EngineOptions] = None) -> ResultCache:
    """The default cache: process-wide memo + env-configured disk layer."""
    options = options or EngineOptions.from_env()
    return ResultCache(options.cache_path(), memory=_CACHE)


def _grid_payloads(requests: Sequence[ConfigRequest],
                   settings: Settings) -> List[dict]:
    # One resolution per name, not per cell: resolving a scenario or
    # trace name re-reads its file, and the grid repeats each workload
    # once per preset.
    resolved = {name: resolve_workload(name) for name in settings.workloads}
    payloads = []
    for request in requests:
        for workload in settings.workloads:
            payloads.append(cell_payload(
                request.preset, resolved[workload],
                banked=request.banked, load_ports=request.load_ports,
                warmup_uops=settings.warmup_uops,
                measure_uops=settings.measure_uops,
                functional_warmup_uops=settings.functional_warmup_uops,
                seed=settings.seed))
    return payloads


def run_experiment(name: str, requests: Sequence[ConfigRequest],
                   baseline_label: str,
                   settings: Optional[Settings] = None,
                   options: Optional[EngineOptions] = None,
                   cache: Optional[ResultCache] = None,
                   sampling=None, sampling_mode: str = "cells-chained",
                   progress=None) -> ExperimentResult:
    """Run the grid and return the populated :class:`ExperimentResult`.

    Cells already present in ``cache`` (or the process-wide memo / the
    persistent on-disk layer when ``cache`` is omitted) are not
    re-simulated; the rest run serially or across ``options.jobs``
    worker processes. ``progress`` (``callable(done, total, manifest)``)
    fires per simulated cell as results land — see
    :func:`repro.experiments.engine.run_cells`.

    With ``sampling`` (a :class:`~repro.checkpoint.sampling.
    SamplingSpec`) every grid cell expands into per-interval cells; the
    grid entry becomes the counter-wise interval sum and the result
    carries the interval-mean IPC ± 95% CI per cell (``ipc_ci``).
    ``sampling_mode`` picks the compilation: ``"cells-chained"``
    (default — interval warming chains through checkpoints, one warming
    pass per workload rebased across the config grid) or ``"cells"``
    (legacy — every interval fast-forwards from µop zero). Both modes
    return bit-identical grids.
    """
    import contextlib
    import tempfile

    from repro.checkpoint.sampling import (
        SampledResult, chained_cell_payloads, sample_payloads)
    from repro.experiments.engine import (
        SAMPLING_MODES, checkpoint_store_path)

    settings = settings or Settings.from_env()
    options = options or EngineOptions.from_env()
    labels = [r.label for r in requests]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate series labels in experiment {name!r}")
    if baseline_label not in labels:
        raise ValueError(f"baseline {baseline_label!r} not among series")
    if sampling_mode not in SAMPLING_MODES:
        raise ValueError(
            f"unknown sampling mode {sampling_mode!r} "
            f"(choose from: {', '.join(SAMPLING_MODES)})")
    cache = cache if cache is not None else shared_cache(options)
    payloads = _grid_payloads(requests, settings)
    with contextlib.ExitStack() as stack:
        if sampling is not None:
            if sampling_mode == "cells-chained":
                store = checkpoint_store_path(options)
                if store is None:       # cache off: store scoped to run
                    store = stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="repro-ckpt-"))
                payloads = chained_cell_payloads(
                    payloads, sampling, options=options, store=store,
                    progress=progress)
            else:
                payloads = [cell for base in payloads
                            for cell in sample_payloads(base, sampling)]
        stats_list = run_cells(payloads, options=options, cache=cache,
                               progress=progress)
    result = ExperimentResult(name, baseline_label, settings.workloads)
    cursor = iter(stats_list)
    for request in requests:
        for workload in settings.workloads:
            if sampling is None:
                result.add(request.label, workload, next(cursor))
                continue
            intervals = [next(cursor) for _ in range(sampling.intervals)]
            sampled = SampledResult(
                workload=workload, config_name=request.preset,
                spec=sampling, interval_stats=intervals)
            result.add(request.label, workload, sampled.total)
            result.add_ci(request.label, workload,
                          sampled.mean_ipc, sampled.ipc_ci95)
    return result


def run_sweep(sweep: Sweep,
              settings: Optional[Settings] = None,
              options: Optional[EngineOptions] = None,
              cache: Optional[ResultCache] = None,
              progress=None) -> ExperimentResult:
    """Execute a declarative :class:`Sweep` and return its result grid.

    ``settings`` provides the environment-level defaults; the sweep's own
    overrides (workloads, µop volumes, seed) win over them. A sweep with
    a ``[sampling]`` table runs every cell in sampled mode. ``progress``
    fires per simulated cell (see :func:`run_experiment`).
    """
    sweep.validate()
    base = settings or Settings.from_env()
    effective = base.with_sweep_overrides(sweep)
    return run_experiment(sweep.name, list(sweep.series), sweep.baseline,
                          settings=effective, options=options, cache=cache,
                          sampling=sweep.sampling_spec(),
                          sampling_mode=sweep.sampling_mode(),
                          progress=progress)
