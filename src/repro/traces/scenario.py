"""Declarative scenario specs: new behavioural classes as data files.

A :class:`ScenarioSpec` describes a synthetic workload entirely in data —
an instruction-mix Markov chain, a dependency-distance (ILP) model, a
working-set/stride memory model for MLP, and branch-predictability knobs
— and compiles into a deterministic seeded :class:`ScenarioTrace`
(a :class:`~repro.isa.trace.TraceSource`). Where the Table-2 suite wires
kernel *code* together, a scenario is a TOML/JSON file::

    name = "pointer-chase-storm"
    seed = 11

    [deps]
    mean_distance = 2.0        # avg producer distance: low = serial chains

    [memory]
    ws_lines = 131072          # working set in 64-byte cache lines
    stream_frac = 0.0          # fraction of loads that stride sequentially
    chase_frac = 0.9           # fraction whose address is the last load's dst
    streams = 1                # independent stride cursors (MLP)

    [branch]
    period = 16                # TAGE-learnable outcome period
    noise = 0.02               # probability an outcome defies the pattern

    [[mix]]                    # Markov chain over µop kinds
    name = "ld"
    op = "load"
    next = { ld = 2.0, alu = 1.0 }
    ...

Like the kernel suite, every mix state owns fixed PCs so the per-PC
predictors (TAGE, stride prefetcher, hit/miss filter, criticality table)
see stable static instructions, and everything downstream of the seed is
reproducible: the same spec + seed always yields the same µop stream.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.serialize import load_structured_file, stable_hash
from repro.isa.opclass import OpClass
from repro.isa.trace import TraceSource, WrongPathSynth
from repro.isa.uop import MicroOp

LINE = 64

#: op name -> (integer opclass, fp opclass); ``fp = true`` on the spec
#: switches the ALU-ish kinds to their FP counterparts, like the kernels.
_OPS: Dict[str, Tuple[OpClass, OpClass]] = {
    "alu": (OpClass.INT_ALU, OpClass.FP_ADD),
    "mul": (OpClass.INT_MUL, OpClass.FP_MUL),
    "div": (OpClass.INT_DIV, OpClass.FP_DIV),
    "load": (OpClass.LOAD, OpClass.LOAD),
    "store": (OpClass.STORE, OpClass.STORE),
    "branch": (OpClass.BRANCH, OpClass.BRANCH),
    "nop": (OpClass.NOP, OpClass.NOP),
}

#: Value-producing ops feed the dependency ring.
_PRODUCERS = frozenset({"alu", "mul", "div", "load"})

_PC_BASE = 0x200000          # disjoint from the kernel suite's PC regions
_ADDR_BASE = 1 << 30         # ... and from its address regions
_ADDR_REG = 2                # pre-mapped int register: load/store base
_VALUE_REG_BASE = 3          # start of the rotating destination window
_MAX_WINDOW = 16             # int regs 3..18 / fp regs 35..50


@dataclass(frozen=True)
class MixState:
    """One state of the instruction-mix Markov chain."""

    name: str
    op: str
    #: ((successor state name, weight), ...) — sorted for stable hashing.
    next: Tuple[Tuple[str, float], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "op": self.op,
                "next": {state: weight for state, weight in self.next}}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MixState":
        transitions = data.get("next") or {}
        if isinstance(transitions, dict):
            items = sorted(transitions.items())
        else:                            # [[name, weight], ...] lists
            items = sorted((str(k), float(v)) for k, v in transitions)
        return cls(name=str(data["name"]), op=str(data["op"]),
                   next=tuple((str(k), float(v)) for k, v in items))


@dataclass(frozen=True)
class DepModel:
    """Dependency-distance / ILP knobs for value-consuming µops."""

    #: Average distance (in value-producing µops) to a source's producer.
    #: ~1 forces serial chains; large values approximate independence.
    mean_distance: float = 4.0
    #: Rotating destination-register window (bounds live dependencies).
    window: int = 8
    #: Sources sampled per ALU-class µop.
    srcs: int = 1


@dataclass(frozen=True)
class MemoryModel:
    """Working-set + stride patterns: miss rate and MLP."""

    ws_lines: int = 4096       # working set, in cache lines
    stride: int = 64           # bytes between consecutive stream accesses
    streams: int = 1           # independent stream cursors (MLP)
    stream_frac: float = 1.0   # loads/stores striding (rest: random in WS)
    chase_frac: float = 0.0    # loads addressed by the previous load's dst


@dataclass(frozen=True)
class BranchModel:
    """Branch-predictability knobs (see ``BranchKernel``)."""

    period: int = 8            # TAGE-learnable outcome period
    noise: float = 0.05        # probability an outcome defies the pattern


def _model(cls, data: Optional[Dict[str, object]], section: str):
    """Build a knob dataclass, rejecting typoed keys as ValueError (a
    bare ``cls(**data)`` would raise TypeError, which CLI error handling
    rightly treats as a bug rather than bad input)."""
    data = dict(data or {})
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown [{section}] fields: {sorted(unknown)} "
            f"(expected among {sorted(known)})")
    return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative behavioural class, loadable from TOML/JSON."""

    name: str
    mix: Tuple[MixState, ...]
    seed: int = 1
    description: str = ""
    is_fp: bool = False
    deps: DepModel = field(default_factory=DepModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    branch: BranchModel = field(default_factory=BranchModel)

    # -- validation ------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        if not self.mix:
            raise ValueError(f"scenario {self.name!r} has an empty mix")
        names = [state.name for state in self.mix]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario {self.name!r}: duplicate mix state names")
        known = set(names)
        for state in self.mix:
            if state.op not in _OPS:
                raise ValueError(
                    f"scenario {self.name!r}: unknown op {state.op!r} in "
                    f"state {state.name!r} (expected one of "
                    f"{sorted(_OPS)})")
            for successor, weight in state.next:
                if successor not in known:
                    raise ValueError(
                        f"scenario {self.name!r}: state {state.name!r} "
                        f"names unknown successor {successor!r}")
                if weight <= 0:
                    raise ValueError(
                        f"scenario {self.name!r}: non-positive transition "
                        f"weight in state {state.name!r}")
        if self.deps.mean_distance < 1:
            raise ValueError("deps.mean_distance must be >= 1")
        if not 1 <= self.deps.window <= _MAX_WINDOW:
            raise ValueError(f"deps.window must be in 1..{_MAX_WINDOW}")
        if not 1 <= self.deps.srcs <= 2:
            raise ValueError("deps.srcs must be 1 or 2")
        if self.memory.ws_lines < 1 or self.memory.streams < 1:
            raise ValueError("memory.ws_lines and memory.streams must be "
                             "positive")
        if self.memory.stride <= 0:
            raise ValueError("memory.stride must be positive")
        for frac_name in ("stream_frac", "chase_frac"):
            frac = getattr(self.memory, frac_name)
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"memory.{frac_name} must be in [0, 1]")
        if self.branch.period < 2:
            raise ValueError("branch.period must be >= 2")
        if not 0.0 <= self.branch.noise <= 1.0:
            raise ValueError("branch.noise must be in [0, 1]")
        return self

    # -- construction ----------------------------------------------------

    def build_trace(self, seed: Optional[int] = None) -> "ScenarioTrace":
        self.validate()
        return ScenarioTrace(self, self.seed if seed is None else seed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "is_fp": self.is_fp,
            "seed": self.seed,
            "mix": [state.to_dict() for state in self.mix],
            "deps": dataclasses.asdict(self.deps),
            "memory": dataclasses.asdict(self.memory),
            "branch": dataclasses.asdict(self.branch),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)} | {"fp"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario fields: {sorted(unknown)}")
        mix = tuple(MixState.from_dict(entry)
                    for entry in data.get("mix") or ())
        return cls(
            name=str(data["name"]),
            mix=mix,
            seed=int(data.get("seed", 1)),
            description=str(data.get("description", "")),
            # TOML files say `fp = true`, serialized dicts `is_fp`.
            is_fp=bool(data.get("is_fp", data.get("fp", False))),
            deps=_model(DepModel, data.get("deps"), "deps"),
            memory=_model(MemoryModel, data.get("memory"), "memory"),
            branch=_model(BranchModel, data.get("branch"), "branch"),
        ).validate()

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        return cls.from_dict(load_structured_file(path))

    def content_hash(self) -> str:
        """Stable hex digest over the full spec (mix, models, seed)."""
        return stable_hash(self.to_dict())


class ScenarioTrace(TraceSource):
    """The compiled form of a :class:`ScenarioSpec`: a seeded generator.

    One µop per :meth:`next_uop`; the Markov chain picks the next state,
    the dependency ring supplies sources at the spec's ILP distribution,
    and the memory model supplies addresses. Fully deterministic in
    (spec, seed).
    """

    def __init__(self, spec: ScenarioSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self._wp_synth = WrongPathSynth(seed)
        self._states = list(spec.mix)
        self._by_name = {state.name: state for state in self._states}
        self._transitions = {
            state.name: ([self._by_name[n] for n, _ in state.next],
                         [w for _, w in state.next])
            for state in self._states
        }
        self._pcs = {state.name: _PC_BASE + index
                     for index, state in enumerate(self._states)}
        self._state: Optional[MixState] = None   # next_uop starts the chain
        # Dependency ring: the last `window` destination registers, newest
        # last. Registers rotate through the window so writes stay dense.
        self._ring: List[int] = []
        self._next_reg = 0
        # Memory cursors.
        mem = spec.memory
        self._ws_bytes = mem.ws_lines * LINE
        self._cursors = [
            (i * self._ws_bytes) // mem.streams for i in range(mem.streams)]
        self._next_stream = 0
        self._last_load_dst: Optional[int] = None
        # Branch pattern position.
        self._branch_count = 0
        self.emitted = 0

    # -- registers -------------------------------------------------------

    def _fresh_dst(self) -> int:
        reg = _VALUE_REG_BASE + self._next_reg
        if self.spec.is_fp:
            reg += 32
        self._next_reg = (self._next_reg + 1) % self.spec.deps.window
        return reg

    def _pick_src(self) -> int:
        """A source at the spec's dependency-distance distribution."""
        if not self._ring:
            return _ADDR_REG
        mean = self.spec.deps.mean_distance
        if mean <= 1.0:
            distance = 1
        else:
            # Geometric over 1..len(ring) with the requested mean.
            distance = 1 + int(self.rng.expovariate(1.0 / (mean - 1.0)))
        distance = min(distance, len(self._ring))
        return self._ring[-distance]

    def _produce(self, reg: int) -> None:
        self._ring.append(reg)
        if len(self._ring) > self.spec.deps.window:
            self._ring.pop(0)

    # -- memory ----------------------------------------------------------

    def _next_addr(self) -> int:
        mem = self.spec.memory
        if self.rng.random() < mem.stream_frac:
            stream = self._next_stream
            self._next_stream = (self._next_stream + 1) % mem.streams
            addr = _ADDR_BASE + self._cursors[stream]
            self._cursors[stream] = (
                self._cursors[stream] + mem.stride) % self._ws_bytes
            return addr
        line = self.rng.randrange(mem.ws_lines)
        offset = self.rng.randrange(LINE // 8) * 8
        return _ADDR_BASE + line * LINE + offset

    # -- TraceSource -----------------------------------------------------

    def next_uop(self) -> Optional[MicroOp]:
        if self._state is None:
            state = self._states[0]
        else:
            successors, weights = self._transitions[self._state.name]
            if successors:
                state = self.rng.choices(successors, weights=weights)[0]
            else:                        # absorbing state: loop in place
                state = self._state
        self._state = state
        uop = self._emit(state)
        self.emitted += 1
        return uop

    def next_block(self, max_uops: int) -> List[MicroOp]:
        """Block-yield iteration: one Markov step per µop, batched locally.

        Same draws and emission as ``max_uops`` calls of
        :meth:`next_uop` (the generator never exhausts), with the
        per-µop method dispatch hoisted out of the loop for the
        functional-warming tier.
        """
        out: List[MicroOp] = []
        append = out.append
        choices = self.rng.choices
        transitions = self._transitions
        emit = self._emit
        state = self._state
        for _ in range(max_uops):
            if state is None:
                state = self._states[0]
            else:
                successors, weights = transitions[state.name]
                if successors:
                    state = choices(successors, weights=weights)[0]
            append(emit(state))
        self._state = state
        self.emitted += len(out)
        return out

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        return self._wp_synth.synth(seq, pc)

    def skip_wrong_path(self, count: int) -> None:
        self._wp_synth.skip(count)

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self) -> dict:
        return {
            "rng": self.rng.getstate(),
            "wp_synth": self._wp_synth.state_dict(),
            "state": self._state.name if self._state is not None else None,
            "ring": list(self._ring),
            "next_reg": self._next_reg,
            "cursors": list(self._cursors),
            "next_stream": self._next_stream,
            "last_load_dst": self._last_load_dst,
            "branch_count": self._branch_count,
            "emitted": self.emitted,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.checkpoint.state import set_rng_state

        set_rng_state(self.rng, state["rng"])
        self._wp_synth.load_state_dict(state["wp_synth"])
        name = state["state"]
        self._state = self._by_name[name] if name is not None else None
        self._ring = list(state["ring"])
        self._next_reg = state["next_reg"]
        self._cursors = list(state["cursors"])
        self._next_stream = state["next_stream"]
        self._last_load_dst = state["last_load_dst"]
        self._branch_count = state["branch_count"]
        self.emitted = state["emitted"]

    # -- emission --------------------------------------------------------

    def _emit(self, state: MixState) -> MicroOp:
        pc = self._pcs[state.name]
        int_op, fp_op = _OPS[state.op]
        opclass = fp_op if self.spec.is_fp else int_op
        if state.op == "load":
            chase = (self._last_load_dst is not None
                     and self.rng.random() < self.spec.memory.chase_frac)
            addr_src = self._last_load_dst if chase else _ADDR_REG
            dst = self._fresh_dst()
            uop = MicroOp(seq=0, pc=pc, opclass=opclass, srcs=[addr_src],
                          dst=dst, mem_addr=self._next_addr())
            self._last_load_dst = dst
            self._produce(dst)
            return uop
        if state.op == "store":
            data_src = self._pick_src()
            return MicroOp(seq=0, pc=pc, opclass=opclass,
                           srcs=[_ADDR_REG, data_src], dst=None,
                           mem_addr=self._next_addr())
        if state.op == "branch":
            model = self.spec.branch
            pattern = self._branch_count % model.period != 0
            taken = pattern ^ (self.rng.random() < model.noise)
            self._branch_count += 1
            return MicroOp(seq=0, pc=pc, opclass=opclass,
                           srcs=[self._pick_src()], dst=None, taken=taken,
                           target=_PC_BASE if taken else pc + 1)
        if state.op == "nop":
            return MicroOp(seq=0, pc=pc, opclass=opclass)
        # alu / mul / div: value producers off the dependency ring.
        srcs = [self._pick_src() for _ in range(self.spec.deps.srcs)]
        dst = self._fresh_dst()
        uop = MicroOp(seq=0, pc=pc, opclass=opclass, srcs=srcs, dst=dst)
        self._produce(dst)
        return uop
