"""Trace subsystem: binary capture/replay, scenario specs, the registry.

Three layers (see the module docstrings for the details):

* :mod:`repro.traces.format` — the versioned binary on-disk µop-stream
  encoding, its streaming reader/writer, :func:`capture` and
  :class:`FileTrace` replay;
* :mod:`repro.traces.scenario` — declarative :class:`ScenarioSpec`
  behavioural classes compiled into deterministic seeded trace sources;
* :mod:`repro.traces.registry` — the single namespace through which the
  engine, CLI, figures and benchmarks resolve kernel suites, scenario
  specs and recorded traces uniformly.
"""

from repro.traces.format import (
    FileTrace,
    TRACE_SUFFIX,
    TraceFormatError,
    TraceInfo,
    TraceWriter,
    capture,
    read_info,
    read_uops,
    verify,
)
from repro.traces.registry import (
    TraceWorkload,
    WorkloadRegistry,
    default_registry,
    resolve_workload,
    workload_from_payload,
    workload_identity,
    workload_payload,
)
from repro.traces.scenario import (
    BranchModel,
    DepModel,
    MemoryModel,
    MixState,
    ScenarioSpec,
    ScenarioTrace,
)

__all__ = [
    "BranchModel",
    "DepModel",
    "FileTrace",
    "MemoryModel",
    "MixState",
    "ScenarioSpec",
    "ScenarioTrace",
    "TRACE_SUFFIX",
    "TraceFormatError",
    "TraceInfo",
    "TraceWorkload",
    "TraceWriter",
    "WorkloadRegistry",
    "capture",
    "default_registry",
    "read_info",
    "read_uops",
    "resolve_workload",
    "verify",
    "workload_from_payload",
    "workload_identity",
    "workload_payload",
]
