"""Binary µop-trace format: capture once, replay many.

Every sweep the experiment engine fans out re-simulates the *same*
correct-path µop stream under different backends. Regenerating that
stream from kernel specs puts the workload generator on the hot path of
every cell; this module takes it off: a stream is captured to a compact,
versioned on-disk encoding once and replayed from disk thereafter —
bit-identically, including the synthesized wrong path.

Layout of a ``.trc`` file::

    header (64 bytes, fixed):
        magic        4s   b"RPTR"
        version      u16  FORMAT_VERSION
        flags        u16  bit 0: frames are zlib-compressed
        uop_count    u64  total records (patched on close)
        digest       32s  sha256 over the *raw* record bytes (patched)
        meta_len     u32  length of the meta JSON that follows
        reserved     12s
    meta JSON (meta_len bytes):
        {"record": 1, "wp_seed": ..., "provenance": {...}}
    frames, each:
        raw_len      u32  uncompressed byte length
        stored_len   u32  on-disk byte length
        payload           raw or zlib-compressed records

Records are fixed-width (:data:`RECORD`, 36 bytes) and carry exactly the
*architectural* :class:`~repro.isa.uop.MicroOp` fields — the pipeline
annotates everything else at runtime, and ``seq`` is assigned by fetch.
The content digest is computed over the uncompressed records, so it
identifies the µop stream independent of compression, and it is the
ingredient the engine folds into its cache keys: a cached result can
never be served against a re-recorded trace.

Wrong-path µops are *not* recorded (trace-driven simulation synthesizes
them); the header's ``wp_seed`` seeds the same
:class:`~repro.isa.trace.WrongPathSynth` stream the live generator used,
which is what makes replayed ``SimStats`` bit-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import struct
import zlib
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.isa.opclass import OpClass
from repro.isa.trace import TraceSource, WrongPathSynth
from repro.isa.uop import MicroOp

MAGIC = b"RPTR"
FORMAT_VERSION = 1
RECORD_VERSION = 1
FLAG_ZLIB = 0x1

#: Canonical file suffix for recorded traces.
TRACE_SUFFIX = ".trc"

HEADER = struct.Struct("<4sHHQ32sI12s")
FRAME_HEADER = struct.Struct("<II")

#: pc, mem_addr, target, src0..src2, dst, opclass, flags, mem_size.
#: Absent registers are encoded as -1; flag bit 0 is the branch outcome.
RECORD = struct.Struct("<QQQhhhhBBH")

_FLAG_TAKEN = 0x1

#: Lazily-built numpy structured dtype mirroring :data:`RECORD` (see
#: :func:`record_dtype`); None until first requested so this module
#: keeps working without numpy installed.
_RECORD_DTYPE = None


def record_dtype():
    """The numpy structured dtype of one :data:`RECORD` (lazy, cached).

    Field-for-field mirror of the packed struct layout, so a frame's raw
    bytes can be viewed with ``np.frombuffer`` — the vectorized warming
    tier's zero-decode replay path. Raises ``ImportError`` when numpy is
    unavailable (callers gate on the warming mode first).
    """
    global _RECORD_DTYPE
    if _RECORD_DTYPE is None:
        import numpy as np

        dtype = np.dtype([
            ("pc", "<u8"),
            ("mem_addr", "<u8"),
            ("target", "<u8"),
            ("s0", "<i2"),
            ("s1", "<i2"),
            ("s2", "<i2"),
            ("dst", "<i2"),
            ("opclass", "u1"),
            ("flags", "u1"),
            ("mem_size", "<u2"),
        ])
        if dtype.itemsize != RECORD.size:
            raise TraceFormatError(
                f"record dtype is {dtype.itemsize} bytes; the packed "
                f"record is {RECORD.size}")
        _RECORD_DTYPE = dtype
    return _RECORD_DTYPE

#: Value -> OpClass member without the (slow) enum constructor — decode
#: runs once per replayed µop, squarely on the replay hot path.
_OPCLASS_BY_VALUE = tuple(OpClass(v) for v in range(len(OpClass)))

#: Records per frame: large enough to amortize the zlib/frame overhead,
#: small enough that replay never holds more than ~150 KB decoded.
DEFAULT_FRAME_RECORDS = 4096


class TraceFormatError(ValueError):
    """Malformed, truncated or incompatible trace file."""


# ---------------------------------------------------------------------------
# Record encoding


def encode_record(uop: MicroOp) -> bytes:
    """Fixed-width encoding of one correct-path µop's architectural fields."""
    srcs = uop.srcs
    if len(srcs) > 3:
        raise TraceFormatError(
            f"µop at pc={uop.pc:#x} has {len(srcs)} sources; the record "
            f"format encodes at most 3")
    if uop.wrong_path:
        raise TraceFormatError(
            "wrong-path µops are synthesized at replay, not recorded")
    s0 = srcs[0] if len(srcs) > 0 else -1
    s1 = srcs[1] if len(srcs) > 1 else -1
    s2 = srcs[2] if len(srcs) > 2 else -1
    dst = uop.dst if uop.dst is not None else -1
    flags = _FLAG_TAKEN if uop.taken else 0
    return RECORD.pack(uop.pc, uop.mem_addr, uop.target, s0, s1, s2,
                       dst, int(uop.opclass), flags, uop.mem_size)


def decode_record(fields) -> MicroOp:
    """Inverse of :func:`encode_record` (``fields`` = unpacked tuple)."""
    pc, mem_addr, target, s0, s1, s2, dst, opclass, flags, mem_size = fields
    srcs: List[int] = []
    if s0 >= 0:
        srcs.append(s0)
        if s1 >= 0:
            srcs.append(s1)
            if s2 >= 0:
                srcs.append(s2)
    return MicroOp(seq=0, pc=pc, opclass=_OPCLASS_BY_VALUE[opclass],
                   srcs=srcs, dst=dst if dst >= 0 else None,
                   mem_addr=mem_addr, mem_size=mem_size,
                   taken=bool(flags & _FLAG_TAKEN), target=target)


# ---------------------------------------------------------------------------
# Header / info


@dataclasses.dataclass(frozen=True)
class TraceInfo:
    """Everything knowable about a trace without scanning its payload."""

    path: str
    version: int
    compressed: bool
    uop_count: int
    digest: str                     # hex sha256 over raw record bytes
    wp_seed: int
    provenance: Dict[str, Any]
    file_bytes: int

    @property
    def raw_bytes(self) -> int:
        """Uncompressed payload size."""
        return self.uop_count * RECORD.size


def _read_exact(handle, n: int, what: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise TraceFormatError(f"truncated trace file: short read in {what}")
    return data


def _read_header(handle, path: Path):
    raw = handle.read(HEADER.size)
    if len(raw) != HEADER.size:
        raise TraceFormatError(f"{path.name}: not a trace file (too short)")
    magic, version, flags, count, digest, meta_len, _ = HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"{path.name}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"{path.name}: format version {version} (this build reads "
            f"{FORMAT_VERSION})")
    try:
        meta = json.loads(_read_exact(handle, meta_len, "meta"))
    except ValueError as exc:
        raise TraceFormatError(f"{path.name}: corrupt meta JSON") from exc
    if meta.get("record") != RECORD_VERSION:
        raise TraceFormatError(
            f"{path.name}: record layout {meta.get('record')} (this build "
            f"reads {RECORD_VERSION})")
    return flags, count, digest, meta


def read_info(path) -> TraceInfo:
    """Parse the header and meta of a trace file (no payload scan)."""
    path = Path(path)
    with path.open("rb") as handle:
        flags, count, digest, meta = _read_header(handle, path)
    return TraceInfo(
        path=str(path),
        version=FORMAT_VERSION,
        compressed=bool(flags & FLAG_ZLIB),
        uop_count=count,
        digest=digest.hex(),
        wp_seed=int(meta.get("wp_seed", 0)),
        provenance=dict(meta.get("provenance") or {}),
        file_bytes=path.stat().st_size,
    )


def verify(path) -> bool:
    """Full-scan check: recompute the payload digest against the header."""
    path = Path(path)
    info = read_info(path)
    sha = hashlib.sha256()
    count = 0
    try:
        for raw in _iter_frames(path):
            sha.update(raw)
            count += len(raw) // RECORD.size
    except TraceFormatError:
        return False
    return count == info.uop_count and sha.hexdigest() == info.digest


# ---------------------------------------------------------------------------
# Writing


class TraceWriter:
    """Streaming writer: append µops, close to patch count + digest."""

    def __init__(self, path, *, wp_seed: int,
                 provenance: Optional[Dict[str, Any]] = None,
                 compress: bool = True,
                 frame_records: int = DEFAULT_FRAME_RECORDS) -> None:
        self.path = Path(path)
        self.wp_seed = wp_seed
        self.compress = compress
        self.frame_records = max(1, frame_records)
        self.count = 0
        self._sha = hashlib.sha256()
        self._frame: List[bytes] = []
        self._closed = False
        meta = json.dumps(
            {"record": RECORD_VERSION, "wp_seed": wp_seed,
             "provenance": provenance or {}},
            sort_keys=True).encode("utf-8")
        self._handle = self.path.open("wb")
        flags = FLAG_ZLIB if compress else 0
        self._handle.write(HEADER.pack(MAGIC, FORMAT_VERSION, flags, 0,
                                       b"\0" * 32, len(meta), b"\0" * 12))
        self._handle.write(meta)

    def append(self, uop: MicroOp) -> None:
        record = encode_record(uop)
        self._sha.update(record)
        self._frame.append(record)
        self.count += 1
        if len(self._frame) >= self.frame_records:
            self._flush_frame()

    def _flush_frame(self) -> None:
        if not self._frame:
            return
        raw = b"".join(self._frame)
        self._frame.clear()
        stored = zlib.compress(raw, 6) if self.compress else raw
        self._handle.write(FRAME_HEADER.pack(len(raw), len(stored)))
        self._handle.write(stored)

    def close(self) -> TraceInfo:
        if self._closed:
            return read_info(self.path)
        self._flush_frame()
        digest = self._sha.digest()
        self._handle.seek(8)             # past magic/version/flags
        self._handle.write(struct.pack("<Q32s", self.count, digest))
        self._handle.close()
        self._closed = True
        return read_info(self.path)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:                            # leave no half-written file behind
            self._handle.close()
            self._closed = True
            try:
                self.path.unlink()
            except OSError:
                pass


def capture(source: TraceSource, path, limit: int, *, wp_seed: int,
            provenance: Optional[Dict[str, Any]] = None,
            compress: bool = True,
            frame_records: int = DEFAULT_FRAME_RECORDS) -> TraceInfo:
    """Pull up to ``limit`` correct-path µops from ``source`` to disk.

    ``wp_seed`` must be the seed whose :class:`WrongPathSynth` stream the
    source uses, so replay reproduces the wrong path exactly; for
    workload/scenario traces that is the build seed.
    """
    with TraceWriter(path, wp_seed=wp_seed, provenance=provenance,
                     compress=compress, frame_records=frame_records) as out:
        for _ in range(limit):
            uop = source.next_uop()
            if uop is None:
                break
            out.append(uop)
    return read_info(path)


# ---------------------------------------------------------------------------
# Reading / replay


def _iter_frames(path: Path) -> Iterator[bytes]:
    """Yield each frame's raw (decompressed) record bytes."""
    with path.open("rb") as handle:
        flags, _, _, _ = _read_header(handle, path)
        compressed = bool(flags & FLAG_ZLIB)
        while True:
            frame_header = handle.read(FRAME_HEADER.size)
            if not frame_header:
                return
            if len(frame_header) != FRAME_HEADER.size:
                raise TraceFormatError(
                    f"{path.name}: truncated frame header")
            raw_len, stored_len = FRAME_HEADER.unpack(frame_header)
            stored = _read_exact(handle, stored_len, "frame payload")
            if compressed:
                try:
                    raw = zlib.decompress(stored)
                except zlib.error as exc:
                    raise TraceFormatError(
                        f"{path.name}: corrupt frame") from exc
            else:
                raw = stored
            if len(raw) != raw_len or raw_len % RECORD.size:
                raise TraceFormatError(
                    f"{path.name}: frame length mismatch")
            yield raw


def read_uops(path, limit: Optional[int] = None) -> Iterator[MicroOp]:
    """Stream decoded µops from a trace file."""
    emitted = 0
    for raw in _iter_frames(Path(path)):
        for fields in RECORD.iter_unpack(raw):
            if limit is not None and emitted >= limit:
                return
            yield decode_record(fields)
            emitted += 1


def decode_frame(raw: bytes) -> Deque[MicroOp]:
    """Decode one frame's records into µops in a single batch.

    This is the front end's bulk decode path: one tight loop per ~4096
    records instead of an iterator resumption + generator frame per µop,
    which is what makes replay faster than live generation.
    """
    out: Deque[MicroOp] = deque()
    append = out.append
    by_value = _OPCLASS_BY_VALUE
    for fields in RECORD.iter_unpack(raw):
        pc, mem_addr, target, s0, s1, s2, dst, opclass, flags, mem_size \
            = fields
        srcs: List[int] = []
        if s0 >= 0:
            srcs.append(s0)
            if s1 >= 0:
                srcs.append(s1)
                if s2 >= 0:
                    srcs.append(s2)
        append(MicroOp(seq=0, pc=pc, opclass=by_value[opclass],
                       srcs=srcs, dst=dst if dst >= 0 else None,
                       mem_addr=mem_addr, mem_size=mem_size,
                       taken=bool(flags & _FLAG_TAKEN), target=target))
    return out


class FileTrace(TraceSource):
    """Replay a recorded trace as a :class:`TraceSource`.

    Frames are decoded lazily one whole frame at a time (the batched
    decode path), so replay is streaming — a few hundred KB resident
    regardless of trace length — while the per-µop cost is a deque pop.
    Wrong-path µops come from the header-seeded :class:`WrongPathSynth` —
    the same stream the live generator produced, which is what keeps
    replayed ``SimStats`` bit-identical to generate-live runs.
    """

    def __init__(self, path, loop: bool = False) -> None:
        self.path = Path(path)
        self.info = read_info(self.path)
        self._loop = loop
        self._synth = WrongPathSynth(self.info.wp_seed)
        self._frames = _iter_frames(self.path)
        self._batch: Deque[MicroOp] = deque()
        # Raw record bytes handed back by next_record_block's partial
        # consumption of a frame; next_uop decodes it on demand, so the
        # two consumption shapes can interleave freely.
        self._raw_tail = b""
        self.replayed = 0

    # -- TraceSource ---------------------------------------------------

    def next_uop(self) -> Optional[MicroOp]:
        batch = self._batch
        while not batch:
            if self._raw_tail:
                batch = self._batch = decode_frame(self._raw_tail)
                self._raw_tail = b""
                break
            frame = next(self._frames, None)
            if frame is None:
                if not self._loop or not self.info.uop_count:
                    return None
                self._frames = _iter_frames(self.path)
                continue
            batch = self._batch = decode_frame(frame)
        self.replayed += 1
        return batch.popleft()

    def next_record_block(self, max_uops: int):
        """Up to ``max_uops`` raw records as a numpy structured array.

        The vectorized warming tier's zero-decode supply: one
        ``np.frombuffer`` view per (partial) frame, no :class:`MicroOp`
        construction at all. Returns ``None`` when raw records cannot be
        served right now — stream exhausted (non-looping), a decoded
        batch is pending from :meth:`next_uop`/restore, or numpy is
        missing — in which case callers fall back to
        :meth:`next_block`. Stream position (``replayed``, checkpoint
        state) advances exactly as if the records had been replayed
        per µop.
        """
        if self._batch or max_uops <= 0:
            return None
        try:
            dtype = record_dtype()
        except ImportError:
            return None
        tail = self._raw_tail
        if not tail:
            frame = next(self._frames, None)
            if frame is None:
                if not self._loop or not self.info.uop_count:
                    return None
                self._frames = _iter_frames(self.path)
                frame = next(self._frames, None)
                if frame is None:
                    return None
            tail = frame
        count = min(max_uops, len(tail) // RECORD.size)
        split = count * RECORD.size
        self._raw_tail = tail[split:]
        self.replayed += count
        import numpy as np

        return np.frombuffer(tail[:split], dtype=dtype)

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        return self._synth.synth(seq, pc)

    def skip_wrong_path(self, count: int) -> None:
        self._synth.skip(count)

    def reset(self) -> None:
        self._synth = WrongPathSynth(self.info.wp_seed)
        self._frames = _iter_frames(self.path)
        self._batch = deque()
        self._raw_tail = b""
        self.replayed = 0

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """The cursor is the replayed-µop count; restore re-seeks the
        frame stream (whole frames are skipped without decoding)."""
        return {"replayed": self.replayed,
                "synth": self._synth.state_dict(),
                "loop": self._loop}

    def load_state_dict(self, state: dict) -> None:
        self._loop = state["loop"]
        self._synth.load_state_dict(state["synth"])
        self._seek(state["replayed"])

    def _seek(self, count: int) -> None:
        """Position the stream so the next µop is number ``count``."""
        self._frames = _iter_frames(self.path)
        self._batch = deque()
        self._raw_tail = b""
        remaining = count
        if self._loop and self.info.uop_count:
            remaining %= self.info.uop_count
        record_size = RECORD.size
        while remaining:
            frame = next(self._frames, None)
            if frame is None:           # exhausted, non-looping stream
                break
            records = len(frame) // record_size
            if records <= remaining:
                remaining -= records
            else:
                batch = decode_frame(frame)
                for _ in range(remaining):
                    batch.popleft()
                self._batch = batch
                remaining = 0
        self.replayed = count
