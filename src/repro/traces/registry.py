"""The workload registry: one namespace for suites, scenarios and traces.

Everything that consumes workloads — ``repro run``/``repro sweep``, the
experiment engine, figures/tables, benchmarks — resolves them here, so a
new behavioural class is addressable end-to-end by name the moment its
file exists. Three kinds resolve uniformly:

* **suite** — the built-in Table-2 :class:`~repro.workloads.spec.WorkloadSpec`
  entries ("mcf", "xalancbmk", ...);
* **scenario** — declarative :class:`~repro.traces.scenario.ScenarioSpec`
  files (``.toml``/``.json``), discovered on the search path or given as
  explicit paths;
* **trace** — recorded binary traces (``.trc``), wrapped in
  :class:`TraceWorkload`;
* **rv32i** — real RV32I program images (``.hex``/``.bin``), wrapped in
  :class:`~repro.isa.rv32i.workload.Rv32iWorkload`. The bundled kernel
  corpus under ``examples/rv32i`` resolves by bare name.

The search path is ``REPRO_WORKLOAD_PATH`` (``os.pathsep``-separated
directories) followed by ``examples/scenarios`` relative to the current
directory. Names containing a path separator or a recognized suffix
bypass the search and load directly.

All kinds satisfy one protocol — ``name``, ``description``,
``is_fp``, ``build_trace(seed)``, ``content_hash()`` — and
:func:`workload_payload` / :func:`workload_from_payload` give them one
self-contained, picklable cell-payload encoding for the engine. A trace
workload's payload embeds the trace's content digest, so engine cache
keys can never match a re-recorded trace.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.common.serialize import canonical_json, stable_hash
from repro.isa.rv32i.corpus import bundled_workload
from repro.isa.rv32i.workload import RV32I_SUFFIXES, Rv32iWorkload
from repro.traces.format import FileTrace, TRACE_SUFFIX, TraceInfo, read_info
from repro.traces.scenario import ScenarioSpec
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import SUITE

_SCENARIO_SUFFIXES = (".toml", ".json")
_FILE_SUFFIXES = _SCENARIO_SUFFIXES + (TRACE_SUFFIX,) + RV32I_SUFFIXES

#: Union of everything the registry hands out.
WorkloadLike = Union[WorkloadSpec, ScenarioSpec, "TraceWorkload",
                     Rv32iWorkload]


class TraceWorkload:
    """A recorded trace file presented through the workload protocol.

    ``build_trace`` ignores the caller's seed: the stream (and its
    wrong-path seed) were fixed at record time. The trace's content
    digest doubles as the identity the engine hashes, and it is
    re-checked against the file header at build time so a silently
    swapped file fails loudly instead of polluting results.
    """

    def __init__(self, path, info: Optional[TraceInfo] = None,
                 name: Optional[str] = None) -> None:
        self.path = Path(path)
        self.info = info if info is not None else read_info(self.path)
        self.name = name or self.info.provenance.get(
            "workload", self.path.stem)
        self.digest = self.info.digest

    @property
    def description(self) -> str:
        base = self.info.provenance.get("description", "")
        suffix = f"recorded trace ({self.info.uop_count} µops)"
        return f"{base} [{suffix}]" if base else suffix

    @property
    def is_fp(self) -> bool:
        return bool(self.info.provenance.get("is_fp", False))

    def build_trace(self, seed: Optional[int] = None) -> FileTrace:
        trace = FileTrace(self.path)
        if trace.info.digest != self.digest:
            raise ValueError(
                f"trace {self.path} was re-recorded (digest "
                f"{trace.info.digest[:12]}… != expected "
                f"{self.digest[:12]}…); re-resolve the workload")
        return trace

    def content_hash(self) -> str:
        """Identity of the recorded stream, not of the file location."""
        return stable_hash({"kind": "trace", "digest": self.digest,
                            "wp_seed": self.info.wp_seed})


# ---------------------------------------------------------------------------
# Cell-payload encoding (used by repro.experiments.engine)


def workload_payload(workload: WorkloadLike) -> Dict[str, Any]:
    """Self-contained plain-dict encoding of any registry workload."""
    if isinstance(workload, WorkloadSpec):
        return {"kind": "spec", "spec": workload.to_dict()}
    if isinstance(workload, ScenarioSpec):
        return {"kind": "scenario", "spec": workload.to_dict()}
    if isinstance(workload, TraceWorkload):
        return {"kind": "trace", "name": workload.name,
                "path": str(workload.path), "digest": workload.digest,
                "wp_seed": workload.info.wp_seed,
                "uop_count": workload.info.uop_count}
    if isinstance(workload, Rv32iWorkload):
        return {"kind": "rv32i", "name": workload.name,
                "path": str(workload.path), "digest": workload.digest,
                "seed": workload.seed}
    raise TypeError(f"not a registry workload: {type(workload).__name__}")


def workload_identity(data: Dict[str, Any]) -> Dict[str, Any]:
    """The hash-relevant view of a workload payload.

    For spec/scenario payloads that is the payload itself; for traces the
    file location and display name are dropped so the cache key depends
    only on the recorded stream (digest + wrong-path seed + length) — the
    same recording at two paths, or on two machines sharing a cache,
    hits the same entries.

    The view is JSON-canonical (tuples become lists), so identities
    compare equal across a JSON round-trip — a payload that travelled
    through the spool work queue must match the identity a checkpoint
    recorded in-process.
    """
    if data.get("kind") == "trace":
        return {"kind": "trace", "digest": data["digest"],
                "wp_seed": data["wp_seed"], "uop_count": data["uop_count"]}
    if data.get("kind") == "rv32i":
        # The committed path is a pure function of the image; the cell's
        # own seed field already keys the wrong-path stream. Location and
        # display name are irrelevant to what gets simulated.
        return {"kind": "rv32i", "image_sha": data["digest"]}
    return json.loads(canonical_json(data))


def workload_from_payload(data: Dict[str, Any]) -> WorkloadLike:
    """Inverse of :func:`workload_payload` (runs in engine workers)."""
    kind = data.get("kind", "spec")
    if kind == "spec":
        return WorkloadSpec.from_dict(data.get("spec", data))
    if kind == "scenario":
        return ScenarioSpec.from_dict(data["spec"])
    if kind == "trace":
        workload = TraceWorkload(data["path"], name=data.get("name"))
        if workload.digest != data["digest"]:
            raise ValueError(
                f"trace {data['path']} changed since the cell was built "
                f"(digest mismatch)")
        return workload
    if kind == "rv32i":
        workload = Rv32iWorkload(data["path"], name=data.get("name"),
                                 seed=data.get("seed", 1))
        if workload.digest != data["digest"]:
            raise ValueError(
                f"rv32i image {data['path']} changed since the cell was "
                f"built (digest mismatch)")
        return workload
    raise ValueError(f"unknown workload payload kind {kind!r}")


# ---------------------------------------------------------------------------
# The registry


class WorkloadRegistry:
    """Name -> workload resolution over the suite, files and registrations."""

    def __init__(self,
                 search_paths: Optional[Sequence[Union[str, Path]]] = None
                 ) -> None:
        if search_paths is None:
            search_paths = [
                entry for entry in os.environ.get(
                    "REPRO_WORKLOAD_PATH", "").split(os.pathsep) if entry]
            search_paths.append("examples/scenarios")
        self.search_paths = [Path(p) for p in search_paths]
        self._registered: Dict[str, WorkloadLike] = {}

    # -- programmatic entries -------------------------------------------

    def register(self, workload: WorkloadLike,
                 name: Optional[str] = None) -> WorkloadLike:
        self._registered[name or workload.name] = workload
        return workload

    # -- resolution ------------------------------------------------------

    def resolve(self, name: Union[str, Path, WorkloadLike]) -> WorkloadLike:
        """Resolve a workload by suite name, registered name, file name on
        the search path, or explicit path. Workload objects pass through."""
        if not isinstance(name, (str, Path)):
            return name
        text = str(name)
        path = Path(text)
        if os.sep in text or path.suffix.lower() in _FILE_SUFFIXES:
            if not path.exists():
                raise KeyError(f"workload file {text!r} does not exist")
            return self._load_file(path)
        if text in SUITE:
            return SUITE[text]
        if text in self._registered:
            return self._registered[text]
        bundled = bundled_workload(text)
        if bundled is not None:
            return bundled
        for directory in self.search_paths:
            for suffix in _FILE_SUFFIXES:
                candidate = directory / f"{text}{suffix}"
                if candidate.exists():
                    return self._load_file(candidate)
        raise KeyError(
            f"unknown workload {text!r}; available: "
            f"{', '.join(sorted(self.names()))}")

    @staticmethod
    def _load_file(path: Path) -> WorkloadLike:
        suffix = path.suffix.lower()
        if suffix in _SCENARIO_SUFFIXES:
            return ScenarioSpec.from_file(path)
        if suffix == TRACE_SUFFIX:
            return TraceWorkload(path)
        if suffix in RV32I_SUFFIXES:
            return Rv32iWorkload(path)
        raise KeyError(f"unsupported workload file type {path.suffix!r}")

    # -- enumeration -----------------------------------------------------

    def names(self) -> Dict[str, str]:
        """name -> kind for everything currently addressable by bare name."""
        out: Dict[str, str] = {name: "suite" for name in SUITE}
        for name, workload in self._registered.items():
            out.setdefault(name, _kind_of(workload))
        from repro.isa.rv32i.corpus import bundled_programs
        for name in bundled_programs():
            out.setdefault(name, "rv32i")
        for directory in self.search_paths:
            if not directory.is_dir():
                continue
            for entry in sorted(directory.iterdir()):
                suffix = entry.suffix.lower()
                if suffix in _SCENARIO_SUFFIXES:
                    out.setdefault(entry.stem, "scenario")
                elif suffix == TRACE_SUFFIX:
                    out.setdefault(entry.stem, "trace")
                elif suffix in RV32I_SUFFIXES:
                    out.setdefault(entry.stem, "rv32i")
        return out

    def entries(self) -> List[tuple]:
        """``(registry name, resolved workload)`` for every addressable
        name, skipping unreadable files."""
        resolved = []
        for name in sorted(self.names()):
            try:
                resolved.append((name, self.resolve(name)))
            except (KeyError, ValueError, OSError):
                continue
        return resolved


def _kind_of(workload: WorkloadLike) -> str:
    if isinstance(workload, WorkloadSpec):
        return "suite"
    if isinstance(workload, ScenarioSpec):
        return "scenario"
    if isinstance(workload, Rv32iWorkload):
        return "rv32i"
    return "trace"


#: Default registry used by the CLI, the runner and the engine. Built
#: per call so ``REPRO_WORKLOAD_PATH`` changes (tests, notebooks) take
#: effect without process restarts; construction is cheap (no I/O).
def default_registry() -> WorkloadRegistry:
    return WorkloadRegistry()


def resolve_workload(name: Union[str, Path, WorkloadLike]) -> WorkloadLike:
    """Module-level convenience: resolve against a fresh default registry."""
    return default_registry().resolve(name)
