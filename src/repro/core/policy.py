"""Scheduling-policy interface.

The policy answers one question per issued load: *should its dependents be
woken speculatively, and with what promised latency?* (Section 4.1). It
also receives the training hooks the paper's mechanisms need: cycle-level
L1-miss observations (global counter), per-load outcomes at commit
(hit/miss filter) and criticality tags at retire (criticality predictor).

Policies are deliberately replay-scheme-agnostic, mirroring the paper's
framing: they only influence *wakeup*, never the recovery machinery.
"""

from __future__ import annotations

from repro.isa.uop import MicroOp


class LoadDecision:
    """Outcome of the per-load wakeup decision."""

    __slots__ = ("speculate", "promised_latency")

    def __init__(self, speculate: bool, promised_latency: int) -> None:
        self.speculate = speculate
        self.promised_latency = promised_latency

    def __repr__(self) -> str:  # pragma: no cover
        return (f"LoadDecision(speculate={self.speculate}, "
                f"promised={self.promised_latency})")


class SchedulingPolicy:
    """Base class; concrete policies override the decision + hooks."""

    #: False for the paper's Baseline_* configurations: loads never wake
    #: dependents early and no replays can occur.
    speculative = True

    def __init__(self, load_to_use: int) -> None:
        self.load_to_use = load_to_use

    # -- the decision -----------------------------------------------------

    def decide(self, uop: MicroOp, loads_already_this_cycle: int) -> LoadDecision:
        """Wakeup decision for a load selected this cycle.

        ``loads_already_this_cycle`` is the number of loads already granted
        a port this cycle (0 for the first of a group, 1 for the second) —
        Schedule Shifting keys off it.
        """
        raise NotImplementedError

    # -- training hooks -------------------------------------------------------

    def on_cycle(self, l1_miss_this_cycle: bool,
                 l1_access_this_cycle: bool = True) -> None:
        """End of cycle.

        ``l1_miss_this_cycle``: a load missed the L1 this cycle;
        ``l1_access_this_cycle``: any load accessed the L1 this cycle.
        The global counter only trains on access cycles (idle cycles say
        nothing about hit/miss behaviour).
        """

    def on_load_commit(self, uop: MicroOp) -> None:
        """A load retired; ``uop.l1_hit`` holds its outcome."""

    def on_load_commits(self, outcomes) -> None:
        """Batch form of :meth:`on_load_commit` for functional warming.

        ``outcomes`` is an ordered sequence of ``(pc, l1_hit)`` pairs —
        the per-load L1 probe outcomes of one warming block, in stream
        order. The vectorized warming tier trains through this hook
        (there are no µop objects on that path), so policies that
        override :meth:`on_load_commit` with per-PC state must override
        this too, preserving per-pair order. No-op by default, matching
        :meth:`on_load_commit`.
        """

    def on_uop_commit(self, uop: MicroOp) -> None:
        """Any µop retired; ``uop.was_critical`` holds the ROB-head tag."""

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self) -> dict:
        """Stateless by default; stateful policies (the composed
        mechanism stack) extend this with their predictor tables. The
        kind tag guards against restoring across configurations."""
        return {"kind": type(self).__name__}

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != type(self).__name__:
            raise ValueError(
                f"checkpoint policy kind {state.get('kind')!r} does not "
                f"match this configuration's {type(self).__name__!r}")


class AlwaysHitPolicy(SchedulingPolicy):
    """SpecSched_* default: dependents always woken assuming an L1 hit."""

    speculative = True

    def decide(self, uop: MicroOp, loads_already_this_cycle: int) -> LoadDecision:
        return LoadDecision(True, self.load_to_use)


class ConservativePolicy(SchedulingPolicy):
    """Baseline_*: dependents wait for the hit/miss outcome (Figure 3)."""

    speculative = False

    def decide(self, uop: MicroOp, loads_already_this_cycle: int) -> LoadDecision:
        return LoadDecision(False, self.load_to_use)
