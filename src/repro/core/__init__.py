"""The paper's contribution: speculative-scheduling policies.

* :mod:`repro.core.policy` — the policy interface, Always-Hit and
  conservative baselines;
* :mod:`repro.core.shifting` — Schedule Shifting (Section 5.1);
* :mod:`repro.core.global_ctr` — the Alpha-21264 4-bit global hit/miss
  counter (Section 5.2);
* :mod:`repro.core.hm_filter` — the 2K-entry per-PC hit/miss filter with
  silence bits (Section 5.2);
* :mod:`repro.core.criticality` — the ROB-head criticality predictor
  (Section 5.3);
* :mod:`repro.core.composed` — the composed policies used by the paper's
  named configurations;
* :mod:`repro.core.presets` — ``Baseline_*`` / ``SpecSched_*`` factories.
"""

from repro.core.policy import (
    AlwaysHitPolicy,
    ConservativePolicy,
    LoadDecision,
    SchedulingPolicy,
)
from repro.core.global_ctr import GlobalHitMissCounter
from repro.core.hm_filter import FilterPrediction, HitMissFilter
from repro.core.criticality import CriticalityPredictor
from repro.core.composed import ComposedPolicy, build_policy
from repro.core.presets import PRESET_NAMES, make_config, preset_names

__all__ = [
    "AlwaysHitPolicy",
    "ComposedPolicy",
    "ConservativePolicy",
    "CriticalityPredictor",
    "FilterPrediction",
    "GlobalHitMissCounter",
    "HitMissFilter",
    "LoadDecision",
    "PRESET_NAMES",
    "SchedulingPolicy",
    "build_policy",
    "make_config",
    "preset_names",
]
