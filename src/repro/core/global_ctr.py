"""The Alpha-21264 global hit/miss counter (Section 5.2, *Using a Global
Counter*).

"The most significant bit of a 4-bit counter tells if a load should
speculatively wake up its dependents or not. The counter is decremented by
two on cycles where a L1 miss takes place, and incremented by one
otherwise." L1 misses cluster in time, so a few recent misses flip the
whole scheduler to conservative mode until the miss burst passes.
"""

from __future__ import annotations


class GlobalHitMissCounter:
    """Saturating global counter; MSB gates speculative wakeup."""

    def __init__(self, bits: int = 4, dec_on_miss: int = 2,
                 inc_on_hit: int = 1) -> None:
        if bits < 2:
            raise ValueError("counter needs at least 2 bits")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.msb = 1 << (bits - 1)
        self.dec_on_miss = dec_on_miss
        self.inc_on_hit = inc_on_hit
        # Start saturated-high: speculate until misses say otherwise.
        self.value = self.max_value
        self.miss_cycles = 0
        self.hit_cycles = 0

    def predict_hit(self) -> bool:
        """True: wake dependents speculatively."""
        return bool(self.value & self.msb)

    def observe_cycle(self, l1_miss_this_cycle: bool) -> None:
        if l1_miss_this_cycle:
            self.miss_cycles += 1
            self.value = max(0, self.value - self.dec_on_miss)
        else:
            self.hit_cycles += 1
            self.value = min(self.max_value, self.value + self.inc_on_hit)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"value": self.value, "miss_cycles": self.miss_cycles,
                "hit_cycles": self.hit_cycles}

    def load_state_dict(self, state: dict) -> None:
        self.value = state["value"]
        self.miss_cycles = state["miss_cycles"]
        self.hit_cycles = state["hit_cycles"]
