"""Schedule Shifting (Section 5.1).

"Although we issue two loads in the same cycle, we speculatively wake up
dependents on the second one with a latency increased by one. In other
words, we always expect pairs of loads to conflict in the L1."

The mechanism is a one-line adjustment of the promised latency at wakeup;
its three documented drawbacks all emerge from the timing model rather
than from special cases here:

1. a non-conflicting pair still delays the second load's dependents by one
   cycle;
2. conflicts across *different* issue cycles still cause replays;
3. two same-cycle loads that both miss trigger two squash events instead
   of one (their detection cycles differ by the extra promised cycle).
"""

from __future__ import annotations


class ScheduleShifter:
    """Promised-latency adjustment for the N-th load of an issue group."""

    def __init__(self, enabled: bool, slack: int = 1) -> None:
        self.enabled = enabled
        self.slack = slack
        self.shifted = 0

    def promised_latency(self, base_latency: int,
                         loads_already_this_cycle: int) -> int:
        """Latency to promise for a load being granted a port now."""
        if self.enabled and loads_already_this_cycle >= 1:
            self.shifted += 1
            return base_latency + self.slack
        return base_latency

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"shifted": self.shifted}

    def load_state_dict(self, state: dict) -> None:
        self.shifted = state["shifted"]
