"""Named machine configurations used throughout the paper's evaluation.

``make_config("SpecSched_4_Crit")`` returns the exact machine the paper
evaluates. Grammar::

    Baseline_<D>                 conservative scheduling, delay D
    SpecSched_<D>                Always-Hit speculative scheduling
    SpecSched_<D>_Shift          + Schedule Shifting
    SpecSched_<D>_Ctr            global-counter hit/miss gating
    SpecSched_<D>_Filter         filter + global counter
    SpecSched_<D>_Combined       Shift + Filter + Ctr
    SpecSched_<D>_Crit           Combined + criticality gating

Keyword ``banked`` selects the banked L1D (bank conflicts possible, the
default for Section 5) or the ideal dual-ported L1D (``banked=False``,
Baseline_0's reference configuration and the darker bars of Figure 4a).
``load_ports`` reproduces the single-load-port bar of Figure 3.
"""

from __future__ import annotations

import re
from typing import Tuple

from repro.common.config import HitMissPolicy, SimConfig

_NAME_RE = re.compile(
    r"^(Baseline|SpecSched)_(\d+)"
    r"(?:_(Shift|Ctr|Filter|Combined|Crit))?$")

#: The named configurations of the paper's figures (delay-4 family).
PRESET_NAMES = (
    "Baseline_0", "Baseline_2", "Baseline_4", "Baseline_6",
    "SpecSched_0", "SpecSched_2", "SpecSched_4", "SpecSched_6",
    "SpecSched_4_Shift", "SpecSched_4_Ctr", "SpecSched_4_Filter",
    "SpecSched_4_Combined", "SpecSched_4_Crit",
)


def preset_names() -> Tuple[str, ...]:
    return PRESET_NAMES


def make_config(name: str, banked: bool = True, load_ports: int = 2) -> SimConfig:
    """Build a validated :class:`SimConfig` from a paper-style name."""
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(
            f"unknown configuration {name!r}; expected e.g. 'Baseline_4', "
            f"'SpecSched_4_Crit'")
    family, delay_text, variant = match.groups()
    delay = int(delay_text)

    config = SimConfig(name=name)
    config = config.with_core(issue_to_execute_delay=delay,
                              num_load_ports=load_ports)
    config = config.with_l1d(banked=banked)

    if family == "Baseline":
        if variant is not None:
            raise ValueError("Baseline_* takes no mechanism suffix")
        config = config.with_sched(speculative=False)
        return config.validate()

    sched_kwargs = dict(speculative=True,
                        hit_miss=HitMissPolicy.ALWAYS_HIT,
                        schedule_shifting=False, criticality=False)
    if variant == "Shift":
        sched_kwargs["schedule_shifting"] = True
    elif variant == "Ctr":
        sched_kwargs["hit_miss"] = HitMissPolicy.GLOBAL_CTR
    elif variant == "Filter":
        sched_kwargs["hit_miss"] = HitMissPolicy.FILTER_CTR
    elif variant == "Combined":
        sched_kwargs["hit_miss"] = HitMissPolicy.FILTER_CTR
        sched_kwargs["schedule_shifting"] = True
    elif variant == "Crit":
        sched_kwargs["hit_miss"] = HitMissPolicy.FILTER_CTR
        sched_kwargs["schedule_shifting"] = True
        sched_kwargs["criticality"] = True
    config = config.with_sched(**sched_kwargs)
    return config.validate()
