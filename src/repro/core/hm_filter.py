"""Per-instruction hit/miss filter (Section 5.2, *Per-Instruction Filter*).

A 2K-entry direct-mapped array of 2-bit saturating counters indexed by the
load PC, incremented on a hit and decremented on a miss, *plus a silence
bit*: when a counter leaves a saturated state (e.g. 0 -> 1 after a hit on
an always-missing load), the entry is silenced — the load's behaviour is
not stable per-PC, so the decision falls back to the global counter.
Silenced counters are not updated; every ``reset_interval`` committed loads
all silence bits are cleared. Total storage: 2K x 3 bits = 768 bytes, the
figure quoted in the paper.

Prediction:

* not silenced and saturated high  -> *sure hit*  (always wake dependents);
* not silenced and saturated low   -> *sure miss* (never wake dependents);
* anything else                    -> defer to the global counter.

The filter is off the critical path and trained at commit time.
"""

from __future__ import annotations

import enum


class FilterPrediction(enum.Enum):
    SURE_HIT = "sure_hit"
    SURE_MISS = "sure_miss"
    DEFER = "defer"


class HitMissFilter:
    """2-bit counters + silence bits, periodic silence reset."""

    def __init__(self, entries: int = 2048, ctr_bits: int = 2,
                 reset_interval: int = 10_000,
                 use_silence_bit: bool = True) -> None:
        """``use_silence_bit=False`` is the paper's rejected alternative
        ("regular per-entry counters", Section 5.2): the counter's MSB
        always decides hit/miss and nothing ever defers to the global
        counter — kept for the ablation benchmark."""
        if entries < 1 or ctr_bits < 1:
            raise ValueError("invalid filter geometry")
        self.entries = entries
        self.use_silence_bit = use_silence_bit
        self.ctr_max = (1 << ctr_bits) - 1
        # Initialize mid-range: a fresh entry defers to the global counter
        # until the load establishes stable behaviour.
        self._init_value = self.ctr_max // 2 + 1
        self._counters = [self._init_value] * entries
        self._silenced = [False] * entries
        self.reset_interval = reset_interval
        self._committed_loads = 0
        self.silence_resets = 0
        self.storage_bits = entries * (ctr_bits + 1)

    def _index(self, pc: int) -> int:
        return pc % self.entries

    # -- prediction ---------------------------------------------------------

    def predict(self, pc: int) -> FilterPrediction:
        idx = self._index(pc)
        ctr = self._counters[idx]
        if not self.use_silence_bit:
            # Ablation mode: MSB decides, never defer.
            return FilterPrediction.SURE_HIT if ctr > self.ctr_max // 2 \
                else FilterPrediction.SURE_MISS
        if self._silenced[idx]:
            return FilterPrediction.DEFER
        if ctr == self.ctr_max:
            return FilterPrediction.SURE_HIT
        if ctr == 0:
            return FilterPrediction.SURE_MISS
        return FilterPrediction.DEFER

    # -- training (commit time) -----------------------------------------------

    def train(self, pc: int, hit: bool) -> None:
        """Observe a committed load's outcome."""
        self._committed_loads += 1
        idx = self._index(pc)
        if not self._silenced[idx] or not self.use_silence_bit:
            old = self._counters[idx]
            new = min(old + 1, self.ctr_max) if hit else max(old - 1, 0)
            self._counters[idx] = new
            if self.use_silence_bit:
                was_saturated = old in (0, self.ctr_max)
                is_transient = new not in (0, self.ctr_max)
                if was_saturated and is_transient:
                    self._silenced[idx] = True
        if self._committed_loads % self.reset_interval == 0:
            self._reset_silence()

    def train_batch(self, outcomes) -> None:
        """Observe an ordered batch of committed-load ``(pc, hit)`` outcomes.

        State-identical to calling :meth:`train` per pair in the same
        order — the counter saturation, silence transitions and periodic
        silence resets are all order-dependent, so the batch form keeps
        the loop and only amortizes the call dispatch (the vectorized
        warming tier's filter entry point).
        """
        train = self.train
        for pc, hit in outcomes:
            train(pc, hit)

    def _reset_silence(self) -> None:
        self.silence_resets += 1
        self._silenced = [False] * self.entries

    # -- state protocol (repro.checkpoint) ----------------------------------

    def state_dict(self) -> dict:
        return {
            "counters": list(self._counters),
            "silenced": list(self._silenced),
            "committed_loads": self._committed_loads,
            "silence_resets": self.silence_resets,
        }

    def load_state_dict(self, state: dict) -> None:
        self._counters[:] = state["counters"]
        self._silenced[:] = state["silenced"]
        self._committed_loads = state["committed_loads"]
        self.silence_resets = state["silence_resets"]

    # -- introspection ------------------------------------------------------

    def silenced_fraction(self) -> float:
        return sum(self._silenced) / self.entries
