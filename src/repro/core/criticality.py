"""Criticality predictor (Section 5.3, *Criticality Estimation*).

"We mark a µop critical if it was at the head of the ROB when it completed
during previous executions. [...] We use an 8K-entry direct-mapped table
containing small signed counters (4-bit in our experiments). A counter is
incremented if a µop has been found critical during the last execution,
and decremented otherwise. The prediction is then given by the most
significant bit." Off the critical path, updated at retire time.
"""

from __future__ import annotations


class CriticalityPredictor:
    """8K x 4-bit signed counters indexed by PC."""

    def __init__(self, entries: int = 8192, ctr_bits: int = 4) -> None:
        if entries < 1 or ctr_bits < 2:
            raise ValueError("invalid criticality-table geometry")
        self.entries = entries
        self.ctr_max = (1 << (ctr_bits - 1)) - 1      # e.g. +7
        self.ctr_min = -(1 << (ctr_bits - 1))         # e.g. -8
        self._counters = [0] * entries
        self.updates = 0

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict_critical(self, pc: int) -> bool:
        """Sign bit: non-negative counters predict critical.

        Fresh entries (counter 0) predict critical — the safe direction,
        since treating a critical load as non-critical costs performance.
        """
        return self._counters[self._index(pc)] >= 0

    def train(self, pc: int, was_critical: bool) -> None:
        """Retire-time update with the ROB-head completion tag."""
        self.updates += 1
        idx = self._index(pc)
        ctr = self._counters[idx]
        if was_critical:
            self._counters[idx] = min(ctr + 1, self.ctr_max)
        else:
            self._counters[idx] = max(ctr - 1, self.ctr_min)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"counters": list(self._counters), "updates": self.updates}

    def load_state_dict(self, state: dict) -> None:
        self._counters[:] = state["counters"]
        self.updates = state["updates"]
