"""Policy composition — the decision tree of Sections 5.2 and 5.3.

:class:`ComposedPolicy` implements every SpecSched_* variant through three
orthogonal switches (mirroring :class:`repro.common.config.SchedPolicyConfig`):

* ``hit_miss``: *always_hit* | *global_ctr* | *filter_ctr*;
* ``schedule_shifting``: on/off;
* ``criticality``: on/off (requires the filter; SpecSched_4_Crit).

Decision for a load (Section 5.3): a *sure hit* from the filter always
speculates; a *sure miss* never does; otherwise, if criticality gating is
on and the load is predicted non-critical, dependents are stalled;
remaining cases follow the global counter.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import HitMissPolicy, SchedPolicyConfig
from repro.common.stats import SimStats
from repro.core.criticality import CriticalityPredictor
from repro.core.global_ctr import GlobalHitMissCounter
from repro.core.hm_filter import FilterPrediction, HitMissFilter
from repro.core.policy import (
    AlwaysHitPolicy,
    ConservativePolicy,
    LoadDecision,
    SchedulingPolicy,
)
from repro.core.shifting import ScheduleShifter
from repro.isa.uop import MicroOp


class ComposedPolicy(SchedulingPolicy):
    """Shifting + hit/miss filtering + criticality, per configuration."""

    speculative = True

    def __init__(self, sched: SchedPolicyConfig, load_to_use: int,
                 stats: Optional[SimStats] = None) -> None:
        super().__init__(load_to_use)
        sched.validate()
        self.sched = sched
        self.stats = stats if stats is not None else SimStats()
        self.shifter = ScheduleShifter(sched.schedule_shifting)
        self.global_ctr = GlobalHitMissCounter(
            sched.global_ctr_bits, sched.global_ctr_dec, sched.global_ctr_inc)
        self.hm_filter: Optional[HitMissFilter] = None
        if sched.hit_miss == HitMissPolicy.FILTER_CTR:
            self.hm_filter = HitMissFilter(
                sched.filter_entries, sched.filter_ctr_bits,
                sched.filter_reset_interval,
                use_silence_bit=sched.filter_silence_bit)
        self.crit: Optional[CriticalityPredictor] = None
        if sched.criticality:
            if self.hm_filter is None:
                raise ValueError(
                    "criticality gating requires the hit/miss filter "
                    "(the paper's SpecSched_*_Crit builds on _Combined)")
            self.crit = CriticalityPredictor(
                sched.crit_entries, sched.crit_ctr_bits)

    # -- decision ----------------------------------------------------------

    def decide(self, uop: MicroOp, loads_already_this_cycle: int) -> LoadDecision:
        speculate = self._should_speculate(uop)
        promised = self.shifter.promised_latency(
            self.load_to_use, loads_already_this_cycle) if speculate \
            else self.load_to_use
        if promised > self.load_to_use:
            self.stats.shifted_loads += 1
        return LoadDecision(speculate, promised)

    def _should_speculate(self, uop: MicroOp) -> bool:
        stats = self.stats
        if self.hm_filter is not None:
            pred = self.hm_filter.predict(uop.pc)
            if pred is FilterPrediction.SURE_HIT:
                stats.filter_sure_hit += 1
                return True
            if pred is FilterPrediction.SURE_MISS:
                stats.filter_sure_miss += 1
                return False
            stats.filter_deferred += 1
        if self.crit is not None:
            if self.crit.predict_critical(uop.pc):
                stats.crit_predicted_critical += 1
            else:
                stats.crit_predicted_noncritical += 1
                return False          # non-critical, not a sure hit: stall
        if self.sched.hit_miss == HitMissPolicy.ALWAYS_HIT:
            return True
        return self.global_ctr.predict_hit()

    # -- training hooks ---------------------------------------------------------

    def on_cycle(self, l1_miss_this_cycle: bool,
                 l1_access_this_cycle: bool = True) -> None:
        if not l1_access_this_cycle:
            return
        if self.sched.hit_miss != HitMissPolicy.ALWAYS_HIT:
            self.global_ctr.observe_cycle(l1_miss_this_cycle)

    def on_load_commit(self, uop: MicroOp) -> None:
        if self.hm_filter is not None:
            self.hm_filter.train(uop.pc, uop.l1_hit)

    def on_load_commits(self, outcomes) -> None:
        """Batch filter training (vectorized warming): ordered (pc, hit) pairs."""
        if self.hm_filter is not None:
            self.hm_filter.train_batch(outcomes)

    def on_uop_commit(self, uop: MicroOp) -> None:
        if self.crit is not None:
            self.crit.train(uop.pc, uop.was_critical)

    # -- state protocol (repro.checkpoint) --------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["shifter"] = self.shifter.state_dict()
        state["global_ctr"] = self.global_ctr.state_dict()
        state["hm_filter"] = (self.hm_filter.state_dict()
                              if self.hm_filter is not None else None)
        state["crit"] = (self.crit.state_dict()
                         if self.crit is not None else None)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.shifter.load_state_dict(state["shifter"])
        self.global_ctr.load_state_dict(state["global_ctr"])
        if self.hm_filter is not None:
            self.hm_filter.load_state_dict(state["hm_filter"])
        if self.crit is not None:
            self.crit.load_state_dict(state["crit"])


def build_policy(sched: SchedPolicyConfig, load_to_use: int,
                 stats: Optional[SimStats] = None) -> SchedulingPolicy:
    """Policy factory used by the simulator."""
    if not sched.speculative:
        return ConservativePolicy(load_to_use)
    needs_composition = (sched.hit_miss != HitMissPolicy.ALWAYS_HIT
                         or sched.schedule_shifting or sched.criticality)
    if not needs_composition:
        return AlwaysHitPolicy(load_to_use)
    return ComposedPolicy(sched, load_to_use, stats)
