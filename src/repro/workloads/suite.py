"""The 36-workload suite — our Table 2.

Each entry is a synthetic analogue of one SPEC CPU2000/2006 benchmark the
paper evaluates, parameterized to land in the same behavioural class the
paper describes or implies:

* *high L1 miss rate*: art, equake, mcf, milc, gromacs, soplex,
  libquantum, omnetpp, xalancbmk (Section 4.3);
* *high IPC / low miss*: swim, mgrid, namd, hmmer, GemsFDTD (Section 4.3);
* *bank-conflict-sensitive*: swim, crafty, gamess, gromacs, leslie3d,
  hmmer, GemsFDTD, h264ref (Section 4.3, ">5% performance lost to bank
  conflicts");
* *high IPC + high miss* (the interesting replay case): xalancbmk
  (IPC 1.98, 46% L1 miss rate).

Working-set sizing against the Table-1 hierarchy (L1 512 lines, L2 16K
lines): ``L1_FIT`` stays resident, ``NEAR_L1`` thrashes the L1 lightly,
``MIX`` produces ~40-60% L1 misses, ``L2_FIT`` misses the L1 but hits the
L2, ``HUGE`` reaches DRAM.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.spec import KernelSpec, WorkloadSpec

# Working-set sizes in cache lines.
L1_FIT = 256
NEAR_L1 = 768
MIX = 1152
L2_FIT = 8192
HUGE = 1 << 17


def _stream(w: float = 1.0, fp: bool = False, ws: int = L1_FIT,
            stride: int = 8, unroll: int = 4, serial: bool = False,
            streams: int = 1) -> KernelSpec:
    return KernelSpec("stream", w, fp, dict(
        ws_lines=ws, stride=stride, unroll=unroll, serial_acc=serial,
        streams=streams))


def _chase(w: float = 1.0, ws: int = HUGE, work: int = 2) -> KernelSpec:
    return KernelSpec("chase", w, False, dict(ws_lines=ws, work=work))


def _rand(w: float = 1.0, fp: bool = False, ws: int = L2_FIT,
          loads: int = 4, work: int = 1, indirect: bool = True) -> KernelSpec:
    # Working sets beyond the L1 get phase behaviour (miss clustering),
    # the temporal structure the global hit/miss counter exploits.
    phase_blocks = 32 if ws >= MIX else 0
    return KernelSpec("random", w, fp, dict(
        ws_lines=ws, loads=loads, work_per_load=work, indirect=indirect,
        phase_blocks=phase_blocks))


def _comp(w: float = 1.0, fp: bool = False, chains: int = 3,
          length: int = 4, mul: int = 0) -> KernelSpec:
    return KernelSpec("compute", w, fp, dict(
        chains=chains, chain_len=length, mul_every=mul))


def _bank(w: float = 1.0, fp: bool = False, streams: int = 2,
          ws: int = 128, unroll: int = 2, same: bool = True) -> KernelSpec:
    return KernelSpec("bank", w, fp, dict(
        streams=streams, ws_lines=ws, unroll=unroll, same_bank=same))


def _br(w: float = 1.0, branches: int = 2, period: int = 8,
        noise: float = 0.05, filler: int = 2) -> KernelSpec:
    return KernelSpec("branch", w, False, dict(
        branches=branches, period=period, noise=noise, filler=filler))


def _sl(w: float = 1.0, buffer_lines: int = 16, pairs: int = 2,
        alias: float = 0.7, chain: int = 2) -> KernelSpec:
    return KernelSpec("storeload", w, False, dict(
        buffer_lines=buffer_lines, pairs=pairs, alias_prob=alias,
        chain=chain))


def _wl(name: str, *kernels: KernelSpec, seed: int, fp: bool,
        desc: str) -> WorkloadSpec:
    return WorkloadSpec(name=name, kernels=tuple(kernels), seed=seed,
                        description=desc, is_fp=fp)


_ENTRIES: List[WorkloadSpec] = [
    # ---------------- CPU2000 ----------------
    _wl("gzip", _chase(2.0, ws=320, work=3), _comp(1.0, chains=2, length=4),
        _br(0.8, noise=0.03), _sl(0.5),
        seed=164, fp=False, desc="moderate INT mix, light misses"),
    _wl("wupwise", _comp(2.0, fp=True, chains=3, length=4, mul=4),
        _stream(1.0, fp=True, ws=L1_FIT, unroll=4),
        _rand(0.6, fp=True, ws=L1_FIT, loads=2),
        seed=168, fp=True, desc="FP compute + resident streams"),
    _wl("swim", _bank(2.0, fp=True, streams=2, ws=96, unroll=3),
        _stream(1.5, fp=True, ws=128, unroll=6, streams=2),
        _rand(0.8, fp=True, ws=64, loads=2),
        seed=171, fp=True, desc="high-IPC FP streams, bank-conflict heavy"),
    _wl("mgrid", _stream(2.0, fp=True, ws=192, unroll=6, streams=3),
        _comp(1.5, fp=True, chains=4, length=4),
        _bank(0.7, fp=True, streams=2, ws=64),
        _rand(0.7, fp=True, ws=64, loads=2),
        seed=172, fp=True, desc="high-IPC stencil-like streams"),
    _wl("applu", _stream(2.0, fp=True, ws=NEAR_L1, unroll=4, streams=2),
        _comp(1.5, fp=True, chains=3, length=4, mul=5),
        _rand(0.8, fp=True, ws=NEAR_L1, loads=2),
        seed=173, fp=True, desc="FP solver mix"),
    _wl("vpr", _br(2.0, branches=3, period=12, noise=0.10),
        _chase(1.5, ws=NEAR_L1, work=2), _rand(0.8, ws=NEAR_L1, loads=2),
        seed=175, fp=False, desc="hard branches, placement-like"),
    _wl("mesa", _comp(2.0, fp=True, chains=3, length=4, mul=6),
        _rand(1.0, fp=True, ws=L1_FIT, loads=2), _br(0.7, noise=0.02),
        seed=177, fp=True, desc="rendering-like FP mix"),
    _wl("art", _rand(2.5, fp=True, ws=HUGE, loads=3, work=1),
        _stream(1.0, fp=True, ws=L2_FIT, stride=64, serial=True),
        seed=179, fp=True, desc="neural-net scan: very high miss rate"),
    _wl("equake", _chase(1.5, ws=L2_FIT, work=3),
        _rand(1.0, fp=True, ws=L2_FIT, loads=2),
        _comp(0.8, fp=True, chains=2, length=3),
        seed=183, fp=True, desc="sparse-matrix-like, high miss"),
    _wl("crafty", _bank(1.5, streams=2, ws=160, unroll=2),
        _comp(1.0, chains=3, length=3), _br(1.0, noise=0.06, period=6),
        _chase(1.4, ws=320, work=2),
        seed=186, fp=False, desc="bitboard INT, banky, branchy"),
    _wl("ammp", _comp(1.5, fp=True, chains=3, length=5, mul=5),
        _rand(1.0, fp=True, ws=MIX, loads=2), _sl(0.5),
        seed=188, fp=True, desc="molecular dynamics mix"),
    _wl("parser", _br(1.2, branches=2, period=10, noise=0.07),
        _rand(0.8, ws=NEAR_L1, loads=2), _sl(0.8, alias=0.6),
        _chase(1.6, ws=320, work=2),
        seed=197, fp=False, desc="dictionary walking, branchy"),
    _wl("vortex", _comp(1.6, chains=4, length=3),
        _rand(1.2, ws=L1_FIT, loads=3), _chase(1.0, ws=320, work=3),
        _sl(0.6, alias=0.8),
        seed=255, fp=False, desc="OO-database-like, high IPC INT"),
    _wl("twolf", _br(1.6, branches=3, period=16, noise=0.12),
        _rand(1.0, ws=MIX, loads=2), _chase(1.2, ws=NEAR_L1, work=1),
        seed=300, fp=False, desc="place&route: hard branches + misses"),
    # ---------------- CPU2006 ----------------
    _wl("perlbench", _br(1.2, branches=2, period=8, noise=0.04),
        _chase(1.5, ws=320, work=2), _rand(0.8, ws=NEAR_L1, loads=2),
        _sl(0.6),
        seed=400, fp=False, desc="interpreter-like mix"),
    _wl("bzip2", _rand(1.4, ws=NEAR_L1, loads=3), _comp(1.0, chains=2, length=4),
        _br(1.0, noise=0.05, period=6), _chase(1.2, ws=320, work=2),
        seed=401, fp=False, desc="compression mix"),
    _wl("gcc", _br(1.2, branches=3, period=10, noise=0.05),
        _rand(1.2, ws=MIX, loads=2), _chase(1.2, ws=NEAR_L1, work=2),
        _sl(0.5),
        seed=403, fp=False, desc="compiler-like pointer/branch mix"),
    _wl("gamess", _comp(2.5, fp=True, chains=4, length=4, mul=6),
        _bank(1.5, fp=True, streams=2, ws=128, unroll=2),
        _rand(0.7, fp=True, ws=L1_FIT, loads=2),
        seed=416, fp=True, desc="quantum chemistry: high IPC, banky"),
    _wl("mcf", _chase(3.0, ws=HUGE, work=1), _rand(0.5, ws=HUGE, loads=2),
        seed=429, fp=False, desc="pointer chasing to DRAM: IPC ~0.1"),
    _wl("milc", _stream(2.0, fp=True, ws=HUGE, stride=64, serial=True),
        _rand(1.0, fp=True, ws=L2_FIT, loads=2),
        _comp(0.8, fp=True, chains=2, length=3),
        seed=433, fp=True, desc="lattice QCD: streaming misses"),
    _wl("gromacs", _rand(1.5, fp=True, ws=L2_FIT, loads=3),
        _bank(1.5, fp=True, streams=2, ws=160, unroll=2),
        _comp(1.0, fp=True, chains=3, length=3, mul=4),
        seed=435, fp=True, desc="MD: misses *and* bank conflicts"),
    _wl("leslie3d", _stream(2.0, fp=True, ws=256, unroll=6, streams=3),
        _bank(1.2, fp=True, streams=2, ws=96, unroll=2),
        _rand(0.8, fp=True, ws=64, loads=2),
        seed=437, fp=True, desc="CFD: high-IPC streams, banky"),
    _wl("namd", _comp(3.0, fp=True, chains=5, length=5, mul=7),
        _stream(1.0, fp=True, ws=L1_FIT, unroll=4),
        _rand(0.5, fp=True, ws=L1_FIT, loads=2),
        seed=444, fp=True, desc="MD kernels: very high IPC, low miss"),
    _wl("gobmk", _br(2.2, branches=3, period=20, noise=0.13),
        _rand(1.0, ws=NEAR_L1, loads=2), _chase(1.0, ws=NEAR_L1, work=2),
        seed=445, fp=False, desc="Go engine: very hard branches"),
    _wl("soplex", _rand(2.0, fp=True, ws=HUGE, loads=2, work=1),
        _chase(1.0, ws=L2_FIT, work=2), _comp(0.5, fp=True, chains=2, length=3),
        seed=450, fp=True, desc="LP solver: sparse misses everywhere"),
    _wl("povray", _comp(2.0, fp=True, chains=3, length=4, mul=5),
        _br(1.2, noise=0.04, period=6), _rand(0.8, fp=True, ws=L1_FIT, loads=2),
        seed=453, fp=True, desc="ray tracing: FP + branches"),
    _wl("hmmer", _comp(3.0, chains=5, length=4),
        _bank(1.5, streams=2, ws=192, unroll=3),
        _rand(0.8, ws=L1_FIT, loads=3),
        seed=456, fp=False, desc="profile HMM: very high IPC INT, banky"),
    _wl("sjeng", _br(1.5, branches=3, period=12, noise=0.08),
        _comp(1.0, chains=3, length=3), _rand(0.8, ws=NEAR_L1, loads=2),
        _chase(1.2, ws=320, work=2),
        seed=458, fp=False, desc="chess engine"),
    _wl("GemsFDTD", _stream(2.5, fp=True, ws=160, unroll=6, streams=3),
        _bank(1.2, fp=True, streams=2, ws=96, unroll=2),
        _rand(0.7, fp=True, ws=64, loads=2),
        seed=459, fp=True, desc="FDTD stencils: high IPC, banky"),
    _wl("libquantum", _stream(3.0, ws=HUGE, stride=64, serial=True, unroll=4),
        seed=462, fp=False, desc="streaming over 8MB: ~every load misses L1"),
    _wl("h264ref", _rand(1.4, ws=NEAR_L1, loads=3),
        _bank(1.2, streams=2, ws=128, unroll=2),
        _chase(0.9, ws=320, work=2), _br(0.8, noise=0.04),
        seed=464, fp=False, desc="video encoder: banky INT mix"),
    _wl("lbm", _stream(2.5, fp=True, ws=HUGE, stride=64, serial=False,
                       unroll=4, streams=2),
        _comp(1.0, fp=True, chains=3, length=3),
        seed=470, fp=True, desc="lattice Boltzmann: streaming misses"),
    _wl("omnetpp", _chase(2.0, ws=L2_FIT, work=2),
        _br(1.0, branches=2, period=14, noise=0.09),
        _chase(1.0, ws=384, work=1),
        seed=471, fp=False, desc="discrete event sim: chasing + branches"),
    _wl("astar", _rand(1.2, ws=MIX, loads=2), _br(1.0, noise=0.06, period=8),
        _comp(0.8, chains=2, length=3), _chase(1.4, ws=NEAR_L1, work=2),
        seed=473, fp=False, desc="pathfinding mix"),
    _wl("sphinx3", _rand(1.5, fp=True, ws=MIX, loads=3),
        _comp(1.2, fp=True, chains=3, length=3, mul=5),
        _br(0.8, noise=0.05),
        seed=482, fp=True, desc="speech recognition mix"),
    _wl("xalancbmk", _rand(3.0, ws=HUGE, loads=4, work=2, indirect=False),
        _comp(1.0, chains=3, length=3), _br(0.6, noise=0.03),
        _chase(0.4, ws=384, work=1),
        seed=483, fp=False, desc="XSLT: high IPC *and* ~46% L1 misses"),
]

SUITE: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _ENTRIES}

#: Diverse 12-workload subset used by the quick benchmark runs.
DEFAULT_SUBSET: Tuple[str, ...] = (
    "gzip", "swim", "crafty", "art", "mcf", "gromacs", "hmmer",
    "libquantum", "xalancbmk", "namd", "leslie3d", "omnetpp",
)


def suite_names() -> List[str]:
    return list(SUITE)


def subset_names() -> List[str]:
    return list(DEFAULT_SUBSET)


def get_workload(name: str) -> WorkloadSpec:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(SUITE)}"
        ) from None
