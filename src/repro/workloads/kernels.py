"""Parametric µop kernels.

Each kernel owns a PC region and a window of architectural registers, and
emits *blocks* (short basic-block-like µop groups, same PCs every
iteration so the per-PC predictors — hit/miss filter, criticality table,
stride prefetcher, TAGE — see stable static instructions). Kernels differ
in the properties the paper's mechanisms react to:

==================  =========================================================
StreamKernel        sequential loads, accumulation; miss rate set by stride
                    and working-set size; prefetcher-friendly
PointerChaseKernel  serially dependent loads (mcf/omnetpp-like)
RandomLoadKernel    independent loads over a working set (xalancbmk-like
                    when the set exceeds the caches: high ILP + high miss)
ComputeKernel       ALU/FP chains, no memory (namd/gamess-like)
BankConflictKernel  L1-resident streams striding one cache line so every
                    access lands in the same data bank (swim/crafty-like
                    conflict behaviour)
BranchKernel        patterned/noisy conditional branches
StoreLoadKernel     store->load pairs exercising forwarding + store sets
==================  =========================================================
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp

LINE = 64


class Kernel:
    """Base: a block generator bound to PC/register/address regions."""

    #: registers a kernel may use inside its window
    REG_WINDOW = 6

    def __init__(self, name: str, pc_base: int, reg_base: int,
                 addr_base: int, rng: random.Random,
                 fp: bool = False) -> None:
        self.name = name
        self.pc_base = pc_base
        self.reg_base = reg_base
        self.addr_base = addr_base
        self.rng = rng
        self.fp = fp
        self._iteration = 0

    # -- register / pc helpers -------------------------------------------

    def reg(self, i: int) -> int:
        """i-th register of this kernel's window (FP window if ``fp``)."""
        base = self.reg_base + (32 if self.fp else 0)
        return base + (i % self.REG_WINDOW)

    def ireg(self, i: int) -> int:
        """Integer register regardless of the kernel's FP-ness (addresses)."""
        return self.reg_base + (i % self.REG_WINDOW)

    def pc(self, i: int) -> int:
        return self.pc_base + i

    def alu_op(self) -> OpClass:
        return OpClass.FP_ADD if self.fp else OpClass.INT_ALU

    # -- block emission ----------------------------------------------------

    def next_block(self) -> List[MicroOp]:
        block = self._emit()
        self._iteration += 1
        return block

    def _emit(self) -> List[MicroOp]:
        raise NotImplementedError

    def _branch(self, pc_off: int, taken: bool) -> MicroOp:
        return MicroOp(seq=0, pc=self.pc(pc_off), opclass=OpClass.BRANCH,
                       srcs=[self.ireg(0)], dst=None, taken=taken,
                       target=self.pc_base if taken else self.pc(pc_off) + 1)

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self) -> dict:
        """Every kernel attribute is plain data except the RNG, so one
        generic capture covers all kernel kinds (cursors like
        ``_offsets``/``_idx``/``_cursor`` included)."""
        attrs = {}
        for key, value in self.__dict__.items():
            if key == "rng":
                continue
            attrs[key] = list(value) if isinstance(value, list) else value
        return {"attrs": attrs, "rng": self.rng.getstate()}

    def load_state_dict(self, state: dict) -> None:
        from repro.checkpoint.state import set_rng_state

        for key, value in state["attrs"].items():
            setattr(self, key,
                    list(value) if isinstance(value, list) else value)
        set_rng_state(self.rng, state["rng"])


class StreamKernel(Kernel):
    """Sequential loads + accumulation (swim/libquantum/lbm-like)."""

    def __init__(self, *args, stride: int = 8, ws_lines: int = 256,
                 unroll: int = 4, serial_acc: bool = False,
                 streams: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stride = stride
        self.ws_bytes = ws_lines * LINE
        self.unroll = unroll
        self.serial_acc = serial_acc
        self.streams = max(1, streams)
        self._offsets = [i * (self.ws_bytes // self.streams)
                         for i in range(self.streams)]

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        for u in range(self.unroll):
            stream = u % self.streams
            addr = self.addr_base + self._offsets[stream]
            self._offsets[stream] = (
                self._offsets[stream] + self.stride) % self.ws_bytes
            value_reg = self.reg(1 + (u % 3))
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
                srcs=[self.ireg(0)], dst=value_reg, mem_addr=addr))
            pc_off += 1
            acc = self.reg(0) if self.serial_acc else self.reg(4)
            srcs = [acc, value_reg] if self.serial_acc else [value_reg]
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                srcs=srcs, dst=acc))
            pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 64 != 63))
        return block


class PointerChaseKernel(Kernel):
    """Serially dependent loads (mcf/omnetpp-like)."""

    def __init__(self, *args, ws_lines: int = 1 << 17, work: int = 2,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ws_lines = ws_lines
        self.work = work
        self._idx = 1

    def _next_index(self) -> int:
        # Full-period LCG over the (power-of-two) line index space.
        self._idx = (self._idx * 1103515245 + 12345) % self.ws_lines
        return self._idx

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        addr = self.addr_base + self._next_index() * LINE
        ptr = self.ireg(1)
        # The load's address source is the previous load's destination —
        # a genuinely serial chain.
        block.append(MicroOp(
            seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
            srcs=[ptr], dst=ptr, mem_addr=addr))
        pc_off += 1
        prev = ptr
        for w in range(self.work):
            dst = self.reg(2 + (w % 2))
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                srcs=[prev], dst=dst))
            prev = dst
            pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 32 != 31))
        return block


class RandomLoadKernel(Kernel):
    """Random-address loads over a working set (xalancbmk/art-like).

    With ``indirect=True`` each access is the classic ``a[b[i]]`` gather:
    an index load from a small (L1-resident) table produces the register
    the data load's address comes from — a genuine two-level load chain,
    so the scheduler cannot issue the data load before the index load's
    value arrives. This is what makes conservative scheduling expensive
    (Figure 3): every level of the chain pays the full load-to-use, plus
    the issue-to-execute delay when dependents are not woken speculatively.
    """

    INDEX_LINES = 64    # index table: always L1-resident

    def __init__(self, *args, ws_lines: int = 1 << 15, loads: int = 4,
                 work_per_load: int = 1, indirect: bool = False,
                 phase_blocks: int = 0, hot_lines: int = 64,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ws_lines = ws_lines
        self.loads = loads
        self.work_per_load = work_per_load
        self.indirect = indirect
        # Phase behaviour: real programs' misses cluster in time (which is
        # the premise of the Alpha-style global counter, Section 5.2).
        # With phase_blocks > 0 the kernel alternates between a hot phase
        # (addresses from an L1-resident subset) and a cold phase (the
        # full working set).
        self.phase_blocks = phase_blocks
        self.hot_lines = min(hot_lines, ws_lines)
        self._index_cursor = 0

    def _in_hot_phase(self) -> bool:
        if not self.phase_blocks:
            return False
        return (self._iteration // self.phase_blocks) % 2 == 0

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        hot = self._in_hot_phase()
        # Cold phases are load-dominated (the gather loop is traversing
        # cold data and does little compute per element), which is what
        # produces the dense miss *cycles* the global counter keys on.
        work_per_load = self.work_per_load if (hot or not self.phase_blocks) \
            else 0
        for i in range(self.loads):
            line = self.rng.randrange(self.hot_lines if hot
                                      else self.ws_lines)
            offset = self.rng.randrange(LINE // 8) * 8
            addr = self.addr_base + line * LINE + offset
            value_reg = self.reg(1 + (i % 3))
            addr_reg = self.ireg(0)
            if self.indirect:
                # Index load: small strided table, L1-resident, feeds the
                # data load's address register.
                self._index_cursor = (self._index_cursor + 8) % (
                    self.INDEX_LINES * LINE)
                idx_reg = self.ireg(5)
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
                    srcs=[self.ireg(0)], dst=idx_reg,
                    mem_addr=self.addr_base + self._index_cursor))
                pc_off += 1
                addr_reg = idx_reg
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
                srcs=[addr_reg], dst=value_reg, mem_addr=addr))
            pc_off += 1
            for w in range(work_per_load):
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                    srcs=[value_reg], dst=self.reg(4 + (w % 2))))
                pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 16 != 15))
        return block


class ComputeKernel(Kernel):
    """Dependency chains with tunable ILP, no memory (namd/gamess-like)."""

    def __init__(self, *args, chains: int = 3, chain_len: int = 4,
                 mul_every: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.chains = min(chains, self.REG_WINDOW - 1)
        self.chain_len = chain_len
        self.mul_every = mul_every

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        for step in range(self.chain_len):
            for chain in range(self.chains):
                reg = self.reg(1 + chain)
                opclass = self.alu_op()
                if self.mul_every and (step * self.chains + chain) \
                        % self.mul_every == self.mul_every - 1:
                    opclass = OpClass.FP_MUL if self.fp else OpClass.INT_MUL
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=opclass,
                    srcs=[reg], dst=reg))
                pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 64 != 63))
        return block


class BankConflictKernel(Kernel):
    """L1-resident *pairs* of same-bank, different-set loads.

    Each pair reads two different cache lines whose quadword offset — the
    bank index bits [5:3] — is identical, so when the dual-load issue
    capacity sends both to the L1 in the same cycle they serialize
    (Section 4.2). The bank rotates every pair, so no single bank
    saturates: conflicts are the transient, one-cycle-delay kind that
    Schedule Shifting is designed to absorb (Section 5.1). The working
    set stays L1-resident — these are *hits* that replay.
    """

    def __init__(self, *args, streams: int = 2, ws_lines: int = 128,
                 unroll: int = 2, same_bank: bool = True, filler: int = 2,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.streams = max(2, streams)
        self.ws_lines = ws_lines
        self.unroll = unroll            # pairs per block
        self.same_bank = same_bank
        self.filler = filler            # ALU µops between pairs
        self._line = [i * (ws_lines // self.streams)
                      for i in range(self.streams)]

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        for u in range(self.unroll):
            bank = (self._iteration * self.unroll + u) % 8
            for side in range(2):
                stream = side % self.streams
                line = self._line[stream] % self.ws_lines
                self._line[stream] += 1
                offset = (bank if self.same_bank else (bank + side) % 8) * 8
                addr = self.addr_base + line * LINE + offset
                value_reg = self.reg(1 + ((2 * u + side) % 3))
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
                    srcs=[self.ireg(0)], dst=value_reg, mem_addr=addr))
                pc_off += 1
            for f in range(self.filler):
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                    srcs=[self.reg(1 + f % 3)], dst=self.reg(4)))
                pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 64 != 63))
        return block


class BranchKernel(Kernel):
    """Conditional branches with a periodic pattern + noise.

    ``noise`` is the probability a branch outcome deviates from its
    period-``period`` pattern — TAGE learns the pattern, so the achieved
    misprediction rate tracks the noise (gobmk/vpr-like at high noise).
    """

    def __init__(self, *args, branches: int = 2, period: int = 8,
                 noise: float = 0.05, filler: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.branches = branches
        self.period = max(2, period)
        self.noise = noise
        self.filler = filler

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        for b in range(self.branches):
            for f in range(self.filler):
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                    srcs=[self.reg(1 + f % 2)], dst=self.reg(1 + f % 2)))
                pc_off += 1
            pattern = (self._iteration + b) % self.period != 0
            taken = pattern ^ (self.rng.random() < self.noise)
            uop = MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=OpClass.BRANCH,
                srcs=[self.reg(1)], dst=None, taken=taken,
                target=self.pc_base if taken else self.pc(pc_off) + 1)
            block.append(uop)
            pc_off += 1
        return block


class StoreLoadKernel(Kernel):
    """Store->load pairs: forwarding, store sets, occasional violations.

    Stores write a small buffer; loads read it back shortly after. The
    store's data comes off a short dependency chain so it executes late;
    an aggressively issued load initially reads stale data, triggering a
    memory-order violation that trains the store-sets predictor.
    """

    def __init__(self, *args, buffer_lines: int = 16, pairs: int = 2,
                 alias_prob: float = 0.7, chain: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.buffer_bytes = buffer_lines * LINE
        self.pairs = pairs
        self.alias_prob = alias_prob
        self.chain = chain
        self._cursor = 0

    def _emit(self) -> List[MicroOp]:
        block: List[MicroOp] = []
        pc_off = 0
        for p in range(self.pairs):
            self._cursor = (self._cursor + 8) % self.buffer_bytes
            store_addr = self.addr_base + self._cursor
            data_reg = self.reg(1)
            for c in range(self.chain):
                block.append(MicroOp(
                    seq=0, pc=self.pc(pc_off), opclass=self.alu_op(),
                    srcs=[data_reg], dst=data_reg))
                pc_off += 1
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=OpClass.STORE,
                srcs=[self.ireg(0), data_reg], dst=None,
                mem_addr=store_addr))
            pc_off += 1
            if self.rng.random() < self.alias_prob:
                load_addr = store_addr
            else:
                load_addr = (self.addr_base
                             + self.rng.randrange(self.buffer_bytes // 8) * 8)
            block.append(MicroOp(
                seq=0, pc=self.pc(pc_off), opclass=OpClass.LOAD,
                srcs=[self.ireg(0)], dst=self.reg(3), mem_addr=load_addr))
            pc_off += 1
        block.append(self._branch(pc_off, taken=self._iteration % 32 != 31))
        return block
