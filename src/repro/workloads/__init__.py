"""Synthetic workloads standing in for the SPEC CPU2000/2006 slices.

Trace-driven simulation of the paper's scheduler mechanisms needs µop
streams with controllable dependence structure, load miss rate, bank
behaviour and branch predictability — see DESIGN.md §2 for why parametric
kernels preserve the phenomena the paper measures.
"""

from repro.workloads.kernels import (
    BankConflictKernel,
    BranchKernel,
    ComputeKernel,
    Kernel,
    PointerChaseKernel,
    RandomLoadKernel,
    StoreLoadKernel,
    StreamKernel,
)
from repro.workloads.spec import WorkloadSpec, WorkloadTrace
from repro.workloads.suite import (
    DEFAULT_SUBSET,
    SUITE,
    get_workload,
    subset_names,
    suite_names,
)

__all__ = [
    "BankConflictKernel",
    "BranchKernel",
    "ComputeKernel",
    "DEFAULT_SUBSET",
    "Kernel",
    "PointerChaseKernel",
    "RandomLoadKernel",
    "StoreLoadKernel",
    "StreamKernel",
    "SUITE",
    "WorkloadSpec",
    "WorkloadTrace",
    "get_workload",
    "subset_names",
    "suite_names",
]
