"""Workload specification and the trace source built from it.

A :class:`WorkloadSpec` is a declarative mix of kernels (with weights and
parameters); :meth:`WorkloadSpec.build_trace` instantiates the kernels with
disjoint PC regions, register windows and address regions and returns a
:class:`WorkloadTrace` the fetch stage can consume. Everything is seeded
and deterministic: the same spec + seed yields the same µop stream.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.common.serialize import dataclass_from_dict, stable_hash

from repro.isa.trace import TraceSource, WrongPathSynth
from repro.isa.uop import MicroOp
from repro.workloads.kernels import (
    BankConflictKernel,
    BranchKernel,
    ComputeKernel,
    Kernel,
    PointerChaseKernel,
    RandomLoadKernel,
    StoreLoadKernel,
    StreamKernel,
)

#: kind name -> kernel class
KERNEL_KINDS = {
    "stream": StreamKernel,
    "chase": PointerChaseKernel,
    "random": RandomLoadKernel,
    "compute": ComputeKernel,
    "bank": BankConflictKernel,
    "branch": BranchKernel,
    "storeload": StoreLoadKernel,
}

#: Architectural registers 0/1 are reserved for wrong-path filler µops.
_FIRST_KERNEL_REG = 2
_MAX_KERNELS = 4
_PC_REGION = 4096
_ADDR_REGION = 1 << 26      # 64 MB per kernel: address spaces never overlap


@dataclass(frozen=True)
class KernelSpec:
    """One kernel in a workload mix."""

    kind: str
    weight: float = 1.0
    fp: bool = False
    params: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in KERNEL_KINDS:
            raise ValueError(f"unknown kernel kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError("kernel weight must be positive")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelSpec":
        return dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named synthetic benchmark (one Table-2 row analogue)."""

    name: str
    kernels: tuple
    seed: int = 1
    description: str = ""
    is_fp: bool = False        # Table 2's INT/FP tag

    def validate(self) -> None:
        if not self.kernels:
            raise ValueError(f"workload {self.name!r} has no kernels")
        if len(self.kernels) > _MAX_KERNELS:
            raise ValueError(
                f"workload {self.name!r}: at most {_MAX_KERNELS} kernels "
                f"(register windows)")
        for kspec in self.kernels:
            kspec.validate()

    def build_trace(self, seed: Optional[int] = None) -> "WorkloadTrace":
        self.validate()
        return WorkloadTrace(self, self.seed if seed is None else seed)

    def to_dict(self) -> Dict[str, object]:
        """Lossless plain-dict encoding; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        data = dict(data)
        data["kernels"] = tuple(
            KernelSpec.from_dict(k) for k in data["kernels"])
        return cls(**data)

    def content_hash(self) -> str:
        """Stable hex digest over the full spec (kernels, weights, seed)."""
        return stable_hash(self.to_dict())


class WorkloadTrace(TraceSource):
    """Weighted block interleaving of a spec's kernels."""

    def __init__(self, spec: WorkloadSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self._wp_synth = WrongPathSynth(seed)
        self.kernels: List[Kernel] = []
        self.weights: List[float] = []
        for i, kspec in enumerate(spec.kernels):
            cls = KERNEL_KINDS[kspec.kind]
            kernel = cls(
                f"{spec.name}/{kspec.kind}{i}",
                pc_base=(i + 1) * _PC_REGION,
                reg_base=_FIRST_KERNEL_REG + i * Kernel.REG_WINDOW,
                addr_base=(i + 1) * _ADDR_REGION,
                rng=random.Random(seed * 7919 + i),
                fp=kspec.fp,
                **kspec.params,
            )
            self.kernels.append(kernel)
            self.weights.append(kspec.weight)
        self._buffer: Deque[MicroOp] = deque()
        self.emitted = 0

    # -- TraceSource -------------------------------------------------------

    def next_uop(self) -> Optional[MicroOp]:
        if not self._buffer:
            kernel = self.rng.choices(self.kernels, weights=self.weights)[0]
            self._buffer.extend(kernel.next_block())
        uop = self._buffer.popleft()
        self.emitted += 1
        return uop

    def next_block(self, max_uops: int) -> List[MicroOp]:
        """Bulk :meth:`next_uop`: drain whole kernel blocks per refill.

        Identical stream and RNG consumption (one weighted draw per
        buffer refill), so cursor/checkpoint state after a block matches
        per-µop iteration exactly.
        """
        out: List[MicroOp] = []
        append = out.append
        buffer = self._buffer
        while len(out) < max_uops:
            if not buffer:
                kernel = self.rng.choices(self.kernels, weights=self.weights)[0]
                buffer.extend(kernel.next_block())
            for _ in range(min(max_uops - len(out), len(buffer))):
                append(buffer.popleft())
        self.emitted += len(out)
        return out

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        """ALU-only wrong-path filler over the reserved registers."""
        return self._wp_synth.synth(seq, pc)

    def skip_wrong_path(self, count: int) -> None:
        self._wp_synth.skip(count)

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self) -> dict:
        from repro.checkpoint.state import encode_arch_uop

        return {
            "rng": self.rng.getstate(),
            "wp_synth": self._wp_synth.state_dict(),
            "kernels": [kernel.state_dict() for kernel in self.kernels],
            "buffer": [encode_arch_uop(uop) for uop in self._buffer],
            "emitted": self.emitted,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.checkpoint.state import decode_arch_uop, set_rng_state

        set_rng_state(self.rng, state["rng"])
        self._wp_synth.load_state_dict(state["wp_synth"])
        for kernel, kernel_state in zip(self.kernels, state["kernels"]):
            kernel.load_state_dict(kernel_state)
        self._buffer = deque(decode_arch_uop(row) for row in state["buffer"])
        self.emitted = state["emitted"]
