"""Functional-warming tier selection: scalar reference vs vectorized kernels.

Functional warming (:mod:`repro.pipeline.functional`) is the wall-time
bound of SMARTS-style sampling, so it ships in two tiers:

* ``scalar`` — the per-µop reference loop
  (:func:`repro.pipeline.functional.functional_stream`). Always
  available; its semantics define what warming *means*.
* ``vectorized`` — the batched engine
  (:func:`repro.pipeline.warming.engine.warm_stream_vectorized`): the
  stream is consumed in fixed-size blocks, address/classification math
  runs through numpy array kernels, and state updates apply through the
  components' batch entry points. Requires numpy; produces **byte
  identical** component state (and therefore checkpoint digests) to the
  scalar tier.
* ``auto`` — ``vectorized`` when numpy imports, else ``scalar``. This is
  the default everywhere; it is safe precisely because the two tiers are
  bit-identical.

The process-wide default is ``auto``, overridable per call (the ``mode``
argument threaded through :meth:`Simulator.fast_forward` and the sampling
drivers), per process (:func:`set_default_mode`, used by
``repro run --warming``), or per environment (``REPRO_WARMING`` — also how
engine pool workers inherit the CLI's choice).
"""

from __future__ import annotations

import os
from typing import Optional

#: Accepted warming-mode names (``auto`` resolves per :func:`resolve_mode`).
WARMING_MODES = ("auto", "scalar", "vectorized")

_forced: Optional[str] = None
_numpy_available: Optional[bool] = None


def numpy_available() -> bool:
    """Return True when numpy imports — what ``auto`` resolves on."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401

            _numpy_available = True
        except ImportError:
            _numpy_available = False
    return _numpy_available


def _check_mode(mode: str) -> None:
    if mode not in WARMING_MODES:
        raise ValueError(
            f"unknown warming mode {mode!r}; expected one of " f"{', '.join(WARMING_MODES)}"
        )


def default_mode() -> str:
    """Return the process default: forced mode, else ``$REPRO_WARMING``, else auto."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_WARMING") or "auto"


def set_default_mode(mode: Optional[str]) -> None:
    """Force the process-wide warming mode (``None`` restores the default).

    ``repro run --warming`` goes through here; the environment variable
    ``REPRO_WARMING`` is the cross-process (engine pool worker) channel.
    """
    global _forced
    if mode is not None:
        _check_mode(mode)
    _forced = mode


def resolve_mode(mode: Optional[str] = None) -> str:
    """Resolve ``mode`` (or the process default) to scalar/vectorized.

    Raises ``ValueError`` for unknown modes and for an *explicit*
    ``vectorized`` request when numpy is unavailable; ``auto`` degrades
    to ``scalar`` silently.
    """
    if mode is None:
        mode = default_mode()
    _check_mode(mode)
    if mode == "auto":
        return "vectorized" if numpy_available() else "scalar"
    if mode == "vectorized" and not numpy_available():
        raise ValueError(
            "warming mode 'vectorized' requires numpy " "(use 'scalar' or 'auto' without it)"
        )
    return mode


def warm_stream(
    sim,
    trace,
    uops: int,
    train_policy: bool = False,
    mode: Optional[str] = None,
    block_uops: Optional[int] = None,
) -> int:
    """Functionally stream ``uops`` µops through the selected warming tier.

    Dispatch point shared by :meth:`Simulator.functional_warmup` and
    :meth:`Simulator.fast_forward`; returns the count actually consumed
    (short when the trace exhausts). ``block_uops`` sizes the vectorized
    tier's blocks (tests exercise non-frame-aligned boundaries with it);
    the scalar tier ignores it.
    """
    resolved = resolve_mode(mode)
    if resolved == "scalar":
        from repro.pipeline.functional import functional_stream

        return functional_stream(sim, trace, uops, train_policy=train_policy)
    from repro.pipeline.warming.engine import warm_stream_vectorized

    if block_uops is None:
        return warm_stream_vectorized(sim, trace, uops, train_policy=train_policy)
    return warm_stream_vectorized(
        sim, trace, uops, train_policy=train_policy, block_uops=block_uops
    )
