"""The vectorized functional-warming engine.

Blocks of the µop stream are classified and address-decomposed with
numpy kernels (:mod:`repro.pipeline.warming.blocks`), then applied to
the machine through the components' batch entry points:

* :meth:`SetAssocCache.warm_block` — L1 touch-or-fill with LRU stamps;
* :meth:`MemoryHierarchy.warm_l2_block` — L2 touch / prefetcher-train /
  timeless fill;
* :meth:`SchedulingPolicy.on_load_commits` — hit/miss-filter training on
  the ordered per-load L1 probe outcomes;
* :meth:`BranchUnit.resolve_block` — predict+resolve in stream order;
  the TAGE history folds (the hash math that dominates prediction cost)
  are precomputed for the whole block by :func:`tage_fold_indices`, so
  only the state-dependent table walk stays scalar per element.

**Bit-identity contract.** Functional warming touches four state islands
— L1, L2+prefetcher, the policy filter, and the branch predictors — and
no warming update of one island reads another (the scalar loop in
:mod:`repro.pipeline.functional` is the proof text: each arm is
self-contained). Within one island the batch entry points apply updates
in exact stream order. Reordering *across* islands is therefore free,
and the final ``state_dict()`` — and every checkpoint digest — is byte
identical to the scalar tier's. ``tests/warming`` holds this contract;
extend a batch kernel only with updates that keep per-island stream
order.
"""

from __future__ import annotations

import numpy as np

from repro.isa.trace import TraceSource
from repro.pipeline.functional import functional_stream
from repro.pipeline.warming.blocks import (
    DEFAULT_BLOCK_UOPS,
    IS_BRANCH,
    IS_CALL_OR_RET,
    IS_LOAD,
    IS_MEM,
    UopBlock,
)


def tage_fold_indices(tage, pcs: np.ndarray, takens: np.ndarray):
    """Per-branch TAGE table indices and partial tags, folded in bulk.

    ``pcs``/``takens`` are one block's *conditional* branches in stream
    order. In functional warming the predictor's global history after
    each resolved branch is normally the actual outcome (a correct
    prediction pushes it directly; a misprediction is repaired to it
    before the next branch), so every branch's history is a prefix of
    ``takens`` appended to the current history — known for the whole
    block up front. The one exception — a BTB-demoted taken prediction
    resolving not-taken keeps the *direction* in history — is caught at
    run time by :meth:`BranchUnit.resolve_block`, which abandons the
    remaining precomputed rows for that block. The chunked-XOR history folds of
    :meth:`repro.frontend.tage.TageLite._recompute_folds` are then
    sliding-window XOR sums over that outcome sequence, computed here
    for all branches and tables with numpy and consumed one row at a
    time by :meth:`TageLite.warm_predict`. Returns ``(idx_rows,
    tag_rows)``: per-branch lists of per-table values, bit-identical to
    the scalar hash math.
    """
    cfg = tage.config
    n = len(pcs)
    depth = cfg.max_history  # longest table history length
    index_bits = tage._index_bits
    tag_bits = cfg.tag_bits
    history = tage._history
    seq = np.empty(depth + n, dtype=np.uint64)
    for j in range(depth):  # oldest history bit first
        seq[j] = (history >> (depth - 1 - j)) & 1
    seq[depth:] = takens

    def window_sums(width: int) -> np.ndarray:
        # sums[j] = Σ_p seq[j-p] << p (out-of-range bits are zero): the
        # width-bit value ending at sequence position j, newest at LSB.
        padded = np.concatenate([np.zeros(width - 1, dtype=np.uint64), seq])
        windows = np.lib.stride_tricks.sliding_window_view(padded, width)
        weights = 1 << np.arange(width - 1, -1, -1, dtype=np.uint64)
        return (windows * weights).sum(axis=1, dtype=np.uint64)

    idx_sums = window_sums(index_bits)
    tag_sums = window_sums(tag_bits)
    pc_idx = (pcs >> np.uint64(2)) ^ (pcs >> np.uint64(index_bits + 2))
    pc_tag = ((pcs >> np.uint64(2)) ^ ((pcs * np.uint64(0x9E3779B1)) >> np.uint64(13)))
    index_mask = np.uint64(tage._index_mask)
    tag_mask = np.uint64(tage._tag_mask)

    def folds(sums: np.ndarray, width: int, length: int) -> np.ndarray:
        # XOR of the table's history chunks for every branch at once:
        # chunk c of branch i ends at sequence position depth-1-c*w+i.
        fold = np.zeros(n, dtype=np.uint64)
        chunk = 0
        while chunk * width < length:
            bits = min(width, length - chunk * width)
            start = depth - 1 - chunk * width
            fold ^= sums[start:start + n] & np.uint64((1 << bits) - 1)
            chunk += 1
        return fold

    idx_cols = [
        (folds(idx_sums, index_bits, length) ^ pc_idx ^ np.uint64(t)) & index_mask
        for t, length in enumerate(tage.history_lengths)
    ]
    tag_cols = [
        (folds(tag_sums, tag_bits, length) ^ pc_tag) & tag_mask for length in tage.history_lengths
    ]
    return (np.stack(idx_cols, axis=1).tolist(), np.stack(tag_cols, axis=1).tolist())


def warm_stream_vectorized(
    sim,
    trace: TraceSource,
    uops: int,
    train_policy: bool = False,
    block_uops: int = DEFAULT_BLOCK_UOPS,
    force_arrays: bool = False,
) -> int:
    """Vectorized twin of :func:`repro.pipeline.functional.functional_stream`.

    Consumes up to ``uops`` correct-path µops from ``trace`` in blocks of
    ``block_uops``, returning the count actually consumed (short when the
    trace exhausts). State effects are byte-identical to the scalar
    reference (see the module docstring's bit-identity contract).

    The numpy kernels pay off on recorded traces' zero-decode record
    blocks (:meth:`FileTrace.next_record_block`); generator-backed
    sources materialize every µop regardless, so converting them to
    arrays costs more than it saves — those streams are delegated to the
    scalar reference wholesale. ``force_arrays`` pushes decoded batches
    through :meth:`UopBlock.from_uops` and the numpy kernels anyway —
    the equivalence suite uses it to exercise the kernels on arbitrary
    streams.
    """
    if uops <= 0:
        return 0
    hierarchy = sim.hierarchy
    l1d = hierarchy.l1d
    l2 = hierarchy.l2
    l1_offset = l1d._offset_bits
    l1_mask = l1d._index_mask
    l1_set_bits = l1d._set_bits
    l2_offset = l2._offset_bits
    l2_mask = l2._index_mask
    l2_set_bits = l2._set_bits
    branch_unit = sim.branch_unit
    policy = sim.policy if train_policy else None
    next_records = getattr(trace, "next_record_block", None)
    if next_records is None and not force_arrays:
        return functional_stream(sim, trace, uops, train_policy)
    consumed = 0
    while consumed < uops:
        want = min(block_uops, uops - consumed)
        block = None
        if next_records is not None:
            records = next_records(want)
            if records is not None:
                block = UopBlock.from_records(records)
        if block is None:
            batch = trace.next_block(want)
            if not batch:
                return consumed
            block = UopBlock.from_uops(batch)
        opclass = block.opclass
        mem = np.flatnonzero(IS_MEM[opclass])
        if mem.size:
            addr = block.addr[mem]
            pcs = block.pc[mem].tolist()
            l1_line = addr >> l1_offset
            l1_sets = (l1_line & l1_mask).tolist()
            l1_tags = (l1_line >> l1_set_bits).tolist()
            l2_line = addr >> l2_offset
            l2_sets = (l2_line & l2_mask).tolist()
            l2_tags = (l2_line >> l2_set_bits).tolist()
            if policy is not None:
                # The probe outcome each load would have committed,
                # captured before its own install — the scalar loop's
                # train-before-fill ordering, batched per island.
                hits = l1d.warm_block(l1_sets, l1_tags, record_hits=True)
                loads = IS_LOAD[opclass[mem]].tolist()
                outcomes = [(pc, hit) for pc, hit, is_load in zip(pcs, hits, loads) if is_load]
                if outcomes:
                    policy.on_load_commits(outcomes)
            else:
                l1d.warm_block(l1_sets, l1_tags)
            hierarchy.warm_l2_block(pcs, addr.tolist(), l2_sets, l2_tags)
        branches = np.flatnonzero(IS_BRANCH[opclass])
        if branches.size:
            branch_pc = block.pc[branches]
            branch_op = block.opclass[branches]
            branch_taken = block.taken[branches]
            cond = ~IS_CALL_OR_RET[branch_op]
            branch_unit.resolve_block(
                branch_pc.tolist(),
                branch_op.tolist(),
                block.target[branches].tolist(),
                branch_taken.tolist(),
                cond_indices=tage_fold_indices(
                    branch_unit.tage, branch_pc[cond], branch_taken[cond]
                ),
            )
        consumed += block.size
    return consumed
