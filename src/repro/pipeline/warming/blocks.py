"""Array-block representation of the correct-path µop stream.

The vectorized warming tier consumes the stream as :class:`UopBlock`
slices: parallel numpy arrays carrying exactly the architectural fields
functional warming reads (pc, memory address, branch target, opclass,
branch outcome). Two constructors cover the two supply shapes:

* :meth:`UopBlock.from_uops` — built from decoded :class:`MicroOp`
  objects (any :meth:`TraceSource.next_block` batch);
* :meth:`UopBlock.from_records` — a zero-decode view over a recorded
  trace's raw records (:meth:`repro.traces.format.FileTrace.
  next_record_block`), the fast path: no ``MicroOp`` is ever built.

The kind lookup tables (:data:`IS_MEM` etc.) are opclass-value-indexed
boolean arrays, the vectorized twin of ``MicroOp``'s precomputed
``is_mem``/``is_load``/``is_branch`` flags.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.isa.opclass import BRANCH_OPS, MEMORY_OPS, OpClass

#: µops per engine block. Matches the trace format's frame size
#: (``DEFAULT_FRAME_RECORDS``) so replaying a recorded trace usually
#: serves whole frames without re-slicing.
DEFAULT_BLOCK_UOPS = 4096

#: OpClass-value-indexed kind masks: ``IS_MEM[opclass_array]`` classifies
#: a whole block in one gather.
IS_MEM = np.array([op in MEMORY_OPS for op in OpClass], dtype=bool)
IS_LOAD = np.array([op == OpClass.LOAD for op in OpClass], dtype=bool)
IS_BRANCH = np.array([op in BRANCH_OPS for op in OpClass], dtype=bool)
IS_CALL_OR_RET = np.array([op in (OpClass.CALL, OpClass.RET) for op in OpClass], dtype=bool)


class UopBlock:
    """One fixed-size slice of the µop stream as parallel arrays."""

    __slots__ = ("size", "pc", "addr", "target", "opclass", "taken")

    def __init__(self, pc, addr, target, opclass, taken) -> None:
        """Wrap the five field arrays (equal length; no copies taken)."""
        self.size = len(pc)
        self.pc = pc
        self.addr = addr
        self.target = target
        self.opclass = opclass
        self.taken = taken

    @classmethod
    def from_uops(cls, uops: Sequence) -> "UopBlock":
        """Build a block from decoded µops (architectural fields only)."""
        count = len(uops)
        return cls(
            pc=np.fromiter((u.pc for u in uops), dtype=np.uint64, count=count),
            addr=np.fromiter((u.mem_addr for u in uops), dtype=np.uint64, count=count),
            target=np.fromiter((u.target for u in uops), dtype=np.uint64, count=count),
            opclass=np.fromiter((u.opclass for u in uops), dtype=np.uint8, count=count),
            taken=np.fromiter((u.taken for u in uops), dtype=bool, count=count),
        )

    @classmethod
    def from_records(cls, records: np.ndarray) -> "UopBlock":
        """Wrap a structured record array (``repro.traces.format.record_dtype``).

        Field views alias the record buffer — nothing is decoded or
        copied until the engine gathers the indices it actually needs.
        """
        return cls(
            pc=records["pc"],
            addr=records["mem_addr"],
            target=records["target"],
            opclass=records["opclass"],
            taken=(records["flags"] & 1) != 0,
        )
