"""Machine-level checkpoint assembly: the component codec registration.

The PR-4 state protocol gives every component a
``state_dict``/``load_state_dict`` pair; this module owns the machine's
registration table — which components are serialized, under which key,
in which order, and whether they take the identity-preserving µop codec
(:mod:`repro.checkpoint.state`). :class:`~repro.pipeline.cpu.Simulator`
delegates its own ``state_dict``/``load_state_dict`` here.

Invariants (normative list in ``docs/ARCHITECTURE.md``):

* registration order is payload order — reordering the table changes
  checkpoint bytes (and therefore digests in sampled-cell cache keys);
* the µop table is encoded *last*, after every component has had the
  chance to register in-flight µops;
* inter-stage latches and wires are serialized by the driver alongside
  the components; stage objects contribute a ``stages`` table only when
  they own state (default stages own none, keeping the payload layout
  identical to the pre-decomposition format — ``STATE_VERSION`` 1).
"""

from __future__ import annotations

from typing import Dict

from repro.checkpoint.state import UOP_SLOTS, UopCodec, UopDecoder

#: (state-dict key, simulator attribute, component takes the µop codec).
#: Append new components at the end; never reorder (see module docstring).
COMPONENT_REGISTRY = (
    ("stats", "stats", False),
    ("trace", "trace", False),
    ("fetch", "fetch", True),
    ("branch_unit", "branch_unit", False),
    ("renamer", "renamer", False),
    ("scoreboard", "scoreboard", True),
    ("rob", "rob", True),
    ("iq", "iq", True),
    ("lsq", "lsq", True),
    ("fus", "fus", False),
    ("recovery", "recovery", True),
    ("replay", "replay", True),
    ("store_sets", "store_sets", True),
    ("policy", "policy", False),
    ("hierarchy", "hierarchy", False),
)


def machine_state_dict(sim) -> Dict:
    """Serialize ``sim``'s complete machine state as plain data."""
    ctx = UopCodec()
    state = {
        "version": sim.STATE_VERSION,
        "now": sim.now,
        "issue_block_cycle": sim.issue_block.state_dict(),
        "last_commit_cycle": sim.last_commit.state_dict(),
        "l1_miss_this_cycle": sim.l1_miss.state_dict(),
        "l1_access_this_cycle": sim.l1_access.state_dict(),
        "exec_queue": sim.exec_latch.state_dict(ctx),
        "completion_queue": sim.completion_latch.state_dict(ctx),
    }
    for key, attr, takes_ctx in COMPONENT_REGISTRY:
        component = getattr(sim, attr)
        state[key] = (component.state_dict(ctx) if takes_ctx else component.state_dict())
    stage_states = {stage.name: blob for stage in sim.stages if (blob := stage.state_dict(ctx))}
    if stage_states:
        state["stages"] = stage_states
    # Encode the µop table last: serializing components (and then the
    # table itself, via store_dep chains) may register further µops.
    state["uops"] = ctx.table()
    state["uop_slots"] = list(UOP_SLOTS)
    return state


def load_machine_state_dict(sim, state: Dict) -> None:
    """Restore a :func:`machine_state_dict` snapshot into ``sim``."""
    if state.get("version") != sim.STATE_VERSION:
        raise ValueError(
            f"checkpoint state version {state.get('version')} "
            f"(this build reads {sim.STATE_VERSION})"
        )
    # Validate before mutating anything: a half-restored simulator that
    # survives a caught exception would silently produce wrong results.
    stage_states = dict(state.get("stages", ()))
    unknown = set(stage_states) - {stage.name for stage in sim.stages}
    if unknown:
        raise ValueError(
            f"checkpoint carries state for unknown stage(s): " f"{', '.join(sorted(unknown))}"
        )
    ctx = UopDecoder(state["uops"], state.get("uop_slots"))
    sim.now = state["now"]
    sim.issue_block.load_state_dict(state["issue_block_cycle"])
    sim.last_commit.load_state_dict(state["last_commit_cycle"])
    sim.l1_miss.load_state_dict(state["l1_miss_this_cycle"])
    sim.l1_access.load_state_dict(state["l1_access_this_cycle"])
    sim.exec_latch.load_state_dict(state["exec_queue"], ctx)
    sim.completion_latch.load_state_dict(state["completion_queue"], ctx)
    for key, attr, takes_ctx in COMPONENT_REGISTRY:
        component = getattr(sim, attr)
        if takes_ctx:
            component.load_state_dict(state[key], ctx)
        else:
            component.load_state_dict(state[key])
    # Every stage is restored, with {} standing in when the snapshot
    # stored nothing for it (empty blobs are elided at save time to keep
    # the default payload layout byte-identical): a stage's
    # load_state_dict must treat {} as "reset to the empty state".
    for stage in sim.stages:
        stage.load_state_dict(stage_states.get(stage.name, {}), ctx)
