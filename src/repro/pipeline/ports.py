"""Typed ports, wires and latches: the connective tissue between stages.

Stages (:mod:`repro.pipeline.stages`) never call each other directly.
Everything that crosses a stage boundary travels through one of three
primitives, each with an explicit contract (the full wiring diagram
lives in ``docs/ARCHITECTURE.md``):

* :class:`Port` — a same-cycle, one-way dataflow connection from a
  producer structure to exactly one consumer callback, bound once at
  wiring time. The machine's single port instance is ``ready`` (the
  scoreboard / LSQ wakeup path into the Issue stage's ready lists).
* :class:`Wire` — a named scalar signal shared by stages within a
  cycle (L1 outcome flags, the replay issue-block cycle, the last
  commit cycle). Wires are plain mutable cells: writers assign
  ``wire.value``, readers read it; the driver resets per-cycle wires
  in its prologue.
* :class:`DelayQueue` — a cycle-indexed latch bank modelling a
  fixed-latency hand-off: the producer pushes an item tagged with its
  delivery cycle, the consumer pops everything due at ``now``. The
  issue→execute latch (D+1 cycles deep) and the execute→writeback
  completion latch are DelayQueues.

Latency contract: a ``Port`` delivers in the same cycle it fires (it
models a combinational path); a ``DelayQueue`` delivers at exactly the
cycle the producer stamped, never earlier; ``Wire`` values written in
one stage are visible to every later stage of the same cycle.

Hot-path note: ``DelayQueue.slots`` (the underlying ``dict``) and
``Port.sink()`` (the bound consumer callable) are deliberately public
so per-µop paths can bind them once and skip a method-call round trip;
both views stay valid across checkpoint restores because
``load_state_dict`` mutates in place.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.isa.uop import MicroOp


class PortError(RuntimeError):
    """A port was used before wiring, or wired twice."""


class Port:
    """One-way, typed, same-cycle connection with exactly one consumer.

    Producers are constructed against :meth:`send` (safe before wiring:
    it raises :class:`PortError` instead of dropping events on the
    floor). The consumer side calls :meth:`connect` once; wiring code
    may then rebind hot producers straight to :meth:`sink` so steady-
    state traffic pays no forwarding overhead.
    """

    __slots__ = ("name", "payload", "_sink")

    def __init__(self, name: str, payload: str = "object") -> None:
        """Declare a port named ``name`` carrying ``payload`` values."""
        self.name = name
        self.payload = payload
        self._sink: Optional[Callable[[Any], None]] = None

    @property
    def connected(self) -> bool:
        """True once a consumer has been bound."""
        return self._sink is not None

    def connect(self, sink: Callable[[Any], None]) -> Callable[[Any], None]:
        """Bind the consumer callback (exactly once) and return it.

        Returning the sink lets wiring code short-circuit hot producers
        (store the callable directly instead of going through
        :meth:`send`).
        """
        if self._sink is not None:
            raise PortError(f"port {self.name!r} is already connected")
        self._sink = sink
        return sink

    def sink(self) -> Callable[[Any], None]:
        """The connected consumer callback (raises when unwired)."""
        if self._sink is None:
            raise PortError(f"port {self.name!r} is not connected")
        return self._sink

    def send(self, value: Any) -> None:
        """Deliver ``value`` to the consumer, same cycle."""
        sink = self._sink
        if sink is None:
            raise PortError(f"port {self.name!r} fired before wiring completed")
        sink(value)


class Wire:
    """A named scalar signal shared between stages.

    The writer assigns :attr:`value`; readers read it in the same cycle.
    ``default`` is the reset value (per-cycle wires are reset by the
    driver's prologue; sticky wires such as ``last_commit`` are only
    reset by :meth:`load_state_dict`).
    """

    __slots__ = ("name", "default", "value")

    def __init__(self, name: str, default: Any) -> None:
        """Declare a wire named ``name`` resetting to ``default``."""
        self.name = name
        self.default = default
        self.value = default

    def reset(self) -> None:
        """Drive the wire back to its default."""
        self.value = self.default

    def state_dict(self) -> Any:
        """The wire's current value (plain data)."""
        return self.value

    def load_state_dict(self, state: Any) -> None:
        """Restore a :meth:`state_dict` value."""
        self.value = state


class DelayQueue:
    """A cycle-indexed latch bank: items pushed for a future cycle are
    delivered exactly when that cycle arrives.

    This is the generalized multi-cycle latch between stages: the Issue
    stage pushes ``(µop, issue_id)`` pairs for cycle ``X + D + 1`` and
    the Execute stage pops everything stamped ``now``. ``issue_id``
    snapshots ``uop.num_issues`` at push time so a squash-and-reissue
    invalidates stale deliveries (the consumer compares ids).

    ``slots`` (``{cycle: [(µop, issue_id), ...]}``) is public for hot
    paths; it is mutated in place by :meth:`load_state_dict` so bound
    references survive a checkpoint restore.
    """

    __slots__ = ("name", "slots")

    def __init__(self, name: str) -> None:
        """Declare a latch bank named ``name`` (e.g. ``issue->execute``)."""
        self.name = name
        self.slots: Dict[int, List[Tuple[MicroOp, int]]] = {}

    def push(self, cycle: int, uop: MicroOp, issue_id: int) -> None:
        """Schedule ``(uop, issue_id)`` for delivery at ``cycle``."""
        entry = self.slots.get(cycle)
        if entry is None:
            self.slots[cycle] = [(uop, issue_id)]
        else:
            entry.append((uop, issue_id))

    def pop(self, now: int) -> Optional[List[Tuple[MicroOp, int]]]:
        """Everything due at ``now`` (or None), removed from the bank."""
        return self.slots.pop(now, None)

    def __len__(self) -> int:
        """Number of occupied delivery cycles."""
        return len(self.slots)

    def in_flight(self) -> int:
        """Total queued deliveries across every pending cycle (the
        latch-bank occupancy the telemetry probes sample)."""
        return sum(len(entries) for entries in self.slots.values())

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self, ctx) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """Encode as ``[(cycle, [(µop ref, issue_id), ...]), ...]``."""
        return [
            (cycle, [(ctx.ref(uop), issue_id) for uop, issue_id in entries])
            for cycle, entries in self.slots.items()
        ]

    def load_state_dict(self, state, ctx) -> None:
        """Restore a :meth:`state_dict` encoding (in place: bound
        ``slots`` references stay valid)."""
        self.slots.clear()
        for cycle, entries in state:
            self.slots[cycle] = [(ctx.uop(ref), issue_id) for ref, issue_id in entries]
