"""Issue (select) stage: pick ready µops and launch them toward Execute.

Inputs: the ready lists fed by the ``ready`` port (this stage owns the
port's consumer side), the FU pool's per-cycle port budget, and the
``issue_block`` wire (a replay handled this cycle blocks issue).
Outputs: issued µops pushed into the issue→execute
:class:`~repro.pipeline.ports.DelayQueue` stamped ``now + D + 1``, and
speculative wakeup broadcasts into the scoreboard promising each
producer's latency (the speculative-scheduling mechanism itself — the
promise may be wrong for loads; Execute's checker handles that).
Latency: selection and broadcast happen in the issue cycle; execution
starts after the issue-to-execute delay ``D`` plus one.

Select order is recovery buffer first (replayed µops have priority,
Section 3.1), then the IQ, both oldest-first; the per-cycle budget is
``issue_width`` across the two.

The load wakeup decision is delegated to the configured scheduling
policy (:func:`repro.core.composed.build_policy`): Always-Hit
speculation, Schedule Shifting, hit/miss filtering, criticality gating,
or the conservative baseline — swapping schedulers never edits this
stage, let alone the driver loop.
"""

from __future__ import annotations

from typing import List

from repro.isa.opclass import EXEC_LATENCY_BY_OP
from repro.isa.uop import MicroOp
from repro.pipeline.stages.base import Stage


class Issue(Stage):
    """Oldest-first select over recovery + IQ ready lists, then launch."""

    name = "issue"

    def __init__(self, sim) -> None:
        """Bind select/launch structures and take the ready port."""
        super().__init__(sim)
        self.iq = sim.iq
        self.recovery = sim.recovery
        self.fus = sim.fus
        self.scoreboard = sim.scoreboard
        self.replay = sim.replay
        self.policy = sim.policy
        self.stats = sim.stats
        self.width = sim.config.core.issue_width
        self.delay = sim.delay
        self._slots = sim.exec_latch.slots
        self.issue_block = sim.issue_block
        # This stage owns the consumer side of the ready port; the
        # producers (scoreboard, LSQ) are short-circuited to the sink so
        # steady-state wakeups pay no forwarding overhead.
        route = sim.ready_port.connect(self.route_ready)
        sim.scoreboard.on_ready = route
        sim.lsq.on_ready = route

    def route_ready(self, uop: MicroOp) -> None:
        """Ready-port sink: a µop became source-complete."""
        if uop.dead or uop.executed:
            return
        if uop.num_issues > 0 and not uop.replay_pending:
            return  # already in flight; nothing to wake
        if uop.in_iq:
            self.iq.make_ready(uop)
        elif uop.replay_pending:
            self.recovery.make_ready(uop)

    def tick(self, now: int) -> None:
        """Select and launch up to ``issue_width`` ready µops."""
        if self.issue_block.value == now:
            self.stats.issue_cycles_lost += 1
            return
        budget = self.width
        # Recovery buffer has priority over the scheduler; the IQ fills
        # the holes in replayed issue groups (Section 3.1).
        ready = self.recovery.take_ready()
        if ready:
            budget = self._issue_from(ready, budget, now)
        if budget > 0:
            ready = self.iq.take_ready()
            if ready:
                self._issue_from(ready, budget, now)

    def _issue_from(self, candidates: List[MicroOp], budget: int, now: int) -> int:
        for uop in list(candidates):
            if budget == 0:
                break
            if uop.dead or uop.executed:
                continue
            if uop.num_issues > 0 and not uop.replay_pending:
                continue
            loads_before = self.fus.loads_issued_this_cycle()
            if not self.fus.try_allocate(uop.opclass, now):
                continue
            self._do_issue(uop, now, loads_before)
            budget -= 1
        return budget

    def _do_issue(self, uop: MicroOp, now: int, loads_before: int) -> None:
        first_issue = uop.num_issues == 0
        was_replay = uop.replay_pending
        uop.issue_cycle = now
        uop.num_issues += 1
        uop.squashed = False
        uop.replay_pending = False
        exec_start = uop.exec_start = now + self.delay + 1
        queue = self._slots
        entry = queue.get(exec_start)
        if entry is None:
            queue[exec_start] = [(uop, uop.num_issues)]
        else:
            entry.append((uop, uop.num_issues))
        self.replay.note_issue(uop, now)

        stats = self.stats
        stats.issued_total += 1
        if first_issue:
            stats.unique_issued += 1
        else:
            self.recovery.replays_issued += 1
        if uop.wrong_path:
            stats.wrong_path_issued += 1

        # Wakeup broadcast.
        if uop.is_load:
            decision = self.policy.decide(uop, loads_before)
            uop.spec_woken = decision.speculate
            uop.promised_latency = decision.promised_latency
            if decision.speculate:
                stats.speculative_loads += 1
                if uop.pdst >= 0:
                    self.scoreboard.broadcast(
                        uop.pdst,
                        now + decision.promised_latency,
                        now + decision.promised_latency + self.delay + 1,
                    )
            else:
                stats.conservative_loads += 1
                if uop.pdst >= 0:
                    self.scoreboard.unready(uop.pdst)
        else:
            latency = EXEC_LATENCY_BY_OP[uop.opclass]
            uop.spec_woken = True
            uop.promised_latency = latency
            if uop.pdst >= 0:
                self.scoreboard.broadcast(uop.pdst, now + latency, now + latency + self.delay + 1)

        # Structure management.
        if uop.is_mem:
            self.iq.remove_from_ready(uop)  # keeps its IQ entry
        elif uop.in_iq:
            self.iq.release(uop)  # first issue: move to recovery
            self.recovery.insert(uop)
        elif was_replay:
            self.recovery.remove_from_ready(uop)
