"""The stage protocol: what every pipeline stage object implements.

A stage is one tick-ordered slice of the machine. The driver
(:class:`repro.pipeline.cpu.Simulator`) holds a tuple of stages and, each
cycle, calls ``tick(now)`` on every one in list order — there is no other
control flow between stages. A stage's constructor receives the simulator
being wired and binds direct references to the structures, ports, wires
and latches it touches (binding once keeps the per-cycle path as cheap as
the pre-decomposition method calls).

Contract (normative statement in ``docs/ARCHITECTURE.md``):

* ``name`` identifies the stage in the tick order, the per-stage
  instrumentation breakdown (:mod:`repro.perf.instrument`) and the
  checkpoint payload's ``stages`` table — names must be unique per
  machine;
* ``tick(now)`` advances the stage one cycle and communicates only
  through ports, wires, latches and the shared structures it bound;
* ``state_dict(ctx)`` / ``load_state_dict(state, ctx)`` implement the
  component state protocol (:mod:`repro.checkpoint.state`) for state the
  stage *owns* (most stages own none — shared structures and latches are
  serialized by the driver); a checkpoint round-trip must restore the
  stage bit-identically, and ``load_state_dict({})`` must reset the
  stage to its empty state (snapshots elide empty blobs, so restore
  hands ``{}`` to any stage the payload recorded nothing for);
* ``after`` (class attribute) names the insertion anchor used when the
  stage is added through ``extra_stages`` — see
  :func:`repro.pipeline.stages.build_stages`.
"""

from __future__ import annotations

from typing import Dict, Optional


class SimulationError(RuntimeError):
    """Raised when a model invariant is violated (bug trap, not recovery)."""


class Stage:
    """Base class for pipeline stages (see the module docstring for the
    full protocol contract)."""

    #: Stage name: unique per machine, keys the instrumentation and
    #: checkpoint tables.
    name = "stage"

    #: For ``extra_stages``: name of the stage to insert after
    #: (``None`` appends at the end of the tick order).
    after: Optional[str] = None

    def __init__(self, sim) -> None:
        """Bind the stage to the machine being wired.

        Subclasses bind direct references to the structures they touch;
        ``self.sim`` stays available for instrumentation subclasses.
        """
        self.sim = sim

    def tick(self, now: int) -> None:
        """Advance the stage one cycle."""
        raise NotImplementedError

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self, ctx) -> Dict:
        """Stage-owned state as plain data (empty for stateless stages)."""
        return {}

    def load_state_dict(self, state: Dict, ctx) -> None:
        """Restore a :meth:`state_dict` snapshot — ``{}`` means "reset
        to the empty state" (no-op by default: stateless)."""
