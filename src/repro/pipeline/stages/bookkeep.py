"""Bookkeep stage: end-of-cycle policy hooks and window pruning.

Inputs: the ``l1_miss`` / ``l1_access`` wires driven by Execute this
cycle.
Outputs: the scheduling policy's per-cycle observation (global hit/miss
counter training) and the replay controller's issue-window prune.
Latency: zero — this is the canonical end-of-cycle pseudo-stage; every
per-cycle accounting hook that must observe a *complete* cycle belongs
here, which is why it is last in the tick order.
"""

from __future__ import annotations

from repro.pipeline.stages.base import Stage


class Bookkeep(Stage):
    """Per-cycle policy observation + replay-window pruning."""

    name = "bookkeep"

    def __init__(self, sim) -> None:
        """Bind the policy, the replay controller and the L1 wires."""
        super().__init__(sim)
        self.policy = sim.policy
        self.replay = sim.replay
        self.l1_miss = sim.l1_miss
        self.l1_access = sim.l1_access

    def tick(self, now: int) -> None:
        """Feed the cycle's L1 outcome to the policy; prune the window."""
        self.policy.on_cycle(self.l1_miss.value, self.l1_access.value)
        self.replay.prune(now)
