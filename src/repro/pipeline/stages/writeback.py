"""Writeback stage: drain the completion latch into the ROB.

Inputs: the execute→writeback :class:`~repro.pipeline.ports.DelayQueue`
(entries stamped with their completion cycle by Execute).
Outputs: ``completed`` marks on ROB entries (observed by Commit in the
*next* cycle, since Commit ticks earlier in the same cycle).
Latency: zero — everything due at ``now`` is marked this cycle; stale
entries (squashed or re-issued µops, detected by the ``issue_id``
snapshot) are dropped silently.
"""

from __future__ import annotations

from repro.pipeline.stages.base import Stage


class Writeback(Stage):
    """Mark µops complete when their scheduled completion cycle arrives."""

    name = "writeback"

    def __init__(self, sim) -> None:
        """Bind the ROB and the completion latch's slot table."""
        super().__init__(sim)
        self.rob = sim.rob
        self._slots = sim.completion_latch.slots

    def tick(self, now: int) -> None:
        """Complete every non-stale entry due at ``now``."""
        entries = self._slots.pop(now, None)
        if not entries:
            return
        for uop, issue_id in entries:
            if uop.dead or uop.num_issues != issue_id or not uop.executed:
                continue
            self.rob.note_completed(uop)
