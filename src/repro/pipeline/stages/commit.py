"""Commit stage: in-order retirement from the ROB head.

Inputs: the ROB (head entries marked ``completed`` by Writeback).
Outputs: architectural effects — RAT commit in the renamer, LSQ entry
release, policy commit hooks (hit/miss filter training, criticality) —
plus the ``last_commit`` wire the driver's deadlock trap watches.
Latency: retires up to ``retire_width`` µops in the cycle they are
observed complete (commit runs first in the tick order, so a µop
completing in cycle ``X`` retires no earlier than ``X + 1``).
"""

from __future__ import annotations

from repro.pipeline.stages.base import SimulationError, Stage


class Commit(Stage):
    """In-order retire of up to ``retire_width`` completed µops."""

    name = "commit"

    def __init__(self, sim) -> None:
        """Bind the ROB, renamer, LSQ, policy and the commit wire."""
        super().__init__(sim)
        self.rob = sim.rob
        self.renamer = sim.renamer
        self.lsq = sim.lsq
        self.policy = sim.policy
        self.stats = sim.stats
        self.width = sim.config.core.retire_width
        self.last_commit = sim.last_commit

    def tick(self, now: int) -> None:
        """Retire completed ROB-head µops, oldest first."""
        rob = self.rob
        head = rob.head()
        if head is None or not head.completed:
            return
        retired = 0
        width = self.width
        while retired < width:
            if head is None or not head.completed:
                break
            if head.wrong_path:
                raise SimulationError(f"wrong-path µop reached ROB head: {head!r}")
            rob.retire_head()
            self._retire(head, now)
            retired += 1
            head = rob.head()
        if retired:
            self.last_commit.value = now

    def _retire(self, head, now: int) -> None:
        """Architectural effects of one retirement (the per-µop seam
        telemetry overrides; the ROB entry is already popped)."""
        self.renamer.commit(head)
        if head.is_mem:
            self.lsq.release(head)
        head.commit_cycle = now
        self.stats.committed_uops += 1
        policy = self.policy
        if head.is_load:
            policy.on_load_commit(head)
        policy.on_uop_commit(head)
