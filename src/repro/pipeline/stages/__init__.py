"""Stage objects for the out-of-order core, in declarative tick order.

The machine is a tuple of :class:`~repro.pipeline.stages.base.Stage`
objects connected by the typed ports, wires and latches of
:mod:`repro.pipeline.ports`. The driver
(:class:`repro.pipeline.cpu.Simulator`) ticks them in :data:`TICK_ORDER`
— back-to-front, so same-cycle producer→consumer flows resolve
naturally (a µop committed this cycle frees its ROB slot for this
cycle's rename; a wakeup fired this cycle issues this cycle).

Architectural front-to-back order vs. simulation tick order::

    Fetch -> Decode -> Rename -> Dispatch -> Issue -> Execute
          -> Writeback -> Commit          (the machine)
    commit, writeback, execute, wakeup, issue, rename, fetch,
    bookkeep                              (the tick order, reversed)

Decode is fused into the Fetch stage (the frontend pipe models the
combined latency) and Dispatch into Rename (allocation is atomic across
RAT/ROB/IQ/LSQ); Wakeup/Issue are the scheduler's two halves; Bookkeep
is the end-of-cycle pseudo-stage. ``docs/ARCHITECTURE.md`` is the
normative statement of this contract.

Swapping or extending the machine never edits the driver loop:

* ``stage_overrides={"issue": MyScheduler}`` replaces a stage class by
  name (subclass the stage you are changing — this is the scheduler
  seam and the instrumentation hook: see
  :class:`repro.experiments.timeline.TracingSimulator`);
* ``extra_stages=[MyProbe]`` inserts additional stages, anchored by
  each class's ``after`` attribute.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Type

from repro.pipeline.stages.base import SimulationError, Stage
from repro.pipeline.stages.bookkeep import Bookkeep
from repro.pipeline.stages.commit import Commit
from repro.pipeline.stages.execute import Execute
from repro.pipeline.stages.fetch import Fetch
from repro.pipeline.stages.issue import Issue
from repro.pipeline.stages.rename import Rename
from repro.pipeline.stages.wakeup import Wakeup
from repro.pipeline.stages.writeback import Writeback

#: The canonical tick order (backwards through the machine). Tests
#: assert this against the order documented in ``docs/ARCHITECTURE.md``.
TICK_ORDER: Tuple[str, ...] = (
    "commit",
    "writeback",
    "execute",
    "wakeup",
    "issue",
    "rename",
    "fetch",
    "bookkeep",
)

#: Default stage class per tick-order slot.
DEFAULT_STAGES: Dict[str, Type[Stage]] = {
    "commit": Commit,
    "writeback": Writeback,
    "execute": Execute,
    "wakeup": Wakeup,
    "issue": Issue,
    "rename": Rename,
    "fetch": Fetch,
    "bookkeep": Bookkeep,
}


def build_stages(
    sim, overrides: Optional[Dict[str, Type[Stage]]] = None, extra: Iterable[Type[Stage]] = ()
) -> Tuple[Stage, ...]:
    """Instantiate and wire the machine's stage list for ``sim``.

    ``overrides`` maps tick-order names to replacement classes (the
    scheduler-swap seam); ``extra`` is an iterable of additional stage
    classes, each inserted after the stage named by its ``after``
    attribute (appended at the end when ``after`` is ``None``).
    Stage names must come out unique — they key the instrumentation
    and checkpoint tables.
    """
    classes = dict(DEFAULT_STAGES)
    if overrides:
        unknown = sorted(set(overrides) - set(classes))
        if unknown:
            raise ValueError(
                f"unknown stage override(s) {', '.join(unknown)}; "
                f"tick order is {', '.join(TICK_ORDER)}"
            )
        classes.update(overrides)
    stages = [classes[name](sim) for name in TICK_ORDER]
    for stage_cls in extra:
        stage = stage_cls(sim)
        anchor = stage.after
        if anchor is None:
            stages.append(stage)
            continue
        names = [s.name for s in stages]
        if anchor not in names:
            raise ValueError(
                f"extra stage {stage.name!r} anchors after unknown " f"stage {anchor!r}"
            )
        stages.insert(names.index(anchor) + 1, stage)
    names = [s.name for s in stages]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate stage name(s): {', '.join(dupes)}")
    return tuple(stages)


__all__ = [
    "Bookkeep",
    "Commit",
    "DEFAULT_STAGES",
    "Execute",
    "Fetch",
    "Issue",
    "Rename",
    "SimulationError",
    "Stage",
    "TICK_ORDER",
    "Wakeup",
    "Writeback",
    "build_stages",
]
