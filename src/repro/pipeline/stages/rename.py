"""Rename/Dispatch stage: pull decoded µops into the out-of-order window.

Inputs: the frontend pipe's delivery buffer (pull interface —
``peek``/``pop`` keeps stalled µops in the frontend instead of a
deliver/undeliver round trip).
Outputs: renamed µops allocated into ROB + IQ (+ LSQ for memory µops),
registered with the scoreboard's waiter lists, store-set dependences
installed, and immediately-ready µops placed on the IQ ready list.
Latency: up to ``rename_width`` µops per cycle; the stage stalls (in
order) the moment any allocation would overflow.

Rename and Dispatch are deliberately one fused stage object: allocation
must be atomic across RAT/free-list, ROB, IQ and LSQ — a µop renamed
but not dispatched would need an undo path through four structures.
``docs/ARCHITECTURE.md`` records this fusion (and Decode's, inside the
frontend pipe) in the stage map.
"""

from __future__ import annotations

from repro.pipeline.stages.base import Stage


class Rename(Stage):
    """Fused rename + dispatch: in-order allocation into the OoO window."""

    name = "rename"

    def __init__(self, sim) -> None:
        """Bind the frontend pipe and every allocation structure."""
        super().__init__(sim)
        self.frontend = sim.fetch
        self.rob = sim.rob
        self.iq = sim.iq
        self.lsq = sim.lsq
        self.renamer = sim.renamer
        self.scoreboard = sim.scoreboard
        self.store_sets = sim.store_sets
        self.width = sim.config.core.rename_width

    def tick(self, now: int) -> None:
        """Rename and dispatch up to ``rename_width`` µops, stalling in
        order on the first structural hazard."""
        fetch = self.frontend
        rob, iq, lsq = self.rob, self.iq, self.lsq
        renamer = self.renamer
        for _ in range(self.width):
            uop = fetch.peek(now)
            if uop is None:
                return
            if (
                rob.full
                or iq.full
                or not renamer.can_rename(uop)
                or (uop.is_load and lsq.lq_full())
                or (uop.is_store and lsq.sq_full())
            ):
                return
            fetch.pop()
            self._dispatch(uop, now)

    def _dispatch(self, uop, now: int) -> None:
        """Atomic rename+dispatch of one accepted µop (the per-µop seam
        telemetry overrides; hazards were already checked by ``tick``)."""
        scoreboard = self.scoreboard
        self.renamer.rename(uop)
        if uop.pdst >= 0:
            scoreboard.unready(uop.pdst)
        self.rob.allocate(uop)
        iq = self.iq
        iq.insert(uop)
        scoreboard.watch(uop)
        if uop.is_mem:
            lsq = self.lsq
            lsq.insert(uop)
            dep = self.store_sets.lookup_dependence(uop)
            if dep is not None:
                lsq.add_store_dependence(uop, dep)
        if uop.pending == 0:
            iq.make_ready(uop)
