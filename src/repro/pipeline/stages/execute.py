"""Execute stage: functional execution, replay detection, squashes.

Inputs: the issue→execute :class:`~repro.pipeline.ports.DelayQueue`
(µops stamped ``issue + D + 1`` by Issue) and the replay controller's
detection events.
Outputs: completion entries pushed into the execute→writeback latch
(stamped with each µop's actual completion cycle); corrected wakeup
broadcasts into the scoreboard; the ``l1_miss`` / ``l1_access`` wires
(read by Bookkeep's policy hook) and the ``issue_block`` wire (read by
Issue in the same cycle — replay handling costs an issue cycle);
squash cascades (replay, branch misprediction, memory-order violation)
into ROB/IQ/LSQ/recovery/renamer/frontend.
Latency: a µop executes exactly when its latch entry comes due; loads
complete after their actual memory latency, other classes after their
fixed :data:`~repro.isa.opclass.EXEC_LATENCY_BY_OP` latency.

Replay detection runs *before* the cycle's executions so a mis-
speculated wakeup squashes the in-flight window it poisoned (Section
3.1's Alpha-style squash), and re-arms the waiting population from
scoreboard truth.
"""

from __future__ import annotations

from typing import List

from repro.backend.replay import ReplayEvent
from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS
from repro.isa.opclass import EXEC_LATENCY_BY_OP
from repro.isa.uop import MicroOp
from repro.pipeline.stages.base import SimulationError, Stage


class Execute(Stage):
    """Execute due µops; detect mis-speculated wakeups; run squashes."""

    name = "execute"

    def __init__(self, sim) -> None:
        """Bind the backend structures and the stage's ports/wires."""
        super().__init__(sim)
        self.scoreboard = sim.scoreboard
        self.rob = sim.rob
        self.iq = sim.iq
        self.lsq = sim.lsq
        self.recovery = sim.recovery
        self.replay = sim.replay
        self.store_sets = sim.store_sets
        self.hierarchy = sim.hierarchy
        self.branch_unit = sim.branch_unit
        self.renamer = sim.renamer
        self.frontend = sim.fetch
        self.stats = sim.stats
        self.delay = sim.delay
        self.load_to_use = sim.load_to_use
        self._slots = sim.exec_latch.slots
        self._completion_slots = sim.completion_latch.slots
        self.issue_block = sim.issue_block
        self.l1_miss = sim.l1_miss
        self.l1_access = sim.l1_access
        self._ready_port = sim.ready_port

    def tick(self, now: int) -> None:
        """Handle due replay events, then execute every due µop."""
        if self.replay.has_event(now):
            self._handle_replay(now)
        entries = self._slots.pop(now, None)
        if not entries:
            return
        for uop, issue_id in entries:
            if uop.dead or uop.squashed or uop.num_issues != issue_id:
                continue
            self._execute_uop(uop, now)

    def _execute_uop(self, uop: MicroOp, now: int) -> None:
        if not self.scoreboard.operands_data_valid(uop, now):
            raise SimulationError(f"µop executed with invalid operands at cycle {now}: {uop!r}")
        uop.executed = True
        if uop.is_load:
            self._execute_load(uop, now)
        elif uop.is_store:
            self._execute_store(uop, now)
        elif uop.is_branch:
            self._execute_branch(uop, now)
        else:
            latency = EXEC_LATENCY_BY_OP[uop.opclass]
            self._schedule_completion(uop, now + latency - 1, now)
        if uop.is_mem:
            self.iq.release(uop)
        else:
            self.recovery.remove(uop)

    def _execute_load(self, uop: MicroOp, now: int) -> None:
        forwarding_store = self.lsq.forwarding_store(uop)
        if forwarding_store is not None:
            uop.forwarded = True
            uop.l1_hit = True
            alat = self.load_to_use
            self.stats.store_forwards += 1
        else:
            outcome = self.hierarchy.load(uop.mem_addr, uop.pc, now)
            alat = outcome.latency
            uop.l1_hit = outcome.hit
            self.l1_access.value = True
            if not outcome.hit:
                self.l1_miss.value = True
        uop.actual_latency = alat
        issue = uop.issue_cycle
        if uop.spec_woken:
            if alat > uop.promised_latency:
                cause = CAUSE_L1_MISS if not uop.l1_hit else CAUSE_BANK_CONFLICT
                # The checker fires when the *promise* comes due (one cycle
                # before the data was supposed to return). A shifted second
                # load therefore detects one cycle later than its pair —
                # which is why two same-cycle loads that both miss trigger
                # two squash events under Schedule Shifting (Section 5.1,
                # drawback 3).
                detection = issue + self.delay + uop.promised_latency - 1
                self.replay.schedule(ReplayEvent(uop, cause, alat), max(detection, now + 1))
        elif uop.pdst >= 0:
            # Conservative: dependents cannot issue before the hit/miss
            # outcome is known (one cycle before data return, Section 1),
            # which costs hits the whole issue-to-execute delay (Figure 3).
            # Misses resolve with the refill timing already known, so their
            # dependents issue at the corrected data-arrival point.
            wake = max(issue + alat, issue + self.delay + self.load_to_use)
            self.scoreboard.broadcast(uop.pdst, wake, issue + self.delay + 1 + alat)
        self._schedule_completion(uop, uop.exec_start + alat - 1, now)

    def _execute_store(self, uop: MicroOp, now: int) -> None:
        offender = self.lsq.detect_violation(uop)
        self.hierarchy.store(uop.mem_addr, uop.pc, now)
        self.store_sets.store_done(uop)
        self.lsq.store_executed_wakeups(uop)
        self._schedule_completion(uop, now, now)
        if offender is not None and not uop.wrong_path and not offender.wrong_path:
            self.stats.memory_order_violations += 1
            self.store_sets.train_violation(uop.pc, offender.pc)
            self._violation_squash(offender, now)

    def _execute_branch(self, uop: MicroOp, now: int) -> None:
        self._schedule_completion(uop, now, now)
        if uop.wrong_path:
            return  # wrong-path branches never redirect anything
        self.stats.branches += 1
        mispredicted = self.branch_unit.resolve(uop)
        if mispredicted:
            self.stats.branch_mispredicts += 1
            self._branch_squash(uop, now)

    def _schedule_completion(self, uop: MicroOp, cycle: int, now: int) -> None:
        # Same-cycle completions skip the latch (they are already due).
        if cycle <= now:
            self.rob.note_completed(uop)
        else:
            queue = self._completion_slots
            entry = queue.get(cycle)
            if entry is None:
                queue[cycle] = [(uop, uop.num_issues)]
            else:
                entry.append((uop, uop.num_issues))

    # -- replay (the Alpha-style squash of Section 3.1) -------------------

    def _handle_replay(self, now: int) -> None:
        events = [ev for ev in self.replay.pop_events(now) if not ev.load.dead]
        if not events:
            return
        cause = events[0].cause  # oldest trigger attributes the event
        doomed = self.replay.squashable_uops(now)
        for uop in doomed:
            uop.squashed = True
            uop.replay_pending = True
            if uop.pdst >= 0:
                self.scoreboard.unready(uop.pdst)
        # Correct the triggering loads' destinations.
        for event in events:
            load = event.load
            if load.pdst >= 0:
                issue = load.issue_cycle
                wake = max(issue + event.corrected_latency, now + 1)
                self.scoreboard.broadcast(
                    load.pdst, wake, issue + self.delay + 1 + event.corrected_latency
                )
        self._rearm_waiting_uops()
        if doomed or self.delay > 0:
            # Handling the misspeculation blocks issue for a cycle even
            # when every in-flight µop was already squashed by an earlier
            # event this window — the checker still fires (this is how two
            # same-cycle missing loads cost two replays under Schedule
            # Shifting). With D=0 the window is definitionally empty and
            # no handling happens: SpecSched_0 stays cycle-identical to
            # Baseline_0.
            self.stats.record_replayed(cause, len(doomed))
            self.issue_block.value = now  # "an additional issue cycle is lost"
        self._note_replay(events, doomed, now)

    def _note_replay(self, events, doomed, now: int) -> None:
        """Telemetry seam: a replay window was just handled (no-op here).

        ``events`` are the triggering :class:`ReplayEvent`\\ s, ``doomed``
        the µops squashed by them.
        """

    def _rearm_waiting_uops(self) -> None:
        """Recompute readiness for every µop still waiting to (re-)issue.

        After a squash, previously fired wakeups may be stale (their
        producer got squashed or corrected); rebuilding the ready lists
        from scoreboard truth is simple and safe — the populations are
        bounded by the IQ and the in-flight window.
        """
        waiting: List[MicroOp] = [
            u
            for u in self.iq.occupants()
            if not u.executed and (u.num_issues == 0 or u.replay_pending)
        ]
        waiting.extend(u for u in self.recovery.members() if u.replay_pending)
        self.iq.clear_ready()
        self.recovery.clear_ready()
        rewatch = self.scoreboard.rewatch
        route_ready = self._ready_port.sink()
        for uop in waiting:
            pending = rewatch(uop)
            store_dep = uop.store_dep
            if store_dep is not None and not store_dep.executed:
                pending = uop.pending = pending + 1
                # still registered in the LSQ waiter list
            if pending == 0:
                route_ready(uop)

    # -- squashes (branch misprediction, memory-order violation) ----------

    def _branch_squash(self, branch: MicroOp, now: int) -> None:
        doomed = self.rob.squash_younger(branch.seq)  # youngest first
        self._kill_uops(doomed)
        self.renamer.rollback(doomed)
        self.frontend.redirect(now)
        self._note_squash("branch", branch, doomed, now)

    def _violation_squash(self, offender: MicroOp, now: int) -> None:
        doomed = self.rob.squash_younger(offender.seq, inclusive=True)
        self._kill_uops(doomed)
        self.renamer.rollback(doomed)
        refetch = [u.clone_arch() for u in reversed(doomed) if not u.wrong_path]
        self.frontend.squash_all(now)
        self.frontend.inject_refetch(refetch)
        self._note_squash("violation", offender, doomed, now)

    def _note_squash(self, cause: str, trigger: MicroOp, doomed, now: int) -> None:
        """Telemetry seam: a branch/violation squash cascade just ran
        (no-op here). ``trigger`` is the mispredicted branch or the
        offending load."""

    def _kill_uops(self, doomed: List[MicroOp]) -> None:
        if not doomed:
            return
        oldest = min(u.seq for u in doomed)
        for uop in doomed:
            uop.dead = True
            self.scoreboard.drop_waiter(uop)
            if uop.is_store:
                self.store_sets.store_done(uop)
        self.iq.squash_younger(oldest - 1)
        self.recovery.squash_younger(oldest - 1)
        self.lsq.squash_younger(oldest - 1)
