"""Wakeup stage: fire the scoreboard's due wakeup events.

Inputs: the scoreboard's internal event queue (broadcasts scheduled by
Issue's promises and Execute's corrections).
Outputs: newly source-complete µops routed through the ``ready``
:class:`~repro.pipeline.ports.Port` into the Issue stage's ready lists.
Latency: zero — events due at ``now`` fire at ``now``; because Wakeup
ticks immediately before Issue, a µop woken this cycle can be selected
this same cycle (the back-to-back scheduling of Figure 1).

This is the wakeup half of the scheduler; Issue is the select half.
They are separate stage objects so alternative schedulers can replace
either independently.
"""

from __future__ import annotations

from repro.pipeline.stages.base import Stage


class Wakeup(Stage):
    """Fire due wakeup events into the ready port."""

    name = "wakeup"

    def __init__(self, sim) -> None:
        """Bind the scoreboard."""
        super().__init__(sim)
        self.scoreboard = sim.scoreboard

    def tick(self, now: int) -> None:
        """Deliver every wakeup event scheduled for ``now``."""
        self.scoreboard.tick(now)
