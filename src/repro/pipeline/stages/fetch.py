"""Fetch stage: adapt the frontend pipe to the stage protocol.

Inputs: the trace source (the µop stream) and the branch unit's
predictions/redirects.
Outputs: predicted-path (and, after a mispredict, wrong-path) µops
advanced through the frontend pipe toward the Rename stage's pull
interface.
Latency: the frontend pipe models the fetch-to-rename depth
(``frontend_depth`` cycles); a redirect at cycle ``X`` delivers
corrected-path µops ``frontend_depth`` cycles later.

Decode is fused into this stage: the trace supplies µops (not raw
instructions), so the frontend pipe *is* the fetch+decode latency
model. The heavy lifting lives in
:class:`repro.frontend.fetch.FetchStage`; this object is the thin
stage-protocol adapter the driver ticks.
"""

from __future__ import annotations

from repro.pipeline.stages.base import Stage


class Fetch(Stage):
    """Advance the frontend pipe one cycle."""

    name = "fetch"

    def __init__(self, sim) -> None:
        """Bind the frontend pipe."""
        super().__init__(sim)
        self.frontend = sim.fetch

    def tick(self, now: int) -> None:
        """Fetch/decode one cycle of µops into the frontend pipe."""
        self.frontend.tick(now)
