"""Functional (timing-free) µop streaming: the scalar warming tier.

The OoO backend is bypassed entirely: the stream touches caches and
branch predictors only, which is why throughput sits an order of
magnitude above detailed simulation. Two callers reach this body via
the tier dispatcher (:func:`repro.pipeline.warming.warm_stream`):

* :meth:`Simulator.functional_warmup` — the paper's 50M-instruction
  warmup analogue, run on a *separate* trace instance (golden-locked
  behaviour: no policy training);
* :meth:`Simulator.fast_forward` — SMARTS-style functional warming on
  the simulator's *own* trace (advances the cursor), additionally
  training the scheduling policy's per-PC hit/miss filter.

This per-µop loop is the **semantic reference** for functional
warming: the vectorized tier (:mod:`repro.pipeline.warming.engine`)
must leave every component bit-identical to what this loop produces,
and the equivalence suite under ``tests/warming/`` enforces that
contract. Keep any state-effect change here mirrored there.

This loop bounds sampling-mode throughput when numpy is unavailable,
hence the inlining against the cache internals below.
"""

from __future__ import annotations

from repro.isa.trace import TraceSource


def functional_stream(sim, trace: TraceSource, uops: int, train_policy: bool = False) -> int:
    """Stream ``uops`` µops of ``trace`` through ``sim``'s caches and
    branch predictors without timing; returns the count actually
    consumed (short when the trace exhausts).

    With ``train_policy`` each load's L1 probe outcome also trains the
    scheduling policy's per-PC hit/miss filter — the filter's
    saturate-and-silence dynamics span far more committed loads than a
    measurement interval, so leaving it cold would bias every
    filter-gated configuration toward Always-Hit behaviour.
    """
    # The memory path is inlined against the cache internals (the
    # exact fill/probe semantics of SetAssocCache, hit path only):
    # the method-call round trips per µop were a measurable share of
    # sampled-mode wall time. State effects are identical to calling
    # fill()/probe() — the golden-locked functional_warmup shares this
    # body.
    l1d, l2 = sim.hierarchy.l1d, sim.hierarchy.l2
    l1d_fill, l2_fill = l1d.fill, l2.fill
    l1_offset = l1d._offset_bits
    l1_mask = l1d._index_mask
    l1_set_bits = l1d._set_bits
    l1_sets = l1d._sets
    l2_offset = l2._offset_bits
    l2_mask = l2._index_mask
    l2_set_bits = l2._set_bits
    l2_sets = l2._sets
    train = sim.hierarchy.prefetcher.train_and_prefetch
    predict = sim.branch_unit.predict
    resolve = sim.branch_unit.resolve
    on_load_commit = sim.policy.on_load_commit if train_policy else None
    next_uop = trace.next_uop
    line_bytes = sim.config.memory.l2.line_bytes
    for consumed in range(uops):
        uop = next_uop()
        if uop is None:
            return consumed
        if uop.is_mem:
            addr = uop.mem_addr
            l1_line = addr >> l1_offset
            l1_set = l1_sets[l1_line & l1_mask]
            l1_tag = l1_line >> l1_set_bits
            if on_load_commit is not None and uop.is_load:
                # The probe outcome is what a detailed run would have
                # committed (modulo in-flight effects): train the
                # per-PC filter on it before the line is installed.
                uop.l1_hit = l1_tag in l1_set
                on_load_commit(uop)
            if l1_tag in l1_set:  # fill() hit path: LRU touch
                l1d._stamp += 1
                l1_set[l1_tag] = l1d._stamp
            else:
                l1d_fill(addr)
            l2_line = addr >> l2_offset
            l2_set = l2_sets[l2_line & l2_mask]
            l2_tag = l2_line >> l2_set_bits
            if l2_tag in l2_set:  # probe hit: fill() = touch
                l2._stamp += 1
                l2_set[l2_tag] = l2._stamp
            else:
                for line in train(uop.pc, addr):
                    l2_fill(line * line_bytes)
                l2_fill(addr)
        elif uop.is_branch:
            uop.pred_taken, uop.pred_target = predict(uop)
            resolve(uop)
    return uops
