"""Pipeline: the cycle-level out-of-order core and run helpers."""

from repro.pipeline.cpu import Simulator
from repro.pipeline.sim import RunResult, run_config, run_workload

__all__ = ["RunResult", "Simulator", "run_config", "run_workload"]
