"""Pipeline: the stage-decomposed out-of-order core and run helpers.

Layout (see ``docs/ARCHITECTURE.md`` for the full contract):

* :mod:`repro.pipeline.cpu` — the :class:`Simulator` driver (stage-list
  tick loop, run helpers, state protocol entry points);
* :mod:`repro.pipeline.stages` — the stage objects, in tick order;
* :mod:`repro.pipeline.ports` — typed ports, wires and delay-queue
  latches connecting the stages;
* :mod:`repro.pipeline.functional` — timing-free warmup/fast-forward;
* :mod:`repro.pipeline.checkpointing` — the component codec
  registration behind ``state_dict``/``load_state_dict``;
* :mod:`repro.pipeline.sim` — one-shot convenience runners.
"""

from repro.pipeline.cpu import SimulationError, Simulator
from repro.pipeline.sim import RunResult, run_config, run_workload
from repro.pipeline.stages import TICK_ORDER, Stage, build_stages

__all__ = [
    "RunResult",
    "SimulationError",
    "Simulator",
    "Stage",
    "TICK_ORDER",
    "build_stages",
    "run_config",
    "run_workload",
]
