"""The cycle-level out-of-order core.

One :class:`Simulator` instance models the machine of Table 1 executing one
trace under one configuration. Stages run back-to-front each cycle so that
same-cycle producer->consumer flows resolve naturally::

    commit -> complete -> execute (replay detection first) -> wakeup
           -> issue -> rename/dispatch -> fetch

Timing contract (Section 4.1 / Figure 1, with D = issue-to-execute delay):

* a µop issued at ``X`` starts executing at ``X + D + 1``;
* a producer with (promised) latency ``L`` wakes consumers at ``X + L`` so
  they execute back-to-back;
* a speculatively woken load resolving with actual latency ``alat > L``
  schedules a replay detection at ``C = X + D + load_to_use - 1`` (hit/miss
  known one cycle before data); the controller squashes every unexecuted
  µop issued in ``[C-D, C-1]`` and issue is blocked during ``C``;
* a conservatively scheduled load wakes consumers at ``X + alat + D``
  (dependents pay the issue-to-execute delay on top of load-to-use —
  the Figure 3 effect).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.backend.fu import FuPool
from repro.checkpoint.state import UOP_SLOTS, UopCodec, UopDecoder
from repro.backend.iq import IssueQueue
from repro.backend.lsq import LoadStoreQueue
from repro.backend.prf import Scoreboard
from repro.backend.recovery import RecoveryBuffer
from repro.backend.replay import ReplayController, ReplayEvent
from repro.backend.rob import ReorderBuffer
from repro.backend.storesets import StoreSets
from repro.common.config import SimConfig
from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS, SimStats
from repro.core.composed import build_policy
from repro.frontend.branch_unit import BranchUnit
from repro.frontend.fetch import FetchStage
from repro.isa.opclass import EXEC_LATENCY_BY_OP
from repro.isa.trace import TraceSource
from repro.isa.uop import MicroOp
from repro.memory.hierarchy import MemoryHierarchy
from repro.rename.rename import RegisterRenamer


class SimulationError(RuntimeError):
    """Raised when a model invariant is violated (bug trap, not recovery)."""


class Simulator:
    """One machine configuration executing one trace."""

    #: Cycles without a commit before we declare the model wedged.
    DEADLOCK_LIMIT = 100_000

    def __init__(self, config: SimConfig, trace: TraceSource,
                 stats: Optional[SimStats] = None,
                 phase_profile=None) -> None:
        config.validate()
        self.config = config
        self.trace = trace
        self.stats = stats if stats is not None else SimStats()
        core = config.core
        self.delay = core.issue_to_execute_delay
        self.load_to_use = config.memory.l1d.latency
        self.now = 0

        self.hierarchy = MemoryHierarchy(config.memory, self.stats)
        self.branch_unit = BranchUnit(config.branch)
        self.fetch = FetchStage(trace, self.branch_unit, core, self.stats)
        self.renamer = RegisterRenamer(core)
        self.scoreboard = Scoreboard(core.int_prf + core.fp_prf,
                                     on_ready=self._route_ready)
        self.rob = ReorderBuffer(core.rob_entries)
        self.iq = IssueQueue(core.iq_entries)
        self.lsq = LoadStoreQueue(core.lq_entries, core.sq_entries,
                                  on_ready=self._route_ready)
        self.fus = FuPool(core)
        self.recovery = RecoveryBuffer()
        self.replay = ReplayController(self.delay)
        self.store_sets = StoreSets(core.store_set_ssid_entries,
                                    core.store_set_lfst_entries)
        self.policy = build_policy(config.sched, self.load_to_use, self.stats)

        # cycle -> [(uop, issue_id)]
        self._exec_queue: Dict[int, List[Tuple[MicroOp, int]]] = {}
        self._completion_queue: Dict[int, List[Tuple[MicroOp, int]]] = {}
        self._l1_miss_this_cycle = False
        self._l1_access_this_cycle = False
        self._issue_block_cycle = -1
        self._last_commit_cycle = 0

        # Optional per-phase instrumentation (repro.perf). Swapping the
        # bound method keeps the uninstrumented hot loop branch-free.
        self.phase_profile = phase_profile
        if phase_profile is not None:
            self.step = self._step_profiled  # type: ignore[method-assign]

    # ==================================================================
    # driving
    # ==================================================================

    @property
    def done(self) -> bool:
        return self.fetch.done and self.rob.empty

    def run(self, max_uops: Optional[int] = None,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until done / ``max_uops`` committed / ``max_cycles``."""
        stats = self.stats
        step = self.step
        uop_budget = float("inf") if max_uops is None else max_uops
        cycle_budget = float("inf") if max_cycles is None else max_cycles
        while (not self.done and stats.committed_uops < uop_budget
               and stats.cycles < cycle_budget):
            step()
        return stats

    def run_with_warmup(self, warmup_uops: int, measure_uops: int,
                        max_cycles: Optional[int] = None) -> SimStats:
        """Warm structures, then measure: returns warmed-region deltas."""
        self.run(max_uops=warmup_uops, max_cycles=max_cycles)
        baseline = self.stats.copy()
        self.run(max_uops=warmup_uops + measure_uops, max_cycles=max_cycles)
        return self.stats.delta_since(baseline)

    def functional_warmup(self, trace: TraceSource, uops: int) -> None:
        """Stream a trace through the caches and branch predictor without
        timing — the paper's 50M-instruction warmup phase (Section 3.2),
        affordable here because no pipeline state is simulated.

        Call before :meth:`run` with a *separate* trace instance built from
        the same seed; the timed run then replays the same stream over warm
        structures.
        """
        self._functional_stream(trace, uops)

    def fast_forward(self, uops: int) -> int:
        """Functionally consume ``uops`` from *this simulator's own*
        trace: caches and branch predictors are warmed, the OoO backend
        is bypassed entirely, and the trace cursor advances so a
        subsequent :meth:`run` continues where fast-forward stopped.

        This is the SMARTS-style functional warming mode the sampling
        driver (:mod:`repro.checkpoint.sampling`) interleaves with
        detailed measurement intervals; throughput is an order of
        magnitude above detailed simulation because no pipeline state is
        touched. Unlike :meth:`functional_warmup` (whose behaviour is
        golden-locked), fast-forward also trains the scheduling policy's
        per-PC hit/miss filter with each load's probe outcome — the
        filter's saturate-and-silence dynamics span far more committed
        loads than a measurement interval, so leaving it cold biases
        every filter-gated configuration toward Always-Hit behaviour.
        Returns the number of µops actually consumed (short when the
        trace exhausts).
        """
        return self._functional_stream(self.trace, uops, train_policy=True)

    def _functional_stream(self, trace: TraceSource, uops: int,
                           train_policy: bool = False) -> int:
        # The memory path is inlined against the cache internals (the
        # exact fill/probe semantics of SetAssocCache, hit path only):
        # this loop IS the sampling mode's throughput bound, and the
        # method-call round trips per µop were a measurable share of it.
        # State effects are identical to calling fill()/probe() — the
        # golden-locked functional_warmup shares this body.
        l1d, l2 = self.hierarchy.l1d, self.hierarchy.l2
        l1d_fill, l2_fill, l2_probe = l1d.fill, l2.fill, l2.probe
        l1_offset = l1d._offset_bits
        l1_mask = l1d._index_mask
        l1_set_bits = l1d._set_bits
        l1_sets = l1d._sets
        l2_offset = l2._offset_bits
        l2_mask = l2._index_mask
        l2_set_bits = l2._set_bits
        l2_sets = l2._sets
        train = self.hierarchy.prefetcher.train_and_prefetch
        predict = self.branch_unit.predict
        resolve = self.branch_unit.resolve
        on_load_commit = self.policy.on_load_commit if train_policy else None
        next_uop = trace.next_uop
        line_bytes = self.config.memory.l2.line_bytes
        for consumed in range(uops):
            uop = next_uop()
            if uop is None:
                return consumed
            if uop.is_mem:
                addr = uop.mem_addr
                l1_line = addr >> l1_offset
                l1_set = l1_sets[l1_line & l1_mask]
                l1_tag = l1_line >> l1_set_bits
                if on_load_commit is not None and uop.is_load:
                    # The probe outcome is what a detailed run would have
                    # committed (modulo in-flight effects): train the
                    # per-PC filter on it before the line is installed.
                    uop.l1_hit = l1_tag in l1_set
                    on_load_commit(uop)
                if l1_tag in l1_set:          # fill() hit path: LRU touch
                    l1d._stamp += 1
                    l1_set[l1_tag] = l1d._stamp
                else:
                    l1d_fill(addr)
                l2_line = addr >> l2_offset
                l2_set = l2_sets[l2_line & l2_mask]
                l2_tag = l2_line >> l2_set_bits
                if l2_tag in l2_set:          # probe hit: fill() = touch
                    l2._stamp += 1
                    l2_set[l2_tag] = l2._stamp
                else:
                    for line in train(uop.pc, addr):
                        l2_fill(line * line_bytes)
                    l2_fill(addr)
            elif uop.is_branch:
                uop.pred_taken, uop.pred_target = predict(uop)
                resolve(uop)
        return uops

    def step(self) -> None:
        now = self.now
        self._l1_miss_this_cycle = False
        self._l1_access_this_cycle = False
        self.fus.new_cycle()
        self._commit(now)
        self._complete(now)
        self._execute(now)
        self.scoreboard.tick(now)
        self._issue(now)
        self._rename_dispatch(now)
        self.fetch.tick(now)
        self.policy.on_cycle(self._l1_miss_this_cycle,
                             self._l1_access_this_cycle)
        self.replay.prune(now)
        self.stats.cycles += 1
        self.now = now + 1
        if now - self._last_commit_cycle > self.DEADLOCK_LIMIT:
            raise SimulationError(
                f"no commit for {self.DEADLOCK_LIMIT} cycles at cycle {now}; "
                f"ROB={len(self.rob)}, IQ={len(self.iq)}, "
                f"recovery={len(self.recovery)}")

    def _step_profiled(self) -> None:
        """`step` twin with per-phase wall timers (repro.perf.instrument).

        Installed over :meth:`step` at construction when a
        ``phase_profile`` is supplied; keep the phase bodies in lockstep
        with :meth:`step` when editing either.
        """
        profile = self.phase_profile
        stats = self.stats
        storms_before = stats.squash_events_miss + stats.squash_events_bank
        committed_before = stats.committed_uops
        now = self.now
        self._l1_miss_this_cycle = False
        self._l1_access_this_cycle = False
        self.fus.new_cycle()
        t0 = perf_counter()
        self._commit(now)
        t1 = perf_counter()
        self._complete(now)
        t2 = perf_counter()
        self._execute(now)
        t3 = perf_counter()
        self.scoreboard.tick(now)
        t4 = perf_counter()
        self._issue(now)
        t5 = perf_counter()
        self._rename_dispatch(now)
        t6 = perf_counter()
        self.fetch.tick(now)
        t7 = perf_counter()
        self.policy.on_cycle(self._l1_miss_this_cycle,
                             self._l1_access_this_cycle)
        self.replay.prune(now)
        t8 = perf_counter()
        seconds = profile.seconds
        seconds["commit"] += t1 - t0
        seconds["writeback"] += t2 - t1
        seconds["execute"] += t3 - t2
        seconds["wakeup"] += t4 - t3
        seconds["issue"] += t5 - t4
        seconds["rename"] += t6 - t5
        seconds["fetch"] += t7 - t6
        seconds["bookkeep"] += t8 - t7
        profile.cycles += 1
        profile.replay_storms += (stats.squash_events_miss
                                  + stats.squash_events_bank
                                  - storms_before)
        stats.cycles += 1
        self.now = now + 1
        profile.uops_committed += stats.committed_uops - committed_before
        if now - self._last_commit_cycle > self.DEADLOCK_LIMIT:
            raise SimulationError(
                f"no commit for {self.DEADLOCK_LIMIT} cycles at cycle {now}; "
                f"ROB={len(self.rob)}, IQ={len(self.iq)}, "
                f"recovery={len(self.recovery)}")

    # ==================================================================
    # commit & complete
    # ==================================================================

    def _commit(self, now: int) -> None:
        rob = self.rob
        head = rob.head()
        if head is None or not head.completed:
            return
        stats = self.stats
        policy = self.policy
        renamer = self.renamer
        retired = 0
        width = self.config.core.retire_width
        while retired < width:
            if head is None or not head.completed:
                break
            if head.wrong_path:
                raise SimulationError(
                    f"wrong-path µop reached ROB head: {head!r}")
            rob.retire_head()
            renamer.commit(head)
            if head.is_mem:
                self.lsq.release(head)
            head.commit_cycle = now
            stats.committed_uops += 1
            if head.is_load:
                policy.on_load_commit(head)
            policy.on_uop_commit(head)
            retired += 1
            head = rob.head()
        if retired:
            self._last_commit_cycle = now

    def _complete(self, now: int) -> None:
        entries = self._completion_queue.pop(now, None)
        if not entries:
            return
        for uop, issue_id in entries:
            if uop.dead or uop.num_issues != issue_id or not uop.executed:
                continue
            self.rob.note_completed(uop)

    def _schedule_completion(self, uop: MicroOp, cycle: int, now: int) -> None:
        if cycle <= now:
            self.rob.note_completed(uop)
        else:
            queue = self._completion_queue
            entry = queue.get(cycle)
            if entry is None:
                queue[cycle] = [(uop, uop.num_issues)]
            else:
                entry.append((uop, uop.num_issues))

    # ==================================================================
    # execute
    # ==================================================================

    def _execute(self, now: int) -> None:
        if self.replay.has_event(now):
            self._handle_replay(now)
        entries = self._exec_queue.pop(now, None)
        if not entries:
            return
        for uop, issue_id in entries:
            if uop.dead or uop.squashed or uop.num_issues != issue_id:
                continue
            self._execute_uop(uop, now)

    def _execute_uop(self, uop: MicroOp, now: int) -> None:
        if not self.scoreboard.operands_data_valid(uop, now):
            raise SimulationError(
                f"µop executed with invalid operands at cycle {now}: {uop!r}")
        uop.executed = True
        if uop.is_load:
            self._execute_load(uop, now)
        elif uop.is_store:
            self._execute_store(uop, now)
        elif uop.is_branch:
            self._execute_branch(uop, now)
        else:
            latency = EXEC_LATENCY_BY_OP[uop.opclass]
            self._schedule_completion(uop, now + latency - 1, now)
        if uop.is_mem:
            self.iq.release(uop)
        else:
            self.recovery.remove(uop)

    def _execute_load(self, uop: MicroOp, now: int) -> None:
        forwarding_store = self.lsq.forwarding_store(uop)
        if forwarding_store is not None:
            uop.forwarded = True
            uop.l1_hit = True
            alat = self.load_to_use
            self.stats.store_forwards += 1
        else:
            outcome = self.hierarchy.load(uop.mem_addr, uop.pc, now)
            alat = outcome.latency
            uop.l1_hit = outcome.hit
            self._l1_access_this_cycle = True
            if not outcome.hit:
                self._l1_miss_this_cycle = True
        uop.actual_latency = alat
        issue = uop.issue_cycle
        if uop.spec_woken:
            if alat > uop.promised_latency:
                cause = CAUSE_L1_MISS if not uop.l1_hit else CAUSE_BANK_CONFLICT
                # The checker fires when the *promise* comes due (one cycle
                # before the data was supposed to return). A shifted second
                # load therefore detects one cycle later than its pair —
                # which is why two same-cycle loads that both miss trigger
                # two squash events under Schedule Shifting (Section 5.1,
                # drawback 3).
                detection = issue + self.delay + uop.promised_latency - 1
                self.replay.schedule(
                    ReplayEvent(uop, cause, alat), max(detection, now + 1))
        elif uop.pdst >= 0:
            # Conservative: dependents cannot issue before the hit/miss
            # outcome is known (one cycle before data return, Section 1),
            # which costs hits the whole issue-to-execute delay (Figure 3).
            # Misses resolve with the refill timing already known, so their
            # dependents issue at the corrected data-arrival point.
            wake = max(issue + alat, issue + self.delay + self.load_to_use)
            self.scoreboard.broadcast(
                uop.pdst, wake, issue + self.delay + 1 + alat)
        self._schedule_completion(uop, uop.exec_start + alat - 1, now)

    def _execute_store(self, uop: MicroOp, now: int) -> None:
        offender = self.lsq.detect_violation(uop)
        self.hierarchy.store(uop.mem_addr, uop.pc, now)
        self.store_sets.store_done(uop)
        self.lsq.store_executed_wakeups(uop)
        self._schedule_completion(uop, now, now)
        if offender is not None and not uop.wrong_path \
                and not offender.wrong_path:
            self.stats.memory_order_violations += 1
            self.store_sets.train_violation(uop.pc, offender.pc)
            self._violation_squash(offender, now)

    def _execute_branch(self, uop: MicroOp, now: int) -> None:
        self._schedule_completion(uop, now, now)
        if uop.wrong_path:
            return      # wrong-path branches never redirect anything
        self.stats.branches += 1
        mispredicted = self.branch_unit.resolve(uop)
        if mispredicted:
            self.stats.branch_mispredicts += 1
            self._branch_squash(uop, now)

    # ==================================================================
    # replay (the Alpha-style squash of Section 3.1)
    # ==================================================================

    def _handle_replay(self, now: int) -> None:
        events = [ev for ev in self.replay.pop_events(now)
                  if not ev.load.dead]
        if not events:
            return
        cause = events[0].cause            # oldest trigger attributes the event
        doomed = self.replay.squashable_uops(now)
        for uop in doomed:
            uop.squashed = True
            uop.replay_pending = True
            if uop.pdst >= 0:
                self.scoreboard.unready(uop.pdst)
        # Correct the triggering loads' destinations.
        for event in events:
            load = event.load
            if load.pdst >= 0:
                issue = load.issue_cycle
                wake = max(issue + event.corrected_latency, now + 1)
                self.scoreboard.broadcast(
                    load.pdst, wake,
                    issue + self.delay + 1 + event.corrected_latency)
        self._rearm_waiting_uops()
        if doomed or self.delay > 0:
            # Handling the misspeculation blocks issue for a cycle even
            # when every in-flight µop was already squashed by an earlier
            # event this window — the checker still fires (this is how two
            # same-cycle missing loads cost two replays under Schedule
            # Shifting). With D=0 the window is definitionally empty and
            # no handling happens: SpecSched_0 stays cycle-identical to
            # Baseline_0.
            self.stats.record_replayed(cause, len(doomed))
            self._issue_block_cycle = now   # "an additional issue cycle is lost"

    def _rearm_waiting_uops(self) -> None:
        """Recompute readiness for every µop still waiting to (re-)issue.

        After a squash, previously fired wakeups may be stale (their
        producer got squashed or corrected); rebuilding the ready lists
        from scoreboard truth is simple and safe — the populations are
        bounded by the IQ and the in-flight window.
        """
        waiting: List[MicroOp] = [
            u for u in self.iq.occupants()
            if not u.executed and (u.num_issues == 0 or u.replay_pending)
        ]
        waiting.extend(u for u in self.recovery.members() if u.replay_pending)
        self.iq.clear_ready()
        self.recovery.clear_ready()
        rewatch = self.scoreboard.rewatch
        route_ready = self._route_ready
        for uop in waiting:
            pending = rewatch(uop)
            store_dep = uop.store_dep
            if store_dep is not None and not store_dep.executed:
                pending = uop.pending = pending + 1
                # still registered in the LSQ waiter list
            if pending == 0:
                route_ready(uop)

    # ==================================================================
    # issue
    # ==================================================================

    def _route_ready(self, uop: MicroOp) -> None:
        """Scoreboard/LSQ callback: a µop became source-complete."""
        if uop.dead or uop.executed:
            return
        if uop.num_issues > 0 and not uop.replay_pending:
            return      # already in flight; nothing to wake
        if uop.in_iq:
            self.iq.make_ready(uop)
        elif uop.replay_pending:
            self.recovery.make_ready(uop)

    def _issue(self, now: int) -> None:
        if self._issue_block_cycle == now:
            self.stats.issue_cycles_lost += 1
            return
        budget = self.config.core.issue_width
        # Recovery buffer has priority over the scheduler; the IQ fills
        # the holes in replayed issue groups (Section 3.1).
        ready = self.recovery.take_ready()
        if ready:
            budget = self._issue_from(ready, budget, now)
        if budget > 0:
            ready = self.iq.take_ready()
            if ready:
                self._issue_from(ready, budget, now)

    def _issue_from(self, candidates: List[MicroOp], budget: int,
                    now: int) -> int:
        for uop in list(candidates):
            if budget == 0:
                break
            if uop.dead or uop.executed:
                continue
            if uop.num_issues > 0 and not uop.replay_pending:
                continue
            loads_before = self.fus.loads_issued_this_cycle()
            if not self.fus.try_allocate(uop.opclass, now):
                continue
            self._do_issue(uop, now, loads_before)
            budget -= 1
        return budget

    def _do_issue(self, uop: MicroOp, now: int, loads_before: int) -> None:
        first_issue = uop.num_issues == 0
        was_replay = uop.replay_pending
        uop.issue_cycle = now
        uop.num_issues += 1
        uop.squashed = False
        uop.replay_pending = False
        exec_start = uop.exec_start = now + self.delay + 1
        queue = self._exec_queue
        entry = queue.get(exec_start)
        if entry is None:
            queue[exec_start] = [(uop, uop.num_issues)]
        else:
            entry.append((uop, uop.num_issues))
        self.replay.note_issue(uop, now)

        stats = self.stats
        stats.issued_total += 1
        if first_issue:
            stats.unique_issued += 1
        else:
            self.recovery.replays_issued += 1
        if uop.wrong_path:
            stats.wrong_path_issued += 1

        # Wakeup broadcast.
        if uop.is_load:
            decision = self.policy.decide(uop, loads_before)
            uop.spec_woken = decision.speculate
            uop.promised_latency = decision.promised_latency
            if decision.speculate:
                stats.speculative_loads += 1
                if uop.pdst >= 0:
                    self.scoreboard.broadcast(
                        uop.pdst, now + decision.promised_latency,
                        now + decision.promised_latency + self.delay + 1)
            else:
                stats.conservative_loads += 1
                if uop.pdst >= 0:
                    self.scoreboard.unready(uop.pdst)
        else:
            latency = EXEC_LATENCY_BY_OP[uop.opclass]
            uop.spec_woken = True
            uop.promised_latency = latency
            if uop.pdst >= 0:
                self.scoreboard.broadcast(
                    uop.pdst, now + latency, now + latency + self.delay + 1)

        # Structure management.
        if uop.is_mem:
            self.iq.remove_from_ready(uop)   # keeps its IQ entry
        elif uop.in_iq:
            self.iq.release(uop)             # first issue: move to recovery
            self.recovery.insert(uop)
        elif was_replay:
            self.recovery.remove_from_ready(uop)

    # ==================================================================
    # rename & dispatch
    # ==================================================================

    def _rename_dispatch(self, now: int) -> None:
        # Peek/pop keeps stalled µops in the frontend pipe instead of the
        # old deliver-everything-then-undeliver round trip, which paid a
        # deque drain + refill every stalled cycle.
        fetch = self.fetch
        rob, iq, lsq = self.rob, self.iq, self.lsq
        renamer, scoreboard = self.renamer, self.scoreboard
        for _ in range(self.config.core.rename_width):
            uop = fetch.peek(now)
            if uop is None:
                return
            if (rob.full or iq.full
                    or not renamer.can_rename(uop)
                    or (uop.is_load and lsq.lq_full())
                    or (uop.is_store and lsq.sq_full())):
                return
            fetch.pop()
            renamer.rename(uop)
            if uop.pdst >= 0:
                scoreboard.unready(uop.pdst)
            rob.allocate(uop)
            iq.insert(uop)
            scoreboard.watch(uop)
            if uop.is_mem:
                lsq.insert(uop)
                dep = self.store_sets.lookup_dependence(uop)
                if dep is not None:
                    lsq.add_store_dependence(uop, dep)
            if uop.pending == 0:
                iq.make_ready(uop)

    # ==================================================================
    # squashes (branch misprediction, memory-order violation)
    # ==================================================================

    def _branch_squash(self, branch: MicroOp, now: int) -> None:
        doomed = self.rob.squash_younger(branch.seq)   # youngest first
        self._kill_uops(doomed)
        self.renamer.rollback(doomed)
        self.fetch.redirect(now)

    def _violation_squash(self, offender: MicroOp, now: int) -> None:
        doomed = self.rob.squash_younger(offender.seq, inclusive=True)
        self._kill_uops(doomed)
        self.renamer.rollback(doomed)
        refetch = [u.clone_arch() for u in reversed(doomed)
                   if not u.wrong_path]
        self.fetch.redirect(now)
        self.fetch.inject_refetch(refetch)

    def _kill_uops(self, doomed: List[MicroOp]) -> None:
        if not doomed:
            return
        oldest = min(u.seq for u in doomed)
        for uop in doomed:
            uop.dead = True
            self.scoreboard.drop_waiter(uop)
            if uop.is_store:
                self.store_sets.store_done(uop)
        self.iq.squash_younger(oldest - 1)
        self.recovery.squash_younger(oldest - 1)
        self.lsq.squash_younger(oldest - 1)

    # ==================================================================
    # state protocol (repro.checkpoint)
    # ==================================================================

    #: Bumped when the simulator-level state layout changes.
    STATE_VERSION = 1

    def state_dict(self) -> Dict:
        """Complete machine state: every component through the uniform
        protocol, with in-flight µops deduplicated into one identity-
        preserving table (see :class:`repro.checkpoint.state.UopCodec`).

        Restoring the result into a fresh simulator built from the same
        configuration and workload reproduces the continued run's
        ``SimStats`` bit-identically (the round-trip suite under
        ``tests/checkpoint/`` holds this claim in place).
        """
        ctx = UopCodec()
        state = {
            "version": self.STATE_VERSION,
            "now": self.now,
            "issue_block_cycle": self._issue_block_cycle,
            "last_commit_cycle": self._last_commit_cycle,
            "l1_miss_this_cycle": self._l1_miss_this_cycle,
            "l1_access_this_cycle": self._l1_access_this_cycle,
            "exec_queue": [
                (cycle, [(ctx.ref(uop), issue_id)
                         for uop, issue_id in entries])
                for cycle, entries in self._exec_queue.items()],
            "completion_queue": [
                (cycle, [(ctx.ref(uop), issue_id)
                         for uop, issue_id in entries])
                for cycle, entries in self._completion_queue.items()],
            "stats": self.stats.state_dict(),
            "trace": self.trace.state_dict(),
            "fetch": self.fetch.state_dict(ctx),
            "branch_unit": self.branch_unit.state_dict(),
            "renamer": self.renamer.state_dict(),
            "scoreboard": self.scoreboard.state_dict(ctx),
            "rob": self.rob.state_dict(ctx),
            "iq": self.iq.state_dict(ctx),
            "lsq": self.lsq.state_dict(ctx),
            "fus": self.fus.state_dict(),
            "recovery": self.recovery.state_dict(ctx),
            "replay": self.replay.state_dict(ctx),
            "store_sets": self.store_sets.state_dict(ctx),
            "policy": self.policy.state_dict(),
            "hierarchy": self.hierarchy.state_dict(),
        }
        # Encode the µop table last: serializing components (and then the
        # table itself, via store_dep chains) may register further µops.
        state["uops"] = ctx.table()
        state["uop_slots"] = list(UOP_SLOTS)
        return state

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this simulator.

        The simulator must have been constructed from the same
        configuration and an equivalent trace source (same workload and
        seed) — the trace cursor, like every component, is overwritten.
        """
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"checkpoint state version {state.get('version')} "
                f"(this build reads {self.STATE_VERSION})")
        ctx = UopDecoder(state["uops"], state.get("uop_slots"))
        self.now = state["now"]
        self._issue_block_cycle = state["issue_block_cycle"]
        self._last_commit_cycle = state["last_commit_cycle"]
        self._l1_miss_this_cycle = state["l1_miss_this_cycle"]
        self._l1_access_this_cycle = state["l1_access_this_cycle"]
        self._exec_queue = {
            cycle: [(ctx.uop(ref), issue_id) for ref, issue_id in entries]
            for cycle, entries in state["exec_queue"]}
        self._completion_queue = {
            cycle: [(ctx.uop(ref), issue_id) for ref, issue_id in entries]
            for cycle, entries in state["completion_queue"]}
        self.stats.load_state_dict(state["stats"])
        self.trace.load_state_dict(state["trace"])
        self.fetch.load_state_dict(state["fetch"], ctx)
        self.branch_unit.load_state_dict(state["branch_unit"])
        self.renamer.load_state_dict(state["renamer"])
        self.scoreboard.load_state_dict(state["scoreboard"], ctx)
        self.rob.load_state_dict(state["rob"], ctx)
        self.iq.load_state_dict(state["iq"], ctx)
        self.lsq.load_state_dict(state["lsq"], ctx)
        self.fus.load_state_dict(state["fus"])
        self.recovery.load_state_dict(state["recovery"], ctx)
        self.replay.load_state_dict(state["replay"], ctx)
        self.store_sets.load_state_dict(state["store_sets"], ctx)
        self.policy.load_state_dict(state["policy"])
        self.hierarchy.load_state_dict(state["hierarchy"])

    # ==================================================================
    # introspection helpers (tests, examples)
    # ==================================================================

    def occupancy(self) -> Dict[str, int]:
        return {
            "rob": len(self.rob),
            "iq": len(self.iq),
            "recovery": len(self.recovery),
            "lq": len(self.lsq.loads),
            "sq": len(self.lsq.stores),
        }
