"""The cycle-level out-of-order core: a declarative stage-list driver.

One :class:`Simulator` models the machine of Table 1 executing one trace
under one configuration. The machine itself lives in
:mod:`repro.pipeline.stages` — stage objects connected by the typed ports,
wires and latches of :mod:`repro.pipeline.ports` — and the driver's
:meth:`Simulator.step` is a tick over that stage list, nothing more. Tick
order, wiring diagram and timing contract (Section 4.1 / Figure 1)
are documented normatively in ``docs/ARCHITECTURE.md``."""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

from repro.backend.fu import FuPool
from repro.backend.iq import IssueQueue
from repro.backend.lsq import LoadStoreQueue
from repro.backend.prf import Scoreboard
from repro.backend.recovery import RecoveryBuffer
from repro.backend.replay import ReplayController
from repro.backend.rob import ReorderBuffer
from repro.backend.storesets import StoreSets
from repro.common.config import SimConfig
from repro.common.stats import SimStats
from repro.core.composed import build_policy
from repro.frontend.branch_unit import BranchUnit
from repro.frontend.fetch import FetchStage
from repro.isa.trace import TraceSource
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline import checkpointing
from repro.pipeline.warming import warm_stream
from repro.pipeline.ports import DelayQueue, Port, Wire
from repro.pipeline.stages import build_stages
from repro.pipeline.stages.base import SimulationError, Stage
from repro.rename.rename import RegisterRenamer

__all__ = ["SimulationError", "Simulator"]


class Simulator:
    """One machine configuration executing one trace."""

    #: Cycles without a commit before we declare the model wedged.
    DEADLOCK_LIMIT = 100_000
    #: Bumped when the simulator-level state layout changes.
    STATE_VERSION = 1

    def __init__(
        self,
        config: SimConfig,
        trace: TraceSource,
        stats: Optional[SimStats] = None,
        phase_profile=None,
        stage_overrides=None,
        extra_stages=(),
        event_bus=None,
    ) -> None:
        """Build the structures, then wire the stage list over them
        (see :func:`repro.pipeline.stages.build_stages`).

        ``event_bus`` (a :class:`repro.telemetry.events.EventBus`) turns
        on per-µop lifecycle events: the event-emitting stage subclasses
        are merged under any explicit ``stage_overrides``. When it is
        ``None`` (the default) the telemetry package is not even
        imported and the machine is built from the plain stage classes.
        """
        config.validate()
        self.config = config
        self.trace = trace
        self.stats = stats if stats is not None else SimStats()
        core = config.core
        self.delay = core.issue_to_execute_delay
        self.load_to_use = config.memory.l1d.latency
        self.now = 0

        # Shared structures (serialized via checkpointing's registry).
        self.hierarchy = MemoryHierarchy(config.memory, self.stats)
        self.branch_unit = BranchUnit(config.branch)
        self.fetch = FetchStage(trace, self.branch_unit, core, self.stats)
        self.renamer = RegisterRenamer(core)
        self.ready_port = Port("ready", payload="MicroOp")
        self.scoreboard = Scoreboard(core.int_prf + core.fp_prf, on_ready=self.ready_port.send)
        self.rob = ReorderBuffer(core.rob_entries)
        self.iq = IssueQueue(core.iq_entries)
        self.lsq = LoadStoreQueue(core.lq_entries, core.sq_entries, on_ready=self.ready_port.send)
        self.fus = FuPool(core)
        self.recovery = RecoveryBuffer()
        self.replay = ReplayController(self.delay)
        self.store_sets = StoreSets(core.store_set_ssid_entries, core.store_set_lfst_entries)
        self.policy = build_policy(config.sched, self.load_to_use, self.stats)

        # Inter-stage latches and wires (see docs/ARCHITECTURE.md).
        self.exec_latch = DelayQueue("issue->execute")
        self.completion_latch = DelayQueue("execute->writeback")
        self.issue_block = Wire("issue_block", -1)
        self.last_commit = Wire("last_commit", 0)
        self.l1_miss = Wire("l1_miss_this_cycle", False)
        self.l1_access = Wire("l1_access_this_cycle", False)

        self.event_bus = event_bus
        if event_bus is not None:
            from repro.telemetry.stages import TELEMETRY_STAGES

            merged = dict(TELEMETRY_STAGES)
            merged.update(stage_overrides or {})
            stage_overrides = merged
        self.stages = build_stages(self, overrides=stage_overrides, extra=extra_stages)

        # Optional per-stage instrumentation (repro.perf). Swapping the
        # bound method keeps the uninstrumented hot loop branch-free.
        self.phase_profile = phase_profile
        if phase_profile is not None:
            self.step = self._step_profiled  # type: ignore[method-assign]

    def stage(self, name: str) -> Stage:
        """The stage object named ``name`` (KeyError when absent)."""
        by_name = {stage.name: stage for stage in self.stages}
        return by_name[name]

    # -- driving ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when the trace is drained and the ROB is empty."""
        return self.fetch.done and self.rob.empty

    def run(self, max_uops: Optional[int] = None, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until done / ``max_uops`` committed / ``max_cycles``."""
        stats = self.stats
        step = self.step
        uop_budget = float("inf") if max_uops is None else max_uops
        cycle_budget = float("inf") if max_cycles is None else max_cycles
        while (not self.done and stats.committed_uops < uop_budget and stats.cycles < cycle_budget):
            step()
        return stats

    def run_with_warmup(
        self, warmup_uops: int, measure_uops: int, max_cycles: Optional[int] = None
    ) -> SimStats:
        """Warm structures, then measure: returns warmed-region deltas."""
        self.run(max_uops=warmup_uops, max_cycles=max_cycles)
        baseline = self.stats.copy()
        self.run(max_uops=warmup_uops + measure_uops, max_cycles=max_cycles)
        return self.stats.delta_since(baseline)

    def functional_warmup(self, trace: TraceSource, uops: int, mode: Optional[str] = None) -> None:
        """Timing-free cache/predictor warmup from a *separate* trace
        instance (Section 3.2). ``mode`` picks the warming tier
        (scalar/vectorized/auto — bit-identical state either way); see
        :mod:`repro.pipeline.warming`."""
        warm_stream(self, trace, uops, mode=mode)

    def fast_forward(self, uops: int, mode: Optional[str] = None) -> int:
        """Functionally consume ``uops`` from this simulator's *own* trace
        (cursor advances; the policy's hit/miss filter trains); returns
        the count consumed. ``mode`` picks the warming tier — see
        :mod:`repro.pipeline.warming`."""
        return warm_stream(self, self.trace, uops, train_policy=True, mode=mode)

    def step(self) -> None:
        """Advance the machine one cycle: tick every stage in order."""
        now = self.now
        self.l1_miss.value = self.l1_access.value = False
        self.fus.new_cycle()
        for stage in self.stages:
            stage.tick(now)
        self.stats.cycles += 1
        self.now = now + 1
        if now - self.last_commit.value > self.DEADLOCK_LIMIT:
            self._raise_deadlock(now)

    def _step_profiled(self) -> None:
        """:meth:`step` twin with per-stage timers (repro.perf.instrument)."""
        profile = self.phase_profile
        stats = self.stats
        storms_before = stats.squash_events_miss + stats.squash_events_bank
        committed_before = stats.committed_uops
        now = self.now
        self.l1_miss.value = self.l1_access.value = False
        self.fus.new_cycle()
        seconds = profile.seconds
        for stage in self.stages:
            start = perf_counter()
            stage.tick(now)
            seconds[stage.name] = seconds.get(stage.name, 0.0) + perf_counter() - start
        profile.cycles += 1
        profile.replay_storms += stats.squash_events_miss + stats.squash_events_bank - storms_before
        stats.cycles += 1
        self.now = now + 1
        profile.uops_committed += stats.committed_uops - committed_before
        if now - self.last_commit.value > self.DEADLOCK_LIMIT:
            self._raise_deadlock(now)

    def _raise_deadlock(self, now: int) -> None:
        raise SimulationError(
            f"no commit for {self.DEADLOCK_LIMIT} cycles at cycle {now}; "
            f"ROB={len(self.rob)}, IQ={len(self.iq)}, recovery={len(self.recovery)}"
        )

    # -- state protocol (repro.checkpoint) --------------------------------

    def state_dict(self) -> Dict:
        """Complete machine state as plain data (every component through the
        uniform protocol) — see :mod:`repro.pipeline.checkpointing`."""
        return checkpointing.machine_state_dict(self)

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this simulator
        (same configuration, equivalent trace source required)."""
        checkpointing.load_machine_state_dict(self, state)

    # -- introspection helpers (tests, examples) --------------------------

    def occupancy(self) -> Dict[str, int]:
        """Current ROB/IQ/recovery/LQ/SQ occupancies."""
        return {
            "rob": len(self.rob),
            "iq": len(self.iq),
            "recovery": len(self.recovery),
            "lq": len(self.lsq.loads),
            "sq": len(self.lsq.stores),
        }
