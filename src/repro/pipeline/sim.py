"""Convenience runners: one workload under one configuration.

The experiment harness and the examples go through these entry points, so
defaults (warmup/measure µop counts) are centralized here. Counts are small
relative to the paper's 50M+100M because the synthetic workloads are
stationary (DESIGN.md §2); override them for higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.common.config import SimConfig
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.pipeline.cpu import Simulator
from repro.traces.registry import TraceWorkload, resolve_workload
from repro.workloads.spec import WorkloadSpec

DEFAULT_WARMUP_UOPS = 3_000
DEFAULT_MEASURE_UOPS = 20_000
#: Functional (timing-free) cache/predictor warmup before the timed run —
#: the analogue of the paper's 50M-instruction warmup phase.
DEFAULT_FUNCTIONAL_WARMUP_UOPS = 60_000
#: Generous safety net; runs normally end on the µop budget long before.
DEFAULT_MAX_CYCLES = 3_000_000


@dataclass
class RunResult:
    """Outcome of one (workload, configuration) simulation."""

    workload: str
    config_name: str
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def run_workload(
    workload: Union[str, WorkloadSpec],
    config: Union[str, SimConfig],
    warmup_uops: int = DEFAULT_WARMUP_UOPS,
    measure_uops: int = DEFAULT_MEASURE_UOPS,
    seed: Optional[int] = None,
    banked: bool = True,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    functional_warmup_uops: int = DEFAULT_FUNCTIONAL_WARMUP_UOPS,
) -> RunResult:
    """Run ``workload`` under ``config`` and return measured-region stats.

    ``config`` may be a preset name ("SpecSched_4_Crit") or a full
    :class:`SimConfig`; ``banked`` only applies when a name is given.
    ``workload`` may be a suite name, any other workload-registry name or
    path (scenario spec, recorded trace), or a workload object.
    """
    spec = resolve_workload(workload)
    if isinstance(spec, TraceWorkload):
        needed = warmup_uops + measure_uops
        if spec.info.uop_count < needed:
            raise ValueError(
                f"trace {spec.path} holds only {spec.info.uop_count} µops "
                f"but the timed run needs warmup+measure = {needed}; "
                f"re-record with more µops (`repro trace record --uops N`) "
                f"or lower the volumes")
    if isinstance(config, str):
        config = make_config(config, banked=banked)
    trace = spec.build_trace(seed)
    sim = Simulator(config, trace)
    if functional_warmup_uops:
        sim.functional_warmup(spec.build_trace(seed), functional_warmup_uops)
    stats = sim.run_with_warmup(warmup_uops, measure_uops,
                                max_cycles=max_cycles)
    return RunResult(workload=spec.name, config_name=config.name, stats=stats)


def run_config(
    config: Union[str, SimConfig],
    workloads,
    **kwargs,
) -> dict:
    """Run several workloads under one configuration; name -> RunResult.

    Each entry of ``workloads`` may be a suite name or a
    :class:`WorkloadSpec`, exactly as :func:`run_workload` accepts.
    """
    results = {}
    for workload in workloads:
        result = run_workload(workload, config, **kwargs)
        results[result.workload] = result
    return results
