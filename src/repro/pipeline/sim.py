"""Convenience runners: one workload under one configuration.

The experiment harness and the examples go through these entry points, so
defaults (warmup/measure µop counts) are centralized here. Counts are small
relative to the paper's 50M+100M because the synthetic workloads are
stationary (DESIGN.md §2); override them for higher-fidelity runs.

Execution funnels through the engine's
:func:`~repro.experiments.engine.simulate_payload` — the same worker
entry point sweeps and sampled runs use — so checkpoint and sampling
options cannot diverge between the one-shot and batch paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.common.config import SimConfig
from repro.common.stats import SimStats
from repro.core.presets import make_config
from repro.traces.registry import resolve_workload
from repro.workloads.spec import WorkloadSpec

DEFAULT_WARMUP_UOPS = 3_000
DEFAULT_MEASURE_UOPS = 20_000
#: Functional (timing-free) cache/predictor warmup before the timed run —
#: the analogue of the paper's 50M-instruction warmup phase.
DEFAULT_FUNCTIONAL_WARMUP_UOPS = 60_000
#: Generous safety net; runs normally end on the µop budget long before.
DEFAULT_MAX_CYCLES = 3_000_000


@dataclass
class RunResult:
    """Outcome of one (workload, configuration) simulation."""

    workload: str
    config_name: str
    stats: SimStats

    @property
    def ipc(self) -> float:
        """Committed µops per cycle over the measured region."""
        return self.stats.ipc


def build_payload(
    workload: Union[str, WorkloadSpec],
    config: Union[str, SimConfig],
    warmup_uops: int = DEFAULT_WARMUP_UOPS,
    measure_uops: int = DEFAULT_MEASURE_UOPS,
    seed: Optional[int] = None,
    banked: bool = True,
    max_cycles: Optional[int] = DEFAULT_MAX_CYCLES,
    functional_warmup_uops: int = DEFAULT_FUNCTIONAL_WARMUP_UOPS,
    checkpoint=None,
):
    """Resolve arguments into one engine cell payload (plus its pieces).

    Returns ``(payload, resolved workload, SimConfig)``.
    """
    from repro.experiments.engine import base_cell_payload

    spec = resolve_workload(workload)
    if isinstance(config, str):
        config = make_config(config, banked=banked)
    if seed is None:
        # Trace workloads carry no seed (the stream was fixed at record
        # time and build_trace ignores it); specs/scenarios default to
        # their own.
        seed = int(getattr(spec, "seed", 0) or 0)
    payload = base_cell_payload(
        config,
        spec,
        warmup_uops=warmup_uops,
        measure_uops=measure_uops,
        functional_warmup_uops=functional_warmup_uops,
        seed=seed,
    )
    if max_cycles is not None:
        payload["max_cycles"] = max_cycles
    if checkpoint is not None:
        from repro.checkpoint.sampling import checkpoint_reference

        payload["checkpoint"] = checkpoint_reference(checkpoint)
    return payload, spec, config


def run_workload(
    workload: Union[str, WorkloadSpec],
    config: Union[str, SimConfig],
    warmup_uops: int = DEFAULT_WARMUP_UOPS,
    measure_uops: int = DEFAULT_MEASURE_UOPS,
    seed: Optional[int] = None,
    banked: bool = True,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    functional_warmup_uops: int = DEFAULT_FUNCTIONAL_WARMUP_UOPS,
    checkpoint=None,
    collector=None,
) -> RunResult:
    """Run ``workload`` under ``config`` and return measured-region stats.

    ``config`` may be a preset name ("SpecSched_4_Crit") or a full
    :class:`SimConfig`; ``banked`` only applies when a name is given.
    ``workload`` may be a suite name, any other workload-registry name or
    path (scenario spec, recorded trace), or a workload object.
    ``checkpoint`` (a ``.ckpt`` path) resumes from saved warm state
    instead of starting cold — warmup/measure volumes then count from
    the checkpointed position. ``collector`` (a
    :class:`repro.telemetry.probes.MetricsCollector`) instruments the
    run with the metric probes; the distilled table lands in the
    result's ``stats.telemetry``.
    """
    from repro.experiments.engine import simulate_payload

    payload, spec, config = build_payload(
        workload,
        config,
        warmup_uops=warmup_uops,
        measure_uops=measure_uops,
        seed=seed,
        banked=banked,
        max_cycles=max_cycles,
        functional_warmup_uops=functional_warmup_uops,
        checkpoint=checkpoint,
    )
    stats = SimStats.from_dict(simulate_payload(payload, collector=collector))
    return RunResult(workload=spec.name, config_name=config.name, stats=stats)


def run_config(
    config: Union[str, SimConfig],
    workloads,
    **kwargs,
) -> dict:
    """Run several workloads under one configuration; name -> RunResult.

    Each entry of ``workloads`` may be a suite name or a
    :class:`WorkloadSpec`, exactly as :func:`run_workload` accepts.
    """
    results = {}
    for workload in workloads:
        result = run_workload(workload, config, **kwargs)
        results[result.workload] = result
    return results
