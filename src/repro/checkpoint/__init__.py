"""Checkpointing and SMARTS-style interval sampling.

Three layers:

* :mod:`repro.checkpoint.state` — the µop codec behind the uniform
  ``state_dict()`` / ``load_state_dict()`` protocol every stateful
  pipeline component implements;
* :mod:`repro.checkpoint.format` — the versioned, zlib-compressed,
  content-digested on-disk checkpoint format (``.ckpt`` files) and the
  save/load/restore entry points;
* :mod:`repro.checkpoint.rebase` — cross-configuration re-targeting of
  purely functional checkpoints (one warming pass serves a whole
  scheduling-policy grid);
* :mod:`repro.checkpoint.sampling` — :class:`SamplingSpec` and the
  sampled-run drivers (per-interval engine cells, checkpoint-chained
  cells and the chained single-pass runner) with confidence-interval
  aggregation.

Submodules are imported lazily (PEP 562): :mod:`repro.pipeline.cpu`
imports the codec from :mod:`~repro.checkpoint.state`, while
:mod:`~repro.checkpoint.format` imports the simulator — eager package
imports would make that a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "UopCodec": "repro.checkpoint.state",
    "UopDecoder": "repro.checkpoint.state",
    "CheckpointError": "repro.checkpoint.format",
    "CheckpointInfo": "repro.checkpoint.format",
    "CHECKPOINT_SUFFIX": "repro.checkpoint.format",
    "read_info": "repro.checkpoint.format",
    "load_checkpoint": "repro.checkpoint.format",
    "save_checkpoint": "repro.checkpoint.format",
    "restore_simulator": "repro.checkpoint.format",
    "RebaseError": "repro.checkpoint.rebase",
    "rebase_checkpoint": "repro.checkpoint.rebase",
    "SamplingSpec": "repro.checkpoint.sampling",
    "SampledResult": "repro.checkpoint.sampling",
    "run_sampled": "repro.checkpoint.sampling",
    "run_sampled_cells_chained": "repro.checkpoint.sampling",
    "chained_cell_payloads": "repro.checkpoint.sampling",
    "sample_payloads": "repro.checkpoint.sampling",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
