"""Cross-configuration checkpoint rebase: one warming pass, many configs.

Functional warming (:mod:`repro.pipeline.functional` and its vectorized
twin) mutates exactly five state islands: the trace cursor, the cache
hierarchy (fills, LRU order, prefetcher training), the branch unit, the
stats block, and — only under the ``filter_ctr`` hit/miss policy — the
per-PC :class:`~repro.core.hm_filter.HitMissFilter`. Every one of those
is a deterministic function of the µop stream and the *memory/branch*
configuration alone; nothing the scheduling-policy parameters control
(issue-to-execute delay, shifting, the global counter, criticality
tables) is touched before the first detailed cycle.

So a *purely functional* checkpoint (zero committed µops, zero cycles,
no in-flight state) taken under configuration A can be re-targeted to
configuration B whenever A and B agree on the memory and branch
configurations: keep the five warmed islands, take everything else from
a freshly built B machine, and the result is byte-identical to having
warmed B natively over the same stream. That is what :func:`rebase_
checkpoint` does — and why one warming pass per workload can serve the
whole fig8 preset grid (the presets differ only in scheduling policy).

Compatibility rules, enforced before any state is assembled:

* source must be purely functional (detailed state cannot be re-targeted
  — ROB/IQ/rename contents are shaped by the scheduling policy);
* ``memory`` and ``branch`` configuration dicts must be equal (they size
  and seed the warmed islands);
* a ``filter_ctr`` target needs a ``filter_ctr`` source with the same
  filter shape (entries, counter bits, reset interval, silence bit) —
  the warmed filter table transplants only into an identically shaped
  one. A filterless target simply drops the source's filter state
  (policy tables reset, caches/predictors carried over).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from repro.common.config import HitMissPolicy, SimConfig
from repro.checkpoint.format import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    CheckpointInfo,
    load_checkpoint,
    write_checkpoint,
)

__all__ = [
    "RebaseError",
    "check_rebase_compatible",
    "filter_shape",
    "rebase_checkpoint",
]


class RebaseError(CheckpointError):
    """Source checkpoint cannot be re-targeted to the requested config."""


#: The sched-config fields that size the hit/miss filter: a warmed filter
#: table transplants only between identically shaped filters.
FILTER_SHAPE_FIELDS = ("filter_entries", "filter_ctr_bits",
                       "filter_reset_interval", "filter_silence_bit")


def filter_shape(sched: Dict[str, Any]) -> Optional[Tuple]:
    """The filter's shape tuple for a sched-config dict, or ``None`` for
    policies that carry no per-PC filter."""
    if sched.get("hit_miss") != HitMissPolicy.FILTER_CTR:
        return None
    return tuple(sched.get(field) for field in FILTER_SHAPE_FIELDS)


def check_rebase_compatible(source_config: Dict[str, Any],
                            target_config: Dict[str, Any]) -> None:
    """Raise :class:`RebaseError` unless warm state captured under
    ``source_config`` is valid warm state for ``target_config``."""
    for section in ("memory", "branch"):
        if source_config.get(section) != target_config.get(section):
            raise RebaseError(
                f"cannot rebase {source_config.get('name', '?')!r} -> "
                f"{target_config.get('name', '?')!r}: the {section} "
                f"configurations differ, so the warmed state would be "
                f"wrong (rebase only re-targets scheduling-policy "
                f"parameters)")
    source_shape = filter_shape(source_config.get("sched", {}))
    target_shape = filter_shape(target_config.get("sched", {}))
    if target_shape is not None and source_shape != target_shape:
        detail = ("carries no hit/miss filter" if source_shape is None
                  else "filter shapes differ")
        raise RebaseError(
            f"cannot rebase {source_config.get('name', '?')!r} -> "
            f"{target_config.get('name', '?')!r}: the target needs a "
            f"warmed {FILTER_SHAPE_FIELDS} filter but the source "
            f"{detail}; warm the target family from a filter-bearing "
            f"donor instead")


def _require_purely_functional(ckpt: Checkpoint) -> None:
    info = ckpt.info
    if info.uops_committed or info.cycles:
        raise RebaseError(
            f"{info.path}: checkpoint has detailed state "
            f"({info.uops_committed} committed µops, {info.cycles} "
            f"cycles); only purely functional checkpoints rebase — "
            f"in-flight pipeline contents are shaped by the scheduling "
            f"policy")
    state = ckpt.payload.get("sim") or {}
    if state.get("uops"):
        raise RebaseError(
            f"{info.path}: checkpoint carries in-flight µops; only "
            f"purely functional checkpoints rebase")


#: State-dict islands functional warming mutates (everything else is
#: taken fresh from the target machine). Policy is handled separately.
_WARMED_KEYS = ("stats", "trace", "branch_unit", "hierarchy")


def rebase_checkpoint(source: Union[str, Checkpoint], target_config: SimConfig,
                      output, *, compress: bool = True) -> CheckpointInfo:
    """Re-target the warm checkpoint ``source`` to ``target_config``,
    writing the result to ``output``; returns the new checkpoint's info.

    The output is byte-identical to a checkpoint taken by natively
    fast-forwarding a fresh ``target_config`` machine over the same
    stream span (the property the rebase tests pin): the warmed islands
    are carried over verbatim, everything else — including every
    scheduling-policy table except a shape-compatible hit/miss filter —
    comes from a freshly built target machine.
    """
    from repro.pipeline.cpu import Simulator
    from repro.traces.registry import workload_from_payload

    ckpt = source if isinstance(source, Checkpoint) else \
        load_checkpoint(source)
    target_config = target_config.validate()
    target_dict = target_config.to_dict()
    _require_purely_functional(ckpt)
    check_rebase_compatible(ckpt.payload["config"], target_dict)
    workload_data = ckpt.payload.get("workload")
    if workload_data is None:
        raise RebaseError(
            f"{ckpt.info.path}: checkpoint records no workload, so the "
            f"target machine's trace source cannot be rebuilt")

    workload = workload_from_payload(workload_data)
    seed = ckpt.payload.get("seed")
    fresh = Simulator(target_config,
                      workload.build_trace(seed)).state_dict()
    source_state = ckpt.payload["sim"]
    merged = dict(fresh)                 # preserves native key order
    for key in _WARMED_KEYS:
        merged[key] = source_state[key]
    if filter_shape(target_dict["sched"]) is not None:
        policy = dict(fresh["policy"])
        policy["hm_filter"] = source_state["policy"]["hm_filter"]
        merged["policy"] = policy

    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "config": target_dict,
        "workload": workload_data,
        "seed": seed,
        "sim": merged,
    }
    provenance = {
        "mode": "rebase",
        "source_digest": ckpt.info.digest,
        "source_config": ckpt.info.config_name,
    }
    if "stream_uops" in ckpt.info.provenance:
        provenance["stream_uops"] = ckpt.info.provenance["stream_uops"]
    return write_checkpoint(payload, output, uops_committed=0, cycles=0,
                            compress=compress, provenance=provenance)
