"""The µop codec behind the component state protocol.

Every stateful pipeline component implements ``state_dict()`` /
``load_state_dict(state)`` returning/consuming *plain data* (ints,
strings, bools, lists, tuples, dicts) — nothing that needs code to
deserialize. Components that hold references to in-flight
:class:`~repro.isa.uop.MicroOp` objects (ROB, IQ, LSQ, scoreboard
waiter lists, the fetch pipe, the replay window, ...) take a codec
argument instead: ``state_dict(ctx)`` / ``load_state_dict(state, ctx)``.

The codec preserves *identity*: the same dynamic µop is referenced from
many structures at once (a load sits in the ROB, the LSQ, the replay
window and a scoreboard waiter list simultaneously), and restore must
rebuild exactly one object per dynamic µop so the pipeline's ``is``
checks and flag updates keep working. :class:`UopCodec` assigns each
encountered µop a dense integer id and serializes each exactly once
(every ``__slots__`` field, with ``store_dep`` encoded as another id);
:class:`UopDecoder` rebuilds the table and resolves references.

The slot list itself is stored in the checkpoint payload and verified at
load (:func:`check_slot_layout`), so a :class:`MicroOp` layout change
fails loudly instead of silently misaligning fields.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp

#: The serialized µop field order — MicroOp's slot layout, verified
#: against the checkpoint payload at load time.
UOP_SLOTS: Tuple[str, ...] = tuple(MicroOp.__slots__)

_STORE_DEP_INDEX = UOP_SLOTS.index("store_dep")
_OPCLASS_INDEX = UOP_SLOTS.index("opclass")

#: Value -> OpClass member (decode runs once per checkpointed µop).
_OPCLASS_BY_VALUE = tuple(OpClass(v) for v in range(len(OpClass)))


class StateError(ValueError):
    """A component state blob does not match the live object."""


def check_slot_layout(slots: Sequence[str]) -> None:
    """Refuse a checkpoint whose µop layout differs from this build's."""
    if tuple(slots) != UOP_SLOTS:
        raise StateError(
            "checkpoint µop layout does not match this build "
            f"(checkpoint: {list(slots)}; build: {list(UOP_SLOTS)})")


class UopCodec:
    """Encode side: µop object -> dense id, each serialized once."""

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}       # id(uop) -> table index
        self._uops: List[MicroOp] = []

    def ref(self, uop: Optional[MicroOp]) -> Optional[int]:
        """Table id for ``uop`` (registering it on first sight)."""
        if uop is None:
            return None
        key = id(uop)
        index = self._ids.get(key)
        if index is None:
            index = len(self._uops)
            self._ids[key] = index
            self._uops.append(uop)
        return index

    def refs(self, uops: Iterable[MicroOp]) -> List[Optional[int]]:
        return [self.ref(uop) for uop in uops]

    def table(self) -> List[List[Any]]:
        """The encoded µop table; call after all components registered.

        Encoding a µop may register new ones (``store_dep``), so the
        walk continues until the table stops growing.
        """
        rows: List[List[Any]] = []
        index = 0
        while index < len(self._uops):
            rows.append(self._encode(self._uops[index]))
            index += 1
        return rows

    def _encode(self, uop: MicroOp) -> List[Any]:
        row: List[Any] = []
        for slot in UOP_SLOTS:
            value = getattr(uop, slot)
            if slot == "opclass":
                value = int(value)
            elif slot == "store_dep":
                value = self.ref(value)
            elif slot in ("srcs", "psrcs"):
                value = list(value)
            row.append(value)
        return row


class UopDecoder:
    """Decode side: rebuild the µop table, then resolve ids to objects."""

    def __init__(self, table: Sequence[Sequence[Any]],
                 slots: Optional[Sequence[str]] = None) -> None:
        if slots is not None:
            check_slot_layout(slots)
        uops = [object.__new__(MicroOp) for _ in table]
        opclass_by_value = _OPCLASS_BY_VALUE
        for uop, row in zip(uops, table):
            for slot, value in zip(UOP_SLOTS, row):
                if slot == "opclass":
                    value = opclass_by_value[value]
                elif slot == "store_dep":
                    continue                 # second pass: needs the table
                elif slot in ("srcs", "psrcs"):
                    value = list(value)
                setattr(uop, slot, value)
        for uop, row in zip(uops, table):
            dep = row[_STORE_DEP_INDEX]
            uop.store_dep = uops[dep] if dep is not None else None
        self._uops = uops

    def uop(self, ref: Optional[int]) -> Optional[MicroOp]:
        return None if ref is None else self._uops[ref]

    def uops(self, refs: Iterable[Optional[int]]) -> List[MicroOp]:
        return [self._uops[ref] for ref in refs]


# ---------------------------------------------------------------------------
# Architectural-only µop encoding (trace-source buffers)


def encode_arch_uop(uop: MicroOp) -> Tuple:
    """Compact encoding of a not-yet-fetched µop (architectural fields
    only — exactly what :meth:`MicroOp.clone_arch` carries)."""
    return (uop.pc, int(uop.opclass), list(uop.srcs), uop.dst,
            uop.mem_addr, uop.mem_size, uop.taken, uop.target,
            uop.wrong_path)


def decode_arch_uop(row: Sequence[Any]) -> MicroOp:
    pc, opclass, srcs, dst, mem_addr, mem_size, taken, target, wrong = row
    return MicroOp(seq=0, pc=pc, opclass=_OPCLASS_BY_VALUE[opclass],
                   srcs=list(srcs), dst=dst, mem_addr=mem_addr,
                   mem_size=mem_size, taken=taken, target=target,
                   wrong_path=wrong)


# ---------------------------------------------------------------------------
# RNG state helpers (random.Random round-trips as plain data)


def rng_state(rng: random.Random) -> Tuple:
    return rng.getstate()


def set_rng_state(rng: random.Random, state: Sequence[Any]) -> None:
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))
