"""Versioned on-disk checkpoint format: warm state, captured once.

A checkpoint freezes a complete mid-run :class:`~repro.pipeline.cpu.
Simulator` — every pipeline structure, predictor table, cache directory,
RNG and trace cursor — so later runs resume from warm state instead of
re-simulating (or re-warming) from µop zero. Layout of a ``.ckpt``
file, mirroring the binary trace format's header idiom::

    header (64 bytes, fixed):
        magic        4s   b"RPCK"
        version      u16  FORMAT_VERSION
        flags        u16  bit 0: payload is zlib-compressed
        raw_len      u64  uncompressed payload byte length
        digest       32s  sha256 over the *raw* (uncompressed) payload
        meta_len     u32  length of the meta JSON that follows
        reserved     12s
    meta JSON (meta_len bytes):
        {"schema": 1, "config_name": ..., "config_hash": ...,
         "workload": <workload payload or null>, "seed": ...,
         "uops_committed": ..., "cycles": ..., "provenance": {...}}
    payload:
        zlib(pickle(state))  — plain-data only (the restricted loader
        refuses anything that would import code)

The digest identifies the *state*, independent of compression or file
location — it is what the experiment engine folds into cell cache keys
when a cell starts from a checkpoint, so a cached result can never be
served against a regenerated checkpoint.

The payload is a pickle of builtin containers and scalars only (that is
what the component ``state_dict()`` protocol guarantees); loading goes
through :class:`_PlainUnpickler`, which rejects any global reference, so
a tampered file cannot execute code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import pickle
import platform
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.config import SimConfig
from repro.common.serialize import stable_hash

MAGIC = b"RPCK"
FORMAT_VERSION = 1
FLAG_ZLIB = 0x1

#: Bumped when the meta layout (not the simulator state) changes.
CHECKPOINT_SCHEMA = 1

#: Canonical file suffix for checkpoints.
CHECKPOINT_SUFFIX = ".ckpt"

#: Pinned so identical state always produces identical payload bytes
#: (the digest doubles as a cache-key ingredient).
PICKLE_PROTOCOL = 4

HEADER = struct.Struct("<4sHHQ32sI12s")


class CheckpointError(ValueError):
    """Malformed, truncated, tampered or incompatible checkpoint file."""


class _PlainUnpickler(pickle.Unpickler):
    """Unpickler that refuses global lookups: checkpoint payloads are
    plain data, so any class/function reference means tampering."""

    def find_class(self, module: str, name: str):
        raise CheckpointError(
            f"checkpoint payload references {module}.{name}; payloads "
            f"must be plain data")


def _canonical_state(obj: Any) -> Any:
    # Pickle preserves dict insertion order, but insertion order is not
    # part of a state's *value* — the same workload dict arrives sorted
    # when a payload travelled through the JSON spool queue and in
    # builder order when it stayed in-process. Sort keys recursively
    # (falling back to insertion order for unorderable key types) so the
    # digest is order-independent. Container types are preserved:
    # restore code may distinguish tuples from lists.
    if isinstance(obj, dict):
        try:
            items = sorted(obj.items())
        except TypeError:
            items = list(obj.items())
        return {key: _canonical_state(value) for key, value in items}
    if isinstance(obj, list):
        return [_canonical_state(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(_canonical_state(value) for value in obj)
    return obj


def _dumps(state: Any) -> bytes:
    # fast=True disables the pickle memo, so the byte stream depends only
    # on *values*, never on object identity/aliasing inside the state
    # graph. Rebased payloads stitch islands from two different object
    # graphs; without this, content-identical states could hash apart.
    # State dicts are plain acyclic data, which fast mode requires.
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=PICKLE_PROTOCOL)
    pickler.fast = True
    pickler.dump(_canonical_state(state))
    return buffer.getvalue()


def _loads(raw: bytes) -> Any:
    try:
        return _PlainUnpickler(io.BytesIO(raw)).load()
    except CheckpointError:
        raise
    except Exception as exc:             # pickle's zoo of decode errors
        raise CheckpointError(f"corrupt checkpoint payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Info


@dataclasses.dataclass(frozen=True)
class CheckpointInfo:
    """Everything knowable about a checkpoint without loading its state."""

    path: str
    version: int
    compressed: bool
    digest: str                     # hex sha256 over the raw payload
    config_name: str
    config_hash: str
    workload: Optional[Dict[str, Any]]   # workload payload encoding
    seed: Optional[int]
    uops_committed: int
    cycles: int
    provenance: Dict[str, Any]
    file_bytes: int
    raw_bytes: int

    @property
    def workload_name(self) -> str:
        if not self.workload:
            return "?"
        if self.workload.get("kind") == "trace":
            return self.workload.get("name", "?")
        spec = self.workload.get("spec") or {}
        return spec.get("name", "?")


def _read_header(handle, path: Path):
    raw = handle.read(HEADER.size)
    if len(raw) != HEADER.size:
        raise CheckpointError(
            f"{path.name}: not a checkpoint file (too short)")
    magic, version, flags, raw_len, digest, meta_len, _ = HEADER.unpack(raw)
    if magic != MAGIC:
        raise CheckpointError(f"{path.name}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path.name}: checkpoint format version {version} (this "
            f"build reads {FORMAT_VERSION})")
    meta_raw = handle.read(meta_len)
    if len(meta_raw) != meta_len:
        raise CheckpointError(f"{path.name}: truncated meta JSON")
    try:
        meta = json.loads(meta_raw)
    except ValueError as exc:
        raise CheckpointError(f"{path.name}: corrupt meta JSON") from exc
    if meta.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path.name}: checkpoint schema {meta.get('schema')} (this "
            f"build reads {CHECKPOINT_SCHEMA})")
    return flags, raw_len, digest, meta


def read_info(path) -> CheckpointInfo:
    """Parse header + meta of a checkpoint (no payload decode)."""
    path = Path(path)
    with path.open("rb") as handle:
        flags, raw_len, digest, meta = _read_header(handle, path)
    return CheckpointInfo(
        path=str(path),
        version=FORMAT_VERSION,
        compressed=bool(flags & FLAG_ZLIB),
        digest=digest.hex(),
        config_name=meta.get("config_name", "?"),
        config_hash=meta.get("config_hash", ""),
        workload=meta.get("workload"),
        seed=meta.get("seed"),
        uops_committed=int(meta.get("uops_committed", 0)),
        cycles=int(meta.get("cycles", 0)),
        provenance=dict(meta.get("provenance") or {}),
        file_bytes=path.stat().st_size,
        raw_bytes=raw_len,
    )


def checkpoint_digest(path) -> str:
    """The state digest alone — the engine's cache-key ingredient."""
    return read_info(path).digest


# ---------------------------------------------------------------------------
# Save


def write_checkpoint(payload: Dict[str, Any], path, *,
                     uops_committed: int = 0, cycles: int = 0,
                     compress: bool = True,
                     provenance: Optional[Dict[str, Any]] = None
                     ) -> CheckpointInfo:
    """Write an already-assembled checkpoint payload dict to ``path``.

    ``payload`` is the on-disk payload shape (``schema`` / ``config`` /
    ``workload`` / ``seed`` / ``sim``); the meta header is derived from
    it. This is the writer :func:`save_checkpoint` funnels through, and
    what :mod:`repro.checkpoint.rebase` uses to emit a re-targeted state
    without ever building a live simulator.
    """
    path = Path(path)
    raw = _dumps(payload)
    digest = hashlib.sha256(raw).digest()
    stored = zlib.compress(raw, 6) if compress else raw
    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "config_name": payload["config"].get("name", "?"),
        "config_hash": stable_hash(payload["config"]),
        "workload": payload.get("workload"),
        "seed": payload.get("seed"),
        "uops_committed": uops_committed,
        "cycles": cycles,
        "provenance": {
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **(provenance or {}),
        },
    }
    meta_raw = json.dumps(meta, sort_keys=True).encode("utf-8")
    flags = FLAG_ZLIB if compress else 0
    with path.open("wb") as handle:
        handle.write(HEADER.pack(MAGIC, FORMAT_VERSION, flags, len(raw),
                                 digest, len(meta_raw), b"\0" * 12))
        handle.write(meta_raw)
        handle.write(stored)
    return read_info(path)


def save_checkpoint(sim, path, *, workload=None, seed: Optional[int] = None,
                    compress: bool = True,
                    provenance: Optional[Dict[str, Any]] = None
                    ) -> CheckpointInfo:
    """Freeze ``sim`` to ``path``.

    ``workload`` (anything the workload registry hands out) and ``seed``
    are recorded so :func:`restore_simulator` can rebuild the trace
    source without the caller re-supplying them; pass ``workload=None``
    for hand-built traces and supply the trace at restore time.
    """
    from repro.traces.registry import workload_payload

    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "config": sim.config.to_dict(),
        "workload": (workload_payload(workload)
                     if workload is not None else None),
        "seed": seed,
        "sim": sim.state_dict(),
    }
    return write_checkpoint(payload, path,
                            uops_committed=sim.stats.committed_uops,
                            cycles=sim.stats.cycles, compress=compress,
                            provenance=provenance)


# ---------------------------------------------------------------------------
# Load / restore


class Checkpoint:
    """A loaded checkpoint: info + the decoded state payload."""

    def __init__(self, info: CheckpointInfo, payload: Dict[str, Any]) -> None:
        self.info = info
        self.payload = payload

    @property
    def config(self) -> SimConfig:
        return SimConfig.from_dict(self.payload["config"]).validate()

    def restore(self, trace=None, phase_profile=None,
                event_bus=None, extra_stages=()):
        """Build a fresh :class:`~repro.pipeline.cpu.Simulator` and load
        this checkpoint's state into it.

        ``trace`` overrides the recorded workload (required when the
        checkpoint was saved without one); it must be an equivalent
        source — same workload, same seed — since its cursor state is
        overwritten from the checkpoint. ``event_bus`` / ``extra_stages``
        pass through to the Simulator constructor, so a restored run can
        be instrumented exactly like a cold one (telemetry stages own no
        checkpoint state — the saved payload restores cleanly into the
        instrumented machine).
        """
        from repro.pipeline.cpu import Simulator
        from repro.traces.registry import workload_from_payload

        if trace is None:
            workload_data = self.payload.get("workload")
            if workload_data is None:
                raise CheckpointError(
                    f"{self.info.path}: checkpoint records no workload; "
                    f"pass an explicit trace to restore()")
            workload = workload_from_payload(workload_data)
            trace = workload.build_trace(self.payload.get("seed"))
        sim = Simulator(self.config, trace, phase_profile=phase_profile,
                        event_bus=event_bus, extra_stages=extra_stages)
        sim.load_state_dict(self.payload["sim"])
        return sim


def load_checkpoint(path) -> Checkpoint:
    """Read, digest-verify and decode a checkpoint file."""
    path = Path(path)
    with path.open("rb") as handle:
        flags, raw_len, digest, _meta = _read_header(handle, path)
        stored = handle.read()
    if flags & FLAG_ZLIB:
        try:
            raw = zlib.decompress(stored)
        except zlib.error as exc:
            raise CheckpointError(f"{path.name}: corrupt payload") from exc
    else:
        raw = stored
    if len(raw) != raw_len:
        raise CheckpointError(f"{path.name}: payload length mismatch")
    if hashlib.sha256(raw).digest() != digest:
        raise CheckpointError(
            f"{path.name}: payload digest mismatch (file corrupted or "
            f"tampered)")
    return Checkpoint(read_info(path), _loads(raw))


def restore_simulator(path, trace=None, phase_profile=None):
    """One-call restore: load ``path`` and rebuild its simulator."""
    return load_checkpoint(path).restore(trace=trace,
                                         phase_profile=phase_profile)
