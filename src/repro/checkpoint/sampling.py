"""SMARTS-style interval sampling over the experiment engine.

Detailed simulation scales linearly with trace length; statistical
sampling with functional warming (Wunderlich et al., SMARTS) breaks that
wall: the stream is mostly consumed by the functional fast-forward mode
(caches + branch predictors warmed, OoO backend bypassed —
:meth:`repro.pipeline.cpu.Simulator.fast_forward`), and only short,
systematically spaced *measurement intervals* run detailed. Interval
means aggregate to an IPC estimate with a confidence interval.

A :class:`SamplingSpec` pins the geometry::

    offset_uops     functional warming before the first interval
    period_uops     interval-start-to-interval-start distance (µops)
    warmup_uops     detailed pipeline warmup preceding each measurement
    interval_uops   measured µops per interval
    intervals       number of intervals

Three execution shapes:

* **cells** (:func:`sample_payloads` / :func:`run_sampled`): each
  interval compiles to one self-contained engine cell, dispatched across
  the process pool and persistently cached like any other cell. A cell
  fast-forwards from µop zero (or from a checkpoint — whose content
  digest then keys the cache entry) to its interval start, so its result
  is a pure function of its payload — but the total warming cost grows
  quadratically with the interval count.
* **chained cells** (:func:`chained_cell_payloads` /
  :func:`run_sampled_cells_chained`): cells again, but each interval's
  fast-forward chains off the previous interval's checkpoint (produced
  by a checkpoint-producing cell, content-addressed in the engine's
  checkpoint store), so total warming cost is linear like the
  single-pass shape while the measurement cells keep full pool
  parallelism. One warming chain serves every config of a workload that
  shares memory/branch parameters — the chain's checkpoints are rebased
  (:mod:`repro.checkpoint.rebase`) across scheduling-policy configs.
  Interval results are bit-identical to the legacy **cells** shape
  (functional warming is deterministic and checkpoint round-trips are
  exact), so the two modes are interchangeable cache-compatible
  estimators — they differ only in cost.
* **chained** (:func:`run_sampled_chained`): one simulator walks the
  stream once, alternating fast-forward and detailed intervals — the
  fastest single-process shape (no per-interval re-warming), used by
  ``repro run --sample`` and the sampling benchmark.

The cell shapes and the single-pass shape are all unbiased estimators
but the single-pass shape is not bit-identical to the cells: chained
intervals inherit detailed-mode cache/predictor perturbations from
earlier intervals; cells warm purely functionally.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.config import SimConfig
from repro.common.mathutil import ci95_half_width, mean
from repro.common.serialize import stable_hash
from repro.common.stats import SimStats


class SamplingError(ValueError):
    """Invalid sampling geometry or an unusable sampled workload."""


@dataclass(frozen=True)
class SamplingSpec:
    """Geometry of a sampled run (all volumes in µops)."""

    intervals: int = 8
    interval_uops: int = 2_000
    warmup_uops: int = 500
    period_uops: int = 12_000
    offset_uops: int = 20_000

    def validate(self) -> "SamplingSpec":
        if self.intervals < 1:
            raise SamplingError("sampling.intervals must be >= 1")
        if self.interval_uops < 1:
            raise SamplingError("sampling.interval_uops must be >= 1")
        if self.warmup_uops < 0 or self.offset_uops < 0:
            raise SamplingError(
                "sampling.warmup_uops and sampling.offset_uops must be "
                ">= 0")
        if self.period_uops < self.warmup_uops + self.interval_uops:
            raise SamplingError(
                f"sampling.period_uops ({self.period_uops}) must cover "
                f"warmup + interval "
                f"({self.warmup_uops + self.interval_uops}): intervals "
                f"would overlap")
        return self

    # -- geometry --------------------------------------------------------

    def interval_offset(self, index: int) -> int:
        """Stream position where interval ``index``'s detailed warmup
        starts."""
        if not 0 <= index < self.intervals:
            raise SamplingError(
                f"interval index {index} outside 0..{self.intervals - 1}")
        return self.offset_uops + index * self.period_uops

    @property
    def detailed_uops(self) -> int:
        """Detailed-mode µops across the whole sampled run."""
        return self.intervals * (self.warmup_uops + self.interval_uops)

    @property
    def span_uops(self) -> int:
        """Stream µops from zero through the last measured µop — the
        region a full detailed run would have to simulate to produce the
        same estimate."""
        return (self.interval_offset(self.intervals - 1)
                + self.warmup_uops + self.interval_uops)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SamplingSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SamplingError(
                f"unknown sampling fields: {sorted(unknown)} "
                f"(expected among {sorted(known)})")
        return cls(**{k: int(v) for k, v in data.items()}).validate()

    def content_hash(self) -> str:
        return stable_hash(self.to_dict())


# ---------------------------------------------------------------------------
# Cell compilation


def sample_payloads(base_payload: Dict[str, Any],
                    spec: SamplingSpec) -> List[Dict[str, Any]]:
    """Compile one engine cell payload into per-interval payloads.

    Each interval cell carries the spec and its index; the base
    payload's ``functional_warmup_uops`` is zeroed (the spec's
    ``offset_uops`` takes over that role) and ``warmup_uops`` /
    ``measure_uops`` are overridden by the spec's per-interval volumes,
    so the cache key depends only on what the cell actually runs.
    """
    spec.validate()
    return [
        {**base_payload,
         "functional_warmup_uops": 0,
         "warmup_uops": spec.warmup_uops,
         "measure_uops": spec.interval_uops,
         "sampling": {"spec": spec.to_dict(), "index": index}}
        for index in range(spec.intervals)
    ]


def _rebased_ref(ref: Dict[str, Any], target_config: SimConfig,
                 store: Path, memo: Dict[str, Dict[str, Any]]
                 ) -> Dict[str, Any]:
    """The checkpoint ref for ``ref`` re-targeted to ``target_config``,
    materialized content-addressed in ``store`` (reused when present).

    The store name hashes the *source digest* + target config + code
    version, so a regenerated or re-warmed source chain can never serve
    a stale rebased file.
    """
    from repro.checkpoint.format import CHECKPOINT_SUFFIX
    from repro.checkpoint.rebase import rebase_checkpoint
    from repro.experiments.engine import checkpoint_store_ref, code_version

    key = stable_hash({"rebase": ref["digest"],
                       "config": target_config.to_dict(),
                       "code_version": code_version()})
    if key in memo:
        return memo[key]
    out = store / f"{key}{CHECKPOINT_SUFFIX}"
    cached = checkpoint_store_ref(out)
    if cached is None:
        fd, tmp_name = tempfile.mkstemp(dir=store, suffix=".tmp")
        os.close(fd)
        try:
            rebase_checkpoint(ref["path"], target_config, tmp_name)
            os.replace(tmp_name, out)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        cached = checkpoint_store_ref(out)
        assert cached is not None
    memo[key] = cached
    return cached


def chained_cell_payloads(bases: List[Dict[str, Any]], spec: SamplingSpec, *,
                          options=None, store=None,
                          progress=None) -> List[Dict[str, Any]]:
    """Compile base payloads into checkpoint-chained interval cells.

    For each distinct warming chain among ``bases`` (same workload,
    seed, memory and branch configuration — and, for filter-bearing
    configs, the same hit/miss-filter shape) one sequence of
    checkpoint-producing cells walks the stream once, each interval's
    cell chaining off the previous interval's checkpoint. Chains step in
    lock-step batches through :func:`~repro.experiments.engine.
    run_produce_cells`, so warming parallelism across workloads/configs
    is preserved even though each chain is sequential. Chain checkpoints
    are then rebased (cheap, in-process) to every other config in the
    chain's group, and the returned measurement payloads — in
    ``bases``-major, interval-minor order, ready for ``run_cells`` —
    reference the (possibly rebased) checkpoints by digest.
    """
    from repro.checkpoint.rebase import filter_shape
    from repro.experiments.engine import (
        EngineOptions,
        checkpoint_store_path,
        produce_payload,
        run_produce_cells,
    )
    from repro.traces.registry import workload_identity

    spec.validate()
    options = options or EngineOptions.from_env()
    if store is None:
        store = checkpoint_store_path(options)
    if store is None:
        raise SamplingError(
            "chained-cell sampling needs a checkpoint store: enable the "
            "persistent cache (REPRO_CACHE_DIR) or pass store=")
    store = Path(store)
    store.mkdir(parents=True, exist_ok=True)

    # Partition bases into warming chains. A warming chain is valid for
    # every config sharing its memory/branch parameters (rebase's
    # compatibility rule); filter-bearing configs additionally need a
    # donor of their own filter shape, so each distinct shape in a group
    # gets its own chain. Filterless configs ride the group's first
    # filter-bearing chain when one exists (rebase drops the filter
    # state) — one warming pass per workload serves the whole grid.
    described = []                       # per base: (group, shape)
    donors: Dict[Any, Dict[str, Any]] = {}   # chain id -> donor base
    group_shapes: Dict[str, List[Any]] = {}
    for base in bases:
        group = stable_hash({
            "workload": workload_identity(base["workload"]),
            "seed": base["seed"],
            "memory": base["config"]["memory"],
            "branch": base["config"]["branch"],
        })
        shape = filter_shape(base["config"].get("sched", {}))
        described.append((group, shape))
        if shape is not None and (group, shape) not in donors:
            donors[(group, shape)] = base
            group_shapes.setdefault(group, []).append(shape)
    chain_of = []                        # per base: chain id
    for base, (group, shape) in zip(bases, described):
        if shape is None:
            shapes = group_shapes.get(group)
            chain = (group, shapes[0]) if shapes else (group, None)
            if chain not in donors:
                donors[chain] = base
        else:
            chain = (group, shape)
        chain_of.append(chain)

    # Build every chain stepwise; step i of all chains runs as one
    # produce batch (pool parallelism across chains, sequential within).
    chain_ids = list(donors)
    refs: Dict[Any, List[Dict[str, Any]]] = {cid: [] for cid in chain_ids}
    prev: Dict[Any, Optional[Dict[str, Any]]] = dict.fromkeys(chain_ids)
    for index in range(spec.intervals):
        batch = [produce_payload(donors[cid], spec.interval_offset(index),
                                 store, checkpoint=prev[cid])
                 for cid in chain_ids]
        out = run_produce_cells(batch, options=options, progress=progress)
        for cid, ref in zip(chain_ids, out):
            prev[cid] = ref
            refs[cid].append(ref)

    payloads = []
    rebase_memo: Dict[str, Dict[str, Any]] = {}
    for base, cid in zip(bases, chain_of):
        if base["config"] == donors[cid]["config"]:
            base_refs = refs[cid]
        else:
            target = SimConfig.from_dict(base["config"]).validate()
            base_refs = [_rebased_ref(ref, target, store, rebase_memo)
                         for ref in refs[cid]]
        for index in range(spec.intervals):
            payloads.append({
                **{key: value for key, value in base.items()
                   if key not in ("produce", "checkpoint_store")},
                "functional_warmup_uops": 0,
                "warmup_uops": spec.warmup_uops,
                "measure_uops": spec.interval_uops,
                "sampling": {"spec": spec.to_dict(), "index": index},
                "checkpoint": base_refs[index],
            })
    return payloads


# ---------------------------------------------------------------------------
# Aggregation


@dataclass
class SampledResult:
    """Per-interval stats + the aggregate estimates the figures report."""

    workload: str
    config_name: str
    spec: SamplingSpec
    interval_stats: List[SimStats]

    @property
    def ipc_values(self) -> List[float]:
        return [stats.ipc for stats in self.interval_stats]

    @property
    def mean_ipc(self) -> float:
        return mean(self.ipc_values)

    @property
    def ipc_ci95(self) -> float:
        """Half-width of the 95% CI on the interval-mean IPC."""
        return ci95_half_width(self.ipc_values)

    @property
    def total(self) -> SimStats:
        """Counter-wise sum over intervals (the replay-breakdown view:
        summed counters aggregate exactly; ratios recompute from them)."""
        out = SimStats()
        for stats in self.interval_stats:
            for name, value in stats.__dict__.items():
                if name in ("extra", "telemetry"):   # non-counter tables
                    continue
                setattr(out, name, getattr(out, name) + value)
            for key, value in stats.extra.items():
                out.extra[key] = out.extra.get(key, 0) + value
        return out

    def breakdown(self) -> Dict[str, float]:
        """Unique / RpldMiss / RpldBank fractions of issued µops."""
        total = self.total
        denom = total.issued_total or 1
        return {
            "unique": total.unique_issued / denom,
            "rpld_miss": total.replayed_miss / denom,
            "rpld_bank": total.replayed_bank / denom,
        }


# ---------------------------------------------------------------------------
# Drivers


def _resolve(workload, config: Union[str, SimConfig], banked: bool):
    from repro.core.presets import make_config
    from repro.traces.registry import resolve_workload

    spec = resolve_workload(workload)
    if isinstance(config, str):
        config = make_config(config, banked=banked)
    return spec, config


def _cell_seed(workload, seed: Optional[int]) -> int:
    if seed is not None:
        return seed
    return int(getattr(workload, "seed", 0) or 0)


def run_sampled(workload, config: Union[str, SimConfig],
                spec: SamplingSpec, *, seed: Optional[int] = None,
                banked: bool = True, options=None, cache=None,
                checkpoint=None, warming: Optional[str] = None) -> SampledResult:
    """Sampled run through the engine: per-interval cells, pooled and
    persistently cached.

    ``checkpoint`` (a path) bases every cell on a saved warm state
    instead of fast-forwarding from µop zero; the checkpoint's content
    digest becomes part of each cell's cache key. ``warming`` selects
    the functional-warming tier for the cells' fast-forward
    (scalar/vectorized/auto — bit-identical state either way, so it is
    deliberately kept *out* of the cell cache key).
    """
    from repro.experiments.engine import (
        EngineOptions,
        base_cell_payload,
        run_cells,
    )

    spec.validate()
    resolved, config = _resolve(workload, config, banked)
    base = base_cell_payload(
        config, resolved, warmup_uops=spec.warmup_uops,
        measure_uops=spec.interval_uops, functional_warmup_uops=0,
        seed=_cell_seed(resolved, seed))
    if checkpoint is not None:
        base["checkpoint"] = checkpoint_reference(checkpoint)
    if warming is not None:
        base["warming"] = warming
    payloads = sample_payloads(base, spec)
    stats = run_cells(payloads, options=options or EngineOptions.from_env(),
                      cache=cache)
    return SampledResult(workload=resolved.name, config_name=config.name,
                         spec=spec, interval_stats=list(stats))


def run_sampled_cells_chained(workload, config: Union[str, SimConfig],
                              spec: SamplingSpec, *,
                              seed: Optional[int] = None,
                              banked: bool = True, options=None, cache=None,
                              store=None,
                              warming: Optional[str] = None) -> SampledResult:
    """Sampled run through checkpoint-chained cells: linear warming cost
    (one stream walk, checkpointed per interval) with full cell
    parallelism and caching. Interval results are bit-identical to
    :func:`run_sampled`'s from-zero cells.

    ``store`` overrides the checkpoint store directory; when the
    persistent cache is disabled and no store is given, a temporary
    store scoped to this call is used (checkpoints discarded after the
    measurement cells run).
    """
    from repro.experiments.engine import (
        EngineOptions,
        base_cell_payload,
        checkpoint_store_path,
        run_cells,
    )

    spec.validate()
    resolved, config = _resolve(workload, config, banked)
    base = base_cell_payload(
        config, resolved, warmup_uops=spec.warmup_uops,
        measure_uops=spec.interval_uops, functional_warmup_uops=0,
        seed=_cell_seed(resolved, seed))
    if warming is not None:
        base["warming"] = warming
    options = options or EngineOptions.from_env()
    with contextlib.ExitStack() as stack:
        if store is None:
            store = checkpoint_store_path(options)
        if store is None:
            store = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-ckpt-"))
        payloads = chained_cell_payloads([base], spec, options=options,
                                         store=store)
        stats = run_cells(payloads, options=options, cache=cache)
    return SampledResult(workload=resolved.name, config_name=config.name,
                         spec=spec, interval_stats=list(stats))


def run_sampled_chained(workload, config: Union[str, SimConfig],
                        spec: SamplingSpec, *, seed: Optional[int] = None,
                        banked: bool = True,
                        warming: Optional[str] = None) -> SampledResult:
    """Sampled run in one pass: a single simulator alternates functional
    fast-forward and detailed measurement intervals.

    Stream positions after a detailed interval are tracked by committed
    µops (in-flight fetch-ahead makes the next fast-forward start a few
    µops late) — immaterial for the statistics, and what keeps this the
    fastest shape: the stream is consumed exactly once. ``warming``
    selects the functional-warming tier for the fast-forward legs
    (:mod:`repro.pipeline.warming`).
    """
    from repro.pipeline.cpu import Simulator

    spec.validate()
    resolved, config = _resolve(workload, config, banked)
    trace = resolved.build_trace(seed)
    sim = Simulator(config, trace)
    interval_stats: List[SimStats] = []
    position = 0
    for index in range(spec.intervals):
        gap = spec.interval_offset(index) - position
        if gap > 0:
            position += sim.fast_forward(gap, mode=warming)
        base = sim.stats.committed_uops
        sim.run(max_uops=base + spec.warmup_uops)
        baseline = sim.stats.copy()
        sim.run(max_uops=base + spec.warmup_uops + spec.interval_uops)
        interval_stats.append(sim.stats.delta_since(baseline))
        position += sim.stats.committed_uops - base
        if sim.done:
            break                    # stream exhausted: report what ran
    return SampledResult(workload=resolved.name, config_name=config.name,
                         spec=spec, interval_stats=interval_stats)


def checkpoint_reference(path) -> Dict[str, Any]:
    """The payload encoding of a checkpoint base: path for the worker,
    digest and stream position for the cache key and the fast-forward
    arithmetic."""
    from repro.checkpoint.format import read_info

    info = read_info(path)
    position = int(info.provenance.get("stream_uops",
                                       info.uops_committed))
    return {"path": str(path), "digest": info.digest, "position": position}
