"""SMARTS-style interval sampling over the experiment engine.

Detailed simulation scales linearly with trace length; statistical
sampling with functional warming (Wunderlich et al., SMARTS) breaks that
wall: the stream is mostly consumed by the functional fast-forward mode
(caches + branch predictors warmed, OoO backend bypassed —
:meth:`repro.pipeline.cpu.Simulator.fast_forward`), and only short,
systematically spaced *measurement intervals* run detailed. Interval
means aggregate to an IPC estimate with a confidence interval.

A :class:`SamplingSpec` pins the geometry::

    offset_uops     functional warming before the first interval
    period_uops     interval-start-to-interval-start distance (µops)
    warmup_uops     detailed pipeline warmup preceding each measurement
    interval_uops   measured µops per interval
    intervals       number of intervals

Two execution shapes:

* **cells** (:func:`sample_payloads` / :func:`run_sampled`): each
  interval compiles to one self-contained engine cell, dispatched across
  the process pool and persistently cached like any other cell. A cell
  fast-forwards from µop zero (or from a checkpoint — whose content
  digest then keys the cache entry) to its interval start, so its result
  is a pure function of its payload.
* **chained** (:func:`run_sampled_chained`): one simulator walks the
  stream once, alternating fast-forward and detailed intervals — the
  fastest single-process shape (no per-interval re-warming), used by
  ``repro run --sample`` and the sampling benchmark.

The two shapes are both unbiased estimators but are not bit-identical
to each other: chained intervals inherit detailed-mode cache/predictor
perturbations from earlier intervals; cells warm purely functionally.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.common.config import SimConfig
from repro.common.mathutil import ci95_half_width, mean
from repro.common.serialize import stable_hash
from repro.common.stats import SimStats


class SamplingError(ValueError):
    """Invalid sampling geometry or an unusable sampled workload."""


@dataclass(frozen=True)
class SamplingSpec:
    """Geometry of a sampled run (all volumes in µops)."""

    intervals: int = 8
    interval_uops: int = 2_000
    warmup_uops: int = 500
    period_uops: int = 12_000
    offset_uops: int = 20_000

    def validate(self) -> "SamplingSpec":
        if self.intervals < 1:
            raise SamplingError("sampling.intervals must be >= 1")
        if self.interval_uops < 1:
            raise SamplingError("sampling.interval_uops must be >= 1")
        if self.warmup_uops < 0 or self.offset_uops < 0:
            raise SamplingError(
                "sampling.warmup_uops and sampling.offset_uops must be "
                ">= 0")
        if self.period_uops < self.warmup_uops + self.interval_uops:
            raise SamplingError(
                f"sampling.period_uops ({self.period_uops}) must cover "
                f"warmup + interval "
                f"({self.warmup_uops + self.interval_uops}): intervals "
                f"would overlap")
        return self

    # -- geometry --------------------------------------------------------

    def interval_offset(self, index: int) -> int:
        """Stream position where interval ``index``'s detailed warmup
        starts."""
        if not 0 <= index < self.intervals:
            raise SamplingError(
                f"interval index {index} outside 0..{self.intervals - 1}")
        return self.offset_uops + index * self.period_uops

    @property
    def detailed_uops(self) -> int:
        """Detailed-mode µops across the whole sampled run."""
        return self.intervals * (self.warmup_uops + self.interval_uops)

    @property
    def span_uops(self) -> int:
        """Stream µops from zero through the last measured µop — the
        region a full detailed run would have to simulate to produce the
        same estimate."""
        return (self.interval_offset(self.intervals - 1)
                + self.warmup_uops + self.interval_uops)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SamplingSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SamplingError(
                f"unknown sampling fields: {sorted(unknown)} "
                f"(expected among {sorted(known)})")
        return cls(**{k: int(v) for k, v in data.items()}).validate()

    def content_hash(self) -> str:
        return stable_hash(self.to_dict())


# ---------------------------------------------------------------------------
# Cell compilation


def sample_payloads(base_payload: Dict[str, Any],
                    spec: SamplingSpec) -> List[Dict[str, Any]]:
    """Compile one engine cell payload into per-interval payloads.

    Each interval cell carries the spec and its index; the base
    payload's ``functional_warmup_uops`` is zeroed (the spec's
    ``offset_uops`` takes over that role) and ``warmup_uops`` /
    ``measure_uops`` are overridden by the spec's per-interval volumes,
    so the cache key depends only on what the cell actually runs.
    """
    spec.validate()
    return [
        {**base_payload,
         "functional_warmup_uops": 0,
         "warmup_uops": spec.warmup_uops,
         "measure_uops": spec.interval_uops,
         "sampling": {"spec": spec.to_dict(), "index": index}}
        for index in range(spec.intervals)
    ]


# ---------------------------------------------------------------------------
# Aggregation


@dataclass
class SampledResult:
    """Per-interval stats + the aggregate estimates the figures report."""

    workload: str
    config_name: str
    spec: SamplingSpec
    interval_stats: List[SimStats]

    @property
    def ipc_values(self) -> List[float]:
        return [stats.ipc for stats in self.interval_stats]

    @property
    def mean_ipc(self) -> float:
        return mean(self.ipc_values)

    @property
    def ipc_ci95(self) -> float:
        """Half-width of the 95% CI on the interval-mean IPC."""
        return ci95_half_width(self.ipc_values)

    @property
    def total(self) -> SimStats:
        """Counter-wise sum over intervals (the replay-breakdown view:
        summed counters aggregate exactly; ratios recompute from them)."""
        out = SimStats()
        for stats in self.interval_stats:
            for name, value in stats.__dict__.items():
                if name in ("extra", "telemetry"):   # non-counter tables
                    continue
                setattr(out, name, getattr(out, name) + value)
            for key, value in stats.extra.items():
                out.extra[key] = out.extra.get(key, 0) + value
        return out

    def breakdown(self) -> Dict[str, float]:
        """Unique / RpldMiss / RpldBank fractions of issued µops."""
        total = self.total
        denom = total.issued_total or 1
        return {
            "unique": total.unique_issued / denom,
            "rpld_miss": total.replayed_miss / denom,
            "rpld_bank": total.replayed_bank / denom,
        }


# ---------------------------------------------------------------------------
# Drivers


def _resolve(workload, config: Union[str, SimConfig], banked: bool):
    from repro.core.presets import make_config
    from repro.traces.registry import resolve_workload

    spec = resolve_workload(workload)
    if isinstance(config, str):
        config = make_config(config, banked=banked)
    return spec, config


def _cell_seed(workload, seed: Optional[int]) -> int:
    if seed is not None:
        return seed
    return int(getattr(workload, "seed", 0) or 0)


def run_sampled(workload, config: Union[str, SimConfig],
                spec: SamplingSpec, *, seed: Optional[int] = None,
                banked: bool = True, options=None, cache=None,
                checkpoint=None, warming: Optional[str] = None) -> SampledResult:
    """Sampled run through the engine: per-interval cells, pooled and
    persistently cached.

    ``checkpoint`` (a path) bases every cell on a saved warm state
    instead of fast-forwarding from µop zero; the checkpoint's content
    digest becomes part of each cell's cache key. ``warming`` selects
    the functional-warming tier for the cells' fast-forward
    (scalar/vectorized/auto — bit-identical state either way, so it is
    deliberately kept *out* of the cell cache key).
    """
    from repro.experiments.engine import (
        EngineOptions,
        base_cell_payload,
        run_cells,
    )

    spec.validate()
    resolved, config = _resolve(workload, config, banked)
    base = base_cell_payload(
        config, resolved, warmup_uops=spec.warmup_uops,
        measure_uops=spec.interval_uops, functional_warmup_uops=0,
        seed=_cell_seed(resolved, seed))
    if checkpoint is not None:
        base["checkpoint"] = checkpoint_reference(checkpoint)
    if warming is not None:
        base["warming"] = warming
    payloads = sample_payloads(base, spec)
    stats = run_cells(payloads, options=options or EngineOptions.from_env(),
                      cache=cache)
    return SampledResult(workload=resolved.name, config_name=config.name,
                         spec=spec, interval_stats=list(stats))


def run_sampled_chained(workload, config: Union[str, SimConfig],
                        spec: SamplingSpec, *, seed: Optional[int] = None,
                        banked: bool = True,
                        warming: Optional[str] = None) -> SampledResult:
    """Sampled run in one pass: a single simulator alternates functional
    fast-forward and detailed measurement intervals.

    Stream positions after a detailed interval are tracked by committed
    µops (in-flight fetch-ahead makes the next fast-forward start a few
    µops late) — immaterial for the statistics, and what keeps this the
    fastest shape: the stream is consumed exactly once. ``warming``
    selects the functional-warming tier for the fast-forward legs
    (:mod:`repro.pipeline.warming`).
    """
    from repro.pipeline.cpu import Simulator

    spec.validate()
    resolved, config = _resolve(workload, config, banked)
    trace = resolved.build_trace(seed)
    sim = Simulator(config, trace)
    interval_stats: List[SimStats] = []
    position = 0
    for index in range(spec.intervals):
        gap = spec.interval_offset(index) - position
        if gap > 0:
            position += sim.fast_forward(gap, mode=warming)
        base = sim.stats.committed_uops
        sim.run(max_uops=base + spec.warmup_uops)
        baseline = sim.stats.copy()
        sim.run(max_uops=base + spec.warmup_uops + spec.interval_uops)
        interval_stats.append(sim.stats.delta_since(baseline))
        position += sim.stats.committed_uops - base
        if sim.done:
            break                    # stream exhausted: report what ran
    return SampledResult(workload=resolved.name, config_name=config.name,
                         spec=spec, interval_stats=interval_stats)


def checkpoint_reference(path) -> Dict[str, Any]:
    """The payload encoding of a checkpoint base: path for the worker,
    digest and stream position for the cache key and the fast-forward
    arithmetic."""
    from repro.checkpoint.format import read_info

    info = read_info(path)
    position = int(info.provenance.get("stream_uops",
                                       info.uops_committed))
    return {"path": str(path), "digest": info.digest, "position": position}
