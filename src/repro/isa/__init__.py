"""µop model: operation classes, dynamic micro-ops, trace sources."""

from repro.isa.opclass import EXEC_LATENCY, FU_KIND, FuKind, OpClass
from repro.isa.uop import MicroOp
from repro.isa.trace import TraceSource, ListTrace

__all__ = [
    "EXEC_LATENCY",
    "FU_KIND",
    "FuKind",
    "ListTrace",
    "MicroOp",
    "OpClass",
    "TraceSource",
]
