"""Dynamic micro-operation.

A :class:`MicroOp` is one dynamic instance flowing through the pipeline. The
workload generator fills in the *architectural* fields (pc, opclass,
registers, memory address, branch outcome); the pipeline annotates the
*microarchitectural* fields (renamed registers, ROB/LSQ slots, issue and
execution timestamps, replay state).

``__slots__`` keeps the per-µop footprint small: simulations create one
object per dynamic µop (plus wrong-path fillers).
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.opclass import BRANCH_OPS, MEMORY_OPS, OpClass

#: OpClass -> (is_load, is_store, is_mem, is_branch), indexed by value.
_KIND_FLAGS = tuple(
    (op == OpClass.LOAD, op == OpClass.STORE,
     op in MEMORY_OPS, op in BRANCH_OPS)
    for op in OpClass
)


class MicroOp:
    """One dynamic µop."""

    __slots__ = (
        # architectural
        "seq", "pc", "opclass", "srcs", "dst", "mem_addr", "mem_size",
        "taken", "target", "wrong_path",
        # kind flags (precomputed from opclass; the pipeline reads these
        # millions of times per run — a property doing enum/set work per
        # read was a measurable share of the cycle loop)
        "is_load", "is_store", "is_mem", "is_branch",
        # branch prediction state (filled at fetch)
        "pred_taken", "pred_target", "mispredicted", "bp_state",
        # rename state
        "psrcs", "pdst", "prev_pdst", "rob_idx", "lsq_idx",
        # scheduling state
        "in_iq", "in_ready", "pending", "store_dep", "issue_cycle",
        "exec_start",
        "actual_latency", "promised_latency", "executed", "completed",
        "num_issues", "spec_woken", "replay_pending", "squashed", "dead",
        # memory outcome
        "l1_hit", "forwarded",
        # bookkeeping
        "fetch_cycle", "commit_cycle", "was_critical",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        opclass: OpClass,
        srcs: Optional[List[int]] = None,
        dst: Optional[int] = None,
        mem_addr: int = 0,
        mem_size: int = 8,
        taken: bool = False,
        target: int = 0,
        wrong_path: bool = False,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.opclass = opclass
        self.srcs = srcs or []
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.taken = taken
        self.target = target
        self.wrong_path = wrong_path

        self.pred_taken = False
        self.pred_target = 0
        self.mispredicted = False
        self.bp_state = None

        self.psrcs: List[int] = []
        self.pdst = -1
        self.prev_pdst = -1
        self.rob_idx = -1
        self.lsq_idx = -1

        self.in_iq = False
        self.in_ready = False
        self.pending = 0
        self.store_dep = None
        self.issue_cycle = -1
        self.exec_start = -1
        self.actual_latency = -1
        self.promised_latency = -1
        self.executed = False
        self.completed = False
        self.num_issues = 0
        self.spec_woken = False
        self.replay_pending = False
        self.squashed = False
        self.dead = False

        self.l1_hit = True
        self.forwarded = False

        self.fetch_cycle = -1
        self.commit_cycle = -1
        self.was_critical = False

        # Classification: plain attributes, precomputed once.
        (self.is_load, self.is_store,
         self.is_mem, self.is_branch) = _KIND_FLAGS[opclass]

    def clone_arch(self, seq: int = 0) -> "MicroOp":
        """Fresh dynamic instance carrying only the architectural fields.

        Used to re-fetch µops after a memory-order-violation squash and to
        replicate trace templates.
        """
        return MicroOp(
            seq=seq,
            pc=self.pc,
            opclass=self.opclass,
            srcs=list(self.srcs),
            dst=self.dst,
            mem_addr=self.mem_addr,
            mem_size=self.mem_size,
            taken=self.taken,
            target=self.target,
            wrong_path=self.wrong_path,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.wrong_path:
            flags.append("WP")
        if self.executed:
            flags.append("X")
        if self.squashed:
            flags.append("SQ")
        if self.dead:
            flags.append("DEAD")
        return (
            f"MicroOp(seq={self.seq}, pc={self.pc:#x}, "
            f"{self.opclass.name}, srcs={self.srcs}, dst={self.dst}"
            f"{', ' + '|'.join(flags) if flags else ''})"
        )
