"""Operation classes, functional-unit kinds and execution latencies.

The latencies mirror Table 1: 4 ALU (1 cycle), 1 MulDiv (3/25 cycles, the
divider is not pipelined), 2 FP (3 cycles), 2 FPMulDiv (5/10 cycles, the FP
divider is not pipelined), 2 load ports, 1 store port. Load latency is *not*
listed here: it is resolved dynamically by the memory hierarchy (4-cycle
load-to-use on an L1 hit).
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Dynamic µop categories produced by the workload generators."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8     # conditional branch, executes on an ALU port
    CALL = 9
    RET = 10
    NOP = 11


class FuKind(enum.IntEnum):
    """Functional-unit pools of Table 1."""

    ALU = 0
    MULDIV = 1
    FP = 2
    FPMULDIV = 3
    LOAD_PORT = 4
    STORE_PORT = 5


#: OpClass -> which FU pool executes it.
FU_KIND = {
    OpClass.INT_ALU: FuKind.ALU,
    OpClass.INT_MUL: FuKind.MULDIV,
    OpClass.INT_DIV: FuKind.MULDIV,
    OpClass.FP_ADD: FuKind.FP,
    OpClass.FP_MUL: FuKind.FPMULDIV,
    OpClass.FP_DIV: FuKind.FPMULDIV,
    OpClass.LOAD: FuKind.LOAD_PORT,
    OpClass.STORE: FuKind.STORE_PORT,
    OpClass.BRANCH: FuKind.ALU,
    OpClass.CALL: FuKind.ALU,
    OpClass.RET: FuKind.ALU,
    OpClass.NOP: FuKind.ALU,
}

#: OpClass -> execution latency in cycles (loads resolved dynamically).
EXEC_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 25,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 5,
    OpClass.FP_DIV: 10,
    OpClass.LOAD: 4,      # nominal L1 load-to-use; actual from the hierarchy
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.NOP: 1,
}

#: µops whose FU is not pipelined (Table 1 footnote): the divider blocks
#: its unit for the whole latency.
UNPIPELINED = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})

MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE})
BRANCH_OPS = frozenset({OpClass.BRANCH, OpClass.CALL, OpClass.RET})

#: Hot-path views of the tables above, indexable by ``int(opclass)``
#: (OpClass is an IntEnum): issue consults these per selected µop.
FU_KIND_BY_OP = tuple(FU_KIND[op] for op in OpClass)
EXEC_LATENCY_BY_OP = tuple(EXEC_LATENCY[op] for op in OpClass)
UNPIPELINED_BY_OP = tuple(op in UNPIPELINED for op in OpClass)
