"""Trace sources — where the frontend gets its µops.

The fetch stage consumes a :class:`TraceSource`: an infinite (or finite)
supplier of correct-path µops plus a synthesizer for wrong-path µops fetched
after a branch misprediction. Workload generators implement this protocol;
:class:`ListTrace` wraps a plain list for tests and the timing-diagram
examples.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp


class TraceSource:
    """Protocol for correct-path + wrong-path µop supply."""

    def next_uop(self) -> Optional[MicroOp]:
        """Return the next correct-path µop, or ``None`` when exhausted."""
        raise NotImplementedError

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        """Synthesize one wrong-path µop fetched from (bogus) ``pc``.

        Trace-driven simulation cannot replay real wrong paths, so sources
        provide plausible filler that consumes pipeline resources until the
        mispredicted branch resolves (see DESIGN.md §6).
        """
        return MicroOp(seq=seq, pc=pc, opclass=OpClass.INT_ALU,
                       srcs=[0], dst=1, wrong_path=True)


class ListTrace(TraceSource):
    """A finite trace backed by a list; replays indefinitely if ``loop``."""

    def __init__(self, uops: Iterable[MicroOp], loop: bool = False) -> None:
        self._uops: List[MicroOp] = list(uops)
        self._pos = 0
        self._loop = loop
        self._seq = 0

    def __len__(self) -> int:
        return len(self._uops)

    def next_uop(self) -> Optional[MicroOp]:
        if self._pos >= len(self._uops):
            if not self._loop or not self._uops:
                return None
            self._pos = 0
        template = self._uops[self._pos]
        self._pos += 1
        uop = template.clone_arch(self._seq)
        self._seq += 1
        return uop

    def reset(self) -> None:
        self._pos = 0
        self._seq = 0


def iterate(source: TraceSource, limit: int) -> Iterator[MicroOp]:
    """Yield up to ``limit`` correct-path µops from ``source``."""
    for _ in range(limit):
        uop = source.next_uop()
        if uop is None:
            return
        yield uop
