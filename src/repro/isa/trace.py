"""Trace sources — where the frontend gets its µops.

The fetch stage consumes a :class:`TraceSource`: an infinite (or finite)
supplier of correct-path µops plus a synthesizer for wrong-path µops fetched
after a branch misprediction. Workload generators implement this protocol;
:class:`ListTrace` wraps a plain list for tests and the timing-diagram
examples.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional

from repro.isa.opclass import OpClass
from repro.isa.uop import MicroOp

#: Mixed into wrong-path RNG seeds so the wrong-path stream is decorrelated
#: from the correct-path generator seeded with the same value.
WRONG_PATH_SEED_SALT = 0x5DEECE66D


class WrongPathSynth:
    """Seeded wrong-path µop synthesizer shared by all trace sources.

    Wrong-path filler stays on the reserved architectural registers 0/1
    (no workload generator writes them) and on 1-cycle ALU ops, but the
    source/destination pattern varies pseudo-randomly so wrong-path
    resource pressure is not one degenerate serial chain. The variant
    stream is a pure function of the seed — a replayed trace reproduces
    it exactly.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed ^ WRONG_PATH_SEED_SALT)

    def _draw_variant(self) -> int:
        # Uniform draw from {0,1,2} by 2-bit rejection sampling — the
        # exact consumption pattern ``Random.randrange(3)`` has always
        # used, spelled out so the variant stream (and thus every golden
        # SimStats file) is pinned to this module, not to the stdlib's
        # internals. Also measurably faster than randrange's argument
        # handling: fetch synthesizes one draw per wrong-path µop, and
        # :meth:`skip` burns through millions on long replay episodes.
        getrandbits = self._rng.getrandbits
        r = getrandbits(2)
        while r >= 3:
            r = getrandbits(2)
        return r

    def synth(self, seq: int, pc: int) -> MicroOp:
        variant = self._draw_variant()
        src = 0 if variant != 2 else 1
        dst = 1 if variant != 1 else 0
        return MicroOp(seq=seq, pc=pc, opclass=OpClass.INT_ALU,
                       srcs=[src], dst=dst, wrong_path=True)

    def skip(self, count: int) -> None:
        """Advance the variant stream by ``count`` draws without building
        µops — the bulk discard the lazy frontend performs at redirect."""
        getrandbits = self._rng.getrandbits
        for _ in range(count):
            r = getrandbits(2)
            while r >= 3:
                r = getrandbits(2)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {"seed": self.seed, "rng": self._rng.getstate()}

    def load_state_dict(self, state: dict) -> None:
        from repro.checkpoint.state import set_rng_state

        self.seed = state["seed"]
        set_rng_state(self._rng, state["rng"])


class TraceSource:
    """Protocol for correct-path + wrong-path µop supply."""

    def next_uop(self) -> Optional[MicroOp]:
        """Return the next correct-path µop, or ``None`` when exhausted."""
        raise NotImplementedError

    def next_block(self, max_uops: int) -> List[MicroOp]:
        """Return up to ``max_uops`` correct-path µops (empty when exhausted).

        Block-yield form of :meth:`next_uop` for the functional-warming
        tier (:mod:`repro.pipeline.warming`): consuming the stream in
        blocks amortizes per-µop dispatch. The base implementation loops
        :meth:`next_uop`, so any source is block-capable; generator
        sources override with a bulk walk, and recorded traces
        additionally expose raw record blocks
        (:meth:`repro.traces.format.FileTrace.next_record_block`).
        Stream position and checkpoint state advance exactly as if
        :meth:`next_uop` had been called per µop.
        """
        out: List[MicroOp] = []
        append = out.append
        next_uop = self.next_uop
        for _ in range(max_uops):
            uop = next_uop()
            if uop is None:
                break
            append(uop)
        return out

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        """Synthesize one wrong-path µop fetched from (bogus) ``pc``.

        Trace-driven simulation cannot replay real wrong paths, so sources
        provide plausible filler that consumes pipeline resources until the
        mispredicted branch resolves (see DESIGN.md §6).
        """
        return MicroOp(seq=seq, pc=pc, opclass=OpClass.INT_ALU,
                       srcs=[0], dst=1, wrong_path=True)

    def skip_wrong_path(self, count: int) -> None:
        """Discard ``count`` wrong-path µops from the synthesis stream.

        The lazy frontend (:class:`repro.frontend.fetch.FetchStage`) only
        materializes wrong-path µops that actually reach Rename; the rest
        of an episode is discarded in bulk at redirect through this hook.
        Sources whose wrong path is seeded **must** advance their stream
        exactly as if the µops had been built, so later episodes see the
        same draws as an eager frontend. The base implementation
        synthesizes and drops (correct for any source); seeded sources
        override with a cheap stream advance.
        """
        for _ in range(count):
            self.wrong_path_uop(0, 0)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """Cursor/RNG state sufficient to resume this stream exactly.

        Every shipped source implements the pair; custom sources must
        override both to be checkpointable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the checkpoint "
            f"state protocol (state_dict/load_state_dict)")

    def load_state_dict(self, state: dict) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the checkpoint "
            f"state protocol (state_dict/load_state_dict)")


class ListTrace(TraceSource):
    """A finite trace backed by a list; replays indefinitely if ``loop``.

    Wrong-path synthesis is seeded per source (``wp_seed``) rather than
    inheriting the base class's constant filler, so two traces do not
    produce one identical degenerate wrong-path chain.
    """

    def __init__(self, uops: Iterable[MicroOp], loop: bool = False,
                 wp_seed: int = 0) -> None:
        self._uops: List[MicroOp] = list(uops)
        self._pos = 0
        self._loop = loop
        self._seq = 0
        self._wp_seed = wp_seed
        self._synth = WrongPathSynth(wp_seed)

    def __len__(self) -> int:
        return len(self._uops)

    def next_uop(self) -> Optional[MicroOp]:
        if self._pos >= len(self._uops):
            if not self._loop or not self._uops:
                return None
            self._pos = 0
        template = self._uops[self._pos]
        self._pos += 1
        uop = template.clone_arch(self._seq)
        self._seq += 1
        return uop

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        return self._synth.synth(seq, pc)

    def skip_wrong_path(self, count: int) -> None:
        self._synth.skip(count)

    def reset(self) -> None:
        self._pos = 0
        self._seq = 0
        self._synth = WrongPathSynth(self._wp_seed)

    def state_dict(self) -> dict:
        return {"pos": self._pos, "seq": self._seq,
                "synth": self._synth.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self._pos = state["pos"]
        self._seq = state["seq"]
        self._synth.load_state_dict(state["synth"])


def iterate(source: TraceSource, limit: int) -> Iterator[MicroOp]:
    """Yield up to ``limit`` correct-path µops from ``source``."""
    for _ in range(limit):
        uop = source.next_uop()
        if uop is None:
            return
        yield uop
