"""RV32I instruction decoder.

One function, :func:`decode`, turns a 32-bit instruction word into a
:class:`Instr` — mnemonic plus the register/immediate operands the
functional core (:mod:`repro.isa.rv32i.core`) executes and the lowering
layer (:mod:`repro.isa.rv32i.lower`) maps onto
:class:`~repro.isa.uop.MicroOp` architectural fields.

The full RV32I base set is covered: LUI, AUIPC, JAL, JALR, the six
conditional branches, the five loads, the three stores, OP-IMM, OP,
FENCE (executed as a no-op) and SYSTEM (ECALL/EBREAK, the machine's halt
convention). Anything else raises :class:`DecodeError` — there is no
"unknown instruction" fallthrough, so a corrupt image fails loudly at
the offending word instead of silently skewing a captured trace.

Immediates are decoded to *signed* python ints (B/J immediates include
the implicit zero bit); the core applies the mod-2^32 wraparound.
"""

from __future__ import annotations

from typing import Dict, Tuple

MASK32 = 0xFFFFFFFF

#: opcode (bits 6:0) values of the base map.
_OP_LUI = 0b0110111
_OP_AUIPC = 0b0010111
_OP_JAL = 0b1101111
_OP_JALR = 0b1100111
_OP_BRANCH = 0b1100011
_OP_LOAD = 0b0000011
_OP_STORE = 0b0100011
_OP_IMM = 0b0010011
_OP_OP = 0b0110011
_OP_MISC_MEM = 0b0001111
_OP_SYSTEM = 0b1110011

_BRANCH_F3 = {0b000: "beq", 0b001: "bne", 0b100: "blt",
              0b101: "bge", 0b110: "bltu", 0b111: "bgeu"}
_LOAD_F3 = {0b000: "lb", 0b001: "lh", 0b010: "lw",
            0b100: "lbu", 0b101: "lhu"}
_STORE_F3 = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_IMM_F3 = {0b000: "addi", 0b010: "slti", 0b011: "sltiu",
           0b100: "xori", 0b110: "ori", 0b111: "andi"}
#: funct3 -> (funct7=0 mnemonic, funct7=0b0100000 mnemonic)
_OP_F3: Dict[int, Tuple[str, str]] = {
    0b000: ("add", "sub"),
    0b001: ("sll", ""),
    0b010: ("slt", ""),
    0b011: ("sltu", ""),
    0b100: ("xor", ""),
    0b101: ("srl", "sra"),
    0b110: ("or", ""),
    0b111: ("and", ""),
}

#: Byte width of each memory-access mnemonic.
MEM_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4,
            "sb": 1, "sh": 2, "sw": 4}

LOADS = frozenset(("lb", "lbu", "lh", "lhu", "lw"))
STORES = frozenset(("sb", "sh", "sw"))
BRANCHES = frozenset(_BRANCH_F3.values())


class DecodeError(ValueError):
    """Not a valid RV32I instruction word."""


class Instr:
    """One decoded RV32I instruction (operands already extracted)."""

    __slots__ = ("word", "mnemonic", "rd", "rs1", "rs2", "imm")

    def __init__(self, word: int, mnemonic: str, rd: int = 0,
                 rs1: int = 0, rs2: int = 0, imm: int = 0) -> None:
        self.word = word
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Instr({self.mnemonic} rd=x{self.rd} rs1=x{self.rs1} "
                f"rs2=x{self.rs2} imm={self.imm})")


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _imm_i(word: int) -> int:
    return _signed(word >> 20, 12)


def _imm_s(word: int) -> int:
    return _signed(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)


def _imm_b(word: int) -> int:
    value = (((word >> 31) & 0x1) << 12) | (((word >> 7) & 0x1) << 11) \
        | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
    return _signed(value, 13)


def _imm_u(word: int) -> int:
    return word & 0xFFFFF000


def _imm_j(word: int) -> int:
    value = (((word >> 31) & 0x1) << 20) | (((word >> 12) & 0xFF) << 12) \
        | (((word >> 20) & 0x1) << 11) | (((word >> 21) & 0x3FF) << 1)
    return _signed(value, 21)


def decode(word: int) -> Instr:
    """Decode one instruction word; raises :class:`DecodeError`."""
    word &= MASK32
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = word >> 25

    if opcode == _OP_LUI:
        return Instr(word, "lui", rd=rd, imm=_imm_u(word))
    if opcode == _OP_AUIPC:
        return Instr(word, "auipc", rd=rd, imm=_imm_u(word))
    if opcode == _OP_JAL:
        return Instr(word, "jal", rd=rd, imm=_imm_j(word))
    if opcode == _OP_JALR:
        if funct3 != 0:
            raise DecodeError(f"JALR with funct3={funct3}: {word:#010x}")
        return Instr(word, "jalr", rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == _OP_BRANCH:
        mnemonic = _BRANCH_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"branch funct3={funct3}: {word:#010x}")
        return Instr(word, mnemonic, rs1=rs1, rs2=rs2, imm=_imm_b(word))
    if opcode == _OP_LOAD:
        mnemonic = _LOAD_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"load funct3={funct3}: {word:#010x}")
        return Instr(word, mnemonic, rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == _OP_STORE:
        mnemonic = _STORE_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"store funct3={funct3}: {word:#010x}")
        return Instr(word, mnemonic, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if opcode == _OP_IMM:
        if funct3 == 0b001:
            if funct7 != 0:
                raise DecodeError(f"SLLI funct7={funct7:#x}: {word:#010x}")
            return Instr(word, "slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            if funct7 == 0:
                return Instr(word, "srli", rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0b0100000:
                return Instr(word, "srai", rd=rd, rs1=rs1, imm=rs2)
            raise DecodeError(f"shift funct7={funct7:#x}: {word:#010x}")
        return Instr(word, _IMM_F3[funct3], rd=rd, rs1=rs1,
                     imm=_imm_i(word))
    if opcode == _OP_OP:
        entry = _OP_F3.get(funct3)
        if funct7 == 0 and entry is not None:
            return Instr(word, entry[0], rd=rd, rs1=rs1, rs2=rs2)
        if funct7 == 0b0100000 and entry is not None and entry[1]:
            return Instr(word, entry[1], rd=rd, rs1=rs1, rs2=rs2)
        raise DecodeError(
            f"OP funct3={funct3} funct7={funct7:#x}: {word:#010x}")
    if opcode == _OP_MISC_MEM:
        # FENCE / FENCE.I: a uniprocessor functional model runs them as
        # no-ops; the operand fields are ignored by design.
        return Instr(word, "fence")
    if opcode == _OP_SYSTEM:
        if word == 0x00000073:
            return Instr(word, "ecall")
        if word == 0x00100073:
            return Instr(word, "ebreak")
        raise DecodeError(f"unsupported SYSTEM word {word:#010x}")
    raise DecodeError(f"unknown opcode {opcode:#04x} in word {word:#010x}")
