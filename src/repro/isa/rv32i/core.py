"""Functional RV32I machine: registers, sparse memory, run-to-halt.

:class:`Machine` executes a flat instruction image (loaded at address 0)
one instruction per :meth:`step`, with no timing model at all — it is
the *semantic* half of the real-ISA workload front. Each retired
instruction is reported as a :class:`Retired` record carrying everything
the µop lowering layer needs (effective address, branch outcome, taken
target), so timing simulation consumes the exact committed path.

Model choices, shared with the differential reference interpreter in
``tests/rv32i/``:

* **Memory** is a sparse byte dict — any address readable (unwritten
  bytes are 0), loads/stores may be unaligned (byte-composed,
  little-endian).
* **Halt** on ``ecall``/``ebreak`` (the corpus convention), on fetching
  outside the image, or on a misaligned pc; :attr:`Machine.halt_reason`
  says which.
* All arithmetic wraps mod 2^32; ``x0`` is hardwired to zero.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.isa.rv32i.decode import (
    BRANCHES,
    LOADS,
    MEM_SIZE,
    STORES,
    Instr,
    decode,
)

MASK32 = 0xFFFFFFFF


class HaltReason:
    """Why a machine stopped (string constants, stored on the machine)."""

    EBREAK = "ebreak"
    ECALL = "ecall"
    OUT_OF_IMAGE = "out-of-image"
    MISALIGNED = "misaligned-pc"


class Retired:
    """One retired instruction, as the lowering layer sees it."""

    __slots__ = ("pc", "instr", "mem_addr", "taken", "target", "next_pc")

    def __init__(self, pc: int, instr: Instr, mem_addr: int = 0,
                 taken: bool = False, target: int = 0,
                 next_pc: int = 0) -> None:
        self.pc = pc
        self.instr = instr
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target
        self.next_pc = next_pc


def _signed32(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


class Machine:
    """Architectural state plus the execute loop."""

    def __init__(self, image: List[int]) -> None:
        self.image = list(image)
        self.regs: List[int] = [0] * 32
        self.mem: Dict[int, int] = {}       # byte address -> byte value
        self.pc = 0
        self.retired = 0
        self.halted = False
        self.halt_reason: Optional[str] = None
        # Decoded-image cache: decode each static instruction once, not
        # once per dynamic execution (the executor's only hot-path trick).
        self._decoded: List[Optional[Instr]] = [None] * len(self.image)

    # -- memory ---------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool) -> int:
        mem = self.mem
        value = 0
        for i in range(size):
            value |= mem.get((addr + i) & MASK32, 0) << (8 * i)
        if signed:
            sign = 1 << (8 * size - 1)
            value = (value & (sign - 1)) - (value & sign)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        mem = self.mem
        for i in range(size):
            mem[(addr + i) & MASK32] = (value >> (8 * i)) & 0xFF

    # -- execution ------------------------------------------------------

    def _fetch(self) -> Optional[Instr]:
        pc = self.pc
        if pc % 4:
            self.halted, self.halt_reason = True, HaltReason.MISALIGNED
            return None
        index = pc >> 2
        if not 0 <= index < len(self.image):
            self.halted, self.halt_reason = True, HaltReason.OUT_OF_IMAGE
            return None
        instr = self._decoded[index]
        if instr is None:
            instr = self._decoded[index] = decode(self.image[index])
        return instr

    def step(self) -> Optional[Retired]:
        """Execute one instruction; ``None`` once halted."""
        if self.halted:
            return None
        instr = self._fetch()
        if instr is None:
            return None
        pc = self.pc
        regs = self.regs
        name = instr.mnemonic
        rs1 = regs[instr.rs1]
        rs2 = regs[instr.rs2]
        rd_value: Optional[int] = None
        next_pc = pc + 4
        mem_addr = 0
        taken = False
        target = 0

        if name == "addi":
            rd_value = (rs1 + instr.imm) & MASK32
        elif name in ("add", "sub"):
            rd_value = (rs1 + rs2 if name == "add" else rs1 - rs2) & MASK32
        elif name in LOADS:
            mem_addr = (rs1 + instr.imm) & MASK32
            rd_value = self.load(mem_addr, MEM_SIZE[name],
                                 signed=name in ("lb", "lh")) & MASK32
        elif name in STORES:
            mem_addr = (rs1 + instr.imm) & MASK32
            self.store(mem_addr, MEM_SIZE[name], rs2)
        elif name in BRANCHES:
            if name == "beq":
                taken = rs1 == rs2
            elif name == "bne":
                taken = rs1 != rs2
            elif name == "blt":
                taken = _signed32(rs1) < _signed32(rs2)
            elif name == "bge":
                taken = _signed32(rs1) >= _signed32(rs2)
            elif name == "bltu":
                taken = rs1 < rs2
            else:                   # bgeu
                taken = rs1 >= rs2
            target = (pc + instr.imm) & MASK32
            if taken:
                next_pc = target
        elif name == "lui":
            rd_value = instr.imm & MASK32
        elif name == "auipc":
            rd_value = (pc + instr.imm) & MASK32
        elif name == "jal":
            rd_value = (pc + 4) & MASK32
            taken = True
            target = next_pc = (pc + instr.imm) & MASK32
        elif name == "jalr":
            rd_value = (pc + 4) & MASK32
            taken = True
            target = next_pc = (rs1 + instr.imm) & MASK32 & ~1
        elif name == "slti":
            rd_value = int(_signed32(rs1) < instr.imm)
        elif name == "sltiu":
            rd_value = int(rs1 < (instr.imm & MASK32))
        elif name == "xori":
            rd_value = (rs1 ^ instr.imm) & MASK32
        elif name == "ori":
            rd_value = (rs1 | instr.imm) & MASK32
        elif name == "andi":
            rd_value = (rs1 & instr.imm) & MASK32
        elif name == "slli":
            rd_value = (rs1 << instr.imm) & MASK32
        elif name == "srli":
            rd_value = rs1 >> instr.imm
        elif name == "srai":
            rd_value = _signed32(rs1) >> instr.imm & MASK32
        elif name == "sll":
            rd_value = (rs1 << (rs2 & 0x1F)) & MASK32
        elif name == "srl":
            rd_value = rs1 >> (rs2 & 0x1F)
        elif name == "sra":
            rd_value = (_signed32(rs1) >> (rs2 & 0x1F)) & MASK32
        elif name == "slt":
            rd_value = int(_signed32(rs1) < _signed32(rs2))
        elif name == "sltu":
            rd_value = int(rs1 < rs2)
        elif name == "xor":
            rd_value = (rs1 ^ rs2) & MASK32
        elif name == "or":
            rd_value = (rs1 | rs2) & MASK32
        elif name == "and":
            rd_value = (rs1 & rs2) & MASK32
        elif name == "fence":
            pass
        elif name in ("ecall", "ebreak"):
            self.halted = True
            self.halt_reason = (HaltReason.ECALL if name == "ecall"
                                else HaltReason.EBREAK)
            self.retired += 1
            return Retired(pc, instr, next_pc=pc + 4)
        else:                       # pragma: no cover - decode is total
            raise AssertionError(f"unhandled mnemonic {name}")

        if rd_value is not None and instr.rd:
            regs[instr.rd] = rd_value & MASK32
        self.pc = next_pc
        self.retired += 1
        return Retired(pc, instr, mem_addr=mem_addr, taken=taken,
                       target=target, next_pc=next_pc)

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until halt (or the step cap); returns instructions retired."""
        start = self.retired
        for _ in range(max_steps):
            if self.step() is None:
                break
        return self.retired - start

    # -- end-state digests (golden suite, CLI) --------------------------

    def memory_digest(self) -> str:
        """sha256 over the sorted non-zero (address, byte) pairs."""
        sha = hashlib.sha256()
        for addr in sorted(self.mem):
            byte = self.mem[addr]
            if byte:
                sha.update(addr.to_bytes(4, "little"))
                sha.update(bytes((byte,)))
        return sha.hexdigest()

    # -- state protocol (repro.checkpoint) ------------------------------

    def state_dict(self) -> dict:
        return {
            "regs": list(self.regs),
            "mem": dict(self.mem),
            "pc": self.pc,
            "retired": self.retired,
            "halted": self.halted,
            "halt_reason": self.halt_reason,
        }

    def load_state_dict(self, state: dict) -> None:
        self.regs = list(state["regs"])
        self.mem = {int(k): v for k, v in state["mem"].items()}
        self.pc = state["pc"]
        self.retired = state["retired"]
        self.halted = state["halted"]
        self.halt_reason = state["halt_reason"]
