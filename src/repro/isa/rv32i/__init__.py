"""Real-ISA workload front: a functional RV32I executor and µop capture.

This package runs real compiled/assembled RV32I programs to completion
and lowers each retired instruction into the architectural
:class:`~repro.isa.uop.MicroOp` fields the pipeline consumes — genuine
loop-carried dependences, real branch correlation and actual address
reuse, where every other workload in the repository is synthetic.

Layers (each importable on its own):

* :mod:`~repro.isa.rv32i.decode` — pure-python decoder for the full
  RV32I base set;
* :mod:`~repro.isa.rv32i.asm` — a minimal two-pass assembler + flat
  ``.hex`` image codec for the bundled corpus;
* :mod:`~repro.isa.rv32i.core` — the functional machine (register file,
  sparse byte memory, run-to-halt);
* :mod:`~repro.isa.rv32i.lower` — retired instruction -> µop lowering;
* :mod:`~repro.isa.rv32i.workload` — registry workloads and the
  :class:`~repro.isa.trace.TraceSource` the pipeline fetches from;
* :mod:`~repro.isa.rv32i.corpus` — the bundled kernel programs under
  ``examples/rv32i/``.

See ``docs/RV32I.md`` for the CLI surface and the bring-your-own-program
guide.
"""

from repro.isa.rv32i.asm import AsmError, assemble, parse_hex, to_hex
from repro.isa.rv32i.core import HaltReason, Machine, Retired
from repro.isa.rv32i.corpus import (
    BUNDLED,
    bundled_programs,
    bundled_workload,
    corpus_dir,
    listing_path,
)
from repro.isa.rv32i.decode import DecodeError, Instr, decode
from repro.isa.rv32i.lower import lower
from repro.isa.rv32i.workload import (
    RV32I_SUFFIXES,
    Rv32iError,
    Rv32iProgram,
    Rv32iTrace,
    Rv32iWorkload,
)

__all__ = [
    "AsmError",
    "BUNDLED",
    "DecodeError",
    "HaltReason",
    "Instr",
    "Machine",
    "Retired",
    "RV32I_SUFFIXES",
    "Rv32iError",
    "Rv32iProgram",
    "Rv32iTrace",
    "Rv32iWorkload",
    "assemble",
    "bundled_programs",
    "bundled_workload",
    "corpus_dir",
    "decode",
    "listing_path",
    "lower",
    "parse_hex",
    "to_hex",
]
