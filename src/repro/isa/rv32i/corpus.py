"""The bundled RV32I kernel corpus.

Five small hand-written kernels, checked in under ``examples/rv32i/`` as
assembled ``.hex`` images next to their ``.s`` source listings. The
table below is the registry of record: names resolve through the
workload registry (``repro run ptr-chase SpecSched_4`` just works), and
``repro rv32i check`` re-assembles every listing and compares it to the
checked-in image byte-for-byte (the CI assemble-check).

The corpus directory resolves, in order: ``REPRO_RV32I_DIR``, the
repo-relative ``examples/rv32i`` next to this package's source tree, and
``examples/rv32i`` under the current directory. When none exists the
corpus is simply absent (``bundled_programs()`` is empty) — explicit
image paths and ``REPRO_WORKLOAD_PATH`` discovery keep working.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

from repro.isa.rv32i.workload import Rv32iWorkload

#: name -> one-line description of every bundled kernel.
BUNDLED: Dict[str, str] = {
    "dhry-mix": "dhrystone-style mixed loop: ALU, shifts, record "
                "copy, function calls",
    "ptr-chase": "pointer-chasing linked list built then walked with "
                 "a stride-scrambled layout",
    "matmul-inner": "matrix inner product: row-times-column dot "
                    "products over a 8x8 grid",
    "state-machine": "branchy xorshift-driven state machine with a "
                     "dense dispatch ladder",
    "memcpy-stream": "word+byte memcpy passes and a rolling checksum "
                     "over a streamed buffer",
}


def corpus_dir() -> Optional[Path]:
    """The directory holding the bundled images, or ``None``."""
    override = os.environ.get("REPRO_RV32I_DIR")
    if override:
        path = Path(override)
        return path if path.is_dir() else None
    # src/repro/isa/rv32i/corpus.py -> repo root is four parents up from
    # the package dir; tolerate installs where that layout doesn't hold.
    repo_relative = Path(__file__).resolve().parents[4] / "examples/rv32i"
    if repo_relative.is_dir():
        return repo_relative
    cwd_relative = Path("examples/rv32i")
    if cwd_relative.is_dir():
        return cwd_relative
    return None


def bundled_programs() -> Dict[str, Path]:
    """name -> image path for every bundled program present on disk."""
    directory = corpus_dir()
    if directory is None:
        return {}
    out: Dict[str, Path] = {}
    for name in BUNDLED:
        image = directory / f"{name}.hex"
        if image.is_file():
            out[name] = image
    return out


def bundled_workload(name: str) -> Optional[Rv32iWorkload]:
    """Resolve one bundled kernel by name (``None`` when absent)."""
    image = bundled_programs().get(name)
    if image is None:
        return None
    return Rv32iWorkload(image, name=name, description=BUNDLED[name])


def listing_path(name: str) -> Optional[Path]:
    """The ``.s`` source listing next to a bundled image."""
    image = bundled_programs().get(name)
    if image is None:
        return None
    listing = image.with_suffix(".s")
    return listing if listing.is_file() else None
