"""Lower retired RV32I instructions into :class:`~repro.isa.uop.MicroOp`.

Each retired instruction becomes exactly one µop carrying the
*architectural* fields the pipeline consumes — pc, :class:`OpClass`,
source/destination architectural registers, effective address and size
for memory ops, outcome and target for control flow. RV32I registers map
directly onto the integer half of the renamer's architectural namespace
(x1..x31 -> 1..31); ``x0`` is hardwired zero, so it is dropped from both
sources and destinations — it can never carry a dependence.

Control-flow classification follows the RISC-V return-address-stack
hints: ``jal``/``jalr`` writing a link register (x1/x5) lower to CALL,
``jalr`` through a link register to RET, and everything else —
conditional branches and plain unconditional jumps — to BRANCH (an
unconditional jump is a BRANCH with ``taken=True``).
"""

from __future__ import annotations

from typing import List

from repro.isa.opclass import OpClass
from repro.isa.rv32i.core import Retired
from repro.isa.rv32i.decode import BRANCHES, LOADS, MEM_SIZE, STORES
from repro.isa.uop import MicroOp

#: Registers the RAS hints treat as link registers (ra, t0).
LINK_REGS = frozenset((1, 5))

#: Mnemonics with no register sources beyond rs1/rs2 handled uniformly;
#: everything that reads rs2 in RV32I.
_USES_RS2 = frozenset(("add", "sub", "sll", "slt", "sltu", "xor", "srl",
                       "sra", "or", "and")) | STORES | BRANCHES


def lower(retired: Retired, seq: int = 0) -> MicroOp:
    """One retired instruction -> one architectural µop."""
    instr = retired.instr
    name = instr.mnemonic

    srcs: List[int] = []
    if name not in ("lui", "jal", "ecall", "ebreak", "fence"):
        if instr.rs1 and name != "auipc":
            srcs.append(instr.rs1)
    if name in _USES_RS2 and instr.rs2:
        srcs.append(instr.rs2)

    dst = instr.rd if instr.rd and name not in STORES and name not in \
        BRANCHES and name not in ("ecall", "ebreak", "fence") else None

    if name in LOADS:
        opclass = OpClass.LOAD
    elif name in STORES:
        opclass = OpClass.STORE
    elif name in BRANCHES:
        opclass = OpClass.BRANCH
    elif name == "jal":
        opclass = OpClass.CALL if instr.rd in LINK_REGS else OpClass.BRANCH
    elif name == "jalr":
        if instr.rd in LINK_REGS:
            opclass = OpClass.CALL
        elif instr.rs1 in LINK_REGS:
            opclass = OpClass.RET
        else:
            opclass = OpClass.BRANCH
    elif name in ("fence", "ecall", "ebreak"):
        opclass = OpClass.NOP
    else:
        opclass = OpClass.INT_ALU

    return MicroOp(
        seq=seq,
        pc=retired.pc,
        opclass=opclass,
        srcs=srcs,
        dst=dst,
        mem_addr=retired.mem_addr,
        mem_size=MEM_SIZE.get(name, 8),
        taken=retired.taken,
        target=retired.target,
    )
