"""A minimal two-pass RV32I assembler for the bundled program corpus.

This is deliberately a *corpus tool*, not a general toolchain: enough of
the GNU assembler's surface (labels, ABI register names, the base
instruction set, the common pseudo-instructions, ``.word``) to write the
bundled kernels as readable ``.s`` listings and re-assemble them
byte-identically in CI (``repro rv32i check``). Programs start at
address 0; there are no sections, no relocation and no linker.

Syntax per line (``#`` starts a comment)::

    label:
    mnemonic  operands          # e.g. addi sp, sp, -16
    .word     0x12345678        # raw data word emitted in place

Pseudo-instructions expand exactly as the standard assembler does:
``li`` (1 word when the value fits ADDI's 12-bit immediate, else
``lui``+``addi``), ``la`` is not supported (no sections), ``mv``,
``not``, ``neg``, ``seqz``/``snez``/``sltz``/``sgtz``, ``nop``,
``beqz``/``bnez``/``blez``/``bgez``/``bltz``/``bgtz``, ``j``, ``jr``,
``ret``, ``call`` (→ ``jal ra``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

MASK32 = 0xFFFFFFFF


class AsmError(ValueError):
    """Malformed assembly input (reported with the source line number)."""


#: ABI name -> register index (x0..x31 accepted as well).
REG_NAMES: Dict[str, int] = {"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
                             "fp": 8}
REG_NAMES.update({f"x{i}": i for i in range(32)})
REG_NAMES.update({f"t{i}": n for i, n in
                  enumerate((5, 6, 7, 28, 29, 30, 31))})
REG_NAMES.update({f"s{i}": n for i, n in
                  enumerate((8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27))})
REG_NAMES.update({f"a{i}": 10 + i for i in range(8)})


def _reg(token: str, line: int) -> int:
    index = REG_NAMES.get(token.strip().lower())
    if index is None:
        raise AsmError(f"line {line}: unknown register {token.strip()!r}")
    return index


def _int(token: str, line: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AsmError(f"line {line}: bad integer {token.strip()!r}") from None


def _fits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


# ---------------------------------------------------------------------------
# Encoders (one per format)


def _enc_r(f7: int, rs2: int, rs1: int, f3: int, rd: int, op: int) -> int:
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
        | (rd << 7) | op


def _enc_i(imm: int, rs1: int, f3: int, rd: int, op: int, line: int) -> int:
    if not _fits(imm, 12):
        raise AsmError(f"line {line}: immediate {imm} out of 12-bit range")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op


def _enc_s(imm: int, rs2: int, rs1: int, f3: int, op: int, line: int) -> int:
    if not _fits(imm, 12):
        raise AsmError(f"line {line}: store offset {imm} out of range")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
        | ((imm & 0x1F) << 7) | op


def _enc_b(imm: int, rs2: int, rs1: int, f3: int, op: int, line: int) -> int:
    if imm % 2:
        raise AsmError(f"line {line}: branch target misaligned by {imm}")
    if not _fits(imm, 13):
        raise AsmError(f"line {line}: branch offset {imm} out of range")
    imm &= 0x1FFF
    return (((imm >> 12) & 0x1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 0x1) << 7) | op


def _enc_u(imm: int, rd: int, op: int, line: int) -> int:
    if not 0 <= imm < (1 << 20):
        raise AsmError(f"line {line}: U-immediate {imm:#x} out of range")
    return (imm << 12) | (rd << 7) | op


def _enc_j(imm: int, rd: int, op: int, line: int) -> int:
    if imm % 2:
        raise AsmError(f"line {line}: jump target misaligned by {imm}")
    if not _fits(imm, 21):
        raise AsmError(f"line {line}: jump offset {imm} out of range")
    imm &= 0x1FFFFF
    return (((imm >> 20) & 0x1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 0x1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | 0b1101111


_R_OPS = {"add": (0, 0), "sub": (0b0100000, 0), "sll": (0, 1),
          "slt": (0, 2), "sltu": (0, 3), "xor": (0, 4), "srl": (0, 5),
          "sra": (0b0100000, 5), "or": (0, 6), "and": (0, 7)}
_I_OPS = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_SHIFT_OPS = {"slli": (0, 1), "srli": (0, 5), "srai": (0b0100000, 5)}
_LOAD_OPS = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_OPS = {"sb": 0, "sh": 1, "sw": 2}
_BRANCH_OPS = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

#: Branch-zero pseudo -> (real branch, operand order flips rs1/rs2).
_BZ_PSEUDO = {"beqz": ("beq", False), "bnez": ("bne", False),
              "bltz": ("blt", False), "bgez": ("bge", False),
              "blez": ("bge", True), "bgtz": ("blt", True)}


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def _mem_operand(token: str, line: int) -> Tuple[int, int]:
    """``offset(reg)`` -> (offset, reg index)."""
    token = token.strip()
    if not token.endswith(")") or "(" not in token:
        raise AsmError(f"line {line}: expected offset(reg), got {token!r}")
    offset_text, reg_text = token[:-1].split("(", 1)
    offset = _int(offset_text, line) if offset_text.strip() else 0
    return offset, _reg(reg_text, line)


def _li_words(rd: int, value: int, line: int) -> List[Tuple[str, tuple]]:
    """Expansion plan for ``li`` (1 or 2 words, sized in pass 1)."""
    value = ((value + (1 << 31)) & MASK32) - (1 << 31)   # canonical signed
    if _fits(value, 12):
        return [("addi", (f"x{rd}", "x0", str(value)))]
    lower = ((value & 0xFFF) ^ 0x800) - 0x800            # signed low 12
    upper = ((value - lower) >> 12) & 0xFFFFF
    return [("lui", (f"x{rd}", str(upper))),
            ("addi", (f"x{rd}", f"x{rd}", str(lower)))]


# ---------------------------------------------------------------------------
# Pass 1: tokenize, expand pseudo-ops, lay out addresses


def _parse(text: str):
    """Yield ``(line_number, address, mnemonic, operands)`` items plus
    the label table; pseudo-instructions are rewritten to base ops whose
    operands may still be unresolved label names."""
    labels: Dict[str, int] = {}
    items: List[Tuple[int, int, str, List[str]]] = []
    address = 0
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        while line:
            if ":" in line.split()[0] and line.split()[0].endswith(":"):
                label = line.split()[0][:-1]
                if not label or label in labels:
                    raise AsmError(
                        f"line {line_number}: bad/duplicate label {label!r}")
                labels[label] = address
                line = line[len(label) + 1:].strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        if mnemonic == "li":
            if len(operands) != 2:
                raise AsmError(f"line {line_number}: li takes rd, imm")
            rd = _reg(operands[0], line_number)
            for op, args in _li_words(rd, _int(operands[1], line_number),
                                      line_number):
                items.append((line_number, address, op,
                              [str(a) for a in args]))
                address += 4
            continue
        items.append((line_number, address, mnemonic, operands))
        address += 4
    return items, labels


def _target(token: str, labels: Dict[str, int], address: int,
            line: int) -> int:
    """A branch/jump operand: label -> pc-relative offset, int -> as-is."""
    token = token.strip()
    if token in labels:
        return labels[token] - address
    return _int(token, line)


# ---------------------------------------------------------------------------
# Pass 2: encode


def assemble(text: str) -> List[int]:
    """Assemble a listing into instruction words (program base 0)."""
    items, labels = _parse(text)
    words: List[int] = []
    for line, address, mnemonic, ops in items:
        words.append(_encode_one(line, address, mnemonic, ops, labels))
    return words


def _encode_one(line: int, address: int, mnemonic: str, ops: List[str],
                labels: Dict[str, int]) -> int:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AsmError(f"line {line}: {mnemonic} takes {count} "
                           f"operand(s), got {len(ops)}")

    # Pseudo-instructions first (they re-enter with a base mnemonic).
    if mnemonic == "nop":
        need(0)
        return _encode_one(line, address, "addi", ["x0", "x0", "0"], labels)
    if mnemonic == "mv":
        need(2)
        return _encode_one(line, address, "addi", [*ops, "0"], labels)
    if mnemonic == "not":
        need(2)
        return _encode_one(line, address, "xori", [*ops, "-1"], labels)
    if mnemonic == "neg":
        need(2)
        return _encode_one(line, address, "sub", [ops[0], "x0", ops[1]],
                           labels)
    if mnemonic == "seqz":
        need(2)
        return _encode_one(line, address, "sltiu", [*ops, "1"], labels)
    if mnemonic == "snez":
        need(2)
        return _encode_one(line, address, "sltu", [ops[0], "x0", ops[1]],
                           labels)
    if mnemonic == "sltz":
        need(2)
        return _encode_one(line, address, "slt", [ops[0], ops[1], "x0"],
                           labels)
    if mnemonic == "sgtz":
        need(2)
        return _encode_one(line, address, "slt", [ops[0], "x0", ops[1]],
                           labels)
    if mnemonic in _BZ_PSEUDO:
        need(2)
        real, flip = _BZ_PSEUDO[mnemonic]
        pair = ["x0", ops[0]] if flip else [ops[0], "x0"]
        return _encode_one(line, address, real, [*pair, ops[1]], labels)
    if mnemonic == "j":
        need(1)
        return _encode_one(line, address, "jal", ["x0", ops[0]], labels)
    if mnemonic == "call":
        need(1)
        return _encode_one(line, address, "jal", ["ra", ops[0]], labels)
    if mnemonic == "jr":
        need(1)
        return _encode_one(line, address, "jalr", ["x0", f"0({ops[0]})"],
                           labels)
    if mnemonic == "ret":
        need(0)
        return _encode_one(line, address, "jalr", ["x0", "0(ra)"], labels)

    if mnemonic == ".word":
        need(1)
        return _int(ops[0], line) & MASK32

    if mnemonic in _R_OPS:
        need(3)
        f7, f3 = _R_OPS[mnemonic]
        return _enc_r(f7, _reg(ops[2], line), _reg(ops[1], line), f3,
                      _reg(ops[0], line), 0b0110011)
    if mnemonic in _I_OPS:
        need(3)
        return _enc_i(_int(ops[2], line), _reg(ops[1], line),
                      _I_OPS[mnemonic], _reg(ops[0], line), 0b0010011, line)
    if mnemonic in _SHIFT_OPS:
        need(3)
        f7, f3 = _SHIFT_OPS[mnemonic]
        shamt = _int(ops[2], line)
        if not 0 <= shamt < 32:
            raise AsmError(f"line {line}: shift amount {shamt} out of range")
        return _enc_r(f7, shamt, _reg(ops[1], line), f3,
                      _reg(ops[0], line), 0b0010011)
    if mnemonic in _LOAD_OPS:
        need(2)
        offset, base = _mem_operand(ops[1], line)
        return _enc_i(offset, base, _LOAD_OPS[mnemonic],
                      _reg(ops[0], line), 0b0000011, line)
    if mnemonic in _STORE_OPS:
        need(2)
        offset, base = _mem_operand(ops[1], line)
        return _enc_s(offset, _reg(ops[0], line), base,
                      _STORE_OPS[mnemonic], 0b0100011, line)
    if mnemonic in _BRANCH_OPS:
        need(3)
        return _enc_b(_target(ops[2], labels, address, line),
                      _reg(ops[1], line), _reg(ops[0], line),
                      _BRANCH_OPS[mnemonic], 0b1100011, line)
    if mnemonic == "lui":
        need(2)
        return _enc_u(_int(ops[1], line) & 0xFFFFF, _reg(ops[0], line),
                      0b0110111, line)
    if mnemonic == "auipc":
        need(2)
        return _enc_u(_int(ops[1], line) & 0xFFFFF, _reg(ops[0], line),
                      0b0010111, line)
    if mnemonic == "jal":
        if len(ops) == 1:           # `jal label` == `jal ra, label`
            ops = ["ra", ops[0]]
        need(2)
        return _enc_j(_target(ops[1], labels, address, line),
                      _reg(ops[0], line), 0b1101111, line)
    if mnemonic == "jalr":
        if len(ops) == 2:           # `jalr rd, offset(rs1)`
            offset, base = _mem_operand(ops[1], line)
            return _enc_i(offset, base, 0, _reg(ops[0], line),
                          0b1100111, line)
        need(3)                     # `jalr rd, rs1, offset`
        return _enc_i(_int(ops[2], line), _reg(ops[1], line), 0,
                      _reg(ops[0], line), 0b1100111, line)
    if mnemonic == "fence":
        return 0x0FF0000F
    if mnemonic == "ecall":
        need(0)
        return 0x00000073
    if mnemonic == "ebreak":
        need(0)
        return 0x00100073
    raise AsmError(f"line {line}: unknown mnemonic {mnemonic!r}")


# ---------------------------------------------------------------------------
# Flat .hex images


def to_hex(words: List[int]) -> str:
    """One 8-digit hex word per line — the corpus image format."""
    return "".join(f"{word & MASK32:08x}\n" for word in words)


def parse_hex(text: str) -> List[int]:
    """Inverse of :func:`to_hex`; ``#`` comments and blank lines allowed."""
    words: List[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = int(line, 16)
        except ValueError:
            raise AsmError(
                f"line {line_number}: not a hex word {line!r}") from None
        if not 0 <= value <= MASK32:
            raise AsmError(f"line {line_number}: word out of 32-bit range")
        words.append(value)
    return words
