"""RV32I programs as registry workloads and pipeline trace sources.

:class:`Rv32iProgram` is a loaded instruction image (flat ``.hex`` word
list or raw little-endian ``.bin``); :class:`Rv32iWorkload` presents one
through the workload-registry protocol (``name`` / ``description`` /
``is_fp`` / ``build_trace(seed)`` / ``content_hash``), so a real program
is addressable everywhere a Table-2 workload is — ``repro run``, sweeps,
trace capture, checkpoints, sampling. :class:`Rv32iTrace` is the
:class:`~repro.isa.trace.TraceSource`: it steps the functional
:class:`~repro.isa.rv32i.core.Machine` and lowers each retired
instruction to one µop (:mod:`repro.isa.rv32i.lower`).

The µop stream is a pure function of the image: the program's committed
path never depends on the seed (that only drives the wrong-path
synthesizer), so the engine keys cells on the image's content hash. By
default the stream **loops** — when the program halts, the machine is
reset to its initial state and execution restarts — so finite kernels
supply unbounded µops exactly like the synthetic generators; pass
``loop=False`` (or use :meth:`Machine.run` directly) for run-to-halt
semantics.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import List, Optional

from repro.isa.rv32i.asm import parse_hex
from repro.isa.rv32i.core import Machine
from repro.isa.rv32i.lower import lower
from repro.isa.trace import TraceSource, WrongPathSynth
from repro.isa.uop import MicroOp

#: Image suffixes the workload registry recognizes as RV32I programs.
RV32I_SUFFIXES = (".hex", ".bin")


class Rv32iError(ValueError):
    """Unloadable or malformed program image."""


class Rv32iProgram:
    """A flat RV32I instruction image, loaded at address 0."""

    def __init__(self, words: List[int], *, name: str,
                 path: Optional[Path] = None,
                 description: str = "") -> None:
        if not words:
            raise Rv32iError(f"program {name!r} has an empty image")
        self.words = list(words)
        self.name = name
        self.path = Path(path) if path is not None else None
        self.description = description

    @classmethod
    def from_file(cls, path, *, name: Optional[str] = None,
                  description: str = "") -> "Rv32iProgram":
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".hex":
            try:
                words = parse_hex(path.read_text())
            except ValueError as exc:
                raise Rv32iError(f"{path.name}: {exc}") from None
        elif suffix == ".bin":
            blob = path.read_bytes()
            if len(blob) % 4:
                raise Rv32iError(
                    f"{path.name}: binary image is {len(blob)} bytes, "
                    f"not a whole number of 32-bit words")
            words = [int.from_bytes(blob[i:i + 4], "little")
                     for i in range(0, len(blob), 4)]
        else:
            raise Rv32iError(
                f"{path.name}: unsupported image suffix {path.suffix!r} "
                f"(expected {' or '.join(RV32I_SUFFIXES)})")
        return cls(words, name=name or path.stem, path=path,
                   description=description)

    def image_bytes(self) -> bytes:
        return b"".join(word.to_bytes(4, "little") for word in self.words)

    def image_sha(self) -> str:
        """Content identity of the instruction image."""
        return hashlib.sha256(self.image_bytes()).hexdigest()

    def machine(self) -> Machine:
        return Machine(self.words)


class Rv32iTrace(TraceSource):
    """Execute-and-lower trace source over a program image."""

    def __init__(self, program: Rv32iProgram, seed: int = 0,
                 loop: bool = True) -> None:
        self.program = program
        self._machine = program.machine()
        self._loop = loop
        self._seq = 0
        self._iterations = 0
        self._synth = WrongPathSynth(seed)
        self.emitted = 0

    def next_uop(self) -> Optional[MicroOp]:
        machine = self._machine
        retired = machine.step()
        while retired is None:
            if not self._loop:
                return None
            # Halted: restart from the initial image. Sharing the decoded
            # cache keeps re-runs from re-decoding every static
            # instruction.
            fresh = Machine(self.program.words)
            fresh._decoded = machine._decoded
            self._machine = machine = fresh
            self._iterations += 1
            retired = machine.step()
            if retired is None:
                raise Rv32iError(
                    f"program {self.program.name!r} halts without "
                    f"retiring a single instruction")
        uop = lower(retired, self._seq)
        self._seq += 1
        self.emitted += 1
        return uop

    def wrong_path_uop(self, seq: int, pc: int) -> MicroOp:
        return self._synth.synth(seq, pc)

    def skip_wrong_path(self, count: int) -> None:
        self._synth.skip(count)

    def reset(self) -> None:
        self._machine = self.program.machine()
        self._seq = 0
        self._iterations = 0
        self._synth = WrongPathSynth(self._synth.seed)
        self.emitted = 0

    # -- state protocol (repro.checkpoint) ------------------------------

    def state_dict(self) -> dict:
        return {
            "machine": self._machine.state_dict(),
            "iterations": self._iterations,
            "seq": self._seq,
            "emitted": self.emitted,
            "loop": self._loop,
            "synth": self._synth.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._machine = self.program.machine()
        self._machine.load_state_dict(state["machine"])
        self._iterations = state["iterations"]
        self._seq = state["seq"]
        self.emitted = state["emitted"]
        self._loop = state["loop"]
        self._synth.load_state_dict(state["synth"])


class Rv32iWorkload:
    """An RV32I program behind the workload-registry protocol."""

    def __init__(self, path, *, name: Optional[str] = None,
                 description: str = "", seed: int = 1) -> None:
        self.program = Rv32iProgram.from_file(path, name=name,
                                              description=description)
        self.path = self.program.path
        self.name = self.program.name
        self.seed = seed
        self.digest = self.program.image_sha()

    @property
    def description(self) -> str:
        base = self.program.description
        suffix = f"RV32I program ({len(self.program.words)} words)"
        return f"{base} [{suffix}]" if base else suffix

    @property
    def is_fp(self) -> bool:
        return False                # RV32I is the integer base set

    def build_trace(self, seed: Optional[int] = None) -> Rv32iTrace:
        return Rv32iTrace(self.program,
                          seed=self.seed if seed is None else seed)

    def content_hash(self) -> str:
        """Identity of the instruction image, not of the file location."""
        from repro.common.serialize import stable_hash

        return stable_hash({"kind": "rv32i", "image_sha": self.digest})
