"""Load/store queues — 72-entry LQ, 48-entry SQ (Table 1).

Responsibilities:

* occupancy (dispatch stalls when a queue is full; entries release at
  commit);
* store-to-load forwarding at quadword granularity (a load whose address
  matches an older *executed* store gets its data from the SQ and performs
  no cache access — hence no bank conflict and no miss);
* memory-order violation detection: a store that executes and finds a
  *younger already-executed* load to the same quadword raises a violation
  (squash-and-refetch from the load, store-sets training);
* store-dependence wakeups for the store-sets predictor: µops predicted
  dependent on a store wait until that store executes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.isa.uop import MicroOp

_QWORD_SHIFT = 3


def _qword(addr: int) -> int:
    return addr >> _QWORD_SHIFT


class LoadStoreQueue:
    """Combined LQ/SQ model.

    Queues are deques in program order: entries release from the front at
    commit and squash from the back, so both ends are O(1); the address
    scans (forwarding, violation detection) walk the whole queue either
    way."""

    def __init__(self, lq_capacity: int = 72, sq_capacity: int = 48,
                 on_ready: Optional[Callable[[MicroOp], None]] = None) -> None:
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.loads: Deque[MicroOp] = deque()
        self.stores: Deque[MicroOp] = deque()
        self._dep_waiters: Dict[int, List[MicroOp]] = {}  # store seq -> µops
        self.on_ready = on_ready or (lambda uop: None)
        self.forwards = 0
        self.violations = 0

    # -- occupancy ---------------------------------------------------------

    def lq_full(self) -> bool:
        return len(self.loads) >= self.lq_capacity

    def sq_full(self) -> bool:
        return len(self.stores) >= self.sq_capacity

    def insert(self, uop: MicroOp) -> None:
        if uop.is_load:
            if self.lq_full():
                raise OverflowError("LQ overflow")
            self.loads.append(uop)
        elif uop.is_store:
            if self.sq_full():
                raise OverflowError("SQ overflow")
            self.stores.append(uop)
        else:
            raise ValueError("LSQ only holds memory µops")

    def release(self, uop: MicroOp) -> None:
        """Free the entry at commit (or on squash)."""
        queue = self.loads if uop.is_load else self.stores
        if queue and queue[0] is uop:      # commit order: the common case
            queue.popleft()
        elif uop in queue:
            queue.remove(uop)

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        doomed: List[MicroOp] = []
        bound = seq - 1 if inclusive else seq
        for queue in (self.loads, self.stores):
            while queue and queue[-1].seq > bound:
                doomed.append(queue.pop())
        for uop in doomed:
            self._dep_waiters.pop(uop.seq, None)
        return doomed

    # -- store-dependence (store sets) ----------------------------------------

    def add_store_dependence(self, uop: MicroOp, store: MicroOp) -> None:
        """Make ``uop`` wait for ``store`` to execute (predictor decision)."""
        uop.store_dep = store
        uop.pending += 1
        self._dep_waiters.setdefault(store.seq, []).append(uop)

    def store_executed_wakeups(self, store: MicroOp) -> None:
        waiters = self._dep_waiters.pop(store.seq, None)
        if not waiters:
            return
        for uop in waiters:
            if uop.dead or uop.pending <= 0:
                continue
            uop.store_dep = None
            uop.pending -= 1
            if uop.pending == 0:
                self.on_ready(uop)

    # -- forwarding & violations -----------------------------------------------

    def forwarding_store(self, load: MicroOp) -> Optional[MicroOp]:
        """Youngest older executed store matching the load's quadword."""
        target = load.mem_addr >> _QWORD_SHIFT
        load_seq = load.seq
        best: Optional[MicroOp] = None
        for store in self.stores:
            if store.seq >= load_seq:
                break                  # program order: no older stores left
            if (store.executed and not store.dead
                    and store.mem_addr >> _QWORD_SHIFT == target):
                best = store           # walking oldest->youngest
        if best is not None:
            self.forwards += 1
        return best

    # -- state protocol (repro.checkpoint) ----------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "loads": ctx.refs(self.loads),
            "stores": ctx.refs(self.stores),
            "dep_waiters": [(seq, ctx.refs(waiters))
                            for seq, waiters in self._dep_waiters.items()],
            "forwards": self.forwards,
            "violations": self.violations,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self.loads = deque(ctx.uops(state["loads"]))
        self.stores = deque(ctx.uops(state["stores"]))
        self._dep_waiters = {seq: ctx.uops(refs)
                             for seq, refs in state["dep_waiters"]}
        self.forwards = state["forwards"]
        self.violations = state["violations"]

    def detect_violation(self, store: MicroOp) -> Optional[MicroOp]:
        """Oldest younger executed load overlapping the store's quadword.

        Such a load read stale data: it performed its access before the
        store wrote. Returns the offending load (refetch point) or None.
        """
        target = store.mem_addr >> _QWORD_SHIFT
        store_seq = store.seq
        for load in self.loads:
            if (load.seq > store_seq and load.executed and not load.dead
                    and load.mem_addr >> _QWORD_SHIFT == target):
                self.violations += 1
                return load            # oldest match: queue is seq-sorted
        return None
