"""Store Sets memory-dependence predictor (Chrysos & Emer), Table 1:
1K-entry SSIT, 1K-entry LFST.

Independent memory µops are allowed to issue out of order; the predictor
learns, from past memory-order violations, which load PCs must wait for
which store PCs. Loads (and stores) in a store set serialize behind the
last fetched store of that set.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.uop import MicroOp

_INVALID = -1


class StoreSets:
    """SSIT (pc -> store-set id) + LFST (set id -> last inflight store)."""

    def __init__(self, ssit_entries: int = 1024, lfst_entries: int = 1024) -> None:
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        self._ssit = [_INVALID] * ssit_entries
        self._lfst: Dict[int, MicroOp] = {}
        self._next_ssid = 0
        self.violations_trained = 0

    def _ssit_index(self, pc: int) -> int:
        return pc % self.ssit_entries

    def _ssid_of(self, pc: int) -> int:
        return self._ssit[self._ssit_index(pc)]

    # -- dispatch-time ---------------------------------------------------

    def lookup_dependence(self, uop: MicroOp) -> Optional[MicroOp]:
        """Store the µop must wait for (None if predicted independent).

        For stores, additionally records the µop as the new last fetched
        store of its set (store-store ordering).
        """
        ssid = self._ssid_of(uop.pc)
        dep: Optional[MicroOp] = None
        if ssid != _INVALID:
            last = self._lfst.get(ssid % self.lfst_entries)
            if last is not None and not last.dead and last.seq < uop.seq \
                    and not last.executed:
                dep = last
            if uop.is_store:
                self._lfst[ssid % self.lfst_entries] = uop
        return dep

    # -- execute/squash-time ----------------------------------------------

    def store_done(self, store: MicroOp) -> None:
        """Clear the LFST entry when the store executes or is squashed."""
        ssid = self._ssid_of(store.pc)
        if ssid == _INVALID:
            return
        key = ssid % self.lfst_entries
        if self._lfst.get(key) is store:
            del self._lfst[key]

    # -- state protocol (repro.checkpoint) ---------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "ssit": list(self._ssit),
            "lfst": [(key, ctx.ref(store))
                     for key, store in self._lfst.items()],
            "next_ssid": self._next_ssid,
            "violations_trained": self.violations_trained,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self._ssit = list(state["ssit"])
        self._lfst = {key: ctx.uop(ref) for key, ref in state["lfst"]}
        self._next_ssid = state["next_ssid"]
        self.violations_trained = state["violations_trained"]

    # -- violation training -------------------------------------------------

    def train_violation(self, store_pc: int, load_pc: int) -> None:
        """Memory-order violation: put both PCs in the same store set."""
        self.violations_trained += 1
        s_idx = self._ssit_index(store_pc)
        l_idx = self._ssit_index(load_pc)
        s_set = self._ssit[s_idx]
        l_set = self._ssit[l_idx]
        if s_set == _INVALID and l_set == _INVALID:
            ssid = self._next_ssid
            self._next_ssid += 1
            self._ssit[s_idx] = ssid
            self._ssit[l_idx] = ssid
        elif s_set == _INVALID:
            self._ssit[s_idx] = l_set
        elif l_set == _INVALID:
            self._ssit[l_idx] = s_set
        else:
            # Both assigned: merge to the smaller id (declarative rule).
            winner = min(s_set, l_set)
            self._ssit[s_idx] = winner
            self._ssit[l_idx] = winner
