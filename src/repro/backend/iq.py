"""Unified issue queue — 60 entries (Table 1), oldest-first select.

Entry lifetime follows Section 3.1: non-memory µops release their entry
the moment they issue (speculatively or not); loads and stores keep theirs
until they have *executed*, because a squashed memory µop is re-issued from
the IQ rather than from the recovery buffer.
"""

from __future__ import annotations

from typing import List, Set

from repro.isa.uop import MicroOp


class IssueQueue:
    """Occupancy tracking + the ready list for first-time issue."""

    def __init__(self, capacity: int = 60) -> None:
        if capacity < 1:
            raise ValueError("IQ capacity must be >= 1")
        self.capacity = capacity
        self._occupants: Set[MicroOp] = set()
        self.ready: List[MicroOp] = []   # source-complete, awaiting select
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._occupants)

    @property
    def full(self) -> bool:
        return len(self._occupants) >= self.capacity

    def free_slots(self) -> int:
        return self.capacity - len(self._occupants)

    def insert(self, uop: MicroOp) -> None:
        if self.full:
            raise OverflowError("IQ overflow")
        self._occupants.add(uop)
        uop.in_iq = True
        if len(self._occupants) > self.peak_occupancy:
            self.peak_occupancy = len(self._occupants)

    def make_ready(self, uop: MicroOp) -> None:
        """Move a source-complete occupant onto the ready list."""
        if uop not in self._occupants:
            return
        if uop not in self.ready:
            self.ready.append(uop)

    def take_ready(self) -> List[MicroOp]:
        """Current ready µops, oldest (smallest seq) first, pruned of dead."""
        if not self.ready:
            return []
        self.ready = [u for u in self.ready if not u.dead and u.in_iq]
        self.ready.sort(key=lambda u: u.seq)
        return self.ready

    def remove_from_ready(self, uop: MicroOp) -> None:
        if uop in self.ready:
            self.ready.remove(uop)

    def release(self, uop: MicroOp) -> None:
        """Free the entry (at issue for non-memory, at execute for memory)."""
        self._occupants.discard(uop)
        uop.in_iq = False
        if uop in self.ready:
            self.ready.remove(uop)

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        """Drop occupants younger than ``seq``; returns them (any order)."""
        doomed = [u for u in self._occupants
                  if u.seq > seq or (inclusive and u.seq == seq)]
        for uop in doomed:
            self.release(uop)
        return doomed

    def occupants(self) -> List[MicroOp]:
        return list(self._occupants)
