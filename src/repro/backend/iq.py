"""Unified issue queue — 60 entries (Table 1), oldest-first select.

Entry lifetime follows Section 3.1: non-memory µops release their entry
the moment they issue (speculatively or not); loads and stores keep theirs
until they have *executed*, because a squashed memory µop is re-issued from
the IQ rather than from the recovery buffer.

The ready list is kept sorted by ``seq`` at insertion (binary search) and
each µop carries an ``in_ready`` flag, so per-cycle select is a pruned
walk — no per-cycle sort, no linear membership scans. Select order is
identical to the old sort-on-take implementation: ``seq`` is unique, so
"insertion-sorted by seq" and "sorted at take time" agree exactly.
"""

from __future__ import annotations

from typing import List, Set

from repro.isa.uop import MicroOp


def insert_by_seq(ready: List[MicroOp], uop: MicroOp) -> None:
    """Insert ``uop`` into a seq-sorted ready list (shared with the
    recovery buffer)."""
    seq = uop.seq
    lo, hi = 0, len(ready)
    while lo < hi:
        mid = (lo + hi) // 2
        if ready[mid].seq < seq:
            lo = mid + 1
        else:
            hi = mid
    ready.insert(lo, uop)
    uop.in_ready = True


def clear_ready(ready: List[MicroOp]) -> None:
    """Empty a ready list, resetting every member's flag."""
    for uop in ready:
        uop.in_ready = False
    ready.clear()


class IssueQueue:
    """Occupancy tracking + the ready list for first-time issue."""

    def __init__(self, capacity: int = 60) -> None:
        if capacity < 1:
            raise ValueError("IQ capacity must be >= 1")
        self.capacity = capacity
        self._occupants: Set[MicroOp] = set()
        self.ready: List[MicroOp] = []   # source-complete, awaiting select
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._occupants)

    @property
    def full(self) -> bool:
        return len(self._occupants) >= self.capacity

    def free_slots(self) -> int:
        return self.capacity - len(self._occupants)

    def insert(self, uop: MicroOp) -> None:
        if len(self._occupants) >= self.capacity:
            raise OverflowError("IQ overflow")
        self._occupants.add(uop)
        uop.in_iq = True
        if len(self._occupants) > self.peak_occupancy:
            self.peak_occupancy = len(self._occupants)

    def make_ready(self, uop: MicroOp) -> None:
        """Move a source-complete occupant onto the ready list."""
        if uop.in_ready or uop not in self._occupants:
            return
        insert_by_seq(self.ready, uop)

    def take_ready(self) -> List[MicroOp]:
        """Current ready µops, oldest (smallest seq) first, pruned of dead."""
        ready = self.ready
        if not ready:
            return ready
        if any(u.dead or not u.in_iq for u in ready):
            kept = []
            for u in ready:
                if u.dead or not u.in_iq:
                    u.in_ready = False
                else:
                    kept.append(u)
            self.ready = ready = kept
        return ready

    def remove_from_ready(self, uop: MicroOp) -> None:
        if uop.in_ready:
            self.ready.remove(uop)
            uop.in_ready = False

    def clear_ready(self) -> None:
        """Empty the ready list (replay re-arm rebuilds it from truth)."""
        clear_ready(self.ready)

    def release(self, uop: MicroOp) -> None:
        """Free the entry (at issue for non-memory, at execute for memory)."""
        self._occupants.discard(uop)
        uop.in_iq = False
        if uop.in_ready:
            self.ready.remove(uop)
            uop.in_ready = False

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        """Drop occupants younger than ``seq``; returns them (any order)."""
        doomed = [u for u in self._occupants
                  if u.seq > seq or (inclusive and u.seq == seq)]
        for uop in doomed:
            self.release(uop)
        return doomed

    def occupants(self) -> List[MicroOp]:
        return list(self._occupants)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self, ctx) -> dict:
        """Occupants are stored seq-sorted for a deterministic encoding
        (the live set's iteration order never affects behaviour: select
        order comes from the seq-sorted ready list)."""
        return {
            "occupants": ctx.refs(
                sorted(self._occupants, key=lambda u: u.seq)),
            "ready": ctx.refs(self.ready),
            "peak_occupancy": self.peak_occupancy,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self._occupants = set(ctx.uops(state["occupants"]))
        self.ready = ctx.uops(state["ready"])
        self.peak_occupancy = state["peak_occupancy"]
