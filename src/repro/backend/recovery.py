"""Recovery buffer (Morancho et al., as adapted in Section 3.1).

Every issued non-memory µop parks here between Issue and Execute so the IQ
entry can be released at issue (the paper found that retaining entries
cripples a 60-entry scheduler). On a schedule misspeculation the in-flight
µops are marked ``replay_pending``; once their sources are ready again they
re-issue *from the buffer head with priority over the IQ*, which merely
fills the holes in replayed issue groups.

Like the IQ, the replay-ready list stays seq-sorted at insertion and uses
the µop's ``in_ready`` flag for O(1) membership (a µop is never on both
ready lists: non-memory µops leave the IQ at first issue, memory µops
never enter the recovery buffer).
"""

from __future__ import annotations

from typing import List, Set

from repro.backend.iq import clear_ready, insert_by_seq
from repro.isa.uop import MicroOp


class RecoveryBuffer:
    """Issued-but-not-executed µop store + replay-ready list."""

    def __init__(self) -> None:
        self._members: Set[MicroOp] = set()
        self.ready: List[MicroOp] = []    # replay_pending with sources ready
        self.peak_occupancy = 0
        self.replays_issued = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, uop: MicroOp) -> bool:
        return uop in self._members

    def insert(self, uop: MicroOp) -> None:
        """Called at first issue of a non-memory µop."""
        self._members.add(uop)
        if len(self._members) > self.peak_occupancy:
            self.peak_occupancy = len(self._members)

    def remove(self, uop: MicroOp) -> None:
        """Called when the µop executes (leaves the danger window)."""
        self._members.discard(uop)
        if uop.in_ready:
            self.ready.remove(uop)
            uop.in_ready = False

    def make_ready(self, uop: MicroOp) -> None:
        """A replay-pending member became source-complete."""
        if (not uop.in_ready and uop.replay_pending
                and uop in self._members):
            insert_by_seq(self.ready, uop)

    def take_ready(self) -> List[MicroOp]:
        """Replay candidates, oldest first (head-of-buffer priority)."""
        ready = self.ready
        if not ready:
            return ready
        members = self._members
        if any(u.dead or not u.replay_pending or u not in members
               for u in ready):
            kept = []
            for u in ready:
                if u.dead or not u.replay_pending or u not in members:
                    u.in_ready = False
                else:
                    kept.append(u)
            self.ready = ready = kept
        return ready

    def remove_from_ready(self, uop: MicroOp) -> None:
        if uop.in_ready:
            self.ready.remove(uop)
            uop.in_ready = False

    def clear_ready(self) -> None:
        """Empty the ready list (replay re-arm rebuilds it from truth)."""
        clear_ready(self.ready)

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        doomed = [u for u in self._members
                  if u.seq > seq or (inclusive and u.seq == seq)]
        for uop in doomed:
            self.remove(uop)
        return doomed

    def members(self) -> List[MicroOp]:
        return list(self._members)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "members": ctx.refs(
                sorted(self._members, key=lambda u: u.seq)),
            "ready": ctx.refs(self.ready),
            "peak_occupancy": self.peak_occupancy,
            "replays_issued": self.replays_issued,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self._members = set(ctx.uops(state["members"]))
        self.ready = ctx.uops(state["ready"])
        self.peak_occupancy = state["peak_occupancy"]
        self.replays_issued = state["replays_issued"]
