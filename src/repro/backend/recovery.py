"""Recovery buffer (Morancho et al., as adapted in Section 3.1).

Every issued non-memory µop parks here between Issue and Execute so the IQ
entry can be released at issue (the paper found that retaining entries
cripples a 60-entry scheduler). On a schedule misspeculation the in-flight
µops are marked ``replay_pending``; once their sources are ready again they
re-issue *from the buffer head with priority over the IQ*, which merely
fills the holes in replayed issue groups.
"""

from __future__ import annotations

from typing import List, Set

from repro.isa.uop import MicroOp


class RecoveryBuffer:
    """Issued-but-not-executed µop store + replay-ready list."""

    def __init__(self) -> None:
        self._members: Set[MicroOp] = set()
        self.ready: List[MicroOp] = []    # replay_pending with sources ready
        self.peak_occupancy = 0
        self.replays_issued = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, uop: MicroOp) -> bool:
        return uop in self._members

    def insert(self, uop: MicroOp) -> None:
        """Called at first issue of a non-memory µop."""
        self._members.add(uop)
        if len(self._members) > self.peak_occupancy:
            self.peak_occupancy = len(self._members)

    def remove(self, uop: MicroOp) -> None:
        """Called when the µop executes (leaves the danger window)."""
        self._members.discard(uop)
        if uop in self.ready:
            self.ready.remove(uop)

    def make_ready(self, uop: MicroOp) -> None:
        """A replay-pending member became source-complete."""
        if uop in self._members and uop.replay_pending and uop not in self.ready:
            self.ready.append(uop)

    def take_ready(self) -> List[MicroOp]:
        """Replay candidates, oldest first (head-of-buffer priority)."""
        if not self.ready:
            return []
        self.ready = [u for u in self.ready
                      if not u.dead and u.replay_pending and u in self._members]
        self.ready.sort(key=lambda u: u.seq)
        return self.ready

    def remove_from_ready(self, uop: MicroOp) -> None:
        if uop in self.ready:
            self.ready.remove(uop)

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        doomed = [u for u in self._members
                  if u.seq > seq or (inclusive and u.seq == seq)]
        for uop in doomed:
            self.remove(uop)
        return doomed

    def members(self) -> List[MicroOp]:
        return list(self._members)
