"""Physical register scoreboard: speculative wakeup infrastructure.

This is where speculative scheduling lives mechanically. When a producer
issues at cycle ``X`` promising latency ``L``, its destination register is
scheduled to become *issue-ready* at ``X+L`` — consumers selected from that
cycle on execute back-to-back (Figure 1). The promise may be wrong (loads):
the replay controller then *un-readies* the register (version bump cancels
the stale wakeup event) and re-schedules it at the corrected cycle.

Alongside issue-readiness the scoreboard tracks ``data_ready_at`` — the
earliest Execute-stage cycle at which the value is genuinely on the bypass
network. The core asserts this at execution time: with a correct replay
scheme the assertion never fires, making it a strong model invariant that
the tests lean on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.isa.uop import MicroOp

#: "Not ready any time soon" sentinel.
NEVER = 1 << 60


class Scoreboard:
    """Per-physical-register readiness + wakeup event queue."""

    def __init__(self, num_pregs: int,
                 on_ready: Optional[Callable[[MicroOp], None]] = None) -> None:
        self.num_pregs = num_pregs
        self.ready = [True] * num_pregs         # issue-visible readiness
        self.ready_at = [0] * num_pregs         # cycle it became/becomes ready
        self.data_ready_at = [0] * num_pregs    # earliest valid Execute cycle
        self.version = [0] * num_pregs          # cancels stale wakeup events
        self._waiters: Dict[int, List[MicroOp]] = {}
        self._events: Dict[int, List[tuple]] = {}  # cycle -> [(preg, version)]
        self.on_ready = on_ready or (lambda uop: None)
        self.wakeups_fired = 0

    # -- producer side ----------------------------------------------------

    def broadcast(self, preg: int, wake_cycle: int, data_ready_exec: int) -> None:
        """Producer issued: destination becomes ready at ``wake_cycle``.

        ``data_ready_exec`` is the earliest Execute cycle with valid data.
        """
        self.ready[preg] = False
        self.ready_at[preg] = wake_cycle
        self.data_ready_at[preg] = data_ready_exec
        version = self.version[preg] + 1
        self.version[preg] = version
        events = self._events
        entry = events.get(wake_cycle)
        if entry is None:
            events[wake_cycle] = [(preg, version)]
        else:
            entry.append((preg, version))

    def unready(self, preg: int) -> None:
        """Squash a producer: its destination is no longer coming."""
        self.ready[preg] = False
        self.ready_at[preg] = NEVER
        self.data_ready_at[preg] = NEVER
        self.version[preg] += 1     # cancels any in-flight wakeup event

    def mark_ready_now(self, preg: int, now: int, data_ready_exec: int = 0) -> None:
        """Immediately ready (initial architectural mappings, tests)."""
        self.ready[preg] = True
        self.ready_at[preg] = now
        self.data_ready_at[preg] = data_ready_exec
        self.version[preg] += 1

    # -- consumer side ------------------------------------------------------

    def watch(self, uop: MicroOp) -> int:
        """Register ``uop`` to be woken by its not-yet-ready sources.

        Sets and returns ``uop.pending`` (the count of outstanding register
        sources — the caller adds store-dependence separately). The µop is
        *not* reported through ``on_ready`` by this call even if pending is
        zero; the caller routes it directly.
        """
        pending = 0
        ready = self.ready
        waiters = self._waiters
        for preg in uop.psrcs:
            if not ready[preg]:
                pending += 1
                entry = waiters.get(preg)
                if entry is None:
                    waiters[preg] = [uop]
                else:
                    entry.append(uop)
        uop.pending = pending
        return pending

    def operands_issue_ready(self, uop: MicroOp, now: int) -> bool:
        """True when every register source is issue-ready at ``now``."""
        ready = self.ready
        ready_at = self.ready_at
        for p in uop.psrcs:
            if not ready[p] or ready_at[p] > now:
                return False
        return True

    def operands_data_valid(self, uop: MicroOp, exec_cycle: int) -> bool:
        """True when every source's data is genuinely valid at Execute."""
        data_ready_at = self.data_ready_at
        for p in uop.psrcs:
            if data_ready_at[p] > exec_cycle:
                return False
        return True

    # -- clock -----------------------------------------------------------

    def tick(self, now: int) -> None:
        """Fire wakeup events scheduled for ``now``.

        Newly source-complete µops are handed to ``on_ready`` (the core
        routes them into the IQ or recovery-buffer ready lists).
        """
        events = self._events.pop(now, None)
        if not events:
            return
        versions = self.version
        ready = self.ready
        all_waiters = self._waiters
        on_ready = self.on_ready
        for preg, version in events:
            if versions[preg] != version:
                continue            # squashed/corrected since scheduling
            ready[preg] = True
            self.wakeups_fired += 1
            waiters = all_waiters.pop(preg, None)
            if not waiters:
                continue
            for uop in waiters:
                if uop.dead or uop.pending <= 0:
                    continue        # squashed permanently, or stale entry
                uop.pending -= 1
                if uop.pending == 0:
                    on_ready(uop)

    def drop_waiter(self, uop: MicroOp) -> None:
        """Best-effort removal of a µop from all waiter lists (squash)."""
        waiters = self._waiters
        for preg in uop.psrcs:
            entry = waiters.get(preg)
            if entry is not None:
                try:
                    entry.remove(uop)
                except ValueError:
                    pass

    # -- state protocol (repro.checkpoint) -------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "ready": list(self.ready),
            "ready_at": list(self.ready_at),
            "data_ready_at": list(self.data_ready_at),
            "version": list(self.version),
            "waiters": [(preg, ctx.refs(waiters))
                        for preg, waiters in self._waiters.items()],
            "events": [(cycle, [tuple(e) for e in events])
                       for cycle, events in self._events.items()],
            "wakeups_fired": self.wakeups_fired,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self.ready[:] = state["ready"]
        self.ready_at[:] = state["ready_at"]
        self.data_ready_at[:] = state["data_ready_at"]
        self.version[:] = state["version"]
        self._waiters = {preg: ctx.uops(refs)
                         for preg, refs in state["waiters"]}
        self._events = {cycle: [tuple(e) for e in events]
                        for cycle, events in state["events"]}
        self.wakeups_fired = state["wakeups_fired"]

    def rewatch(self, uop: MicroOp) -> int:
        """Fused :meth:`drop_waiter` + :meth:`watch` (replay re-arm).

        Replay storms re-arm the whole waiting population, so shaving
        call overhead here is a measurable share of miss-heavy runs.
        The drop pass must fully precede the re-add pass: a µop can name
        the same source register twice (``srcs=[2, 2]``), and
        interleaving would strip the entry the first occurrence just
        re-added, leaving ``pending`` higher than the entries that can
        ever wake it."""
        waiters = self._waiters
        psrcs = uop.psrcs
        for preg in psrcs:
            entry = waiters.get(preg)
            if entry is not None:
                try:
                    entry.remove(uop)
                except ValueError:
                    pass
        pending = 0
        ready = self.ready
        for preg in psrcs:
            if not ready[preg]:
                pending += 1
                entry = waiters.get(preg)
                if entry is None:
                    waiters[preg] = [uop]
                else:
                    entry.append(uop)
        uop.pending = pending
        return pending
