"""Physical register scoreboard: speculative wakeup infrastructure.

This is where speculative scheduling lives mechanically. When a producer
issues at cycle ``X`` promising latency ``L``, its destination register is
scheduled to become *issue-ready* at ``X+L`` — consumers selected from that
cycle on execute back-to-back (Figure 1). The promise may be wrong (loads):
the replay controller then *un-readies* the register (version bump cancels
the stale wakeup event) and re-schedules it at the corrected cycle.

Alongside issue-readiness the scoreboard tracks ``data_ready_at`` — the
earliest Execute-stage cycle at which the value is genuinely on the bypass
network. The core asserts this at execution time: with a correct replay
scheme the assertion never fires, making it a strong model invariant that
the tests lean on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.isa.uop import MicroOp

#: "Not ready any time soon" sentinel.
NEVER = 1 << 60


class Scoreboard:
    """Per-physical-register readiness + wakeup event queue."""

    def __init__(self, num_pregs: int,
                 on_ready: Optional[Callable[[MicroOp], None]] = None) -> None:
        self.num_pregs = num_pregs
        self.ready = [True] * num_pregs         # issue-visible readiness
        self.ready_at = [0] * num_pregs         # cycle it became/becomes ready
        self.data_ready_at = [0] * num_pregs    # earliest valid Execute cycle
        self.version = [0] * num_pregs          # cancels stale wakeup events
        self._waiters: Dict[int, List[MicroOp]] = {}
        self._events: Dict[int, List[tuple]] = {}  # cycle -> [(preg, version)]
        self.on_ready = on_ready or (lambda uop: None)
        self.wakeups_fired = 0

    # -- producer side ----------------------------------------------------

    def broadcast(self, preg: int, wake_cycle: int, data_ready_exec: int) -> None:
        """Producer issued: destination becomes ready at ``wake_cycle``.

        ``data_ready_exec`` is the earliest Execute cycle with valid data.
        """
        self.ready[preg] = False
        self.ready_at[preg] = wake_cycle
        self.data_ready_at[preg] = data_ready_exec
        self.version[preg] += 1
        self._events.setdefault(wake_cycle, []).append(
            (preg, self.version[preg]))

    def unready(self, preg: int) -> None:
        """Squash a producer: its destination is no longer coming."""
        self.ready[preg] = False
        self.ready_at[preg] = NEVER
        self.data_ready_at[preg] = NEVER
        self.version[preg] += 1     # cancels any in-flight wakeup event

    def mark_ready_now(self, preg: int, now: int, data_ready_exec: int = 0) -> None:
        """Immediately ready (initial architectural mappings, tests)."""
        self.ready[preg] = True
        self.ready_at[preg] = now
        self.data_ready_at[preg] = data_ready_exec
        self.version[preg] += 1

    # -- consumer side ------------------------------------------------------

    def watch(self, uop: MicroOp) -> int:
        """Register ``uop`` to be woken by its not-yet-ready sources.

        Sets and returns ``uop.pending`` (the count of outstanding register
        sources — the caller adds store-dependence separately). The µop is
        *not* reported through ``on_ready`` by this call even if pending is
        zero; the caller routes it directly.
        """
        pending = 0
        for preg in uop.psrcs:
            if not self.ready[preg]:
                pending += 1
                self._waiters.setdefault(preg, []).append(uop)
        uop.pending = pending
        return pending

    def operands_issue_ready(self, uop: MicroOp, now: int) -> bool:
        """True when every register source is issue-ready at ``now``."""
        return all(self.ready[p] and self.ready_at[p] <= now
                   for p in uop.psrcs)

    def operands_data_valid(self, uop: MicroOp, exec_cycle: int) -> bool:
        """True when every source's data is genuinely valid at Execute."""
        return all(self.data_ready_at[p] <= exec_cycle for p in uop.psrcs)

    # -- clock -----------------------------------------------------------

    def tick(self, now: int) -> None:
        """Fire wakeup events scheduled for ``now``.

        Newly source-complete µops are handed to ``on_ready`` (the core
        routes them into the IQ or recovery-buffer ready lists).
        """
        events = self._events.pop(now, None)
        if not events:
            return
        for preg, version in events:
            if self.version[preg] != version:
                continue            # squashed/corrected since scheduling
            self.ready[preg] = True
            self.wakeups_fired += 1
            waiters = self._waiters.pop(preg, None)
            if not waiters:
                continue
            for uop in waiters:
                if uop.dead or uop.pending <= 0:
                    continue        # squashed permanently, or stale entry
                uop.pending -= 1
                if uop.pending == 0:
                    self.on_ready(uop)

    def drop_waiter(self, uop: MicroOp) -> None:
        """Best-effort removal of a µop from all waiter lists (squash)."""
        for preg in uop.psrcs:
            waiters = self._waiters.get(preg)
            if waiters and uop in waiters:
                waiters.remove(uop)
