"""Replay controller — the Alpha-21264-style squash machinery (Section 3.1).

A load that was speculatively woken but resolves with a longer latency
(L1 miss, or bank-conflict delay) schedules a :class:`ReplayEvent` at its
*detection cycle* ``C = issue + D + load_to_use − 1`` (the hit/miss signal
is available one cycle before the data returns). When the event fires:

* every µop issued in the window ``[C−D, C−1]`` that has not yet executed
  is squashed — dependents *and* independents, as in the 21264;
* the issue stage is blocked during cycle ``C`` ("an additional issue cycle
  is lost");
* all squashed µops re-issue later — from the IQ (memory µops) or the
  recovery buffer (everything else).

Multiple loads detecting in the same cycle fold into one squash; the cause
recorded for the replayed µops is the *oldest* trigger's (DESIGN.md §6).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.common.stats import CAUSE_BANK_CONFLICT, CAUSE_L1_MISS
from repro.isa.uop import MicroOp


class ReplayEvent:
    """One detected schedule misspeculation."""

    __slots__ = ("load", "cause", "corrected_latency")

    def __init__(self, load: MicroOp, cause: str, corrected_latency: int) -> None:
        if cause not in (CAUSE_L1_MISS, CAUSE_BANK_CONFLICT):
            raise ValueError(f"unknown replay cause {cause!r}")
        self.load = load
        self.cause = cause
        self.corrected_latency = corrected_latency

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ReplayEvent(load=seq{self.load.seq}, cause={self.cause}, "
                f"alat={self.corrected_latency})")


def _event_seq(event: ReplayEvent) -> int:
    return event.load.seq


class ReplayController:
    """Detection-event calendar + in-flight issue-group window."""

    def __init__(self, delay: int) -> None:
        self.delay = delay
        self._events: Dict[int, List[ReplayEvent]] = {}
        self._window: Deque[Tuple[int, List[MicroOp]]] = deque()
        self.events_fired = 0

    # -- issue-side bookkeeping -------------------------------------------

    def note_issue(self, uop: MicroOp, now: int) -> None:
        """Record an issued µop in the in-flight window."""
        if self._window and self._window[-1][0] == now:
            self._window[-1][1].append(uop)
        else:
            self._window.append((now, [uop]))

    def prune(self, now: int) -> None:
        """Forget issue groups that are past the squashable window."""
        horizon = now - self.delay - 1
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    # -- detection ------------------------------------------------------------

    def schedule(self, event: ReplayEvent, detection_cycle: int) -> None:
        self._events.setdefault(detection_cycle, []).append(event)

    def has_event(self, now: int) -> bool:
        return now in self._events

    def pop_events(self, now: int) -> List[ReplayEvent]:
        events = self._events.pop(now, [])
        if events:
            self.events_fired += len(events)
            events.sort(key=_event_seq)
        return events

    # -- state protocol (repro.checkpoint) --------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "events": [
                (cycle, [(ctx.ref(e.load), e.cause, e.corrected_latency)
                         for e in events])
                for cycle, events in self._events.items()],
            "window": [(cycle, ctx.refs(group))
                       for cycle, group in self._window],
            "events_fired": self.events_fired,
        }

    def load_state_dict(self, state: dict, ctx) -> None:
        self._events = {
            cycle: [ReplayEvent(ctx.uop(ref), cause, alat)
                    for ref, cause, alat in events]
            for cycle, events in state["events"]}
        self._window = deque(
            (cycle, ctx.uops(refs)) for cycle, refs in state["window"])
        self.events_fired = state["events_fired"]

    def squashable_uops(self, now: int) -> List[MicroOp]:
        """µops issued in ``[now−D, now−1]`` that have not executed.

        The current issue instance must match the window record (a µop
        squashed and re-issued belongs to its *new* group only).
        """
        lo = now - self.delay
        doomed: List[MicroOp] = []
        for cycle, group in self._window:
            if cycle < lo or cycle >= now:
                continue
            for uop in group:
                if (not uop.executed and not uop.dead and not uop.squashed
                        and uop.issue_cycle == cycle):
                    doomed.append(uop)
        return doomed
