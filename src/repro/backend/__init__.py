"""Out-of-order backend: PRF scoreboard, IQ, ROB, LSQ, FUs, replay."""

from repro.backend.prf import Scoreboard
from repro.backend.rob import ReorderBuffer
from repro.backend.iq import IssueQueue
from repro.backend.fu import FuPool
from repro.backend.storesets import StoreSets
from repro.backend.lsq import LoadStoreQueue
from repro.backend.recovery import RecoveryBuffer
from repro.backend.replay import ReplayController, ReplayEvent

__all__ = [
    "FuPool",
    "IssueQueue",
    "LoadStoreQueue",
    "RecoveryBuffer",
    "ReorderBuffer",
    "ReplayController",
    "ReplayEvent",
    "Scoreboard",
    "StoreSets",
]
