"""Reorder buffer — 192 entries (Table 1), 8-wide retire.

Also the home of the paper's criticality *criterion* (Section 5.3): a µop
is tagged critical when it is at the ROB head at the moment it completes
(Fields et al. / Tune et al. heuristic).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.isa.uop import MicroOp


class ReorderBuffer:
    """In-order retirement window."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity < 1:
            raise ValueError("ROB capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[MicroOp] = deque()
        self.retired = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def allocate(self, uop: MicroOp) -> None:
        if self.full:
            raise OverflowError("ROB overflow")
        self._entries.append(uop)

    def head(self) -> Optional[MicroOp]:
        return self._entries[0] if self._entries else None

    def retire_head(self) -> MicroOp:
        self.retired += 1
        return self._entries.popleft()

    def note_completed(self, uop: MicroOp) -> None:
        """Record completion; tags criticality if the µop is the head."""
        uop.completed = True
        if self._entries and self._entries[0] is uop:
            uop.was_critical = True

    def squash_younger(self, seq: int, inclusive: bool = False) -> List[MicroOp]:
        """Remove µops younger than ``seq``; returns them youngest-first.

        ``inclusive`` also removes the µop with ``seq`` itself
        (memory-order-violation refetch starts *at* the offending load).
        """
        squashed: List[MicroOp] = []
        while self._entries:
            tail = self._entries[-1]
            if tail.seq > seq or (inclusive and tail.seq == seq):
                squashed.append(self._entries.pop())
            else:
                break
        return squashed

    def __iter__(self):
        return iter(self._entries)

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self, ctx) -> dict:
        return {"entries": ctx.refs(self._entries), "retired": self.retired}

    def load_state_dict(self, state: dict, ctx) -> None:
        self._entries = deque(ctx.uops(state["entries"]))
        self.retired = state["retired"]
