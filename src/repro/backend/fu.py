"""Functional-unit pool (Table 1, Execution row).

4 ALU (1c), 1 MulDiv (3c mul / 25c div, divider not pipelined), 2 FP (3c),
2 FPMulDiv (5c mul / 10c div, divider not pipelined), 2 load ports,
1 store port. Issue allocates a unit slot for the cycle; unpipelined ops
additionally block a unit for their full latency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import CoreConfig
from repro.isa.opclass import EXEC_LATENCY, FU_KIND, UNPIPELINED, FuKind, OpClass


class FuPool:
    """Per-cycle issue-port and unit-occupancy arbitration."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._counts = {
            FuKind.ALU: config.num_alu,
            FuKind.MULDIV: config.num_muldiv,
            FuKind.FP: config.num_fp,
            FuKind.FPMULDIV: config.num_fpmuldiv,
            FuKind.LOAD_PORT: config.num_load_ports,
            FuKind.STORE_PORT: config.num_store_ports,
        }
        self._used: Dict[FuKind, int] = {kind: 0 for kind in self._counts}
        # Unpipelined units: per-unit busy-until cycle (issue-time view).
        self._busy_until: Dict[FuKind, List[int]] = {
            FuKind.MULDIV: [0] * config.num_muldiv,
            FuKind.FPMULDIV: [0] * config.num_fpmuldiv,
        }
        self.grants = 0
        self.rejections = 0

    def new_cycle(self) -> None:
        for kind in self._used:
            self._used[kind] = 0

    def try_allocate(self, opclass: OpClass, now: int) -> bool:
        """Reserve a unit for a µop issuing at ``now``; False if none free."""
        kind = FU_KIND[opclass]
        if self._used[kind] >= self._counts[kind]:
            self.rejections += 1
            return False
        if opclass in UNPIPELINED:
            units = self._busy_until[kind]
            for i, busy in enumerate(units):
                if busy <= now:
                    units[i] = now + EXEC_LATENCY[opclass]
                    break
            else:
                self.rejections += 1
                return False
        self._used[kind] += 1
        self.grants += 1
        return True

    def loads_issued_this_cycle(self) -> int:
        return self._used[FuKind.LOAD_PORT]
