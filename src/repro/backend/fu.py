"""Functional-unit pool (Table 1, Execution row).

4 ALU (1c), 1 MulDiv (3c mul / 25c div, divider not pipelined), 2 FP (3c),
2 FPMulDiv (5c mul / 10c div, divider not pipelined), 2 load ports,
1 store port. Issue allocates a unit slot for the cycle; unpipelined ops
additionally block a unit for their full latency.

Per-kind state lives in flat lists indexed by ``FuKind`` value —
``try_allocate`` runs once per selected µop and ``new_cycle`` every
cycle, so dict-of-enum bookkeeping was measurable cycle-loop overhead.
"""

from __future__ import annotations

from typing import List

from repro.common.config import CoreConfig
from repro.isa.opclass import (
    EXEC_LATENCY_BY_OP,
    FU_KIND_BY_OP,
    UNPIPELINED_BY_OP,
    FuKind,
    OpClass,
)


class FuPool:
    """Per-cycle issue-port and unit-occupancy arbitration."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        counts = [0] * len(FuKind)
        counts[FuKind.ALU] = config.num_alu
        counts[FuKind.MULDIV] = config.num_muldiv
        counts[FuKind.FP] = config.num_fp
        counts[FuKind.FPMULDIV] = config.num_fpmuldiv
        counts[FuKind.LOAD_PORT] = config.num_load_ports
        counts[FuKind.STORE_PORT] = config.num_store_ports
        self._counts: List[int] = counts
        self._used: List[int] = [0] * len(FuKind)
        self._zeros: List[int] = [0] * len(FuKind)
        # Unpipelined units: per-unit busy-until cycle (issue-time view).
        self._busy_until: List[List[int]] = [[] for _ in FuKind]
        self._busy_until[FuKind.MULDIV] = [0] * config.num_muldiv
        self._busy_until[FuKind.FPMULDIV] = [0] * config.num_fpmuldiv
        self.grants = 0
        self.rejections = 0

    def new_cycle(self) -> None:
        self._used[:] = self._zeros

    def try_allocate(self, opclass: OpClass, now: int) -> bool:
        """Reserve a unit for a µop issuing at ``now``; False if none free."""
        kind = FU_KIND_BY_OP[opclass]
        used = self._used
        if used[kind] >= self._counts[kind]:
            self.rejections += 1
            return False
        if UNPIPELINED_BY_OP[opclass]:
            units = self._busy_until[kind]
            for i, busy in enumerate(units):
                if busy <= now:
                    units[i] = now + EXEC_LATENCY_BY_OP[opclass]
                    break
            else:
                self.rejections += 1
                return False
        used[kind] += 1
        self.grants += 1
        return True

    def loads_issued_this_cycle(self) -> int:
        return self._used[FuKind.LOAD_PORT]

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "used": list(self._used),
            "busy_until": [list(units) for units in self._busy_until],
            "grants": self.grants,
            "rejections": self.rejections,
        }

    def load_state_dict(self, state: dict) -> None:
        self._used[:] = state["used"]
        self._busy_until = [list(units) for units in state["busy_until"]]
        self.grants = state["grants"]
        self.rejections = state["rejections"]
