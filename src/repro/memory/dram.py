"""DDR3-1600-lite main memory (Table 1, Memory row).

A deterministic open-page model: 2 ranks x 8 banks, 8KB row buffers, one
shared 8-byte data bus. A read to an open row pays ``base_latency`` (75 CPU
cycles at 4 GHz — the paper's minimum); a row-buffer miss additionally pays
``row_miss_penalty`` (precharge + activate at 11-11-11). Bus and bank
occupancy serialize closely spaced requests. Total latency is clamped at the
paper's quoted maximum (185 cycles), standing in for scheduling effects the
paper's controller hides (refresh is not modeled; DESIGN.md §6).
"""

from __future__ import annotations

from typing import List

from repro.common.config import DramConfig


class DdrModel:
    """Single-channel DDR3-like latency model."""

    def __init__(self, config: DramConfig) -> None:
        config.validate()
        self.config = config
        nbanks = config.num_banks
        self._open_row: List[int] = [-1] * nbanks
        self._bank_free_at: List[int] = [0] * nbanks
        self._bus_free_at = 0
        self.reads = 0
        self.row_hits = 0
        self.row_misses = 0

    def _map(self, line_addr: int) -> int:
        """Line address -> bank (low-order line bits, rank-interleaved)."""
        return line_addr % self.config.num_banks

    def _row_of(self, line_addr: int) -> int:
        lines_per_row = self.config.row_bytes // 64
        return line_addr // lines_per_row

    def read(self, line_addr: int, now: int) -> int:
        """Issue a 64B read at CPU cycle ``now``; returns its latency."""
        cfg = self.config
        bank = self._map(line_addr)
        row = self._row_of(line_addr)
        start = max(now, self._bank_free_at[bank], self._bus_free_at)
        latency = start - now + cfg.base_latency
        if self._open_row[bank] == row:
            self.row_hits += 1
        else:
            self.row_misses += 1
            latency += cfg.row_miss_penalty
            self._open_row[bank] = row
        latency = min(latency, cfg.max_latency)
        done = now + latency
        self._bank_free_at[bank] = done
        self._bus_free_at = max(self._bus_free_at, start + cfg.bus_cycles)
        self.reads += 1
        return latency

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "open_row": list(self._open_row),
            "bank_free_at": list(self._bank_free_at),
            "bus_free_at": self._bus_free_at,
            "reads": self.reads,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self._open_row[:] = state["open_row"]
        self._bank_free_at[:] = state["bank_free_at"]
        self._bus_free_at = state["bus_free_at"]
        self.reads = state["reads"]
        self.row_hits = state["row_hits"]
        self.row_misses = state["row_misses"]
