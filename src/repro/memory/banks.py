"""L1D bank-conflict model (Section 3.1, *Bank Conflicts*).

The L1 data array is organized as 8 quadword-interleaved banks (the Sandy
Bridge layout the paper adopts): bank = address bits [5:3]. Per cycle:

* each bank services one access, **except** that two accesses to the *same
  set* of the same bank may proceed together — the Rivers-style single line
  buffer with two read ports (Section 4.2);
* the cache as a whole services at most two accesses (it has two read
  ports, matching the dual-load issue capacity);
* an access that cannot be serviced is queued in an unbounded buffer and
  serviced in arrival order in the earliest cycle that satisfies both rules
  (modeled after the Sandy Bridge "requests maintained to completion"
  behaviour quoted in Section 3.1).

:meth:`BankScheduler.access` returns the *delay* in cycles the access
suffers, which the paper attributes to a bank conflict whenever non-zero.
"""

from __future__ import annotations

from typing import Dict, Tuple

QWORD_BITS = 3   # 8-byte interleaving granularity


def bank_of(addr: int, num_banks: int) -> int:
    """Quadword-interleaved bank index of a byte address."""
    return (addr >> QWORD_BITS) & (num_banks - 1)


def set_of(addr: int, line_bytes: int, num_sets: int) -> int:
    """Cache set index of a byte address."""
    return (addr >> line_bytes.bit_length() - 1) & (num_sets - 1)


class BankScheduler:
    """Slot allocator for banked L1D accesses.

    For a non-banked (ideally multiported) cache instantiate with
    ``banked=False``: every access is serviced immediately.
    """

    #: Cache-wide accesses serviceable per cycle (two read ports).
    PORTS_PER_CYCLE = 2
    #: Same-set accesses a single bank can overlap (line-buffer read ports).
    SAME_SET_LIMIT = 2

    def __init__(self, num_banks: int = 8, line_bytes: int = 64,
                 num_sets: int = 64, banked: bool = True) -> None:
        self.num_banks = num_banks
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self.banked = banked
        # (bank, cycle) -> (set_index, count) of accesses serviced there.
        self._bank_slots: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # cycle -> total accesses serviced that cycle.
        self._cycle_total: Dict[int, int] = {}
        self._min_live_cycle = 0
        self.conflicts = 0          # accesses delayed at least one cycle
        self.total_delay = 0

    def access(self, addr: int, now: int) -> int:
        """Reserve a service slot for a load reaching the cache at ``now``.

        Returns the number of cycles the access is delayed (0 = no
        conflict). Accesses must be presented in program-arrival order
        within a cycle; the underlying buffer is unbounded.
        """
        if not self.banked:
            return 0
        bank = bank_of(addr, self.num_banks)
        set_idx = set_of(addr, self.line_bytes, self.num_sets)
        cycle = now
        while True:
            if self._cycle_total.get(cycle, 0) < self.PORTS_PER_CYCLE:
                slot = self._bank_slots.get((bank, cycle))
                if slot is None:
                    self._bank_slots[(bank, cycle)] = (set_idx, 1)
                    break
                slot_set, count = slot
                if slot_set == set_idx and count < self.SAME_SET_LIMIT:
                    self._bank_slots[(bank, cycle)] = (slot_set, count + 1)
                    break
            cycle += 1
        self._cycle_total[cycle] = self._cycle_total.get(cycle, 0) + 1
        delay = cycle - now
        if delay:
            self.conflicts += 1
            self.total_delay += delay
        self._maybe_prune(now)
        return delay

    def would_conflict(self, addr_a: int, addr_b: int) -> bool:
        """True when two simultaneous accesses would serialize.

        Conflict rule of Section 4.2: same bank *and* different set (two
        same-set accesses share the line buffer).
        """
        if not self.banked:
            return False
        if bank_of(addr_a, self.num_banks) != bank_of(addr_b, self.num_banks):
            return False
        return (set_of(addr_a, self.line_bytes, self.num_sets)
                != set_of(addr_b, self.line_bytes, self.num_sets))

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        return {
            "bank_slots": [(list(key), list(value))
                           for key, value in self._bank_slots.items()],
            "cycle_total": list(self._cycle_total.items()),
            "min_live_cycle": self._min_live_cycle,
            "conflicts": self.conflicts,
            "total_delay": self.total_delay,
        }

    def load_state_dict(self, state: dict) -> None:
        self._bank_slots = {tuple(key): tuple(value)
                            for key, value in state["bank_slots"]}
        self._cycle_total = dict(state["cycle_total"])
        self._min_live_cycle = state["min_live_cycle"]
        self.conflicts = state["conflicts"]
        self.total_delay = state["total_delay"]

    def _maybe_prune(self, now: int) -> None:
        """Drop bookkeeping for long-past cycles to bound memory."""
        if now - self._min_live_cycle < 4096:
            return
        horizon = now - 64
        self._bank_slots = {
            key: val for key, val in self._bank_slots.items() if key[1] >= horizon
        }
        self._cycle_total = {
            cyc: tot for cyc, tot in self._cycle_total.items() if cyc >= horizon
        }
        self._min_live_cycle = now
