"""Miss Status Holding Registers.

Tracks in-flight line refills so that secondary misses merge with the
primary (the younger load's latency is hidden under the older one — the
effect Liu et al.'s predictor exploits, Section 2.2). Table 1 gives both
the L1D and the L2 64 MSHRs.
"""

from __future__ import annotations

from typing import Dict, Optional


class MshrFile:
    """Fixed-capacity map: line address -> refill-completion cycle."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._inflight: Dict[int, int] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def expire(self, now: int) -> None:
        """Retire entries whose refill has arrived."""
        if not self._inflight:
            return
        done = [line for line, ready in self._inflight.items() if ready <= now]
        for line in done:
            del self._inflight[line]

    def lookup(self, line: int) -> Optional[int]:
        """Completion cycle of an in-flight refill for ``line``, if any."""
        return self._inflight.get(line)

    def allocate(self, line: int, ready_cycle: int, now: int) -> int:
        """Allocate (or merge into) an entry; returns the completion cycle.

        When the file is full the request is serialized behind the earliest
        completing entry — a simple but bounded model of MSHR-full stalls.
        """
        self.expire(now)
        existing = self._inflight.get(line)
        if existing is not None:
            self.merges += 1
            return existing
        if len(self._inflight) >= self.capacity:
            self.full_stalls += 1
            earliest = min(self._inflight.values())
            ready_cycle = max(ready_cycle, earliest + 1)
            # The stalled request re-requests once a register frees up; we
            # approximate by evicting the earliest-completing entry.
            for key, value in list(self._inflight.items()):
                if value == earliest:
                    del self._inflight[key]
                    break
        self._inflight[line] = ready_cycle
        self.allocations += 1
        return ready_cycle

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """Entries keep insertion order — the full-file eviction walk
        breaks completion-cycle ties by it."""
        return {
            "inflight": list(self._inflight.items()),
            "allocations": self.allocations,
            "merges": self.merges,
            "full_stalls": self.full_stalls,
        }

    def load_state_dict(self, state: dict) -> None:
        self._inflight = dict(state["inflight"])
        self.allocations = state["allocations"]
        self.merges = state["merges"]
        self.full_stalls = state["full_stalls"]
