"""Generic set-associative cache with true-LRU replacement.

Timing lives elsewhere (the hierarchy and the bank scheduler); this class
answers the purely functional question "is this line resident, and what gets
evicted on a fill" — which is all the scheduler-speculation study needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import CacheConfig
from repro.common.mathutil import log2_int


class SetAssocCache:
    """Set-associative, write-allocate, true-LRU cache."""

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._offset_bits = log2_int(config.line_bytes)
        self._index_mask = self.num_sets - 1
        # Shift from line address to tag; 0 when direct-mapped-by-one-set
        # (a 0-bit shift is the identity, so no special case is needed).
        self._set_bits = log2_int(self.num_sets) if self.num_sets > 1 else 0
        # Per set: tag -> LRU stamp. Small dicts; max len == associativity.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.accesses = 0
        self.misses = 0

    # -- address helpers -------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def set_index(self, addr: int) -> int:
        return (addr >> self._offset_bits) & self._index_mask

    def tag_of(self, addr: int) -> int:
        return (addr >> self._offset_bits) >> self._set_bits

    # -- operations -------------------------------------------------------

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Access the cache; returns hit/miss and updates LRU on a hit.

        Does *not* allocate on a miss — callers decide fill timing.
        """
        self.accesses += 1
        line = addr >> self._offset_bits
        cache_set = self._sets[line & self._index_mask]
        tag = line >> self._set_bits
        if tag in cache_set:
            if update_lru:
                self._stamp += 1
                cache_set[tag] = self._stamp
            return True
        self.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Hit/miss check with no statistics and no LRU update."""
        line = addr >> self._offset_bits
        return (line >> self._set_bits) in self._sets[line & self._index_mask]

    def fill(self, addr: int) -> Optional[int]:
        """Insert the line holding ``addr``; returns the evicted line
        address (or ``None`` if no eviction was needed / already present)."""
        line = addr >> self._offset_bits
        set_idx = line & self._index_mask
        cache_set = self._sets[set_idx]
        tag = line >> self._set_bits
        self._stamp += 1
        if tag in cache_set:
            cache_set[tag] = self._stamp
            return None
        victim_line = None
        if len(cache_set) >= self.assoc:
            victim_tag = min(cache_set, key=cache_set.get)
            del cache_set[victim_tag]
            victim_line = (victim_tag << self._set_bits) | set_idx \
                if self.num_sets > 1 else victim_tag
        cache_set[tag] = self._stamp
        return victim_line

    def warm_block(self, set_indices, tags, record_hits: bool = False):
        """Batch touch-or-fill for functional warming (stream order kept).

        For each ``(set_index, tag)`` pair in order: bump the LRU stamp,
        touch the line if resident, otherwise evict-and-insert — the
        exact per-access state effects of :meth:`fill`, with **no**
        access/miss accounting (warming never counts: see
        :mod:`repro.pipeline.functional`). With ``record_hits`` the
        pre-install probe outcome of every access is returned (the
        hit/miss-filter training input); otherwise returns ``None``.
        """
        sets = self._sets
        assoc = self.assoc
        stamp = self._stamp
        if not record_hits:
            for set_idx, tag in zip(set_indices, tags):
                cache_set = sets[set_idx]
                stamp += 1
                if tag not in cache_set and len(cache_set) >= assoc:
                    del cache_set[min(cache_set, key=cache_set.get)]
                cache_set[tag] = stamp
            self._stamp = stamp
            return None
        hits = []
        append = hits.append
        for set_idx, tag in zip(set_indices, tags):
            cache_set = sets[set_idx]
            stamp += 1
            if tag in cache_set:
                append(True)
            else:
                append(False)
                if len(cache_set) >= assoc:
                    del cache_set[min(cache_set, key=cache_set.get)]
            cache_set[tag] = stamp
        self._stamp = stamp
        return hits

    def invalidate(self, addr: int) -> bool:
        """Remove the line holding ``addr``; True if it was present."""
        cache_set = self._sets[self.set_index(addr)]
        return cache_set.pop(self.tag_of(addr), None) is not None

    def resident_lines(self) -> int:
        """Total lines currently valid (for tests / occupancy checks)."""
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """Per-set entries keep insertion order: stamps are unique, so
        LRU victims are order-independent, but a deterministic encoding
        keeps checkpoint digests stable."""
        return {
            "sets": [list(s.items()) for s in self._sets],
            "stamp": self._stamp,
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        for cache_set, items in zip(self._sets, state["sets"]):
            cache_set.clear()
            cache_set.update(items)
        self._stamp = state["stamp"]
        self.accesses = state["accesses"]
        self.misses = state["misses"]
