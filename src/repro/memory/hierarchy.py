"""The assembled memory hierarchy: banked L1D -> L2 (+prefetcher) -> DRAM.

The pipeline interacts with memory exclusively through
:meth:`MemoryHierarchy.load` and :meth:`MemoryHierarchy.store`, called when
a memory µop reaches its Execute stage. ``load`` returns a
:class:`LoadOutcome` giving the *actual* load-to-use latency — nominal
(4 cycles) plus any bank-conflict delay, or the L2/DRAM round trip on a
miss. The scheduler compares it against the latency it *promised* when it
speculatively woke dependents; a shortfall triggers a replay.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MemoryConfig
from repro.common.stats import SimStats
from repro.memory.banks import BankScheduler
from repro.memory.cache import SetAssocCache
from repro.memory.dram import DdrModel
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StridePrefetcher


class LoadOutcome:
    """Result of one load's cache access."""

    __slots__ = ("hit", "bank_delay", "latency", "merged")

    def __init__(self, hit: bool, bank_delay: int, latency: int,
                 merged: bool = False) -> None:
        self.hit = hit                  # L1 hit (possibly after a bank delay)
        self.bank_delay = bank_delay    # cycles lost to a bank conflict
        self.latency = latency          # actual load-to-use latency
        self.merged = merged            # merged into an in-flight MSHR

    def __repr__(self) -> str:  # pragma: no cover
        return (f"LoadOutcome(hit={self.hit}, bank_delay={self.bank_delay}, "
                f"latency={self.latency}, merged={self.merged})")


class MemoryHierarchy:
    """L1D + L2 + DRAM with MSHR merging and an L2 stride prefetcher."""

    def __init__(self, config: MemoryConfig, stats: Optional[SimStats] = None) -> None:
        config.validate()
        self.config = config
        self.stats = stats if stats is not None else SimStats()
        self.l1d = SetAssocCache(config.l1d)
        self.l2 = SetAssocCache(config.l2)
        self.banks = BankScheduler(
            num_banks=config.l1d.banks or 8,
            line_bytes=config.l1d.line_bytes,
            num_sets=config.l1d.num_sets,
            banked=config.l1d.banked,
        )
        self.l1_mshrs = MshrFile(config.l1d.mshrs)
        self.l2_mshrs = MshrFile(config.l2.mshrs)
        self.prefetcher = StridePrefetcher(
            degree=config.prefetcher_degree,
            table_entries=config.prefetcher_table_entries,
            line_bytes=config.l2.line_bytes,
        )
        self.dram = DdrModel(config.dram)

    # ------------------------------------------------------------------

    @property
    def l1_hit_latency(self) -> int:
        """Nominal load-to-use latency on an L1 hit (Table 1: 4 cycles)."""
        return self.config.l1d.latency

    def load(self, addr: int, pc: int, now: int) -> LoadOutcome:
        """Perform a load's data access starting at cycle ``now``."""
        stats = self.stats
        stats.l1d_accesses += 1
        bank_delay = self.banks.access(addr, now)
        if bank_delay:
            stats.l1d_bank_conflicts += 1
        access_at = now + bank_delay
        line = self.l1d.line_addr(addr)

        # A refill may still be in flight even though the directory entry
        # exists (lines are installed at request time, data arrives at the
        # MSHR completion): such accesses are secondary misses that ride
        # the in-flight refill, not 4-cycle hits.
        inflight = self.l1_mshrs.lookup(line)
        if inflight is not None and inflight > access_at:
            stats.l1d_misses += 1
            self.l1_mshrs.merges += 1
            self.l1d.lookup(addr)     # touch LRU; counted in cache stats
            latency = max(self.l1_hit_latency + bank_delay, inflight - now)
            return LoadOutcome(hit=False, bank_delay=bank_delay,
                               latency=latency, merged=True)

        if self.l1d.lookup(addr):
            return LoadOutcome(hit=True, bank_delay=bank_delay,
                               latency=self.l1_hit_latency + bank_delay)

        stats.l1d_misses += 1
        extra = self._access_l2(addr, pc, access_at)
        latency = bank_delay + extra
        self.l1_mshrs.allocate(line, now + latency, now)
        self.l1d.fill(addr)
        return LoadOutcome(hit=False, bank_delay=bank_delay, latency=latency)

    def store(self, addr: int, pc: int, now: int) -> None:
        """Perform a store's data access (write-allocate; no replays).

        Stores do not wake dependents and, per Table 1 (2R/2W ports), do not
        contend with loads for data banks, so only cache state is updated.
        """
        self.stats.bump("store_accesses")
        if self.l1d.lookup(addr):
            return
        self.stats.bump("store_l1_misses")
        if not self.l2.lookup(addr):
            self.stats.bump("store_l2_misses")
            self.l2.fill(addr)
        self.l1d.fill(addr)

    # ------------------------------------------------------------------

    def _access_l2(self, addr: int, pc: int, now: int) -> int:
        """L2 access for an L1 refill; returns extra load-to-use cycles."""
        stats = self.stats
        stats.l2_accesses += 1
        line = self.l2.line_addr(addr)
        self._train_prefetcher(pc, addr, now)

        inflight = self.l2_mshrs.lookup(line)
        if inflight is not None and inflight > now:
            stats.l2_misses += 1
            self.l2_mshrs.merges += 1
            self.l2.lookup(addr)
            return self.config.l2.latency + max(0, inflight - now)

        if self.l2.lookup(addr):
            self.prefetcher.note_demand_hit(line)
            return self.config.l2.latency

        stats.l2_misses += 1
        stats.dram_reads += 1
        dram_latency = self.dram.read(line, now + self.config.l2.latency)
        total = self.config.l2.latency + dram_latency
        self.l2_mshrs.allocate(line, now + total, now)
        self.l2.fill(addr)
        return total

    # -- functional warming (repro.pipeline.warming) -------------------

    def warm_l2_block(self, pcs, addrs, set_indices, tags) -> None:
        """Batch L2 arm of functional warming, in stream order.

        Per access: LRU-touch a resident line; on a miss, train the
        stride prefetcher and install its lines plus the demand line as
        timeless fills — the exact per-µop sequence of the scalar loop
        in :mod:`repro.pipeline.functional` (no MSHR/DRAM/stat effects;
        warming models directory state only). The L1 arm is
        :meth:`SetAssocCache.warm_block` on ``self.l1d``.
        """
        l2 = self.l2
        sets = l2._sets
        stamp = l2._stamp
        assoc = l2.assoc
        index_mask = l2._index_mask
        set_bits = l2._set_bits
        train = self.prefetcher.train_and_prefetch
        for pc, addr, set_idx, tag in zip(pcs, addrs, set_indices, tags):
            cache_set = sets[set_idx]
            if tag in cache_set:
                stamp += 1
                cache_set[tag] = stamp
            else:
                # fill(), inlined on the already-decomposed addresses
                # (a prefetch may install the demand line, hence the
                # re-check before evicting).
                for line in train(pc, addr):
                    pf_set = sets[line & index_mask]
                    pf_tag = line >> set_bits
                    stamp += 1
                    if pf_tag not in pf_set and len(pf_set) >= assoc:
                        del pf_set[min(pf_set, key=pf_set.get)]
                    pf_set[pf_tag] = stamp
                stamp += 1
                if tag not in cache_set and len(cache_set) >= assoc:
                    del cache_set[min(cache_set, key=cache_set.get)]
                cache_set[tag] = stamp
        l2._stamp = stamp

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """Assembled-hierarchy state (stats counters are owned by the
        simulator-level :class:`SimStats`, not duplicated here)."""
        return {
            "l1d": self.l1d.state_dict(),
            "l2": self.l2.state_dict(),
            "banks": self.banks.state_dict(),
            "l1_mshrs": self.l1_mshrs.state_dict(),
            "l2_mshrs": self.l2_mshrs.state_dict(),
            "prefetcher": self.prefetcher.state_dict(),
            "dram": self.dram.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.l1d.load_state_dict(state["l1d"])
        self.l2.load_state_dict(state["l2"])
        self.banks.load_state_dict(state["banks"])
        self.l1_mshrs.load_state_dict(state["l1_mshrs"])
        self.l2_mshrs.load_state_dict(state["l2_mshrs"])
        self.prefetcher.load_state_dict(state["prefetcher"])
        self.dram.load_state_dict(state["dram"])

    def _train_prefetcher(self, pc: int, addr: int, now: int) -> None:
        """Issue prefetches through the DRAM model.

        Prefetched lines are installed in the L2 directory immediately but
        their *data* arrives at the DRAM completion time, tracked by the L2
        MSHRs — a demand access that catches up with the prefetch stream
        waits out the remaining latency, and the prefetch traffic consumes
        real bank/bus bandwidth (this is what makes streaming workloads
        like lbm/libquantum memory-bandwidth-bound, as on the paper's
        machine).
        """
        for line in self.prefetcher.train_and_prefetch(pc, addr):
            line_byte_addr = line * self.config.l2.line_bytes
            if self.l2.probe(line_byte_addr) or \
                    self.l2_mshrs.lookup(line) is not None:
                continue
            dram_latency = self.dram.read(line, now)
            self.l2_mshrs.allocate(line, now + dram_latency, now)
            self.l2.fill(line_byte_addr)
            self.prefetcher.mark_prefetched(line)
        self.stats.prefetches_issued = self.prefetcher.issued
        self.stats.prefetches_useful = self.prefetcher.useful
