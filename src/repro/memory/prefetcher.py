"""Degree-8 stride prefetcher attached to the L2 (Table 1).

Classic PC-indexed stride detection: each table entry remembers the last
address and stride for one load PC with a 2-bit confidence. Once confident,
an access triggers ``degree`` prefetches of successive lines, which fill the
L2. Usefulness is tracked (a later demand access that hits a prefetched
line counts as useful) for EXPERIMENTS.md and the tests.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


class StridePrefetcher:
    """PC-indexed stride prefetcher, degree ``degree``."""

    CONF_MAX = 3
    CONF_THRESHOLD = 2

    def __init__(self, degree: int = 8, table_entries: int = 256,
                 line_bytes: int = 64) -> None:
        self.degree = degree
        self.table_entries = table_entries
        self.line_bytes = line_bytes
        # pc-index -> (last_addr, stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self._prefetched_lines: Set[int] = set()
        self.issued = 0
        self.useful = 0

    def _index(self, pc: int) -> int:
        return pc % self.table_entries

    def train_and_prefetch(self, pc: int, addr: int) -> List[int]:
        """Observe a demand access; return line addresses to prefetch."""
        idx = self._index(pc)
        entry = self._table.get(idx)
        prefetches: List[int] = []
        if entry is None:
            self._table[idx] = (addr, 0, 0)
            return prefetches
        last_addr, stride, conf = entry
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            conf = min(conf + 1, self.CONF_MAX)
        else:
            conf = max(conf - 1, 0)
            stride = new_stride
        self._table[idx] = (addr, stride, conf)
        if conf >= self.CONF_THRESHOLD and stride != 0:
            seen: Set[int] = set()
            for k in range(1, self.degree + 1):
                line = (addr + k * stride) // self.line_bytes
                if line not in seen:
                    seen.add(line)
                    prefetches.append(line)
            self.issued += len(prefetches)
        return prefetches

    def mark_prefetched(self, line: int) -> None:
        self._prefetched_lines.add(line)
        if len(self._prefetched_lines) > 1 << 16:
            # Bound memory: forget ancient prefetches.
            self._prefetched_lines.clear()

    def note_demand_hit(self, line: int) -> None:
        """Called when a demand access hits; credits prefetching."""
        if line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.useful += 1

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    # -- state protocol (repro.checkpoint) -----------------------------

    def state_dict(self) -> dict:
        """The prefetched-line set is stored sorted: its iteration order
        is never consulted (membership tests only), and sorting keeps
        the encoding — and thus checkpoint digests — deterministic."""
        return {
            "table": [(idx, tuple(entry))
                      for idx, entry in self._table.items()],
            "prefetched_lines": sorted(self._prefetched_lines),
            "issued": self.issued,
            "useful": self.useful,
        }

    def load_state_dict(self, state: dict) -> None:
        self._table = {idx: tuple(entry) for idx, entry in state["table"]}
        self._prefetched_lines = set(state["prefetched_lines"])
        self.issued = state["issued"]
        self.useful = state["useful"]
