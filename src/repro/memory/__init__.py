"""Memory hierarchy: banked L1D, L2 with stride prefetcher, DDR3-lite DRAM."""

from repro.memory.cache import SetAssocCache
from repro.memory.banks import BankScheduler, bank_of, set_of
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.dram import DdrModel
from repro.memory.hierarchy import LoadOutcome, MemoryHierarchy

__all__ = [
    "BankScheduler",
    "DdrModel",
    "LoadOutcome",
    "MemoryHierarchy",
    "MshrFile",
    "SetAssocCache",
    "StridePrefetcher",
    "bank_of",
    "set_of",
]
