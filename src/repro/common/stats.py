"""Simulation statistics.

The counters here define the metrics of every figure in the paper:

* ``ipc`` — committed correct-path µops per cycle (Figures 3, 4a, 5a, 7a, 8a
  report IPC ratios against Baseline_0);
* ``unique_issued`` / ``replayed_miss`` / ``replayed_bank`` — the issued-µop
  breakdown of Figures 4b, 5b, 7b, 8b (*Unique*, *RpldMiss*, *RpldBank*);
* squash-event counts, cache counters, predictor counters used by
  EXPERIMENTS.md and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


#: Replay causes (Section 4.2). Only these two occur with a monolithic PRF.
CAUSE_L1_MISS = "l1_miss"
CAUSE_BANK_CONFLICT = "bank_conflict"


@dataclass
class SimStats:
    """Mutable counter bag filled in by every pipeline component."""

    cycles: int = 0
    committed_uops: int = 0

    # Issue accounting.
    issued_total: int = 0          # every issue event, incl. replays & wrong path
    unique_issued: int = 0         # distinct µops that issued at least once
    wrong_path_issued: int = 0     # issue events for wrong-path µops
    replayed_miss: int = 0         # µop-issues cancelled due to an L1 miss
    replayed_bank: int = 0         # µop-issues cancelled due to an L1 bank conflict

    # Scheduler events.
    squash_events_miss: int = 0
    squash_events_bank: int = 0
    issue_cycles_lost: int = 0     # cycles with issue blocked by replay handling
    conservative_loads: int = 0    # loads whose dependents were not woken early
    speculative_loads: int = 0     # loads that woke dependents assuming a hit
    shifted_loads: int = 0         # second-of-group loads shifted by one cycle

    # Branch prediction.
    branches: int = 0
    branch_mispredicts: int = 0

    # Memory system.
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1d_bank_conflicts: int = 0    # loads delayed by at least one cycle
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0
    store_forwards: int = 0
    memory_order_violations: int = 0

    # Hit/miss filter + criticality predictor bookkeeping.
    filter_sure_hit: int = 0
    filter_sure_miss: int = 0
    filter_deferred: int = 0
    crit_predicted_critical: int = 0
    crit_predicted_noncritical: int = 0

    extra: Dict[str, int] = field(default_factory=dict)

    #: Observability side-table (histograms, accuracy rates) filled by
    #: :class:`repro.telemetry.probes.MetricsCollector` — never by the
    #: machine itself. Not a counter: excluded from arithmetic, and
    #: omitted from :meth:`to_dict` while empty so uninstrumented runs
    #: serialize byte-identically to pre-telemetry builds (golden files,
    #: cache entries).
    telemetry: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed µops per cycle (0.0 before any cycle has elapsed)."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def replayed_total(self) -> int:
        return self.replayed_miss + self.replayed_bank

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo committed µop."""
        if not self.committed_uops:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.committed_uops

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment an ad-hoc counter in :attr:`extra`."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def record_replayed(self, cause: str, count: int) -> None:
        """Attribute ``count`` cancelled µop-issues to a squash cause."""
        if cause == CAUSE_L1_MISS:
            self.replayed_miss += count
            self.squash_events_miss += 1
        elif cause == CAUSE_BANK_CONFLICT:
            self.replayed_bank += count
            self.squash_events_bank += 1
        else:
            raise ValueError(f"unknown replay cause {cause!r}")

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view (counters + derived rates) for reporting."""
        out: Dict[str, float] = {}
        for name, value in self.__dict__.items():
            if name in ("extra", "telemetry"):
                continue
            out[name] = value
        out.update(self.extra)
        out["ipc"] = self.ipc
        out["replayed_total"] = self.replayed_total
        out["l1d_miss_rate"] = self.l1d_miss_rate
        return out

    def delta_since(self, earlier: "SimStats") -> "SimStats":
        """Counter-wise difference, used to discard warmup.

        Derived properties recompute automatically from the subtracted
        counters.
        """
        diff = SimStats()
        for name, value in self.__dict__.items():
            if name in ("extra", "telemetry"):
                continue
            setattr(diff, name, value - getattr(earlier, name))
        diff.extra = {
            key: value - earlier.extra.get(key, 0)
            for key, value in self.extra.items()
        }
        # The telemetry table is not counter arithmetic; the measured
        # region inherits the run's table as-is.
        diff.telemetry = dict(self.telemetry)
        return diff

    def copy(self) -> "SimStats":
        dup = SimStats()
        for name, value in self.__dict__.items():
            if name in ("extra", "telemetry"):
                continue
            setattr(dup, name, value)
        dup.extra = dict(self.extra)
        dup.telemetry = dict(self.telemetry)
        return dup

    # -- serialization (persistent result cache, golden files) -----------

    def to_dict(self) -> Dict[str, int]:
        """Lossless counter dump (unlike :meth:`snapshot`, no derived
        rates mixed in); inverse of :meth:`from_dict`."""
        out = {name: value for name, value in self.__dict__.items()
               if name not in ("extra", "telemetry")}
        out["extra"] = dict(self.extra)
        if self.telemetry:
            out["telemetry"] = dict(self.telemetry)
        return out

    def state_dict(self) -> Dict[str, int]:
        """Checkpoint-protocol alias of :meth:`to_dict`."""
        return self.to_dict()

    def load_state_dict(self, data: Dict) -> None:
        """In-place restore: the hierarchy and the policy hold references
        to this object, so load must not replace it."""
        fresh = SimStats.from_dict(data)
        for name, value in fresh.__dict__.items():
            setattr(self, name,
                    dict(value) if name in ("extra", "telemetry") else value)

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        counters = {f.name for f in fields(cls)}
        stats = cls()
        for name, value in data.items():
            if name == "extra":
                stats.extra = dict(value)
            elif name == "telemetry":
                stats.telemetry = dict(value)
            elif name in counters:
                setattr(stats, name, value)
            else:
                # Catches derived keys too (ipc, replayed_total, ...), so
                # feeding snapshot() output here fails loudly, not subtly.
                raise ValueError(f"unknown SimStats counter {name!r}")
        return stats
